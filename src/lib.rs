//! # telco-lens
//!
//! A countrywide cellular-handover study toolkit: the open-source
//! reproduction of *"Through the Telco Lens: A Countrywide Empirical Study
//! of Cellular Handovers"* (Kalntis et al., IMC 2024).
//!
//! The paper measures every handover in a top-tier European MNO for four
//! weeks. Its data is proprietary, so this crate ships both halves of the
//! study:
//!
//! * **the substrate** — a deterministic synthetic MNO: geography + census
//!   ([`geo`]), a GSMA-style device catalog ([`devices`]), the multi-RAT
//!   radio topology with its 2009–2023 history ([`topology`]), UE mobility
//!   ([`mobility`]), and the 3GPP handover procedure with cause codes and
//!   calibrated failure/duration models ([`signaling`]), driven by an
//!   event-based simulation engine ([`sim`]) that emits the paper's trace
//!   ([`trace`]);
//! * **the analyses** — every table and figure of the paper computed from
//!   a generated trace ([`analytics`]), on top of a self-contained
//!   statistics library ([`stats`]).
//!
//! ## Quickstart
//!
//! ```
//! use telco_lens::prelude::*;
//!
//! // Simulate a small country for a couple of days...
//! let study = Study::run(SimConfig::tiny());
//! // ...and reproduce the paper's Table 2.
//! let table2 = study.ho_types();
//! println!("{}", table2.table());
//! assert!(table2.intra_share() > 0.5);
//! ```
//!
//! Scale up with [`sim::SimConfig::default_study`] (the 28-day configuration
//! behind `EXPERIMENTS.md`) or tune every model through [`sim::SimConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use telco_analytics as analytics;
pub use telco_devices as devices;
pub use telco_geo as geo;
pub use telco_mobility as mobility;
pub use telco_signaling as signaling;
pub use telco_sim as sim;
pub use telco_stats as stats;
pub use telco_topology as topology;
pub use telco_trace as trace;

/// The types most programs need.
pub mod prelude {
    pub use telco_analytics::{
        CauseAnalysis, DatasetStats, DeviceMix, HoDensity, HoTypeTable, HofModels,
        ManufacturerImpact, MobilityEcdfs, SectorDayFrame, Study, TemporalEvolution, TextTable,
    };
    pub use telco_devices::types::{DeviceType, Manufacturer, RatSupport};
    pub use telco_geo::country::{Country, CountryConfig};
    pub use telco_geo::postcode::AreaType;
    pub use telco_signaling::causes::PrincipalCause;
    pub use telco_signaling::messages::HoType;
    pub use telco_sim::{run_study, SimConfig, StudyData};
    pub use telco_topology::rat::Rat;
    pub use telco_topology::vendor::Vendor;
    pub use telco_trace::dataset::SignalingDataset;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_runs() {
        let study = Study::run(SimConfig::tiny());
        assert!(!study.data().trace.is_empty());
        assert_eq!(HoType::ALL.len(), 3);
        assert_eq!(Rat::ALL.len(), 4);
    }
}
