//! Property-based tests over the library's core invariants: the trace
//! codec, identity check digits, the statistics kernels, and the handover
//! state machine.

use proptest::prelude::*;

use telco_lens::devices::ids::{luhn_is_valid, Imei, Tac};
use telco_lens::devices::population::UeId;
use telco_lens::signaling::causes::{CauseCode, PrincipalCause};
use telco_lens::signaling::messages::HoType;
use telco_lens::signaling::state_machine::execute;
use telco_lens::stats::corr::pearson;
use telco_lens::stats::desc::{percentile, Summary};
use telco_lens::stats::ecdf::Ecdf;
use telco_lens::topology::elements::SectorId;
use telco_lens::topology::rat::Rat;
use telco_lens::trace::dataset::SignalingDataset;
use telco_lens::trace::io::{decode, encode};
use telco_lens::trace::record::{HoOutcome, HoRecord};

fn arb_rat() -> impl Strategy<Value = Rat> {
    prop_oneof![Just(Rat::G2), Just(Rat::G3), Just(Rat::G4), Just(Rat::G5Nr)]
}

fn arb_record() -> impl Strategy<Value = HoRecord> {
    (
        0u64..(28 * 86_400_000),
        0u32..1_000_000,
        0u32..500_000,
        0u32..500_000,
        arb_rat(),
        arb_rat(),
        proptest::bool::ANY,
        1u16..1050,
        0.0f32..20_000.0,
        proptest::bool::ANY,
        0u16..40,
    )
        .prop_map(
            |(ts, ue, src, tgt, source_rat, target_rat, failed, cause, dur, srvcc, msgs)| {
                HoRecord {
                    timestamp_ms: ts,
                    ue: UeId(ue),
                    source_sector: SectorId(src),
                    target_sector: SectorId(tgt),
                    source_rat,
                    target_rat,
                    outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                    cause: failed.then_some(CauseCode(cause)),
                    duration_ms: dur,
                    srvcc,
                    messages: msgs,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_codec_roundtrips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let dataset = SignalingDataset::from_records(28, records);
        let decoded = decode(encode(&dataset)).expect("valid frames decode");
        prop_assert_eq!(dataset, decoded);
    }

    #[test]
    fn imei_check_digits_always_validate(tac in 0u32..=99_999_999, serial in 0u32..=999_999) {
        let imei = Imei::new(Tac::new(tac), serial);
        let digits: Vec<u8> = imei.to_string().bytes().map(|b| b - b'0').collect();
        prop_assert_eq!(digits.len(), 15);
        prop_assert!(luhn_is_valid(&digits));
    }

    #[test]
    fn percentiles_are_bounded_and_monotone(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&xs, lo).unwrap();
        let v_hi = percentile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi, "percentiles must be monotone");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v_lo >= xs[0] && v_hi <= *xs.last().unwrap());
    }

    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
        prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert_eq!(s.n, xs.len());
    }

    #[test]
    fn ecdf_is_a_cdf(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), q in -1e6f64..1e6) {
        let e = Ecdf::new(&xs);
        let v = e.eval(q);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(e.eval(e.max()), 1.0);
        prop_assert!(e.eval(e.min() - 1.0) == 0.0);
        // Monotonicity around q.
        prop_assert!(e.eval(q - 1.0) <= v && v <= e.eval(q + 1.0));
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((r - pearson(&y, &x).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn state_machine_always_terminates_cleanly(
        ho_type_idx in 0usize..3,
        srvcc in proptest::bool::ANY,
        fail_cause in proptest::option::of(1u16..1000),
        duration in 0.0f64..20_000.0,
    ) {
        let ho_type = HoType::ALL[ho_type_idx];
        let srvcc = srvcc && ho_type.is_vertical();
        let cause = fail_cause.map(CauseCode);
        let run = execute(ho_type, srvcc, cause, duration);
        prop_assert_eq!(run.success, cause.is_none());
        prop_assert!(!run.log.is_empty());
        // Timestamps within [0, duration], nondecreasing.
        prop_assert!(run.log.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        prop_assert!(run.log.last().unwrap().at_ms <= duration + 1e-6);
        // Failures always release the UE context.
        if cause.is_some() {
            prop_assert_eq!(
                run.log.last().unwrap().message,
                telco_lens::signaling::messages::Message::UeContextRelease
            );
        }
    }

    #[test]
    fn principal_cause_roundtrip(n in 1u8..=8) {
        let cause = PrincipalCause::ALL[(n - 1) as usize];
        prop_assert_eq!(cause.number(), n);
        prop_assert_eq!(CauseCode::principal(cause).as_principal(), Some(cause));
    }
}
