//! End-to-end integration tests: run one simulated study and verify the
//! scale-free claims of the paper across the whole pipeline
//! (simulation → trace → analytics → statistics).

use std::sync::OnceLock;

use telco_lens::analytics::Study;
use telco_lens::prelude::*;
use telco_lens::trace::io::{decode, encode};

/// One shared study for the whole test binary (a full week so every day
/// of week is represented).
fn study() -> &'static Study {
    static CELL: OnceLock<Study> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 2_000;
        cfg.n_days = 7;
        cfg.threads = 0;
        Study::run(cfg)
    })
}

#[test]
fn simulation_is_reproducible_bit_for_bit() {
    let mut cfg = SimConfig::tiny();
    cfg.threads = 1;
    let a = run_study(cfg.clone());
    cfg.threads = 4;
    let b = run_study(cfg);
    let (a_data, b_data) =
        (a.trace.as_dataset().expect("in-memory"), b.trace.as_dataset().expect("in-memory"));
    assert_eq!(a_data.records(), b_data.records());
    assert_eq!(a.output.mobility, b.output.mobility);
}

#[test]
fn trace_roundtrips_through_binary_codec() {
    let dataset = study().data().trace.as_dataset().expect("in-memory study");
    let decoded = decode(encode(dataset)).expect("self-produced trace decodes");
    assert_eq!(dataset, &decoded);
}

#[test]
fn table2_horizontal_handovers_dominate() {
    let t2 = study().ho_types();
    // Paper: 94.14% intra, 5.86% →3G, ≈0.001% →2G.
    assert!(
        (0.90..0.99).contains(&t2.intra_share()),
        "intra share {} outside the paper's neighbourhood",
        t2.intra_share()
    );
    // Smartphones trigger the overwhelming majority of handovers.
    assert!(t2.device_totals[0] > 0.80, "smartphone HO share {}", t2.device_totals[0]);
    // →2G is orders of magnitude rarer than →3G.
    assert!(t2.type_totals[2] < t2.type_totals[1] / 50.0);
}

#[test]
fn fig8_duration_hierarchy() {
    let d = study().durations();
    // Paper: 43 ms / 412 ms / ~1 s medians.
    let intra = d.intra.median();
    assert!((30.0..60.0).contains(&intra), "intra median {intra}");
    let to3g = d.to3g.as_ref().expect("→3G HOs exist").median();
    assert!((5.0..20.0).contains(&(to3g / intra)), "→3G/intra duration ratio {}", to3g / intra);
    if let Some(to2g) = &d.to2g {
        assert!(to2g.median() > to3g, "→2G median must exceed →3G");
    }
    // 95% of intra HOs complete within ~90 ms.
    assert!(d.intra.quantile(0.95) < 120.0);
}

#[test]
fn fig5_fig6_geodemographics() {
    let s = study();
    let pop = s.population_inference();
    assert!(pop.r_squared > 0.7, "census R² {}", pop.r_squared);
    let density = s.ho_density();
    assert!(density.pearson > 0.7, "HO-density Pearson {}", density.pearson);
    assert!(density.mean_to_min_ratio() > 5.0, "urban/rural contrast too weak");
}

#[test]
fn fig7_temporal_structure() {
    let t = study().temporal_evolution();
    assert!((0.6..0.95).contains(&t.urban_ho_share), "urban share {}", t.urban_ho_share);
    assert!(t.ho_active_correlation > 0.8);
    assert!(t.morning_surge > 1.5, "morning surge ×{}", t.morning_surge);
    assert!(t.sunday_vs_friday_drop > 0.05, "Sunday drop {}", t.sunday_vs_friday_drop);
}

#[test]
fn fig10_mobility_ordering() {
    let m = study().mobility();
    let smart = m.median_sectors(DeviceType::Smartphone).unwrap();
    let feature = m.median_sectors(DeviceType::FeaturePhone).unwrap();
    let m2m = m.median_sectors(DeviceType::M2mIot).unwrap();
    assert!(smart > feature && feature >= m2m, "ordering {smart} / {feature} / {m2m}");
    assert!(m2m <= 2.0, "M2M should be near-static");
    assert!(m.median_gyration(DeviceType::M2mIot).unwrap() < 0.1);
}

#[test]
fn fig14_cause_structure() {
    let c = study().causes();
    assert!(c.principal_share() > 0.85, "principal share {}", c.principal_share());
    assert!((0.6..0.9).contains(&c.to3g_failure_share), "→3G share {}", c.to3g_failure_share);
    assert!(c.to2g_failure_share < 0.02);
    // Cause #4 (target load) leads; Cause #3 dominates intra failures.
    let c4 = c.shares[PrincipalCause::TargetLoadTooHigh.index()];
    assert!(c4 > 0.15, "Cause #4 share {c4}");
    // Durations: #3 aborts instantly, #8 sits at the 10 s timer.
    if let Some(e) = &c.durations[PrincipalCause::InvalidTargetSector.index()] {
        assert_eq!(e.median(), 0.0);
    }
    if let Some(e) = &c.durations[PrincipalCause::RelocationTimeout.index()] {
        assert!(e.median() > 9_500.0 && e.quantile(0.95) < 10_500.0);
    }
}

#[test]
fn section_6_3_models_confirm_ho_type_effect() {
    let models = study().models();
    // ANOVA + Kruskal-Wallis agree: the HO type matters (paper p < .001).
    assert!(models.anova_ho_type.p_value < 1e-3);
    assert!(models.kruskal_ho_type.p_value < 1e-3);
    // Vertical handovers fail far more (positive log-linear contrasts).
    let c3 = models.to3g_coefficient().expect("→3G present");
    assert!(c3 > 1.0, "→3G coefficient {c3}");
    // The HO type is significant in the full model too, and its effect
    // dwarfs the vendor/area/region covariates.
    let full_c3 =
        models.full_model.coefficient("HO type: 4G/5G-NSA->3G").expect("covariate present");
    assert!(full_c3.p_value < 1e-3);
    for c in &models.full_model.coefficients {
        if c.name.starts_with("Antenna Vendor") || c.name.starts_with("Area Type") {
            assert!(c.estimate.abs() < full_c3.estimate, "{} rivals HO type", c.name);
        }
    }
    // Quantile regressions reproduce the effect across the distribution.
    for fit in &models.quantile_all {
        if let Some(c) = fit.coefficient("HO type: 4G/5G-NSA->3G") {
            assert!(c.estimate > 0.5, "τ={}: coefficient {}", fit.tau, c.estimate);
        }
    }
}

#[test]
fn appendix_b_vendor_effects() {
    let s = study();
    let v = s.vendor_analysis();
    // V3 concentrates in the West (Fig. 17).
    let west =
        v.sectors_by_region[telco_lens::geo::district::Region::West.index()][Vendor::V3.index()];
    assert!(west > 0.1, "V3 west share {west}");
    // The vendor ANOVA is significant but small next to the HO type.
    let models = s.models();
    assert!(models.anova_vendor.p_value < 0.05);
    assert!(models.anova_vendor.eta_squared < models.anova_ho_type.eta_squared);
}

#[test]
fn core_network_probe_balances() {
    let core = &study().data().output.core;
    // Every handover opened at the MME was closed again.
    assert_eq!(core.mme_open_procedures(), 0);
    assert!(core.mme_total_procedures() > 0);
    // The probe saw roughly a dozen messages per handover.
    let per_ho = core.total_messages() as f64 / study().data().trace.len() as f64;
    assert!((5.0..20.0).contains(&per_ho), "messages per HO {per_ho}");
}

#[test]
fn rat_usage_and_traffic_shares() {
    let usage = study().rat_usage();
    // Paper: 82% of attach time and ~95/98% of traffic on 4G/5G-NSA.
    assert!((0.70..0.95).contains(&usage.epc_time_share));
    assert!(usage.epc_ul_share > 0.88);
    assert!(usage.epc_dl_share > usage.epc_ul_share);
}
