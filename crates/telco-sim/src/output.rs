//! Simulation outputs: everything the analyses consume.

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_signaling::entities::CoreNetwork;
use telco_topology::rat::Rat;
use telco_trace::dataset::SignalingDataset;

use crate::runner::RunnerStats;

/// One UE-day row of the mobility ledger: the §3.3 metrics plus handover
/// accounting (feeds Figs. 10 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeDayMobility {
    /// The UE.
    pub ue: UeId,
    /// Zero-based study day.
    pub day: u32,
    /// Distinct radio sectors communicated with.
    pub sectors: u16,
    /// Radius of gyration, km.
    pub gyration_km: f32,
    /// Handovers recorded (EPC view).
    pub hos: u16,
    /// Handover failures.
    pub hofs: u16,
    /// Signaling messages exchanged across all handovers.
    pub messages: u32,
}

impl UeDayMobility {
    /// Daily HOF rate of the UE (0 when no handovers happened).
    pub fn hof_rate(&self) -> f64 {
        if self.hos == 0 {
            0.0
        } else {
            self.hofs as f64 / self.hos as f64
        }
    }
}

/// Attach-time and traffic-volume ledger per RAT (feeds Fig. 3b).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RatLedger {
    /// Attach time per RAT, ms (indexed by `Rat::index()`).
    pub attach_ms: [f64; 4],
    /// Uplink volume per RAT, MB.
    pub ul_mb: [f64; 4],
    /// Downlink volume per RAT, MB.
    pub dl_mb: [f64; 4],
}

impl RatLedger {
    /// Add attach time and the corresponding traffic share.
    pub fn add(&mut self, rat: Rat, attach_ms: f64, ul_mb: f64, dl_mb: f64) {
        let i = rat.index();
        self.attach_ms[i] += attach_ms;
        self.ul_mb[i] += ul_mb;
        self.dl_mb[i] += dl_mb;
    }

    /// Merge another ledger.
    pub fn merge(&mut self, other: &RatLedger) {
        for i in 0..4 {
            self.attach_ms[i] += other.attach_ms[i];
            self.ul_mb[i] += other.ul_mb[i];
            self.dl_mb[i] += other.dl_mb[i];
        }
    }

    /// Attach-time share per RAT (sums to 1; zeros if no time recorded).
    pub fn time_shares(&self) -> [f64; 4] {
        normalize(self.attach_ms)
    }

    /// Uplink traffic share per RAT.
    pub fn ul_shares(&self) -> [f64; 4] {
        normalize(self.ul_mb)
    }

    /// Downlink traffic share per RAT.
    pub fn dl_shares(&self) -> [f64; 4] {
        normalize(self.dl_mb)
    }

    /// Combined 4G + 5G-NSA attach-time share (the paper cannot split the
    /// two through the EPC — §4.1).
    pub fn epc_time_share(&self) -> f64 {
        let s = self.time_shares();
        s[Rat::G4.index()] + s[Rat::G5Nr.index()]
    }
}

fn normalize(v: [f64; 4]) -> [f64; 4] {
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        return [0.0; 4];
    }
    [v[0] / sum, v[1] / sum, v[2] / sum, v[3] / sum]
}

/// The complete output of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimOutput {
    /// The handover trace.
    pub dataset: SignalingDataset,
    /// Per-UE-day mobility rows.
    pub mobility: Vec<UeDayMobility>,
    /// Attach-time / traffic ledger.
    pub ledger: RatLedger,
    /// Core-network message accounting (the probe view).
    pub core: CoreNetwork,
    /// How the runner produced this output (which scheduling path ran,
    /// with how many threads and work items) — so throughput benchmarks
    /// can assert they measured the path they meant to.
    pub runner: RunnerStats,
}

impl SimOutput {
    /// Empty output covering `days` study days.
    pub fn new(days: u32) -> Self {
        SimOutput {
            dataset: SignalingDataset::new(days),
            mobility: Vec::new(),
            ledger: RatLedger::default(),
            core: CoreNetwork::new(),
            runner: RunnerStats::default(),
        }
    }

    /// Merge a shard's output (same span). The runner stats of `self` are
    /// kept: scheduling metadata describes the whole run, not a shard.
    pub fn merge(&mut self, other: SimOutput) {
        self.dataset.merge(other.dataset);
        self.mobility.extend(other.mobility);
        self.ledger.merge(&other.ledger);
        self.core.merge(&other.core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hof_rate_handles_zero_hos() {
        let row = UeDayMobility {
            ue: UeId(1),
            day: 0,
            sectors: 1,
            gyration_km: 0.0,
            hos: 0,
            hofs: 0,
            messages: 0,
        };
        assert_eq!(row.hof_rate(), 0.0);
    }

    #[test]
    fn ledger_shares_normalize() {
        let mut l = RatLedger::default();
        l.add(Rat::G4, 82.0, 90.0, 97.0);
        l.add(Rat::G3, 9.0, 5.0, 2.0);
        l.add(Rat::G2, 9.0, 5.0, 1.0);
        let s = l.time_shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((l.epc_time_share() - 0.82).abs() < 1e-9);
        assert!(l.ul_shares()[Rat::G4.index()] > 0.8);
    }

    #[test]
    fn empty_ledger_shares_are_zero() {
        let l = RatLedger::default();
        assert_eq!(l.time_shares(), [0.0; 4]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimOutput::new(2);
        let mut b = SimOutput::new(2);
        b.ledger.add(Rat::G4, 10.0, 1.0, 2.0);
        b.mobility.push(UeDayMobility {
            ue: UeId(0),
            day: 0,
            sectors: 3,
            gyration_km: 1.0,
            hos: 2,
            hofs: 1,
            messages: 24,
        });
        a.merge(b);
        assert_eq!(a.mobility.len(), 1);
        assert_eq!(a.ledger.attach_ms[Rat::G4.index()], 10.0);
    }
}
