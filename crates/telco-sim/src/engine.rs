//! The per-UE-day simulation engine.
//!
//! For each UE and study day the engine synthesizes a trajectory, walks it
//! against the radio topology, and turns every connected-mode sector
//! crossing into a full handover procedure: vertical-fallback decision
//! (coverage margin), failure injection, cause selection, duration
//! sampling, and the Fig. 1 message exchange observed by the core-network
//! probe. Side products are the §3.3 mobility metrics and the RAT
//! attach-time/traffic ledger.

// telco-lint: deny-panic

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use telco_devices::population::UeId;
use telco_devices::types::{DeviceType, RatSupport};
use telco_geo::coords::KmPoint;
use telco_mobility::metrics::DailyMobility;
use telco_mobility::schedule::DayOfWeek;
use telco_mobility::trajectory::{DayTrajectory, DAY_MS};
use telco_signaling::causes::CauseCode;
use telco_signaling::duration::DurationModel;
use telco_signaling::events::{rsrp_dbm, MobilityConfig};
use telco_signaling::failure::{FailureModel, HoContext};
use telco_signaling::messages::{Envelope, HoType};
use telco_signaling::state_machine::execute_into;
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;
use telco_trace::record::{HoOutcome, HoRecord};

use crate::config::SimConfig;
use crate::load::load_ratio;
use crate::output::{SimOutput, UeDayMobility};
use crate::world::World;

/// Daily traffic volume (UL MB, DL MB) per device type, calibrated so
/// legacy RATs end up carrying ≈5% of uplink and ≈2% of downlink (§4.1).
fn daily_volume_mb(device_type: DeviceType) -> (f64, f64) {
    match device_type {
        DeviceType::Smartphone => (60.0, 1_100.0),
        DeviceType::M2mIot => (6.0, 30.0),
        DeviceType::FeaturePhone => (4.0, 20.0),
    }
}

/// Reusable per-worker buffers for the per-UE-day hot loop. One scratch
/// lives on each worker thread; after a few warm-up UE-days its buffers
/// reach their working sizes and the steady-state loop performs no heap
/// allocation (asserted by the `zero_alloc` counting-allocator test).
#[derive(Debug)]
pub struct SimScratch {
    /// Trajectory waypoints, rewritten in place each day.
    trajectory: DayTrajectory,
    /// Sampled `(ms-of-day, position)` walk points.
    samples: Vec<(u32, KmPoint)>,
    /// Daily sector-visit accumulator.
    mobility: DailyMobility,
    /// Distinct-sector counting scratch.
    sector_ids: Vec<u32>,
    /// Handover message-log buffer (bounded by the longest procedure).
    log: Vec<Envelope>,
}

impl SimScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        SimScratch {
            trajectory: DayTrajectory::stationary(KmPoint::new(0.0, 0.0)),
            samples: Vec::new(),
            mobility: DailyMobility::new(),
            sector_ids: Vec::new(),
            log: Vec::new(),
        }
    }
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}

// telco-lint: deny-alloc(begin)
/// Simulate one UE for one study day, appending to `out`. `scratch` holds
/// the reused working buffers; any instance works, but reusing one across
/// calls keeps the loop allocation-free.
pub fn simulate_ue_day(
    world: &World,
    cfg: &SimConfig,
    ue: UeId,
    day: u32,
    scratch: &mut SimScratch,
    out: &mut SimOutput,
) {
    let attrs = *world.ue(ue);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.ue_day_seed(ue.0, day));
    let dow = DayOfWeek::from_study_day(day);
    let attach_ms = attrs.attach_hours as f64 * 3_600_000.0;
    let (ul, dl) = daily_volume_mb(attrs.device_type);
    let vol_jitter: f64 = rng.random_range(0.6..1.4);
    let (ul, dl) = (ul * vol_jitter, dl * vol_jitter);

    DayTrajectory::generate_into(
        attrs.profile,
        attrs.home,
        Some(attrs.work),
        dow,
        &world.schedule,
        &world.country.bounds,
        &mut rng,
        &mut scratch.trajectory,
    );

    if !attrs.rat_support.is_4g_capable() {
        simulate_legacy_ue_day(
            world,
            ue,
            day,
            &attrs.rat_support,
            attach_ms,
            ul,
            dl,
            cfg,
            scratch,
            out,
        );
        return;
    }

    // --- 4G/5G-NSA UE: the EPC sees its handovers. ---
    // Borrow the scratch buffers disjointly for the rest of the day.
    let SimScratch { trajectory, samples, mobility, sector_ids, log } = scratch;
    sample_points_into(trajectory, cfg.step_km, samples);
    let mobility_cfg = MobilityConfig::default();
    let failure_model = FailureModel::new(cfg.failure);
    let durations = cfg.durations;

    mobility.clear();
    // `camp` is the UE's camping state as one `(face, attached)` pair:
    // `face` is the geometric serving face (crossing detection) and
    // `attached` the sector actually camped on (which may be a different
    // carrier of the same face after load balancing). Keeping them in a
    // single Option makes "attached whenever a face is set" hold by
    // construction instead of by `expect`.
    let mut camp: Option<(SectorId, SectorId)> = None;
    let mut prev_t: u32 = 0;
    let mut prev_slot: usize = 0;
    let mut suppressed_until: u32 = 0;
    let mut hos: u32 = 0;
    let mut hofs: u32 = 0;
    let mut messages: u32 = 0;
    let mut legacy_ms: f64 = 0.0;

    let duty = match attrs.device_type {
        DeviceType::Smartphone => cfg.session.smartphone_duty,
        DeviceType::M2mIot => cfg.session.m2m_duty,
        DeviceType::FeaturePhone => cfg.session.feature_duty,
    };
    let voice_prob = match attrs.device_type {
        DeviceType::Smartphone => cfg.session.smartphone_voice,
        DeviceType::M2mIot => 0.0,
        DeviceType::FeaturePhone => cfg.session.feature_voice,
    };

    let mut serving_cache = ServingCache::new(Rat::G4);
    for &(t, pos) in samples.iter() {
        if t < suppressed_until {
            prev_t = t;
            continue;
        }
        let slot = (t / 1_800_000) as usize;
        let Some(serving) =
            serving_cache.lookup(world, &pos).map(|sid| energy_redirect(world, sid, day, slot))
        else {
            prev_t = t;
            continue;
        };
        let site = world.topology.site(world.topology.sector(serving).site);
        let dt = (t - prev_t) as f64;

        match camp {
            None => {
                // Initial (or post-fallback) attach: no handover recorded.
                camp = Some((serving, serving));
                mobility.record(serving.0, site.position, dt.max(1.0));
            }
            Some((face, mut attached)) if face == serving => {
                // Camping on the same face: the site may rebalance the UE
                // onto another carrier / co-sited sector — an intra-site
                // handover (this is what lifts connected smartphones to the
                // paper's 22 visited sectors per day, Fig. 10a).
                // The manufacturer's mobility-management implementation
                // scales how often its devices are rebalanced (Fig. 11:
                // Simcom modules hand over ~4× their district peers).
                // telco-lint: allow(index): device_type.index() is 0..3 by the enum's definition
                let p_cc = (cfg.session.carrier_change_per_slot[attrs.device_type.index()]
                    * world.schedule.intensity(dow, slot)
                    * attrs.manufacturer.ho_volume_factor())
                .min(1.0);
                if slot != prev_slot && rng.random::<f64>() < p_cc {
                    if let Some(sib) = sibling_sector(world, attached, &mut rng) {
                        let (failed, cause, duration, msg_count) = run_handover(
                            world,
                            &failure_model,
                            &durations,
                            cfg,
                            attached,
                            sib,
                            HoType::Intra4g5g,
                            false,
                            attrs.device_type,
                            attrs.manufacturer,
                            attrs.srvcc_subscribed,
                            dow,
                            slot,
                            day,
                            &mut rng,
                            log,
                            out,
                        );
                        // telco-lint: allow(alloc): amortized append into caller-reserved output, pinned by tests/zero_alloc.rs
                        out.dataset.push(HoRecord {
                            timestamp_ms: day as u64 * DAY_MS as u64 + t as u64,
                            ue,
                            source_sector: attached,
                            target_sector: sib,
                            source_rat: world.topology.sector(attached).rat,
                            target_rat: world.topology.sector(sib).rat,
                            outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                            cause,
                            duration_ms: duration as f32,
                            srvcc: false,
                            messages: msg_count,
                        });
                        hos += 1;
                        hofs += u32::from(failed);
                        messages += msg_count as u32;
                        if !failed {
                            attached = sib;
                        }
                    }
                }
                let att_site = world.topology.site(world.topology.sector(attached).site);
                mobility.record(attached.0, att_site.position, dt);
                camp = Some((face, attached));
            }
            Some((_, old)) => {
                // Sector crossing: the UE leaves its attached sector.
                let factor = attrs.manufacturer.ho_volume_factor();
                let record_prob = (duty * factor).min(1.0);
                if rng.random::<f64>() >= record_prob {
                    // Idle-mode reselection: sector changes, no HO record.
                    camp = Some((serving, serving));
                    mobility.record(serving.0, site.position, dt);
                    prev_t = t;
                    prev_slot = slot;
                    continue;
                }

                // Vertical-fallback decision from the cell-edge depth:
                // distance to the new site relative to the local typical
                // cell radius, scaled by the area-type base rate. The RSRP
                // margin (A2 semantics) is tracked for the measurement
                // report but the probability is ratio-driven, keeping the
                // model invariant to the deployment's absolute density.
                let urban = world.area_type(site.postcode) == telco_geo::postcode::AreaType::Urban;
                let dist = pos.distance_km(&site.position);
                let _a2 = rsrp_dbm(dist, Rat::G4, urban) < mobility_cfg.a2_threshold_dbm;
                let r = dist / world.cell_radius(site.postcode).max(0.05);
                let base = if urban { cfg.coverage.urban_base } else { cfg.coverage.rural_base };
                // Denser districts keep UEs on 4G/5G (capital ≥99.9% intra);
                // sparse ones lean on legacy coverage (Fig. 9).
                let density = world.country.district(site.district).population_density().max(1.0);
                let density_factor = (cfg.coverage.density_ref / density)
                    .powf(cfg.coverage.density_exponent)
                    .clamp(0.05, 8.0);
                let p_vert =
                    (base * density_factor * ((r - 1.0) * cfg.coverage.r_sensitivity).exp())
                        .clamp(0.0, cfg.coverage.max_prob);
                let mut vertical_target: Option<(SectorId, Rat)> = None;
                if rng.random::<f64>() < p_vert {
                    let want_2g = rng.random::<f64>() < cfg.coverage.two_g_share;
                    if !want_2g {
                        if let Some(s3) = world.topology.serving_sector(&pos, Rat::G3) {
                            vertical_target = Some((s3, Rat::G3));
                        }
                    }
                    if vertical_target.is_none() {
                        if let Some(s2) = world.topology.serving_sector(&pos, Rat::G2) {
                            vertical_target = Some((s2, Rat::G2));
                        } else if let Some(s3) = world.topology.serving_sector(&pos, Rat::G3) {
                            vertical_target = Some((s3, Rat::G3));
                        }
                    }
                }

                let (target_sector, target_rat) = vertical_target.unwrap_or((serving, Rat::G4));
                let ho_type = HoType::from_target_rat(target_rat);
                let srvcc = ho_type.is_vertical() && rng.random::<f64>() < voice_prob;

                let (failed, cause, duration, msg_count) = run_handover(
                    world,
                    &failure_model,
                    &durations,
                    cfg,
                    old,
                    target_sector,
                    ho_type,
                    srvcc,
                    attrs.device_type,
                    attrs.manufacturer,
                    attrs.srvcc_subscribed,
                    dow,
                    slot,
                    day,
                    &mut rng,
                    log,
                    out,
                );
                let timestamp_ms = day as u64 * DAY_MS as u64 + t as u64;
                // telco-lint: allow(alloc): amortized append into caller-reserved output, pinned by tests/zero_alloc.rs
                out.dataset.push(HoRecord {
                    timestamp_ms,
                    ue,
                    source_sector: old,
                    target_sector,
                    source_rat: world.topology.sector(old).rat,
                    target_rat,
                    outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                    cause,
                    duration_ms: duration as f32,
                    srvcc,
                    messages: msg_count,
                });
                hos += 1;
                hofs += u32::from(failed);
                messages += msg_count as u32;

                // Manufacturer chattiness: extra handover signaling
                // (ping-pong re-attempts) for factor > 1 implementations.
                let mut extra = factor - 1.0;
                while extra > 0.0 && rng.random::<f64>() < extra.min(1.0) {
                    let (xfailed, xcause, xduration, xmsgs) = run_handover(
                        world,
                        &failure_model,
                        &durations,
                        cfg,
                        target_sector,
                        old,
                        HoType::Intra4g5g,
                        false,
                        attrs.device_type,
                        attrs.manufacturer,
                        attrs.srvcc_subscribed,
                        dow,
                        slot,
                        day,
                        &mut rng,
                        log,
                        out,
                    );
                    // telco-lint: allow(alloc): amortized append into caller-reserved output, pinned by tests/zero_alloc.rs
                    out.dataset.push(HoRecord {
                        // Clamp inside the day (a crossing at 23:59:59.999
                        // must not bleed into the next study day).
                        timestamp_ms: (timestamp_ms + 1).min((day as u64 + 1) * DAY_MS as u64 - 1),
                        ue,
                        source_sector: target_sector,
                        target_sector: old,
                        source_rat: world.topology.sector(target_sector).rat,
                        target_rat: world.topology.sector(old).rat,
                        outcome: if xfailed { HoOutcome::Failure } else { HoOutcome::Success },
                        cause: xcause,
                        duration_ms: xduration as f32,
                        srvcc: false,
                        messages: xmsgs,
                    });
                    hos += 1;
                    hofs += u32::from(xfailed);
                    messages += xmsgs as u32;
                    extra -= 1.0;
                }

                if ho_type.is_vertical() && !failed {
                    // Camp on the legacy RAT for a while; the EPC loses
                    // sight of the UE until it returns.
                    let dwell = cfg.coverage.fallback_dwell_ms * rng.random_range(0.4..1.8);
                    let tgt_site = world.topology.site(world.topology.sector(target_sector).site);
                    mobility.record(target_sector.0, tgt_site.position, dwell);
                    legacy_ms += dwell;
                    suppressed_until = t.saturating_add(dwell as u32).min(DAY_MS - 1);
                    camp = None;
                } else {
                    // A failed vertical attempt leaves the UE on 4G; either
                    // way the EPC anchor is the new geometric face.
                    camp = Some((serving, serving));
                    mobility.record(serving.0, site.position, dt);
                }
            }
        }
        prev_t = t;
        prev_slot = slot;
    }

    // Ledger: EPC time minus legacy camping, traffic proportional to time
    // with legacy throughput discounted.
    let legacy_ms = legacy_ms.min(attach_ms * 0.8);
    let legacy_frac = legacy_ms / attach_ms.max(1.0);
    let legacy_rat =
        if attrs.rat_support == RatSupport::UpTo5g || attrs.rat_support == RatSupport::UpTo4g {
            Rat::G3
        } else {
            Rat::G2
        };
    out.ledger.add(legacy_rat, legacy_ms, ul * legacy_frac * 0.3, dl * legacy_frac * 0.3);
    out.ledger.add(
        Rat::G4,
        (attach_ms - legacy_ms).max(0.0),
        ul * (1.0 - legacy_frac * 0.3),
        dl * (1.0 - legacy_frac * 0.3),
    );

    // telco-lint: allow(alloc): amortized append into caller-reserved output, pinned by tests/zero_alloc.rs
    out.mobility.push(UeDayMobility {
        ue,
        day,
        sectors: mobility.distinct_sectors_into(sector_ids).min(u16::MAX as usize) as u16,
        gyration_km: mobility.gyration_km() as f32,
        hos: hos.min(u16::MAX as u32) as u16,
        hofs: hofs.min(u16::MAX as u32) as u16,
        messages,
    });
}
// telco-lint: deny-alloc(end)

/// Run one handover through the failure model and the state machine;
/// returns `(failed, cause, duration_ms, messages)`. `log` is the reused
/// message-log buffer (overwritten each run).
#[allow(clippy::too_many_arguments)]
fn run_handover(
    world: &World,
    failure_model: &FailureModel,
    durations: &DurationModel,
    _cfg: &SimConfig,
    source: SectorId,
    target: SectorId,
    ho_type: HoType,
    srvcc: bool,
    device_type: DeviceType,
    manufacturer: telco_devices::types::Manufacturer,
    srvcc_subscribed: bool,
    dow: DayOfWeek,
    slot: usize,
    day: u32,
    rng: &mut ChaCha8Rng,
    log: &mut Vec<Envelope>,
    out: &mut SimOutput,
) -> (bool, Option<CauseCode>, f64, u16) {
    let source_pc = world.topology.sector_postcode(source);
    let area = world.area_type(source_pc);
    let target_pc = world.topology.sector_postcode(target);
    let target_area = world.area_type(target_pc);
    let load = load_ratio(&world.schedule, target, target_area, dow, slot, day);
    let ctx = HoContext {
        ho_type,
        area,
        vendor: world.topology.sector(source).vendor,
        device_type,
        manufacturer,
        load_ratio: load,
        srvcc,
        srvcc_subscribed,
    };
    let failed = failure_model.roll_failure(&ctx, rng);
    let (cause, duration) = if failed {
        let cause = failure_model.sample_cause(&ctx, rng);
        let duration = durations.sample_failure(cause.as_principal(), rng);
        (Some(cause), duration)
    } else {
        (None, durations.sample_success(ho_type, rng))
    };
    execute_into(ho_type, srvcc, cause, duration, log);
    out.core.observe_run(log);
    (failed, cause, duration, log.len() as u16)
}

/// Legacy-only UE: contributes attach time, traffic, and mobility metrics
/// on its ceiling RAT, but no EPC handover records (its mobility lives in
/// the SGSN/MSC, outside the paper's HO analysis scope — §8).
#[allow(clippy::too_many_arguments)]
fn simulate_legacy_ue_day(
    world: &World,
    ue: UeId,
    day: u32,
    support: &RatSupport,
    attach_ms: f64,
    ul: f64,
    dl: f64,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
    out: &mut SimOutput,
) {
    let rat = if *support == RatSupport::UpTo2g { Rat::G2 } else { Rat::G3 };
    out.ledger.add(rat, attach_ms, ul, dl);

    let SimScratch { trajectory, samples, mobility, sector_ids, .. } = scratch;
    mobility.clear();
    sample_points_into(trajectory, cfg.step_km.max(0.5), samples);
    let mut prev_t = 0u32;
    let mut serving_cache = ServingCache::new(rat);
    for &(t, pos) in samples.iter() {
        if let Some(s) = serving_cache.lookup(world, &pos) {
            let site = world.topology.site(world.topology.sector(s).site);
            mobility.record(s.0, site.position, (t - prev_t).max(1) as f64);
        }
        prev_t = t;
    }
    out.mobility.push(UeDayMobility {
        ue,
        day,
        sectors: mobility.distinct_sectors_into(sector_ids).min(u16::MAX as usize) as u16,
        gyration_km: mobility.gyration_km() as f32,
        hos: 0,
        hofs: 0,
        messages: 0,
    });
}

/// A random co-sited same-RAT sector other than `attached` (a different
/// carrier or face), for intra-site load-balancing handovers. Candidates
/// come from the world's precomputed sibling table; the uniform pick
/// consumes one RNG draw, exactly as the on-the-fly filter used to.
fn sibling_sector(world: &World, attached: SectorId, rng: &mut ChaCha8Rng) -> Option<SectorId> {
    let candidates = world.siblings.get(attached);
    if candidates.is_empty() {
        None
    } else {
        candidates.get(rng.random_range(0..candidates.len())).copied()
    }
}

/// Apply the energy-saving redirect to a geometrically serving sector:
/// an off booster hands its traffic to an active co-sited 4G face when
/// one exists.
fn energy_redirect(world: &World, sid: SectorId, day: u32, slot: usize) -> SectorId {
    let sector = world.topology.sector(sid);
    if world.energy.is_active(sector, day, slot) {
        return sid;
    }
    // Redirect to an active co-sited 4G face (precomputed candidate list).
    world
        .cosited_4g
        .get(sid)
        .iter()
        .copied()
        .find(|&s| world.energy.is_active(world.topology.sector(s), day, slot))
        .unwrap_or(sid)
}

/// Memoizes the geometric serving-sector query on exact position repeats.
///
/// Dwell samples re-emit the identical position once per half-hour slot,
/// so a one-entry cache removes the grid search for every stationary
/// stretch of a trajectory — the common case for most of the device mix —
/// while staying a pure function of position (bit-identical results).
struct ServingCache {
    rat: Rat,
    last: Option<(KmPoint, Option<SectorId>)>,
}

impl ServingCache {
    fn new(rat: Rat) -> Self {
        ServingCache { rat, last: None }
    }

    fn lookup(&mut self, world: &World, pos: &KmPoint) -> Option<SectorId> {
        if let Some((p, hit)) = self.last {
            if p == *pos {
                return hit;
            }
        }
        let miss = world.topology.serving_sector(pos, self.rat);
        self.last = Some((*pos, miss));
        miss
    }
}

/// Sample a trajectory into `(ms-of-day, position)` points: dwell
/// endpoints plus `step_km`-spaced points along moving segments, ending
/// with the end-of-day position.
pub fn sample_points(trajectory: &DayTrajectory, step_km: f64) -> Vec<(u32, KmPoint)> {
    let mut out = Vec::new();
    sample_points_into(trajectory, step_km, &mut out);
    out
}

/// [`sample_points`] into a reused buffer (cleared first), so walking many
/// UE-days does not allocate once the buffer reaches its working size.
pub fn sample_points_into(trajectory: &DayTrajectory, step_km: f64, out: &mut Vec<(u32, KmPoint)>) {
    // telco-lint: allow(panic): API-misuse guard at the entry boundary; every caller passes a fixed positive config value
    assert!(step_km > 0.0, "step must be positive");
    let wps = trajectory.waypoints();
    out.clear();
    let (Some(first), Some(last)) = (wps.first(), wps.last()) else {
        return; // an empty trajectory samples to nothing
    };
    out.reserve(wps.len() * 4);
    out.push((first.time_ms, first.pos));
    for (a, b) in wps.iter().zip(wps.iter().skip(1)) {
        let dist = a.pos.distance_km(&b.pos);
        if dist < 1e-9 {
            // Dwell: sample each 30-minute slot boundary so time-dependent
            // behaviour (carrier changes, energy policy) gets its chances.
            let mut t = (a.time_ms / 1_800_000 + 1) * 1_800_000;
            while t < b.time_ms {
                out.push((t, a.pos));
                t += 1_800_000;
            }
            out.push((b.time_ms, b.pos));
            continue;
        }
        let n = (dist / step_km).ceil() as u32;
        for k in 1..=n {
            let f = k as f64 / n as f64;
            let t = a.time_ms + ((b.time_ms - a.time_ms) as f64 * f) as u32;
            let p =
                KmPoint::new(a.pos.x + (b.pos.x - a.pos.x) * f, a.pos.y + (b.pos.y - a.pos.y) * f);
            out.push((t, p));
        }
    }
    if last.time_ms < DAY_MS - 1 {
        let mut t = (last.time_ms / 1_800_000 + 1) * 1_800_000;
        while t < DAY_MS - 1 {
            out.push((t, last.pos));
            t += 1_800_000;
        }
        out.push((DAY_MS - 1, last.pos));
    }
    // Deduplicate identical timestamps, keeping the later position.
    out.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 = b.1;
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_mobility::trajectory::Waypoint;

    #[test]
    fn sample_points_cover_segments() {
        let t = DayTrajectory::from_waypoints(vec![
            Waypoint { time_ms: 0, pos: KmPoint::new(0.0, 0.0) },
            Waypoint { time_ms: 3_600_000, pos: KmPoint::new(0.0, 0.0) },
            Waypoint { time_ms: 7_200_000, pos: KmPoint::new(3.0, 0.0) },
        ]);
        let pts = sample_points(&t, 0.5);
        // Dwell endpoint + 6 movement steps + end-of-day marker.
        assert!(pts.len() >= 8, "got {} points", pts.len());
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(pts.last().unwrap().0, DAY_MS - 1);
        // Spatial spacing honoured.
        for w in pts.windows(2) {
            assert!(w[0].1.distance_km(&w[1].1) <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn stationary_trajectory_samples_every_slot() {
        let t = DayTrajectory::stationary(KmPoint::new(5.0, 5.0));
        let pts = sample_points(&t, 0.25);
        // One point per 30-minute slot boundary plus the two endpoints.
        assert!((47..=49).contains(&pts.len()), "got {}", pts.len());
        assert!(pts.iter().all(|&(_, p)| p == KmPoint::new(5.0, 5.0)));
    }

    #[test]
    fn engine_produces_records_for_a_tiny_world() {
        let cfg = SimConfig::tiny();
        let world = World::build(&cfg);
        let mut out = SimOutput::new(cfg.n_days);
        let mut scratch = SimScratch::new();
        for ue in 0..world.n_ues() {
            simulate_ue_day(&world, &cfg, UeId(ue as u32), 0, &mut scratch, &mut out);
        }
        assert!(!out.dataset.is_empty(), "no handovers generated");
        assert_eq!(out.mobility.len(), world.n_ues());
        // The probe saw every run's messages.
        assert!(out.core.total_messages() > out.dataset.len() as u64 * 5);
        // Attach time was ledgered on several RATs.
        assert!(out.ledger.time_shares()[Rat::G4.index()] > 0.5);
    }

    #[test]
    fn engine_is_deterministic() {
        let cfg = SimConfig::tiny();
        let world = World::build(&cfg);
        let mut a = SimOutput::new(cfg.n_days);
        let mut b = SimOutput::new(cfg.n_days);
        // Distinct scratch instances (one warm, one fresh per call) must
        // not change the output.
        let mut scratch = SimScratch::new();
        for ue in 0..50 {
            simulate_ue_day(&world, &cfg, UeId(ue), 0, &mut scratch, &mut a);
            simulate_ue_day(&world, &cfg, UeId(ue), 0, &mut SimScratch::new(), &mut b);
        }
        assert_eq!(a.dataset.records(), b.dataset.records());
        assert_eq!(a.mobility, b.mobility);
    }

    #[test]
    fn legacy_ues_produce_no_epc_records() {
        let cfg = SimConfig::tiny();
        let world = World::build(&cfg);
        let mut out = SimOutput::new(cfg.n_days);
        let mut scratch = SimScratch::new();
        for ue in 0..world.n_ues() {
            let attrs = world.ue(UeId(ue as u32));
            if !attrs.rat_support.is_4g_capable() {
                simulate_ue_day(&world, &cfg, UeId(ue as u32), 0, &mut scratch, &mut out);
            }
        }
        assert!(out.dataset.is_empty(), "legacy UEs must not appear in the EPC trace");
        assert!(!out.mobility.is_empty(), "legacy UEs still have mobility rows");
        assert!(out.mobility.iter().all(|m| m.hos == 0));
    }
}
