// telco-lint: deny-panic
//! The work-stealing claim/drain/merge protocol, isolated from the
//! runner so it can be model-checked.
//!
//! The runner's concurrency reduces to three obligations:
//!
//! 1. **claim** — every work item in `0..n_items` is claimed by exactly
//!    one worker ([`StealCursor::claim`] drains a shared atomic counter);
//! 2. **drain** — a worker that sees the cursor exhausted stops, so no
//!    worker spins once the grid is empty;
//! 3. **merge** — the per-worker `(item, run)` vectors, concatenated and
//!    sorted by item index ([`collect_runs`]), recover the canonical
//!    day-major item order no matter which worker produced which item.
//!
//! Together these make the parallel runner's output a pure function of
//! the item grid — byte-identical across thread counts — which is the
//! determinism contract `telco-sim/tests/determinism.rs` checks end to
//! end. This module is the only place the runner touches an atomic, and
//! `tests/loom_steal.rs` verifies the three obligations under *every*
//! interleaving of the cursor's operations (build with
//! `RUSTFLAGS="--cfg loom"`).
//!
//! The cursor uses `Relaxed` ordering: claims are independent — workers
//! publish their results through the thread-join that ends the scope,
//! not through the counter — and read-modify-write operations on a
//! single location are totally ordered at any ordering, so `Relaxed`
//! already guarantees unique claims.

#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared cursor over the flattened `(day, chunk)` work-item grid.
/// Workers call [`StealCursor::claim`] until it returns `None`.
#[derive(Debug)]
pub struct StealCursor {
    next: AtomicUsize,
    n_items: usize,
}

impl StealCursor {
    /// A cursor over items `0..n_items`.
    pub fn new(n_items: usize) -> Self {
        StealCursor { next: AtomicUsize::new(0), n_items }
    }

    /// Claim the next unclaimed item, or `None` once the grid is
    /// drained. Each item in `0..n_items` is returned exactly once
    /// across all workers: the `fetch_add` read-modify-write gives every
    /// claimant a distinct index. (Claims past exhaustion keep
    /// incrementing the counter; with one claim per worker thread after
    /// exhaustion, wraparound would need ~2^64 workers.)
    pub fn claim(&self) -> Option<usize> {
        // ordering: Relaxed suffices — single-location RMW is totally ordered, results publish via thread join
        let item = self.next.fetch_add(1, Ordering::Relaxed);
        (item < self.n_items).then_some(item)
    }

    /// Total items in the grid.
    pub fn n_items(&self) -> usize {
        self.n_items
    }
}

/// Recover the canonical item order from per-worker production: flatten
/// the workers' `(item, run)` vectors and sort by item index. Claim
/// uniqueness makes the item keys distinct, so the unstable sort is
/// deterministic and the result is independent of which worker produced
/// which item and of production order.
pub fn collect_runs<R>(per_worker: Vec<Vec<(usize, R)>>) -> Vec<(usize, R)> {
    let mut runs: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    runs.sort_unstable_by_key(|&(item, _)| item);
    runs
}
