//! # telco-sim
//!
//! The deterministic, event-driven simulation engine that generates the
//! paper's datasets: per-UE-day trajectories walked against the radio
//! topology, every connected-mode sector crossing executed through the
//! Fig. 1 handover state machine with calibrated vertical-fallback,
//! failure, and duration models, observed by the MME/MSC/SGSN/SGW probe.
//!
//! ## Example
//!
//! ```
//! use telco_sim::{run_study, SimConfig};
//!
//! let data = run_study(SimConfig::tiny());
//! assert!(!data.trace.is_empty());
//! // Same config, same bits: runs are pure functions of the config.
//! let again = run_study(SimConfig::tiny());
//! assert_eq!(
//!     data.trace.as_dataset().unwrap().records(),
//!     again.trace.as_dataset().unwrap().records(),
//! );
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod load;
pub mod output;
pub mod runner;
pub mod steal;
pub mod world;

pub use config::{CoverageConfig, SessionConfig, SimConfig};
pub use engine::{sample_points, sample_points_into, simulate_ue_day, SimScratch};
pub use output::{RatLedger, SimOutput, UeDayMobility};
pub use runner::{
    run_on_world, run_on_world_chunked, run_on_world_spilled, run_on_world_spilled_chunked,
    run_on_world_spilled_with_version, run_shard, run_study, run_study_spilled,
    run_study_spilled_with_version, RunnerMode, RunnerStats, StudyData, DEFAULT_UE_CHUNK,
    MERGE_FAN_IN, SEQUENTIAL_UE_THRESHOLD,
};
pub use steal::{collect_runs, StealCursor};
pub use telco_trace::source::{SpilledTrace, TraceSource};
pub use world::{SectorLists, UeAttrs, World};
