//! Simulation configuration and presets.

use serde::{Deserialize, Serialize};

use telco_devices::catalog::CatalogConfig;
use telco_geo::country::CountryConfig;
use telco_signaling::duration::DurationModel;
use telco_signaling::failure::FailureConfig;
use telco_topology::deployment::TopologyConfig;

/// Knobs of the vertical-fallback (coverage) model.
///
/// A crossing falls back to a legacy RAT with probability
/// `base(area) × exp((r − 1) × r_sensitivity)` clamped to `[0, max_prob]`,
/// where `r` is the distance to the new serving site divided by the local
/// typical cell radius (half the inter-site spacing of the postcode). The
/// ratio makes the model scale-invariant: what matters is how deep into
/// the local cell edge the UE sits, not absolute distance. The area bases
/// encode the paper's urban/rural asymmetry (capital districts are
/// ≥99.9% intra; the least-dense districts average 26.5% →3G, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageConfig {
    /// Fallback base probability at `r = 1` for urban crossings.
    pub urban_base: f64,
    /// Fallback base probability at `r = 1` for rural crossings.
    pub rural_base: f64,
    /// Exponential sensitivity to the cell-edge depth ratio.
    pub r_sensitivity: f64,
    /// Population density (residents/km²) at which the density factor is
    /// 1; denser districts fall back less (capital districts are ≥99.9%
    /// intra while remote ones reach 58% →3G — Fig. 9).
    pub density_ref: f64,
    /// Exponent of the density factor `(density_ref / ρ)^exponent`.
    pub density_exponent: f64,
    /// Upper clamp on the fallback probability.
    pub max_prob: f64,
    /// Probability that a fallback targets 2G instead of 3G. The paper
    /// sees ≈0.001% of HOs ending on 2G; at simulation scale (tens of
    /// daily HOs per sector, not thousands) that share is upscaled so
    /// →2G stays statistically observable, while remaining orders of
    /// magnitude rarer than →3G.
    pub two_g_share: f64,
    /// Mean dwell on the legacy RAT after a fallback, ms (during which the
    /// UE is invisible to the EPC).
    pub fallback_dwell_ms: f64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            urban_base: 0.26,
            rural_base: 0.046,
            r_sensitivity: 1.2,
            density_ref: 60.0,
            density_exponent: 0.7,
            max_prob: 0.85,
            two_g_share: 0.005,
            fallback_dwell_ms: 300_000.0,
        }
    }
}

/// Connected-mode behaviour per device type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Probability that a sector crossing happens in connected mode and is
    /// therefore recorded as a handover (idle crossings are cell
    /// reselections, which the paper excludes — §2 footnote 4).
    pub smartphone_duty: f64,
    /// Same for M2M/IoT devices.
    pub m2m_duty: f64,
    /// Same for feature phones.
    pub feature_duty: f64,
    /// Probability that a vertical handover carries an active voice call
    /// (SRVCC) for smartphones.
    pub smartphone_voice: f64,
    /// SRVCC probability for feature phones (voice-centric devices).
    pub feature_voice: f64,
    /// Fraction of UEs whose subscription includes SRVCC.
    pub srvcc_subscription_rate: f64,
    /// Mean daily attach hours per device type (smartphone, M2M, feature).
    pub attach_hours: [f64; 3],
    /// Per-30-minute-slot probability of an intra-site carrier-change
    /// handover while camping, per device type (smartphone, M2M, feature).
    /// Load-balancing across a site's frequency layers is what lifts
    /// smartphones to the paper's 22 visited sectors/day median while
    /// static M2M devices stay at 1 (Fig. 10).
    pub carrier_change_per_slot: [f64; 3],
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            smartphone_duty: 0.82,
            m2m_duty: 0.55,
            feature_duty: 0.60,
            smartphone_voice: 0.08,
            feature_voice: 0.45,
            srvcc_subscription_rate: 0.93,
            attach_hours: [16.0, 4.5, 7.0],
            carrier_change_per_slot: [0.90, 0.02, 0.18],
        }
    }
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; the whole run is a pure function of the config.
    pub seed: u64,
    /// Number of UEs simulated.
    pub n_ues: usize,
    /// Number of study days (the paper observes 28, starting Monday
    /// 2024-01-29).
    pub n_days: u32,
    /// Spatial sampling step while walking trajectories, km.
    pub step_km: f64,
    /// Worker threads for the parallel runner (0 = available parallelism).
    pub threads: usize,
    /// Country generation.
    pub country: CountryConfig,
    /// Topology generation.
    pub topology: TopologyConfig,
    /// Device catalog generation.
    pub catalog: CatalogConfig,
    /// Failure injection.
    pub failure: FailureConfig,
    /// Duration models.
    pub durations: DurationModel,
    /// Coverage / vertical-fallback model.
    pub coverage: CoverageConfig,
    /// Connected-mode behaviour.
    pub session: SessionConfig,
}

impl SimConfig {
    /// Minimal configuration for unit/integration tests (runs in well
    /// under a second).
    pub fn tiny() -> Self {
        SimConfig {
            seed: 0x51a1,
            n_ues: 300,
            n_days: 2,
            step_km: 0.3,
            threads: 1,
            country: CountryConfig::tiny(),
            topology: TopologyConfig::tiny(),
            catalog: CatalogConfig::default(),
            failure: FailureConfig::default(),
            durations: DurationModel::default(),
            coverage: CoverageConfig::default(),
            session: SessionConfig::default(),
        }
    }

    /// A small but statistically meaningful run (seconds).
    pub fn small() -> Self {
        SimConfig {
            n_ues: 3_000,
            n_days: 7,
            threads: 0,
            country: CountryConfig::default(),
            topology: TopologyConfig::default(),
            ..Self::tiny()
        }
    }

    /// Between [`SimConfig::small`] and the full study: enough records
    /// (~1.1M) that the bench matrix's per-thread scaling curves measure
    /// steady-state throughput rather than startup, while still finishing
    /// in tens of seconds single-threaded.
    pub fn medium() -> Self {
        SimConfig { n_ues: 8_000, n_days: 14, ..Self::small() }
    }

    /// The default full study: the scaled-down analogue of the paper's
    /// 4-week countrywide capture (Table 1). Scale factor vs the paper:
    /// ~10k UEs instead of ~40M (absolute counts scale linearly; all
    /// shares/medians/coefficients are scale-free).
    pub fn default_study() -> Self {
        SimConfig { n_ues: 12_000, n_days: 28, ..Self::small() }
    }

    /// Per-UE-per-day derived RNG seed: stable regardless of thread count
    /// or execution order.
    pub fn ue_day_seed(&self, ue: u32, day: u32) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((ue as u64) << 32 | day as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::default_study()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sensibly() {
        let tiny = SimConfig::tiny();
        let small = SimConfig::small();
        let medium = SimConfig::medium();
        let study = SimConfig::default_study();
        assert!(tiny.n_ues < small.n_ues && small.n_ues < medium.n_ues);
        assert!(medium.n_ues <= study.n_ues && medium.n_days < study.n_days);
        assert_eq!(study.n_days, 28);
    }

    #[test]
    fn ue_day_seeds_are_distinct() {
        let cfg = SimConfig::tiny();
        let mut seen = std::collections::HashSet::new();
        for ue in 0..100 {
            for day in 0..28 {
                assert!(seen.insert(cfg.ue_day_seed(ue, day)), "seed collision");
            }
        }
    }

    #[test]
    fn ue_day_seed_depends_on_master_seed() {
        let a = SimConfig::tiny();
        let mut b = SimConfig::tiny();
        b.seed = 1;
        assert_ne!(a.ue_day_seed(3, 4), b.ue_day_seed(3, 4));
    }

    #[test]
    fn default_session_probabilities_valid() {
        let s = SessionConfig::default();
        for p in [
            s.smartphone_duty,
            s.m2m_duty,
            s.feature_duty,
            s.smartphone_voice,
            s.feature_voice,
            s.srvcc_subscription_rate,
        ] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(s.attach_hours.iter().all(|&h| h > 0.0 && h <= 24.0));
    }
}
