//! World construction: everything static a simulation run needs.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use telco_devices::catalog::GsmaCatalog;
use telco_devices::population::{DevicePopulation, UeId};
use telco_devices::types::{DeviceType, Manufacturer, RatSupport};
use telco_geo::census::CensusTable;
use telco_geo::coords::KmPoint;
use telco_geo::country::Country;
use telco_geo::postcode::{AreaType, PostcodeId};
use telco_mobility::assign::{assign_home_postcodes, home_point, work_point};
use telco_mobility::profile::MobilityProfile;
use telco_mobility::schedule::WeeklySchedule;
use telco_topology::deployment::Topology;
use telco_topology::elements::SectorId;
use telco_topology::energy::EnergySavingPolicy;
use telco_topology::rat::Rat;

use crate::config::SimConfig;

/// Static per-UE attributes resolved at world-building time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeAttrs {
    /// Home postcode (census-population-weighted).
    pub home_postcode: PostcodeId,
    /// Concrete home anchor on the km plane.
    pub home: KmPoint,
    /// Work anchor (used by commuter profiles on weekdays).
    pub work: KmPoint,
    /// Mobility profile.
    pub profile: MobilityProfile,
    /// Whether the subscription includes SRVCC.
    pub srvcc_subscribed: bool,
    /// Device type (cached from the catalog).
    pub device_type: DeviceType,
    /// Manufacturer (cached from the catalog).
    pub manufacturer: Manufacturer,
    /// RAT support (cached from the catalog).
    pub rat_support: RatSupport,
    /// Daily attach hours (drawn around the device-type mean).
    pub attach_hours: f32,
}

/// Per-sector neighbour lists in compressed (CSR) layout: one flat data
/// vector plus per-sector offsets. Built once at world-construction time
/// so the per-sample hot path never filters `site.sectors` or allocates
/// candidate vectors.
#[derive(Debug, Clone, Default)]
pub struct SectorLists {
    offsets: Vec<u32>,
    data: Vec<SectorId>,
}

impl SectorLists {
    /// Build a list per sector (in sector-id order) from a predicate over
    /// the sector's co-sited peers, preserving `site.sectors` order.
    fn build(topology: &Topology, keep: impl Fn(SectorId, SectorId) -> bool) -> Self {
        let n = topology.sectors().len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        offsets.push(0u32);
        for id in 0..n {
            let sid = SectorId(id as u32);
            let site = topology.site(topology.sector(sid).site);
            data.extend(site.sectors.iter().copied().filter(|&peer| keep(sid, peer)));
            offsets.push(data.len() as u32);
        }
        SectorLists { offsets, data }
    }

    /// The precomputed list for a sector.
    pub fn get(&self, sector: SectorId) -> &[SectorId] {
        let i = sector.0 as usize;
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The immutable world shared by all simulation shards.
#[derive(Debug, Clone)]
pub struct World {
    /// The synthetic country.
    pub country: Country,
    /// The census office's published view.
    pub census: CensusTable,
    /// The GSMA-style device catalog.
    pub catalog: GsmaCatalog,
    /// The sampled UE roster (identities).
    pub population: DevicePopulation,
    /// The radio network.
    pub topology: Topology,
    /// The energy-saving policy.
    pub energy: EnergySavingPolicy,
    /// The weekly activity schedule.
    pub schedule: WeeklySchedule,
    /// Per-UE static attributes, indexed by `UeId.0`.
    pub ues: Vec<UeAttrs>,
    /// Typical cell radius per postcode (half the local inter-site
    /// spacing), km — the denominator of the coverage model's edge-depth
    /// ratio. Indexed by `PostcodeId.0`.
    pub cell_radius_km: Vec<f64>,
    /// Per-sector co-sited same-RAT sectors (other carriers/faces of the
    /// site), excluding the sector itself: the candidate pool for
    /// intra-site load-balancing handovers.
    pub siblings: SectorLists,
    /// Per-sector co-sited 4G sectors (including the sector itself when it
    /// is 4G): the redirect pool when the energy policy parks a booster.
    pub cosited_4g: SectorLists,
}

impl World {
    /// Build the world from a configuration (deterministic).
    pub fn build(config: &SimConfig) -> Self {
        let country = Country::generate(config.country.clone());
        let census = CensusTable::publish(&country);
        let catalog = GsmaCatalog::generate(config.catalog);
        let population = DevicePopulation::sample(&catalog, config.n_ues, config.seed ^ 0xDEE5);
        let topology = Topology::generate(&country, config.topology.clone());

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x40E5);
        let homes = assign_home_postcodes(&country, config.n_ues, &mut rng);
        let ues = (0..config.n_ues)
            .map(|i| {
                let model = catalog.model(population.devices()[i].model as usize);
                let home_pc = homes[i];
                let home = home_point(&country, home_pc, &mut rng);
                let work = work_point(&country, home_pc, home, &mut rng);
                let profile = MobilityProfile::sample(model.device_type, &mut rng);
                // 2G-only modules (meters, trackers) hold long attach
                // sessions, balancing the 2G/3G time shares at ≈8.9% each
                // (Fig. 3b).
                let legacy_boost = if model.rat_support == RatSupport::UpTo2g { 1.6 } else { 1.0 };
                let mean_h = config.session.attach_hours[model.device_type.index()] * legacy_boost;
                UeAttrs {
                    home_postcode: home_pc,
                    home,
                    work,
                    profile,
                    srvcc_subscribed: rng.random::<f64>() < config.session.srvcc_subscription_rate,
                    device_type: model.device_type,
                    manufacturer: model.manufacturer,
                    rat_support: model.rat_support,
                    attach_hours: (mean_h * rng.random_range(0.6f64..1.4)).min(24.0) as f32,
                }
            })
            .collect();

        // Typical cell radius per postcode: half the mean inter-site
        // spacing, assuming sites tile the postcode area.
        let mut site_counts = vec![0usize; country.postcodes().len()];
        for site in topology.sites() {
            site_counts[site.postcode.0 as usize] += 1;
        }
        let cell_radius_km = country
            .postcodes()
            .iter()
            .map(|pc| {
                let n = site_counts[pc.id.0 as usize].max(1) as f64;
                0.5 * (pc.area_km2 / n).sqrt()
            })
            .collect();

        let siblings = SectorLists::build(&topology, |sid, peer| {
            peer != sid && topology.sector(peer).rat == topology.sector(sid).rat
        });
        let cosited_4g =
            SectorLists::build(&topology, |_, peer| topology.sector(peer).rat == Rat::G4);

        World {
            country,
            census,
            catalog,
            population,
            topology,
            energy: EnergySavingPolicy::default(),
            schedule: WeeklySchedule::default(),
            ues,
            cell_radius_km,
            siblings,
            cosited_4g,
        }
    }

    /// Typical cell radius of a postcode, km.
    pub fn cell_radius(&self, postcode: PostcodeId) -> f64 {
        self.cell_radius_km[postcode.0 as usize]
    }

    /// Attributes of a UE.
    pub fn ue(&self, ue: UeId) -> &UeAttrs {
        &self.ues[ue.0 as usize]
    }

    /// Urban/rural classification of a postcode.
    pub fn area_type(&self, postcode: PostcodeId) -> AreaType {
        self.country.postcode(postcode).area_type
    }

    /// Number of UEs.
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_devices::catalog::shares;

    #[test]
    fn build_is_deterministic() {
        let cfg = SimConfig::tiny();
        let a = World::build(&cfg);
        let b = World::build(&cfg);
        assert_eq!(a.ues, b.ues);
    }

    #[test]
    fn ue_attrs_consistent_with_catalog() {
        let cfg = SimConfig::tiny();
        let w = World::build(&cfg);
        for (i, attrs) in w.ues.iter().enumerate() {
            let ue = UeId(i as u32);
            assert_eq!(w.population.device_type(&w.catalog, ue), attrs.device_type);
            assert_eq!(w.population.manufacturer(&w.catalog, ue), attrs.manufacturer);
            assert_eq!(w.population.rat_support(&w.catalog, ue), attrs.rat_support);
            assert!(w.country.bounds.contains(&attrs.home));
            assert!(w.country.bounds.contains(&attrs.work));
            assert!(attrs.attach_hours > 0.0 && attrs.attach_hours <= 24.0);
        }
    }

    #[test]
    fn device_type_mix_roughly_matches() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 5_000;
        let w = World::build(&cfg);
        for &(ty, share) in &shares::DEVICE_TYPE {
            let got =
                w.ues.iter().filter(|u| u.device_type == ty).count() as f64 / w.ues.len() as f64;
            assert!((got - share).abs() < 0.03, "{ty}: {got} vs {share}");
        }
    }

    #[test]
    fn most_ues_have_srvcc() {
        let cfg = SimConfig::tiny();
        let w = World::build(&cfg);
        let frac = w.ues.iter().filter(|u| u.srvcc_subscribed).count() as f64 / w.ues.len() as f64;
        assert!((frac - 0.93).abs() < 0.05, "SRVCC subscription rate {frac}");
    }
}
