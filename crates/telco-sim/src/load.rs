//! Sector load model.
//!
//! Cause #4 ("load on target sector is too high") happens mainly during
//! peak hours in dense urban areas (§6.2). Load is modelled as demand
//! relative to sector capacity: the diurnal activity curve scaled by the
//! area's density class, with deterministic per-sector jitter so hot spots
//! exist at every hour.

use telco_geo::postcode::AreaType;
use telco_mobility::schedule::{DayOfWeek, WeeklySchedule};
use telco_topology::elements::SectorId;

/// Demand-to-capacity ratio for a sector in a 30-minute slot.
///
/// Urban sectors ride close to capacity at the peaks (ratios above the
/// failure model's Cause-#4 knee); rural sectors rarely exceed ~0.7.
pub fn load_ratio(
    schedule: &WeeklySchedule,
    sector: SectorId,
    area: AreaType,
    day: DayOfWeek,
    slot: usize,
    study_day: u32,
) -> f64 {
    let intensity = schedule.intensity(day, slot);
    let base = match area {
        AreaType::Urban => 1.08,
        AreaType::Rural => 0.62,
    };
    // Deterministic jitter per (sector, day): ±25%.
    let jitter = 0.75 + 0.5 * unit_hash(sector, study_day);
    intensity * base * jitter
}

/// Deterministic hash of `(sector, day)` to the unit interval.
fn unit_hash(sector: SectorId, day: u32) -> f64 {
    let mut z = ((sector.0 as u64) << 32) ^ (day as u64) ^ 0x5851_f42d_4c95_7f2d;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urban_peak_exceeds_cause4_knee_somewhere() {
        let s = WeeklySchedule::default();
        let peak_slot = s.peak_slot(DayOfWeek::Monday);
        let hot = (0..200)
            .map(|i| load_ratio(&s, SectorId(i), AreaType::Urban, DayOfWeek::Monday, peak_slot, 0))
            .filter(|&l| l > 0.85)
            .count();
        assert!(hot > 100, "most urban sectors must be hot at the peak: {hot}/200");
    }

    #[test]
    fn rural_stays_cooler() {
        let s = WeeklySchedule::default();
        let peak_slot = s.peak_slot(DayOfWeek::Monday);
        let hot = (0..200)
            .map(|i| load_ratio(&s, SectorId(i), AreaType::Rural, DayOfWeek::Monday, peak_slot, 0))
            .filter(|&l| l > 0.85)
            .count();
        assert!(hot < 20, "rural sectors should rarely be hot: {hot}/200");
    }

    #[test]
    fn night_is_quiet_everywhere() {
        let s = WeeklySchedule::default();
        for i in 0..100 {
            let l = load_ratio(&s, SectorId(i), AreaType::Urban, DayOfWeek::Tuesday, 5, 0);
            assert!(l < 0.5, "night load {l}");
        }
    }

    #[test]
    fn deterministic() {
        let s = WeeklySchedule::default();
        let a = load_ratio(&s, SectorId(7), AreaType::Urban, DayOfWeek::Friday, 16, 3);
        let b = load_ratio(&s, SectorId(7), AreaType::Urban, DayOfWeek::Friday, 16, 3);
        assert_eq!(a, b);
    }
}
