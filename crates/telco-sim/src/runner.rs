//! The study runner: orchestrates a full multi-day, multi-UE simulation,
//! optionally in parallel.
//!
//! Parallelism shards the UE population across worker threads with
//! `crossbeam::scope`; every (UE, day) pair derives its own RNG stream
//! from the master seed, so the output is bit-identical regardless of the
//! thread count.

use crossbeam::thread;
use parking_lot::Mutex;

use telco_devices::population::UeId;

use crate::config::SimConfig;
use crate::engine::simulate_ue_day;
use crate::output::SimOutput;
use crate::world::World;

/// A completed study: the world it ran against plus everything it
/// produced.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// The configuration the study ran with.
    pub config: SimConfig,
    /// The immutable world.
    pub world: World,
    /// The simulation outputs (trace, mobility, ledger, core counters).
    pub output: SimOutput,
}

/// Build the world and run the full study described by `config`.
pub fn run_study(config: SimConfig) -> StudyData {
    let world = World::build(&config);
    let output = run_on_world(&world, &config);
    StudyData { config, world, output }
}

/// Run the simulation over an already-built world.
pub fn run_on_world(world: &World, config: &SimConfig) -> SimOutput {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    };
    let n_ues = world.n_ues();
    if threads <= 1 || n_ues < 64 {
        let mut out = SimOutput::new(config.n_days);
        for day in 0..config.n_days {
            for ue in 0..n_ues {
                simulate_ue_day(world, config, UeId(ue as u32), day, &mut out);
            }
        }
        out.dataset.sort();
        return out;
    }

    // Shard by UE ranges; merge in deterministic shard order.
    let shard_size = n_ues.div_ceil(threads);
    let results: Mutex<Vec<(usize, SimOutput)>> = Mutex::new(Vec::with_capacity(threads));
    thread::scope(|s| {
        for (shard_idx, chunk_start) in (0..n_ues).step_by(shard_size).enumerate() {
            let results = &results;
            let chunk_end = (chunk_start + shard_size).min(n_ues);
            s.spawn(move |_| {
                let mut out = SimOutput::new(config.n_days);
                for day in 0..config.n_days {
                    for ue in chunk_start..chunk_end {
                        simulate_ue_day(world, config, UeId(ue as u32), day, &mut out);
                    }
                }
                results.lock().push((shard_idx, out));
            });
        }
    })
    .expect("simulation worker panicked");

    let mut shards = results.into_inner();
    shards.sort_by_key(|(idx, _)| *idx);
    let mut merged = SimOutput::new(config.n_days);
    for (_, shard) in shards {
        merged.merge(shard);
    }
    merged.dataset.sort();
    // Mobility rows in deterministic order too.
    merged.mobility.sort_by_key(|m| (m.day, m.ue.0));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_signaling::messages::HoType;

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        let world = World::build(&cfg);

        let mut seq_cfg = cfg.clone();
        seq_cfg.threads = 1;
        let seq = run_on_world(&world, &seq_cfg);

        let mut par_cfg = cfg.clone();
        par_cfg.threads = 4;
        let par = run_on_world(&world, &par_cfg);

        assert_eq!(seq.dataset.records(), par.dataset.records());
        assert_eq!(seq.mobility, par.mobility);
        // Ledger sums are merged in shard order; floating-point addition is
        // not associative, so compare to relative precision.
        for i in 0..4 {
            let (a, b) = (seq.ledger.attach_ms[i], par.ledger.attach_ms[i]);
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "attach[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn study_covers_all_days() {
        let data = run_study(SimConfig::tiny());
        let days: std::collections::HashSet<u32> =
            data.output.dataset.records().iter().map(|r| r.day()).collect();
        assert!(days.contains(&0));
        assert!(days.len() as u32 <= data.config.n_days);
        // Mobility rows exist for every (ue, day).
        assert_eq!(
            data.output.mobility.len(),
            data.config.n_ues * data.config.n_days as usize
        );
    }

    #[test]
    fn tiny_study_has_sane_ho_mix() {
        let data = run_study(SimConfig::tiny());
        let counts = data.output.dataset.counts_by_type();
        let total: u64 = counts.iter().sum();
        assert!(total > 100, "too few handovers: {total}");
        let intra = counts[HoType::Intra4g5g.index()] as f64 / total as f64;
        assert!(intra > 0.75, "intra share {intra} too low");
    }
}
