//! The study runner: orchestrates a full multi-day, multi-UE simulation,
//! optionally in parallel.
//!
//! Parallel runs use *work stealing over a shared cursor*: the `(day,
//! UE-chunk)` space is flattened into a single atomic counter that worker
//! threads drain with `fetch_add`, so a straggler chunk (a dense urban
//! commuter cohort, say) never idles the other workers the way static
//! per-thread UE ranges did. Every `(UE, day)` pair derives its own RNG
//! stream from the master seed, so execution order is irrelevant to the
//! output — only the merge order must be canonical. Each work item emits a
//! timestamp-sorted run tagged with its chunk index; runs are merged
//! day-major with a k-way heap merge whose ties break on run order, which
//! reproduces the sequential path's append-then-stable-sort byte for byte.

use std::path::{Path, PathBuf};

use crossbeam::thread;

use telco_devices::population::UeId;
use telco_trace::dataset::SignalingDataset;
use telco_trace::source::TraceSource;
use telco_trace::store::{merge_run_files, merge_run_files_to_path, TraceWriter, VERSION3};

use crate::config::SimConfig;
use crate::engine::{simulate_ue_day, SimScratch};
use crate::output::SimOutput;
use crate::steal::{collect_runs, StealCursor};
use crate::world::World;

/// Below this UE count the runner stays sequential: thread spawn and merge
/// overhead dwarfs the work itself. Benchmarks check
/// [`RunnerStats::mode`] so they never mistake this path for the parallel
/// one.
pub const SEQUENTIAL_UE_THRESHOLD: usize = 64;

/// Default UEs per work item. Small enough that the `(day, chunk)` grid
/// offers plenty of stealable items even for the tiny presets, large
/// enough that the per-item output setup/merge cost stays negligible.
pub const DEFAULT_UE_CHUNK: usize = 32;

/// Which scheduling path [`run_on_world`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunnerMode {
    /// Single-threaded day-major loop (threads ≤ 1 or a tiny population).
    #[default]
    Sequential,
    /// Work-stealing workers draining the shared `(day, chunk)` cursor.
    WorkStealing,
    /// Work-stealing workers spilling per-item sorted runs to disk as
    /// chunk files (columnar v3 by default), k-way merged from disk
    /// (out-of-core).
    Spilled,
    /// A fleet of worker *processes* each ran one manifest shard and the
    /// shard traces were merged out-of-core (the `telco-orchestrator`
    /// crate).
    Orchestrated,
}

/// Scheduling metadata of a finished run, recorded on
/// [`SimOutput::runner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerStats {
    /// The path that executed.
    pub mode: RunnerMode,
    /// Worker threads used (1 for the sequential path).
    pub threads: usize,
    /// UEs per work item (the whole population for the sequential path).
    pub chunk_ues: usize,
    /// Total work items drained.
    pub work_items: usize,
    /// UE-days simulated.
    pub ue_days: usize,
}

/// A completed study: the world it ran against plus everything it
/// produced. The handover trace lives behind [`StudyData::trace`] — in
/// memory for [`run_study`], on disk for [`run_study_spilled`] — and the
/// remaining side outputs (mobility ledger, RAT ledger, core counters)
/// stay on [`StudyData::output`].
#[derive(Debug, Clone)]
pub struct StudyData {
    /// The configuration the study ran with.
    pub config: SimConfig,
    /// The immutable world.
    pub world: World,
    /// The non-trace simulation outputs (mobility, ledger, core
    /// counters); its `dataset` is empty — the trace is in
    /// [`StudyData::trace`].
    pub output: SimOutput,
    /// The handover trace, in memory or spilled to disk.
    pub trace: TraceSource,
}

/// Build the world and run the full study described by `config`.
pub fn run_study(config: SimConfig) -> StudyData {
    let world = World::build(&config);
    let mut output = run_on_world(&world, &config);
    let dataset = std::mem::take(&mut output.dataset);
    StudyData { config, world, output, trace: TraceSource::in_memory(dataset) }
}

/// [`run_study`] in out-of-core mode: per-item runs spill to `spill_dir`
/// as columnar v3 chunk files and are k-way merged into one sealed v3
/// trace file there, which [`StudyData::trace`] then streams
/// chunk-by-chunk — the full trace is never materialized in memory.
/// Byte-identical to [`run_study`] (same canonical item-order merge);
/// `spill_dir` must exist and outlive the returned study.
pub fn run_study_spilled(config: SimConfig, spill_dir: &Path) -> std::io::Result<StudyData> {
    run_study_spilled_with_version(config, spill_dir, VERSION3)
}

/// [`run_study_spilled`] with an explicit trace-store `version` (2 or 3)
/// for the run files and the sealed study trace. Record streams are
/// identical across versions; only the bytes on disk differ. Used by the
/// determinism/golden suites and the bench matrix to compare codecs on
/// the same study.
pub fn run_study_spilled_with_version(
    config: SimConfig,
    spill_dir: &Path,
    version: u16,
) -> std::io::Result<StudyData> {
    let world = World::build(&config);
    let n_days = config.n_days;
    let (mut output, paths) = spill_runs(&world, &config, DEFAULT_UE_CHUNK, spill_dir, version)?;
    let out_path = spill_dir.join("study-trace.tlho");
    let records = merge_run_files_to_path(n_days, paths, spill_dir, MERGE_FAN_IN, &out_path)?;
    output.runner.mode = RunnerMode::Spilled;
    let trace = TraceSource::spilled(out_path, n_days, records);
    Ok(StudyData { config, world, output, trace })
}

/// Run the simulation over an already-built world.
pub fn run_on_world(world: &World, config: &SimConfig) -> SimOutput {
    run_on_world_chunked(world, config, DEFAULT_UE_CHUNK)
}

/// [`run_on_world`] with an explicit work-item granularity. The records
/// and mobility rows are byte-identical for every `chunk_ues` and thread
/// count; only the ledger's floating-point sums regroup (equal within
/// ~1e-12 relative — see the determinism-matrix test).
pub fn run_on_world_chunked(world: &World, config: &SimConfig, chunk_ues: usize) -> SimOutput {
    assert!(chunk_ues > 0, "chunk size must be positive");
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    };
    let n_ues = world.n_ues();
    let n_days = config.n_days;
    let ue_days = n_ues * n_days as usize;

    if threads <= 1 || n_ues < SEQUENTIAL_UE_THRESHOLD {
        let mut out = SimOutput::new(n_days);
        let mut scratch = SimScratch::new();
        for day in 0..n_days {
            for ue in 0..n_ues {
                simulate_ue_day(world, config, UeId(ue as u32), day, &mut scratch, &mut out);
            }
        }
        out.dataset.sort();
        out.runner = RunnerStats {
            mode: RunnerMode::Sequential,
            threads: 1,
            chunk_ues: n_ues.max(1),
            work_items: n_days as usize,
            ue_days,
        };
        return out;
    }

    // The flattened work-item space, day-major: item i covers day
    // i / chunks_per_day and UEs [chunk·chunk_ues, …) of chunk
    // i % chunks_per_day. Day-major order makes the canonical run order
    // equal to the sequential loop's insertion order.
    let chunks_per_day = n_ues.div_ceil(chunk_ues);
    let n_items = chunks_per_day * n_days as usize;
    let cursor = StealCursor::new(n_items);

    let per_worker: Vec<Vec<(usize, SimOutput)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move |_| {
                    let mut scratch = SimScratch::new();
                    let mut produced: Vec<(usize, SimOutput)> = Vec::new();
                    while let Some(item) = cursor.claim() {
                        let day = (item / chunks_per_day) as u32;
                        let chunk = item % chunks_per_day;
                        let lo = chunk * chunk_ues;
                        let hi = (lo + chunk_ues).min(n_ues);
                        let mut out = SimOutput::new(n_days);
                        for ue in lo..hi {
                            simulate_ue_day(
                                world,
                                config,
                                UeId(ue as u32),
                                day,
                                &mut scratch,
                                &mut out,
                            );
                        }
                        // Emit a sorted run; the stable sort keeps equal
                        // timestamps in UE order within the chunk.
                        out.dataset.sort();
                        produced.push((item, out));
                    }
                    produced
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("simulation worker panicked")).collect()
    })
    .expect("simulation scope panicked");

    // Canonical merge: runs ordered by item index (day-major, then chunk)
    // equal the sequential insertion order, so the tie-breaking k-way
    // merge reproduces the sequential stable sort exactly. Mobility rows
    // concatenate into (day, UE) order with no sort at all.
    let runs = collect_runs(per_worker);

    let mut merged = SimOutput::new(n_days);
    merged.mobility.reserve(ue_days);
    let mut datasets: Vec<SignalingDataset> = Vec::with_capacity(runs.len());
    for (_, run) in runs {
        datasets.push(run.dataset);
        merged.mobility.extend(run.mobility);
        merged.ledger.merge(&run.ledger);
        merged.core.merge(&run.core);
    }
    merged.dataset = SignalingDataset::merge_sorted_runs(n_days, datasets);
    merged.runner = RunnerStats {
        mode: RunnerMode::WorkStealing,
        threads,
        chunk_ues,
        work_items: n_items,
        ue_days,
    };
    merged
}

/// Run one *shard* of a study: the UE range `ues` over the day range
/// `days`, sequentially, against the full-study `world` and `config`.
/// This is the unit of work a sharded orchestrator hands to a worker
/// process.
///
/// The day span of the output dataset stays `config.n_days` — a shard is
/// a window into the full study's timeline, not a shorter study — so
/// per-UE-day RNG streams, timestamps, and day numbering are exactly
/// those of the unsharded run. The loop is day-major and the final sort
/// is stable, so records of this shard appear in the same relative order
/// the sequential full run would emit them: equal-timestamp records are
/// same-day (timestamps encode the day) and tie-break by insertion
/// order, i.e. ascending UE. Concatenating shard outputs in ascending
/// UE-range order and stable-merging by timestamp therefore reproduces
/// the sequential study byte for byte — the determinism argument the
/// orchestrator's test matrix pins down.
pub fn run_shard(
    world: &World,
    config: &SimConfig,
    days: std::ops::Range<u32>,
    ues: std::ops::Range<usize>,
) -> SimOutput {
    let n_ues = world.n_ues();
    let days = days.start.min(config.n_days)..days.end.min(config.n_days);
    let ues = ues.start.min(n_ues)..ues.end.min(n_ues);
    let ue_days = ues.len() * days.len();
    let mut out = SimOutput::new(config.n_days);
    let mut scratch = SimScratch::new();
    for day in days.clone() {
        for ue in ues.clone() {
            simulate_ue_day(world, config, UeId(ue as u32), day, &mut scratch, &mut out);
        }
    }
    out.dataset.sort();
    out.runner = RunnerStats {
        mode: RunnerMode::Sequential,
        threads: 1,
        chunk_ues: ues.len().max(1),
        work_items: days.len(),
        ue_days,
    };
    out
}

/// Open-file fan-in of the on-disk merge. The default study spills
/// thousands of run files — far past a typical 1024-descriptor ulimit —
/// so the merge goes multi-pass above this bound.
pub const MERGE_FAN_IN: usize = 128;

/// [`run_on_world`] in spill-to-disk mode: each work item's sorted run is
/// written to `spill_dir` as a columnar v3 chunk file instead of held in
/// RAM, and the runs are k-way merged from disk (multi-pass above
/// [`MERGE_FAN_IN`] files). Peak trace memory is bounded by one chunk per
/// open run rather than the whole dataset.
///
/// Output is byte-identical to the in-memory paths: runs are merged in
/// item order with index tie-breaks, exactly the
/// [`SignalingDataset::merge_sorted_runs`] contract. Run files and merge
/// intermediates are deleted as they are consumed; `spill_dir` must exist.
pub fn run_on_world_spilled(
    world: &World,
    config: &SimConfig,
    spill_dir: &Path,
) -> std::io::Result<SimOutput> {
    run_on_world_spilled_chunked(world, config, DEFAULT_UE_CHUNK, spill_dir)
}

/// [`run_on_world_spilled`] with an explicit work-item granularity.
///
/// Unlike the in-memory path there is no sequential fallback: the whole
/// point is bounding memory, so even `threads == 1` runs the item grid
/// and spills every run.
pub fn run_on_world_spilled_chunked(
    world: &World,
    config: &SimConfig,
    chunk_ues: usize,
    spill_dir: &Path,
) -> std::io::Result<SimOutput> {
    run_on_world_spilled_with_version(world, config, chunk_ues, spill_dir, VERSION3)
}

/// [`run_on_world_spilled_chunked`] with an explicit trace-store
/// `version` (2 or 3) for the spilled run files. The merged dataset is
/// identical either way — the version only selects the on-disk encoding
/// of the intermediate runs.
pub fn run_on_world_spilled_with_version(
    world: &World,
    config: &SimConfig,
    chunk_ues: usize,
    spill_dir: &Path,
    version: u16,
) -> std::io::Result<SimOutput> {
    let (mut merged, paths) = spill_runs(world, config, chunk_ues, spill_dir, version)?;
    merged.dataset = merge_run_files(config.n_days, paths, spill_dir, MERGE_FAN_IN)?;
    merged.runner.mode = RunnerMode::Spilled;
    Ok(merged)
}

/// The shared spill stage: drain the `(day, chunk)` grid, writing each
/// item's sorted run to `spill_dir`, and return the merged side outputs
/// (mobility, ledger, core — dataset left empty) plus the run paths in
/// canonical item order.
fn spill_runs(
    world: &World,
    config: &SimConfig,
    chunk_ues: usize,
    spill_dir: &Path,
    version: u16,
) -> std::io::Result<(SimOutput, Vec<PathBuf>)> {
    assert!(chunk_ues > 0, "chunk size must be positive");
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    };
    let n_ues = world.n_ues();
    let n_days = config.n_days;
    let ue_days = n_ues * n_days as usize;
    let chunks_per_day = n_ues.div_ceil(chunk_ues).max(1);
    let n_items = chunks_per_day * n_days as usize;
    let cursor = StealCursor::new(n_items);

    // Workers drain the same (day, chunk) grid as the in-memory path, but
    // each finished run goes straight to disk: the SimOutput they keep
    // carries only the small per-item side state (mobility, ledger, core).
    let per_worker: Vec<std::io::Result<Vec<(usize, SimOutput)>>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move |_| -> std::io::Result<Vec<(usize, SimOutput)>> {
                    let mut scratch = SimScratch::new();
                    let mut produced: Vec<(usize, SimOutput)> = Vec::new();
                    while let Some(item) = cursor.claim() {
                        let day = (item / chunks_per_day) as u32;
                        let chunk = item % chunks_per_day;
                        let lo = chunk * chunk_ues;
                        let hi = (lo + chunk_ues).min(n_ues);
                        let mut out = SimOutput::new(n_days);
                        for ue in lo..hi {
                            simulate_ue_day(
                                world,
                                config,
                                UeId(ue as u32),
                                day,
                                &mut scratch,
                                &mut out,
                            );
                        }
                        out.dataset.sort();
                        let path = spill_dir.join(format!("run-{item:06}.tmp-trace"));
                        let mut w = TraceWriter::create_with_version(&path, n_days, version)?;
                        w.write_chunk(out.dataset.records())?;
                        w.finish()?;
                        out.dataset = SignalingDataset::new(n_days);
                        produced.push((item, out));
                    }
                    Ok(produced)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("simulation worker panicked")).collect()
    })
    .expect("simulation scope panicked");

    let mut collected: Vec<Vec<(usize, SimOutput)>> = Vec::with_capacity(per_worker.len());
    for worker in per_worker {
        collected.push(worker?);
    }
    let runs = collect_runs(collected);

    let mut merged = SimOutput::new(n_days);
    merged.mobility.reserve(ue_days);
    let mut paths: Vec<PathBuf> = Vec::with_capacity(runs.len());
    for (item, run) in runs {
        paths.push(spill_dir.join(format!("run-{item:06}.tmp-trace")));
        merged.mobility.extend(run.mobility);
        merged.ledger.merge(&run.ledger);
        merged.core.merge(&run.core);
    }
    merged.runner =
        RunnerStats { mode: RunnerMode::Spilled, threads, chunk_ues, work_items: n_items, ue_days };
    Ok((merged, paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_signaling::messages::HoType;

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        let world = World::build(&cfg);

        let mut seq_cfg = cfg.clone();
        seq_cfg.threads = 1;
        let seq = run_on_world(&world, &seq_cfg);
        assert_eq!(seq.runner.mode, RunnerMode::Sequential);

        let mut par_cfg = cfg.clone();
        par_cfg.threads = 4;
        let par = run_on_world(&world, &par_cfg);
        assert_eq!(par.runner.mode, RunnerMode::WorkStealing);
        assert_eq!(par.runner.threads, 4);

        assert_eq!(seq.dataset.records(), par.dataset.records());
        assert_eq!(seq.mobility, par.mobility);
        // Ledger sums are merged in chunk order; floating-point addition
        // is not associative, so compare to relative precision.
        for i in 0..4 {
            let (a, b) = (seq.ledger.attach_ms[i], par.ledger.attach_ms[i]);
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "attach[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn study_covers_all_days() {
        let data = run_study(SimConfig::tiny());
        let dataset = data.trace.as_dataset().expect("run_study keeps the trace in memory");
        let days: std::collections::HashSet<u32> =
            dataset.records().iter().map(|r| r.day()).collect();
        assert!(days.contains(&0));
        assert!(days.len() as u32 <= data.config.n_days);
        // The trace moved out of the sim output and into the source.
        assert!(data.output.dataset.is_empty());
        assert_eq!(data.trace.len(), dataset.len() as u64);
        // Mobility rows exist for every (ue, day).
        assert_eq!(data.output.mobility.len(), data.config.n_ues * data.config.n_days as usize);
        assert_eq!(data.output.runner.ue_days, data.config.n_ues * data.config.n_days as usize);
    }

    #[test]
    fn tiny_study_has_sane_ho_mix() {
        let data = run_study(SimConfig::tiny());
        let counts = data.trace.as_dataset().expect("in-memory trace").counts_by_type();
        let total: u64 = counts.iter().sum();
        assert!(total > 100, "too few handovers: {total}");
        let intra = counts[HoType::Intra4g5g.index()] as f64 / total as f64;
        assert!(intra > 0.75, "intra share {intra} too low");
    }

    #[test]
    fn spilled_study_streams_identical_records() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        cfg.threads = 2;
        let in_mem = run_study(cfg.clone());

        let dir = std::env::temp_dir().join("telco_runner_study_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spilled = run_study_spilled(cfg, &dir).unwrap();
        assert!(spilled.trace.is_spilled());
        assert_eq!(spilled.output.runner.mode, RunnerMode::Spilled);
        assert_eq!(spilled.trace.len(), in_mem.trace.len());
        assert_eq!(spilled.output.mobility, in_mem.output.mobility);

        let mut streamed = Vec::new();
        spilled.trace.for_each_chunk(|recs| streamed.extend_from_slice(recs)).unwrap();
        assert_eq!(&streamed[..], in_mem.trace.as_dataset().unwrap().records());
        // Only the sealed study trace remains in the spill dir.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["study-trace.tlho".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_equals_in_memory() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        cfg.threads = 4;
        let world = World::build(&cfg);
        let in_mem = run_on_world(&world, &cfg);

        let dir = std::env::temp_dir().join("telco_runner_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spilled = run_on_world_spilled(&world, &cfg, &dir).unwrap();
        assert_eq!(spilled.runner.mode, RunnerMode::Spilled);
        assert_eq!(spilled.dataset.records(), in_mem.dataset.records());
        assert_eq!(spilled.mobility, in_mem.mobility);
        assert_eq!(spilled.core, in_mem.core);
        // All run files and intermediates consumed.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_v2_and_v3_stream_identical_records() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        cfg.threads = 2;

        let mut streams: Vec<Vec<telco_trace::record::HoRecord>> = Vec::new();
        for version in [2u16, 3u16] {
            let dir = std::env::temp_dir().join(format!("telco_runner_spill_v{version}_test"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let study = run_study_spilled_with_version(cfg.clone(), &dir, version).unwrap();
            assert!(study.trace.is_spilled());
            let mut recs = Vec::new();
            study.trace.for_each_chunk(|c| recs.extend_from_slice(c)).unwrap();
            streams.push(recs);
            drop(study);
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(streams[0], streams[1]);
        assert!(!streams[0].is_empty());
    }

    #[test]
    fn shards_reassemble_the_sequential_study() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 2;
        cfg.threads = 1;
        let world = World::build(&cfg);
        let full = run_on_world(&world, &cfg);

        // Three uneven UE shards over all days, merged in shard order,
        // must reproduce the sequential run exactly (stable merge ties
        // break in shard order = UE order = sequential insertion order).
        let bounds = [0usize, 50, 51, 120];
        let mut datasets = Vec::new();
        let mut mobility = Vec::new();
        let mut ue_days = 0;
        for w in bounds.windows(2) {
            let shard = run_shard(&world, &cfg, 0..cfg.n_days, w[0]..w[1]);
            ue_days += shard.runner.ue_days;
            datasets.push(shard.dataset);
            mobility.extend(shard.mobility);
        }
        let merged = SignalingDataset::merge_sorted_runs(cfg.n_days, datasets);
        assert_eq!(merged.records(), full.dataset.records());
        assert_eq!(ue_days, 240);
        // Shard mobility rows are (day, ue)-sortable back into the
        // sequential order (each shard emits day-major, UE-ascending).
        mobility.sort_by_key(|m| (m.day, m.ue));
        assert_eq!(mobility, full.mobility);

        // Day-sliced shards (split the time axis instead) reassemble too:
        // per-day shard outputs concatenate in day order.
        let mut day_datasets = Vec::new();
        for day in 0..cfg.n_days {
            let shard = run_shard(&world, &cfg, day..day + 1, 0..cfg.n_ues);
            day_datasets.push(shard.dataset);
        }
        let day_merged = SignalingDataset::merge_sorted_runs(cfg.n_days, day_datasets);
        assert_eq!(day_merged.records(), full.dataset.records());

        // Out-of-range requests clamp instead of panicking.
        let empty = run_shard(&world, &cfg, 5..9, 500..600);
        assert!(empty.dataset.is_empty());
        assert_eq!(empty.runner.ue_days, 0);
    }

    #[test]
    fn small_populations_run_sequentially_even_with_threads() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = SEQUENTIAL_UE_THRESHOLD - 1;
        cfg.n_days = 1;
        cfg.threads = 4;
        let world = World::build(&cfg);
        let out = run_on_world(&world, &cfg);
        assert_eq!(out.runner.mode, RunnerMode::Sequential);
        assert_eq!(out.runner.threads, 1);
    }
}
