//! Determinism matrix: the work-stealing runner must produce byte-identical
//! records and mobility rows for every (thread count, chunk size)
//! combination, with only the ledger's floating-point sums allowed to
//! regroup (compared under a documented relative tolerance).

use telco_sim::{run_on_world_chunked, RunnerMode, SimConfig, World};

/// Relative tolerance for ledger sums: f64 addition is not associative, so
/// chunked accumulation orders differ from the sequential (day, ue) order.
const LEDGER_RTOL: f64 = 1e-9;

fn assert_ledger_close(a: &[f64; 4], b: &[f64; 4], what: &str) {
    for i in 0..4 {
        let tol = LEDGER_RTOL * a[i].abs().max(1.0);
        assert!(
            (a[i] - b[i]).abs() <= tol,
            "{what}[{i}] diverged: {} vs {} (tol {tol})",
            a[i],
            b[i]
        );
    }
}

#[test]
fn runner_matrix_is_deterministic() {
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 1;
    let world = World::build(&cfg);

    // Reference: the sequential path.
    let reference = run_on_world_chunked(&world, &cfg, 32);
    assert_eq!(reference.runner.mode, RunnerMode::Sequential);
    assert_eq!(reference.mobility.len(), 150 * 2);

    for threads in [2usize, 3, 8] {
        for chunk in [1usize, 7, 64] {
            let mut par_cfg = cfg.clone();
            par_cfg.threads = threads;
            let out = run_on_world_chunked(&world, &par_cfg, chunk);
            let label = format!("threads={threads} chunk={chunk}");

            assert_eq!(out.runner.mode, RunnerMode::WorkStealing, "{label}");
            assert_eq!(out.runner.threads, threads, "{label}");
            assert_eq!(out.runner.chunk_ues, chunk, "{label}");
            assert_eq!(out.runner.work_items, 150usize.div_ceil(chunk) * 2, "{label}");
            assert_eq!(out.runner.ue_days, 300, "{label}");

            // Records and mobility rows: byte-identical.
            assert_eq!(
                out.dataset.records(),
                reference.dataset.records(),
                "{label}: records diverged"
            );
            assert_eq!(out.mobility, reference.mobility, "{label}: mobility diverged");

            // Ledger: identical up to floating-point regrouping.
            assert_ledger_close(&reference.ledger.attach_ms, &out.ledger.attach_ms, "attach_ms");
            assert_ledger_close(&reference.ledger.ul_mb, &out.ledger.ul_mb, "ul_mb");
            assert_ledger_close(&reference.ledger.dl_mb, &out.ledger.dl_mb, "dl_mb");
        }
    }
}

#[test]
fn fixed_chunk_is_bitwise_stable_across_thread_counts() {
    // With the chunk size held fixed, even the ledger must be bitwise
    // identical across thread counts: the merge happens in canonical chunk
    // order, so the accumulation order does not depend on scheduling.
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 2;
    let world = World::build(&cfg);
    let two = run_on_world_chunked(&world, &cfg, 16);
    for threads in [3usize, 8] {
        let mut par_cfg = cfg.clone();
        par_cfg.threads = threads;
        let out = run_on_world_chunked(&world, &par_cfg, 16);
        assert_eq!(out.dataset.records(), two.dataset.records());
        assert_eq!(out.mobility, two.mobility);
        assert_eq!(out.ledger, two.ledger, "ledger must be bitwise stable at fixed chunk");
    }
}
