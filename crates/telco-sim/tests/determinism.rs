//! Determinism matrix: the work-stealing runner must produce byte-identical
//! records and mobility rows for every (thread count, chunk size)
//! combination — whether runs stay in memory or spill to disk — with only
//! the ledger's floating-point sums allowed to regroup (compared under a
//! documented relative tolerance).

use telco_sim::{
    run_on_world_chunked, run_on_world_spilled_chunked, run_on_world_spilled_with_version,
    RunnerMode, SimConfig, World,
};
use telco_trace::io::encode;
use telco_trace::store::{VERSION2, VERSION3};

/// Relative tolerance for ledger sums: f64 addition is not associative, so
/// chunked accumulation orders differ from the sequential (day, ue) order.
const LEDGER_RTOL: f64 = 1e-9;

fn assert_ledger_close(a: &[f64; 4], b: &[f64; 4], what: &str) {
    for i in 0..4 {
        let tol = LEDGER_RTOL * a[i].abs().max(1.0);
        assert!(
            (a[i] - b[i]).abs() <= tol,
            "{what}[{i}] diverged: {} vs {} (tol {tol})",
            a[i],
            b[i]
        );
    }
}

#[test]
fn runner_matrix_is_deterministic() {
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 1;
    let world = World::build(&cfg);

    // Reference: the sequential path.
    let reference = run_on_world_chunked(&world, &cfg, 32);
    assert_eq!(reference.runner.mode, RunnerMode::Sequential);
    assert_eq!(reference.mobility.len(), 150 * 2);

    for threads in [2usize, 3, 8] {
        for chunk in [1usize, 7, 64] {
            let mut par_cfg = cfg.clone();
            par_cfg.threads = threads;
            let out = run_on_world_chunked(&world, &par_cfg, chunk);
            let label = format!("threads={threads} chunk={chunk}");

            assert_eq!(out.runner.mode, RunnerMode::WorkStealing, "{label}");
            assert_eq!(out.runner.threads, threads, "{label}");
            assert_eq!(out.runner.chunk_ues, chunk, "{label}");
            assert_eq!(out.runner.work_items, 150usize.div_ceil(chunk) * 2, "{label}");
            assert_eq!(out.runner.ue_days, 300, "{label}");

            // Records and mobility rows: byte-identical.
            assert_eq!(
                out.dataset.records(),
                reference.dataset.records(),
                "{label}: records diverged"
            );
            assert_eq!(out.mobility, reference.mobility, "{label}: mobility diverged");

            // Ledger: identical up to floating-point regrouping.
            assert_ledger_close(&reference.ledger.attach_ms, &out.ledger.attach_ms, "attach_ms");
            assert_ledger_close(&reference.ledger.ul_mb, &out.ledger.ul_mb, "ul_mb");
            assert_ledger_close(&reference.ledger.dl_mb, &out.ledger.dl_mb, "dl_mb");
        }
    }
}

#[test]
fn spilled_matrix_matches_in_memory_byte_for_byte() {
    // The spill-to-disk path must be indistinguishable from the in-memory
    // path at the byte level: same encoded trace for every thread count,
    // whether the runs lived in RAM or round-tripped through v2 chunk
    // files and the on-disk merge.
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 1;
    let world = World::build(&cfg);
    let reference = run_on_world_chunked(&world, &cfg, 32);
    let reference_bytes = encode(&reference.dataset);

    let dir = std::env::temp_dir().join("telco_determinism_spill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for threads in [1usize, 2, 8] {
        for (mode, label) in [("memory", "in-memory"), ("spilled", "spilled")] {
            let mut cfg = cfg.clone();
            cfg.threads = threads;
            let out = if mode == "spilled" {
                let sub = dir.join(format!("t{threads}"));
                std::fs::create_dir_all(&sub).unwrap();
                let out = run_on_world_spilled_chunked(&world, &cfg, 32, &sub)
                    .expect("spilled run failed");
                assert_eq!(out.runner.mode, RunnerMode::Spilled, "threads={threads}");
                // Nothing left behind: runs and merge intermediates are
                // consumed as the merge drains them.
                assert_eq!(
                    std::fs::read_dir(&sub).unwrap().count(),
                    0,
                    "threads={threads}: spill dir not drained"
                );
                out
            } else {
                run_on_world_chunked(&world, &cfg, 32)
            };
            assert_eq!(
                encode(&out.dataset),
                reference_bytes,
                "threads={threads} {label}: encoded trace diverged"
            );
            assert_eq!(
                out.mobility, reference.mobility,
                "threads={threads} {label}: mobility diverged"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spilled_codec_versions_are_byte_identical() {
    // The run files and the external merge may be written as v2 chunked
    // frames or v3 columnar frames; the records that come back must be
    // the same bytes either way, at every thread count. The codec version
    // is a storage detail, not an input to the study.
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 1;
    let world = World::build(&cfg);
    let reference = run_on_world_chunked(&world, &cfg, 32);
    let reference_bytes = encode(&reference.dataset);

    let dir = std::env::temp_dir().join("telco_determinism_codec");
    let _ = std::fs::remove_dir_all(&dir);

    for threads in [1usize, 2, 8] {
        for (version, name) in [(VERSION2, "v2"), (VERSION3, "v3")] {
            let mut cfg = cfg.clone();
            cfg.threads = threads;
            let sub = dir.join(format!("t{threads}-{name}"));
            std::fs::create_dir_all(&sub).unwrap();
            let out = run_on_world_spilled_with_version(&world, &cfg, 32, &sub, version)
                .expect("spilled run failed");
            assert_eq!(out.runner.mode, RunnerMode::Spilled, "threads={threads} {name}");
            assert_eq!(
                encode(&out.dataset),
                reference_bytes,
                "threads={threads} {name}: encoded trace diverged from in-memory reference"
            );
            assert_eq!(
                out.mobility, reference.mobility,
                "threads={threads} {name}: mobility diverged"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spilled_multi_pass_merge_is_identical() {
    // Chunk size 1 on 150 UEs × 2 days produces 300 run files — more than
    // the merge fan-in would ever see in one pass if it were small; here
    // it exercises the many-runs regime of the external merge.
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 4;
    let world = World::build(&cfg);
    let reference = run_on_world_chunked(&world, &cfg, 1);
    let dir = std::env::temp_dir().join("telco_determinism_spill_many");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spilled = run_on_world_spilled_chunked(&world, &cfg, 1, &dir).expect("spilled run failed");
    assert_eq!(encode(&spilled.dataset), encode(&reference.dataset));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixed_chunk_is_bitwise_stable_across_thread_counts() {
    // With the chunk size held fixed, even the ledger must be bitwise
    // identical across thread counts: the merge happens in canonical chunk
    // order, so the accumulation order does not depend on scheduling.
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 150;
    cfg.n_days = 2;
    cfg.threads = 2;
    let world = World::build(&cfg);
    let two = run_on_world_chunked(&world, &cfg, 16);
    for threads in [3usize, 8] {
        let mut par_cfg = cfg.clone();
        par_cfg.threads = threads;
        let out = run_on_world_chunked(&world, &par_cfg, 16);
        assert_eq!(out.dataset.records(), two.dataset.records());
        assert_eq!(out.mobility, two.mobility);
        assert_eq!(out.ledger, two.ledger, "ledger must be bitwise stable at fixed chunk");
    }
}
