//! Asserts the zero-allocation contract of the per-UE-day hot path: once
//! the scratch buffers have grown to their working size and the output
//! collections have capacity, `simulate_ue_day` performs no heap
//! allocation at all.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms up by simulating a set of (UE, day) pairs (growing every scratch
//! buffer and populating the core network's counter keys), reserves room
//! for the second pass's records, then re-simulates the *same* pairs —
//! which, being deterministic, produce identically sized output — and
//! requires the allocation count not to move.
//!
//! This file holds exactly one test so no concurrent test in the same
//! binary can allocate during the measured window.

// telco-lint: allow(unsafe): implementing GlobalAlloc for the counting
// allocator requires unsafe; the impl only delegates to System.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use telco_devices::population::UeId;
use telco_sim::{simulate_ue_day, SimConfig, SimOutput, SimScratch, World};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_ue_day_loop_does_not_allocate() {
    let cfg = SimConfig::tiny();
    let world = World::build(&cfg);
    let pairs: Vec<(u32, u32)> =
        (0..cfg.n_days).flat_map(|day| (0..120u32).map(move |ue| (ue, day))).collect();

    let mut out = SimOutput::new(cfg.n_days);
    let mut scratch = SimScratch::new();

    // Warm-up pass: grows every scratch buffer to its working size and
    // inserts every (element, message) key the core network will count.
    for &(ue, day) in &pairs {
        simulate_ue_day(&world, &cfg, UeId(ue), day, &mut scratch, &mut out);
    }

    // The second pass re-simulates the same pairs, so it appends exactly
    // as many records and mobility rows again: reserve that much.
    let records = out.dataset.len();
    let rows = out.mobility.len();
    assert!(records > 0, "warm-up produced no records; test is vacuous");
    out.dataset.reserve(records);
    out.mobility.reserve(rows);

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for &(ue, day) in &pairs {
        simulate_ue_day(&world, &cfg, UeId(ue), day, &mut scratch, &mut out);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state loop allocated {} time(s) over {} UE-days",
        after - before,
        pairs.len()
    );
    assert_eq!(out.dataset.len(), 2 * records, "passes were not identical");
    assert_eq!(out.mobility.len(), 2 * rows, "passes were not identical");
}
