//! Property tests for the trajectory sampler: for arbitrary physically
//! plausible waypoint sequences, `sample_points` must produce strictly
//! increasing timestamps, preserve the trajectory endpoints, and never
//! leave a spatial gap wider than `step_km` between consecutive samples on
//! a moving segment.

use proptest::prelude::*;

use telco_geo::coords::KmPoint;
use telco_mobility::trajectory::{DayTrajectory, Waypoint, DAY_MS};
use telco_sim::sample_points;

/// Build a waypoint sequence from (time-gap, dx, dy) triples: gaps are at
/// least a minute so segment speeds stay physical (no teleporting, which
/// would legitimately collapse interpolated samples onto one millisecond).
fn trajectory_from(start_ms: u32, legs: &[(u32, f64, f64)]) -> DayTrajectory {
    let mut t = start_ms;
    let (mut x, mut y) = (120.0f64, 95.0f64);
    let mut wps = vec![Waypoint { time_ms: t, pos: KmPoint::new(x, y) }];
    for &(gap_ms, dx, dy) in legs {
        t = (t + gap_ms).min(DAY_MS - 1);
        x += dx;
        y += dy;
        wps.push(Waypoint { time_ms: t, pos: KmPoint::new(x, y) });
        if t == DAY_MS - 1 {
            break;
        }
    }
    wps.dedup_by_key(|w| w.time_ms);
    DayTrajectory::from_waypoints(wps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn sampler_invariants(
        start_ms in 0u32..3_600_000,
        step_km in 0.1f64..1.5,
        legs in proptest::collection::vec(
            (60_000u32..7_200_000, -8.0f64..8.0, -8.0f64..8.0),
            1..12,
        ),
    ) {
        let trajectory = trajectory_from(start_ms, &legs);
        let wps = trajectory.waypoints();
        let samples = sample_points(&trajectory, step_km);

        // Timestamps strictly increase (the sampler dedups equal stamps).
        prop_assert!(!samples.is_empty());
        for w in samples.windows(2) {
            prop_assert!(
                w[0].0 < w[1].0,
                "timestamps not strictly increasing: {} then {}", w[0].0, w[1].0
            );
        }

        // Endpoints preserved: sampling starts at the first waypoint and
        // covers the rest of the day at the final position.
        let first = samples.first().unwrap();
        prop_assert_eq!(first.0, wps[0].time_ms);
        let last_wp = wps.last().unwrap();
        let last = samples.last().unwrap();
        let expected_end = last_wp.time_ms.max(DAY_MS - 1);
        prop_assert_eq!(last.0, expected_end);
        prop_assert!(
            last.1.distance_km(&last_wp.pos) < 1e-9,
            "day does not end at the final waypoint"
        );

        // No spatial gap wider than step_km between consecutive samples:
        // moving segments are subdivided into ceil(dist/step) equal steps,
        // and dwell samples do not move at all.
        for w in samples.windows(2) {
            let gap = w[0].1.distance_km(&w[1].1);
            prop_assert!(
                gap <= step_km + 1e-9,
                "spatial gap {gap} exceeds step {step_km} between t={} and t={}",
                w[0].0, w[1].0
            );
        }
    }
}
