//! Exhaustive model checking of the work-stealing claim/drain/merge
//! protocol ([`telco_sim::steal`]) under loom.
//!
//! Only compiled with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p telco-sim --test loom_steal --release
//! ```
//!
//! Every test wraps the protocol in `loom::model`, which replays the
//! closure under *all* interleavings of the cursor's atomic operations.
//! The properties proved (for the modelled sizes):
//!
//! - every item is claimed exactly once, whatever the interleaving;
//! - workers stop when the grid drains (no claim past `n_items`);
//! - the merged run list is the identity permutation of the item grid,
//!   independent of which worker won which claim — the schedule can
//!   affect *assignment*, never *output order*.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use telco_sim::steal::{collect_runs, StealCursor};

/// Spawn `workers` model threads draining a `n_items` grid; return each
/// worker's claimed `(item, payload)` runs, joined in spawn order (the
/// same collection shape as the runner's scoped workers).
fn drain(workers: usize, n_items: usize) -> Vec<Vec<(usize, usize)>> {
    let cursor = Arc::new(StealCursor::new(n_items));
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let cursor = Arc::clone(&cursor);
            thread::spawn(move || {
                let mut produced: Vec<(usize, usize)> = Vec::new();
                while let Some(item) = cursor.claim() {
                    // The "run" payload encodes the producing worker so
                    // the merge test can show worker identity never
                    // leaks into output order.
                    produced.push((item, w));
                }
                produced
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
}

#[test]
fn items_claimed_exactly_once() {
    loom::model(|| {
        let per_worker = drain(2, 3);
        let mut seen = [0usize; 3];
        for (item, _) in per_worker.iter().flatten() {
            seen[*item] += 1;
        }
        assert_eq!(seen, [1, 1, 1], "each item claimed exactly once");
    });
}

#[test]
fn drained_cursor_stops_every_worker() {
    loom::model(|| {
        let per_worker = drain(3, 2);
        let total: usize = per_worker.iter().map(|v| v.len()).sum();
        assert_eq!(total, 2, "no worker may claim past the grid");
        // And a fresh claim on an exhausted cursor stays exhausted.
        let cursor = StealCursor::new(0);
        assert_eq!(cursor.claim(), None);
    });
}

#[test]
fn merge_recovers_canonical_order() {
    loom::model(|| {
        let per_worker = drain(2, 4);
        let runs = collect_runs(per_worker);
        let items: Vec<usize> = runs.iter().map(|&(item, _)| item).collect();
        assert_eq!(items, vec![0, 1, 2, 3], "merged order must be the item grid order");
    });
}

/// The stand-in explorer itself must still catch races — guards against
/// the model checker silently degrading into a single-schedule runner.
#[test]
fn explorer_canary_detects_lost_update() {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("joined");
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    assert!(result.is_err(), "explorer must find the racy-increment interleaving");
}
