//! Served-vs-batch equivalence: the incremental ingest must reproduce
//! the one-shot batch study **byte for byte**, including across a
//! snapshot/restore cycle in the middle of the stream, and its sliding
//! windows must account for exactly the days they claim.

use std::sync::Arc;

use telco_analytics::Study;
use telco_serve::{query_line, IngestEngine, Published, QueryServer};
use telco_sim::{run_shard, SimConfig, World};
use telco_store::DirStore;

fn test_config() -> SimConfig {
    let mut cfg = SimConfig::tiny();
    cfg.n_ues = 200;
    cfg.n_days = 3;
    cfg
}

fn batch_json(cfg: SimConfig) -> String {
    serde_json::to_string(Study::run(cfg).sweep()).expect("batch outputs serialize")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("telco_serve_equiv_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ingest_matches_batch_byte_for_byte() {
    let cfg = test_config();
    let store = Box::new(DirStore::create(temp_dir("oneshot")).unwrap());
    let mut engine = IngestEngine::open(cfg.clone(), store, 7).unwrap();
    while engine.ingest_next_day().unwrap().is_some() {}
    let served = engine.build_view().unwrap().full.expect("full view after ingest");
    assert_eq!(served, batch_json(cfg), "served study drifted from the batch study");
}

#[test]
fn restore_midstream_then_continue_matches_batch() {
    let cfg = test_config();
    let dir = temp_dir("midstream");
    // Ingest one day, drop the engine entirely, reopen from the store
    // (baseline restore path), continue to the end.
    let mut first =
        IngestEngine::open(cfg.clone(), Box::new(DirStore::create(&dir).unwrap()), 7).unwrap();
    first.ingest_next_day().unwrap().unwrap();
    drop(first);
    let mut second =
        IngestEngine::open(cfg.clone(), Box::new(DirStore::open(&dir).unwrap()), 7).unwrap();
    assert_eq!(second.committed_days(), 1);
    while second.ingest_next_day().unwrap().is_some() {}
    let served = second.build_view().unwrap().full.expect("full view after ingest");
    assert_eq!(served, batch_json(cfg), "restored-and-continued study drifted from the batch");
}

#[test]
fn window_views_count_exactly_their_days() {
    let cfg = test_config();
    let store = Box::new(DirStore::create(temp_dir("window")).unwrap());
    let mut engine = IngestEngine::open(cfg.clone(), store, 7).unwrap();
    while engine.ingest_next_day().unwrap().is_some() {}
    let view = engine.build_view().unwrap();

    let world = World::build(&cfg);
    let day_records =
        |day: u32| run_shard(&world, &cfg, day..day + 1, 0..world.n_ues()).dataset.len() as u64;
    let records_of = |json: &str| -> u64 {
        let v = serde_json::parse_value(json).expect("view JSON parses");
        let serde::Value::Object(top) = &v else { panic!("view is not an object") };
        let (_, counts) = top.iter().find(|(k, _)| k == "trace_counts").expect("trace_counts");
        let serde::Value::Object(counts) = counts else { panic!("counts not an object") };
        let (_, records) = counts.iter().find(|(k, _)| k == "records").expect("records");
        match records {
            serde::Value::U64(n) => *n,
            other => panic!("records is {other:?}"),
        }
    };

    let last = cfg.n_days - 1;
    assert_eq!(records_of(&view.last_day.unwrap()), day_records(last), "last-day window");
    let week_expected: u64 = (0..cfg.n_days).map(day_records).sum();
    assert_eq!(records_of(&view.last_week.unwrap()), week_expected, "last-7-day window");
    assert_eq!(records_of(&view.full.unwrap()), week_expected, "full view");
}

#[test]
fn served_queries_answer_from_committed_views() {
    let cfg = test_config();
    let store = Box::new(DirStore::create(temp_dir("queries")).unwrap());
    let mut engine = IngestEngine::open(cfg, store, 7).unwrap();
    let published = Arc::new(Published::new(engine.build_view().unwrap()));
    let mut server = QueryServer::start(Arc::clone(&published), 0).unwrap();
    let addr = server.addr();

    // Before any commit: status works, data queries refuse politely.
    let status = query_line(addr, "{\"query\":\"status\"}").unwrap();
    assert!(status.contains("\"committed_days\":0"), "{status}");
    let outputs = query_line(addr, "{\"query\":\"outputs\"}").unwrap();
    assert!(outputs.contains("no day committed yet"), "{outputs}");

    // Ingest everything, publishing after each commit like `repro serve`.
    while engine.ingest_next_day().unwrap().is_some() {
        published.publish(engine.build_view().unwrap());
    }

    let status = query_line(addr, "{\"query\":\"status\"}").unwrap();
    assert!(status.contains("\"committed_days\":3"), "{status}");
    let section = query_line(addr, "{\"query\":\"table\",\"name\":\"ho_types\"}").unwrap();
    assert!(section.contains("\"section\":{"), "{section}");
    let window = query_line(addr, "{\"query\":\"window\",\"days\":1}").unwrap();
    assert!(window.contains("\"outputs\":{"), "{window}");
    let served = query_line(addr, "{\"query\":\"outputs\"}").unwrap();
    let expected = engine.build_view().unwrap().full.unwrap();
    assert!(served.contains(&expected), "served outputs differ from the engine view");

    let bye = query_line(addr, "{\"query\":\"shutdown\"}").unwrap();
    assert!(bye.contains("shutting_down"), "{bye}");
    server.stop();
    assert!(server.shutdown_requested());
}
