//! Crash-recovery fault matrix: kill the `telco-served` subprocess at
//! each injected point of the commit protocol — after the day-partial
//! commit and after the baseline commit, both *before* the state commit
//! — then restart it and require the recovered store to converge on the
//! uninterrupted run's bytes exactly.

use std::path::{Path, PathBuf};
use std::process::Command;

use telco_serve::{EXIT_INJECTED, FAULT_ENV};

const UES: &str = "150";
const DAYS: &str = "3";

fn served() -> Command {
    Command::new(env!("CARGO_BIN_EXE_telco-served"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("telco_serve_recovery_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_served(dir: &Path, fault: Option<&str>) -> std::process::Output {
    let mut cmd = served();
    cmd.arg("--store").arg(dir).args(["--ues", UES, "--days", DAYS]);
    match fault {
        Some(spec) => cmd.env(FAULT_ENV, spec),
        None => cmd.env_remove(FAULT_ENV),
    };
    cmd.output().expect("spawn telco-served")
}

fn final_json(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("final.json")).expect("final.json written")
}

#[test]
fn crashed_ingest_recovers_and_converges() {
    // The reference: one uninterrupted ingest.
    let clean = temp_dir("clean");
    let out = run_served(&clean, None);
    assert!(out.status.success(), "clean run failed: {}", String::from_utf8_lossy(&out.stderr));
    let expected = final_json(&clean);

    for (tag, fault) in [("partial", "after-partial:1"), ("baseline", "after-baseline:1")] {
        let dir = temp_dir(tag);
        // First attempt dies at the injected point with the marker code.
        let crashed = run_served(&dir, Some(fault));
        assert_eq!(
            crashed.status.code(),
            Some(EXIT_INJECTED),
            "fault {fault} did not fire: {}",
            String::from_utf8_lossy(&crashed.stderr)
        );
        assert!(!dir.join("final.json").exists(), "crashed run must not publish a final view");
        // The state object still names 1 committed day — day 1's work
        // was staged or half-committed but never reached the commit
        // point, so the restart re-ingests it without replaying day 0.
        let state = std::fs::read_to_string(dir.join("state.json")).expect("state after crash");
        assert!(state.contains("\"committed_days\":1"), "unexpected state: {state}");

        // Restart: recovery + the remaining days, no fault.
        let recovered = run_served(&dir, None);
        assert!(
            recovered.status.success(),
            "recovery after {fault} failed: {}",
            String::from_utf8_lossy(&recovered.stderr)
        );
        let stderr = String::from_utf8_lossy(&recovered.stderr);
        assert!(
            stderr.contains("committed day 1") && !stderr.contains("committed day 0"),
            "restart must resume at day 1, not replay day 0: {stderr}"
        );
        assert_eq!(
            final_json(&dir),
            expected,
            "recovered ingest after {fault} diverged from the clean run"
        );
    }
}

#[test]
fn crash_on_first_day_recovers_from_empty_baseline() {
    let clean = temp_dir("clean0");
    let out = run_served(&clean, None);
    assert!(out.status.success());
    let expected = final_json(&clean);

    let dir = temp_dir("day0");
    let crashed = run_served(&dir, Some("after-partial:0"));
    assert_eq!(crashed.status.code(), Some(EXIT_INJECTED));
    // No state object yet: the store looks fresh to the restart.
    let recovered = run_served(&dir, None);
    assert!(
        recovered.status.success(),
        "day-0 recovery failed: {}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    assert_eq!(final_json(&dir), expected);
}
