//! Crash-point injection for the ingest commit protocol, mirroring the
//! orchestrator's worker fault harness: an environment variable names a
//! protocol point and a day, and the process exits with a recognizable
//! status there — between two commits, exactly where a real crash would
//! be most damaging. The recovery tests drive the `telco-served` binary
//! through these points and assert the restarted ingest converges to the
//! clean run byte-for-byte.

/// Exit status of an injected crash, distinct from real failures (`1`)
/// and usage errors (`2`) so tests can tell "the fault fired" from "the
/// ingest actually broke".
pub const EXIT_INJECTED: i32 = 17;

/// Environment variable holding the fault spec, `<point>:<day>` — e.g.
/// `after-partial:1` crashes right after committing day 1's partial
/// snapshot, before the folded baseline and state reach the store.
pub const FAULT_ENV: &str = "TELCO_SERVE_FAULT";

/// Crash points understood by [`maybe_crash`], in commit-protocol order.
pub const FAULT_POINTS: [&str; 2] = ["after-partial", "after-baseline"];

/// Exit with [`EXIT_INJECTED`] if the fault spec names this `point` and
/// `day`. No-op (including on malformed specs) otherwise.
pub fn maybe_crash(point: &str, day: u32) {
    let Ok(spec) = std::env::var(FAULT_ENV) else { return };
    let Some((fault_point, fault_day)) = spec.rsplit_once(':') else { return };
    if fault_point == point && fault_day.parse() == Ok(day) {
        // telco-lint: allow(print): the injected crash must announce itself on stderr so a recovery-test failure names which fault fired
        eprintln!("telco-serve: injected crash at {point} day {day}");
        std::process::exit(EXIT_INJECTED);
    }
}
