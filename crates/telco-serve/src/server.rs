//! The always-on query front: newline-delimited JSON requests over a
//! local TCP socket, answered from the last *published* [`ServedView`].
//!
//! The ingest loop builds a fresh view after each committed day and
//! swaps it in with [`Published::publish`]; queries clone the current
//! `Arc` under a lock held only for that pointer swap. No lock is ever
//! held across a day fold, so query latency is bounded by JSON shuffling
//! and staleness is bounded by one fold: a query sees at worst the
//! previous committed day.
//!
//! # Protocol
//!
//! One JSON object per request line, one JSON object per response line:
//!
//! ```text
//! {"query":"status"}                       → commit progress counters
//! {"query":"outputs"}                      → full SweepOutputs JSON
//! {"query":"section","name":"ho_types"}    → one top-level analysis
//! {"query":"window","days":1}              → SweepOutputs over the last day
//! {"query":"window","days":7}              → … over the last ≤7 days
//! {"query":"shutdown"}                     → ack, then the server stops
//! ```
//!
//! `"table"` and `"figure"` are accepted as aliases of `"section"` —
//! paper tables and figures are exactly the top-level analyses of
//! [`telco_analytics::SweepOutputs`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

use crate::engine::ServedView;

/// The published view cell: a mutex around an `Arc`, locked only long
/// enough to clone or replace the pointer.
pub struct Published {
    view: Mutex<Arc<ServedView>>,
}

impl Published {
    /// A cell starting at `view`.
    pub fn new(view: ServedView) -> Self {
        Published { view: Mutex::new(Arc::new(view)) }
    }

    /// Atomically replace the served view.
    pub fn publish(&self, view: ServedView) {
        *self.view.lock().expect("published view lock") = Arc::new(view);
    }

    /// The current view (cheap: one lock, one `Arc` clone).
    pub fn current(&self) -> Arc<ServedView> {
        self.view.lock().expect("published view lock").clone()
    }
}

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn error_response(msg: &str) -> String {
    // Messages are fixed ASCII strings — no escaping needed.
    format!("{{\"ok\":false,\"error\":\"{msg}\"}}")
}

/// Answer one request line from `view`. Returns the response line and
/// whether the request asked the server to shut down.
pub fn handle_request(line: &str, view: &ServedView) -> (String, bool) {
    let parsed = match serde_json::parse_value(line) {
        Ok(v) => v,
        Err(_) => return (error_response("request is not valid JSON"), false),
    };
    let Some(query) = field(&parsed, "query").and_then(as_str) else {
        return (error_response("missing \"query\" field"), false);
    };
    let wrap = |payload: &Option<String>, what: &str| match payload {
        Some(json) => (
            format!("{{\"ok\":true,\"committed_days\":{},{what}:{json}}}", view.committed_days),
            false,
        ),
        None => (error_response("no day committed yet"), false),
    };
    match query {
        "status" => (
            format!(
                "{{\"ok\":true,\"committed_days\":{},\"total_days\":{},\"records\":{},\
                 \"failures\":{}}}",
                view.committed_days, view.total_days, view.records, view.failures,
            ),
            false,
        ),
        "outputs" | "study" => wrap(&view.full, "\"outputs\""),
        "section" | "table" | "figure" => {
            let Some(name) = field(&parsed, "name").and_then(as_str) else {
                return (error_response("section query needs a \"name\" field"), false);
            };
            match view.sections.iter().find(|(k, _)| k == name) {
                Some((_, json)) => (
                    format!(
                        "{{\"ok\":true,\"committed_days\":{},\"name\":\"{name}\",\
                         \"section\":{json}}}",
                        view.committed_days
                    ),
                    false,
                ),
                None if view.sections.is_empty() => (error_response("no day committed yet"), false),
                None => (error_response("unknown section name"), false),
            }
        }
        "window" => match field(&parsed, "days").and_then(as_u64) {
            Some(1) => wrap(&view.last_day, "\"outputs\""),
            Some(7) => wrap(&view.last_week, "\"outputs\""),
            _ => (error_response("window \"days\" must be 1 or 7"), false),
        },
        "shutdown" => ("{\"ok\":true,\"shutting_down\":true}".to_string(), true),
        _ => (error_response("unknown query"), false),
    }
}

/// The TCP query server: an accept loop on a loopback socket, one
/// handler thread per connection, stopped by a `shutdown` query or
/// [`QueryServer::stop`].
pub struct QueryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Bind `127.0.0.1:port` (`0` picks a free port) and start serving
    /// `published`.
    pub fn start(published: Arc<Published>, port: u16) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            let mut handlers = Vec::new();
            for stream in listener.incoming() {
                // ordering: SeqCst — the flag is a rare shutdown edge, not a hot path; total order keeps the wake-connect/flag race trivially correct
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let published = Arc::clone(&published);
                let flag = Arc::clone(&flag);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &published, &flag, addr);
                }));
            }
            for handler in handlers {
                let _ = handler.join();
            }
        });
        Ok(QueryServer { addr, shutdown, accept_handle: Some(accept_handle) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` query (or [`QueryServer::stop`]) has fired.
    pub fn shutdown_requested(&self) -> bool {
        // ordering: SeqCst — pairs with the SeqCst stores below; shutdown is cold, clarity over cycles
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting, wake the accept loop, and join every handler.
    pub fn stop(&mut self) {
        // ordering: SeqCst — must be globally visible before the wake connection lands in the accept loop
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(
    stream: TcpStream,
    published: &Published,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let view = published.current();
        let (response, stop) = handle_request(&line, &view);
        if writer.write_all(response.as_bytes()).is_err() {
            break;
        }
        if writer.write_all(b"\n").is_err() || writer.flush().is_err() {
            break;
        }
        if stop {
            // ordering: SeqCst — must be globally visible before the wake connection below reaches accept
            shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

/// One-shot client: send a single request line, return the response
/// line. What `repro query` and the smoke tests use.
///
/// # Errors
///
/// Connection or I/O failures talking to the server.
pub fn query_line(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> ServedView {
        ServedView {
            committed_days: 2,
            total_days: 3,
            records: 100,
            failures: 3,
            full: Some("{\"a\":1}".into()),
            last_day: Some("{\"a\":2}".into()),
            last_week: Some("{\"a\":3}".into()),
            sections: vec![("ho_types".into(), "{\"t\":1}".into())],
        }
    }

    #[test]
    fn request_routing() {
        let v = view();
        let (status, stop) = handle_request("{\"query\":\"status\"}", &v);
        assert!(status.contains("\"committed_days\":2") && !stop);
        let (outputs, _) = handle_request("{\"query\":\"outputs\"}", &v);
        assert!(outputs.contains("\"outputs\":{\"a\":1}"), "{outputs}");
        let (sec, _) = handle_request("{\"query\":\"table\",\"name\":\"ho_types\"}", &v);
        assert!(sec.contains("\"section\":{\"t\":1}"), "{sec}");
        let (day, _) = handle_request("{\"query\":\"window\",\"days\":1}", &v);
        assert!(day.contains("{\"a\":2}"), "{day}");
        let (week, _) = handle_request("{\"query\":\"window\",\"days\":7}", &v);
        assert!(week.contains("{\"a\":3}"), "{week}");
        let (_, stop) = handle_request("{\"query\":\"shutdown\"}", &v);
        assert!(stop);
        let (bad, _) = handle_request("{\"query\":\"window\",\"days\":3}", &v);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        let (garbage, _) = handle_request("not json", &v);
        assert!(garbage.contains("\"ok\":false"));
    }

    #[test]
    fn empty_view_reports_no_data() {
        let v = ServedView { total_days: 3, ..ServedView::default() };
        let (outputs, _) = handle_request("{\"query\":\"outputs\"}", &v);
        assert!(outputs.contains("no day committed yet"), "{outputs}");
        let (sec, _) = handle_request("{\"query\":\"section\",\"name\":\"x\"}", &v);
        assert!(sec.contains("no day committed yet"), "{sec}");
    }

    #[test]
    fn server_round_trip_and_shutdown() {
        let published = Arc::new(Published::new(view()));
        let mut server = QueryServer::start(Arc::clone(&published), 0).unwrap();
        let addr = server.addr();
        let status = query_line(addr, "{\"query\":\"status\"}").unwrap();
        assert!(status.contains("\"records\":100"), "{status}");
        // Publishing swaps what subsequent queries see.
        let mut next = view();
        next.records = 250;
        published.publish(next);
        let status = query_line(addr, "{\"query\":\"status\"}").unwrap();
        assert!(status.contains("\"records\":250"), "{status}");
        let bye = query_line(addr, "{\"query\":\"shutdown\"}").unwrap();
        assert!(bye.contains("shutting_down"), "{bye}");
        server.stop();
        assert!(server.shutdown_requested());
    }
}
