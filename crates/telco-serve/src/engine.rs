//! The snapshot-native ingest engine: days arrive one at a time, each is
//! folded into a live [`StudyPasses`] composite through the same
//! [`AnalysisPass::merge`] the parallel sweep uses, and every fold is
//! made durable through a staged-write/atomic-commit snapshot protocol
//! so a crashed ingest restarts from its last committed day without
//! replaying history.
//!
//! # Commit protocol (per day `d`, with `k = d` days already committed)
//!
//! 1. Simulate day `d` ([`telco_sim::run_shard`]) and fold its records
//!    into a fresh delta composite.
//! 2. Stage + commit `day-<d>.snap` (the delta's snapshot frame).
//! 3. Merge the delta into the live baseline; stage + commit
//!    `baseline-<d+1>.snap`.
//! 4. Stage + commit `state.json` naming `d+1` committed days — **the**
//!    atomic commit point: every object it references was committed
//!    before it.
//! 5. Garbage-collect the previous baseline and day partials that fell
//!    out of the retention window.
//!
//! A crash anywhere in 1–4 leaves `state.json` at `k`: reopening
//! restores `baseline-<k>.snap` and re-ingests day `k`. The simulation
//! is a pure function of the config and the snapshot codec is
//! deterministic, so the re-run reproduces the interrupted day's bytes
//! exactly and the recovered store converges on the uninterrupted one.
//! Orphaned objects from the crashed attempt (a `day-<k>.snap` or
//! `baseline-<k+1>.snap` that never got a state commit) are deleted on
//! reopen and rewritten identically by the retry.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use telco_analytics::{
    restore_pass, snapshot_pass, AnalysisPass, Enriched, StudyPasses, SweepCtx, SweepOutputs,
};
use telco_sim::{run_shard, SimConfig, TraceSource, World};
use telco_store::{get_bytes, get_string, put_bytes, ObjectStore};
use telco_trace::snap::SnapError;

use crate::fault;

/// Name of the commit-point object: a small JSON record of how many days
/// are durably folded, plus the config they were folded under.
pub const STATE_OBJECT: &str = "state.json";

/// Default number of trailing per-day partials retained for sliding
/// window queries (the paper's figures use daily and weekly views).
pub const DEFAULT_WINDOW: u32 = 7;

fn day_object(day: u32) -> String {
    format!("day-{day:05}.snap")
}

fn baseline_object(days: u32) -> String {
    format!("baseline-{days:05}.snap")
}

/// Parse `name` as `<prefix><number>.snap`, returning the number.
fn object_number(name: &str, prefix: &str) -> Option<u32> {
    name.strip_prefix(prefix)?.strip_suffix(".snap")?.parse().ok()
}

/// Errors from opening or advancing an ingest.
#[derive(Debug)]
pub enum ServeError {
    /// Store I/O failed.
    Io(std::io::Error),
    /// A persisted snapshot frame was corrupt, truncated, or stale.
    Snap(SnapError),
    /// The state object (or a serialized view) was not valid JSON.
    Json(String),
    /// The trace fold reported a chunk issue (cannot happen for the
    /// in-memory day traces the engine builds, but the sweep API
    /// surfaces it).
    Sweep(String),
    /// The store was written under a different simulation config.
    ConfigMismatch(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "store I/O: {e}"),
            ServeError::Snap(e) => write!(f, "snapshot: {e}"),
            ServeError::Json(e) => write!(f, "state JSON: {e}"),
            ServeError::Sweep(e) => write!(f, "day fold: {e}"),
            ServeError::ConfigMismatch(e) => write!(f, "config mismatch: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SnapError> for ServeError {
    fn from(e: SnapError) -> Self {
        ServeError::Snap(e)
    }
}

#[derive(Serialize, Deserialize)]
struct ServeState {
    committed_days: u32,
    config: SimConfig,
}

/// What one committed day looked like, for progress reporting.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// The study day just folded (0-based).
    pub day: u32,
    /// Handover records that day contributed.
    pub records: u64,
}

/// The immutable, query-ready face of the ingest at one commit point:
/// everything the query front serves is precomputed here, so answering a
/// query never touches the engine (or any lock the fold holds).
#[derive(Debug, Clone, Default)]
pub struct ServedView {
    /// Days durably folded into the baseline.
    pub committed_days: u32,
    /// Days the configured stream will eventually deliver.
    pub total_days: u32,
    /// Records folded so far.
    pub records: u64,
    /// Failed handovers among them.
    pub failures: u64,
    /// Canonical JSON of the full [`SweepOutputs`] over all committed
    /// days — byte-identical to serializing a one-shot batch study of
    /// the same days. `None` until the first day commits.
    pub full: Option<String>,
    /// [`SweepOutputs`] over the most recent committed day only.
    pub last_day: Option<String>,
    /// [`SweepOutputs`] over the last ≤ 7 committed days.
    pub last_week: Option<String>,
    /// The full view split by top-level analysis, for `table`/`figure`
    /// queries: `(field name, compact JSON)` in [`SweepOutputs`] field
    /// order.
    pub sections: Vec<(String, String)>,
}

/// The ingest engine: owns the world, the live composite accumulator,
/// the snapshot store, and the retained per-day partials.
pub struct IngestEngine {
    config: SimConfig,
    world: World,
    store: Box<dyn ObjectStore>,
    live: StudyPasses,
    committed_days: u32,
    window: u32,
    /// Trailing per-day partial snapshots, oldest first, at most
    /// `window` entries — the raw material of sliding-window views.
    partials: VecDeque<(u32, Vec<u8>)>,
}

impl IngestEngine {
    /// Open (or create) an ingest over `store`. A store with a committed
    /// state resumes from its last commit point: the baseline snapshot
    /// is restored, retained partials are reloaded, and leftovers from a
    /// crashed attempt are garbage-collected. `window` is the number of
    /// trailing day partials to retain (clamped to ≥ 1).
    pub fn open(
        config: SimConfig,
        store: Box<dyn ObjectStore>,
        window: u32,
    ) -> Result<Self, ServeError> {
        let window = window.max(1);
        let world = World::build(&config);
        let mut committed_days = 0;
        if store.exists(STATE_OBJECT)? {
            let state: ServeState =
                serde_json::from_str(&get_string(store.as_ref(), STATE_OBJECT)?)
                    .map_err(|e| ServeError::Json(e.to_string()))?;
            if state.config != config {
                return Err(ServeError::ConfigMismatch(format!(
                    "store was ingested with seed {} / {} UEs / {} days, asked to continue \
                     with seed {} / {} UEs / {} days",
                    state.config.seed,
                    state.config.n_ues,
                    state.config.n_days,
                    config.seed,
                    config.n_ues,
                    config.n_days,
                )));
            }
            committed_days = state.committed_days;
        }

        let mut live = StudyPasses::default();
        if committed_days > 0 {
            restore_pass(&mut live, &get_bytes(store.as_ref(), &baseline_object(committed_days))?)?;
        } else {
            let ctx = SweepCtx { world: &world, config: &config };
            live.begin(&ctx);
        }

        let mut partials = VecDeque::new();
        for day in committed_days.saturating_sub(window)..committed_days {
            let name = day_object(day);
            if store.exists(&name)? {
                partials.push_back((day, get_bytes(store.as_ref(), &name)?));
            }
        }

        let engine = IngestEngine { config, world, store, live, committed_days, window, partials };
        engine.gc()?;
        Ok(engine)
    }

    /// The config this ingest runs under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Days durably committed so far.
    pub fn committed_days(&self) -> u32 {
        self.committed_days
    }

    /// Days the configured stream delivers in total.
    pub fn total_days(&self) -> u32 {
        self.config.n_days
    }

    /// The backing snapshot store.
    pub fn store(&self) -> &dyn ObjectStore {
        self.store.as_ref()
    }

    fn ctx(&self) -> SweepCtx<'_> {
        SweepCtx { world: &self.world, config: &self.config }
    }

    /// Ingest the next pending day through the full commit protocol.
    /// Returns `Ok(None)` once the configured stream is exhausted.
    ///
    /// # Errors
    ///
    /// Store I/O or snapshot-codec failures; the in-memory fold itself
    /// cannot fail.
    pub fn ingest_next_day(&mut self) -> Result<Option<IngestReport>, ServeError> {
        let day = self.committed_days;
        if day >= self.config.n_days {
            return Ok(None);
        }

        // 1. Simulate the day and fold it into a fresh delta composite.
        //    `run_shard` emits exactly the day-`d` slice of the full
        //    study's trace, in trace order, so this fold sequence is the
        //    day-parallel sweep's fold with one day per merge.
        let mut shard = run_shard(&self.world, &self.config, day..day + 1, 0..self.world.n_ues());
        let records = shard.dataset.len() as u64;
        let trace = TraceSource::in_memory(std::mem::take(&mut shard.dataset));
        let ctx = SweepCtx { world: &self.world, config: &self.config };
        let enriched = Enriched::new(&self.world);
        let mut delta = StudyPasses::default();
        delta.begin(&ctx);
        trace
            .for_each_columns(|batch| delta.record_columns(batch, &enriched))
            .map_err(|issue| ServeError::Sweep(format!("{issue:?}")))?;

        // 2. Commit the day partial.
        let delta_bytes = snapshot_pass(&delta);
        put_bytes(self.store.as_ref(), &day_object(day), &delta_bytes)?;
        fault::maybe_crash("after-partial", day);

        // 3. Fold into the baseline and commit the folded snapshot under
        //    its new day count (never overwriting the one `state.json`
        //    still points at).
        self.live.merge(delta, &ctx);
        put_bytes(self.store.as_ref(), &baseline_object(day + 1), &snapshot_pass(&self.live))?;
        fault::maybe_crash("after-baseline", day);

        // 4. The atomic commit point.
        self.committed_days = day + 1;
        self.partials.push_back((day, delta_bytes));
        while self.partials.len() > self.window as usize {
            self.partials.pop_front();
        }
        self.write_state()?;

        // 5. Drop what the new state no longer references.
        self.gc()?;
        Ok(Some(IngestReport { day, records }))
    }

    fn write_state(&self) -> Result<(), ServeError> {
        let state = ServeState { committed_days: self.committed_days, config: self.config.clone() };
        let json = serde_json::to_string(&state).map_err(|e| ServeError::Json(e.to_string()))?;
        Ok(put_bytes(self.store.as_ref(), STATE_OBJECT, json.as_bytes())?)
    }

    /// Delete every snapshot object the current commit point does not
    /// reference: superseded baselines, partials past the retention
    /// window, and orphans of a crashed uncommitted attempt.
    fn gc(&self) -> Result<(), ServeError> {
        let keep_from = self.committed_days.saturating_sub(self.window);
        for name in self.store.list()? {
            if let Some(days) = object_number(&name, "baseline-") {
                if days != self.committed_days {
                    self.store.delete(&name)?;
                }
            } else if let Some(day) = object_number(&name, "day-") {
                if day < keep_from || day >= self.committed_days {
                    self.store.delete(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuild [`SweepOutputs`] from a snapshot frame: restore into a
    /// fresh composite and finish it. The live accumulator is never
    /// consumed — views are always derived from snapshot bytes, which
    /// doubles as a continuous self-test of the codec.
    fn outputs_from(&self, bytes: &[u8]) -> Result<SweepOutputs, ServeError> {
        let mut passes = StudyPasses::default();
        restore_pass(&mut passes, bytes)?;
        Ok(passes.end(&self.ctx()))
    }

    /// [`SweepOutputs`] over the trailing `days` retained partials
    /// (fewer when the ingest is younger than the window).
    fn window_outputs(&self, days: usize) -> Result<Option<SweepOutputs>, ServeError> {
        if self.partials.is_empty() {
            return Ok(None);
        }
        let ctx = self.ctx();
        let mut acc = StudyPasses::default();
        acc.begin(&ctx);
        let skip = self.partials.len().saturating_sub(days);
        for (_, bytes) in self.partials.iter().skip(skip) {
            let mut part = StudyPasses::default();
            restore_pass(&mut part, bytes)?;
            acc.merge(part, &ctx);
        }
        Ok(Some(acc.end(&ctx)))
    }

    /// Build the query-ready view of the current commit point. Called by
    /// the ingest loop after each committed day — queries only ever read
    /// a previously built view, so their staleness is bounded by one
    /// day-fold and they never contend with it.
    pub fn build_view(&self) -> Result<ServedView, ServeError> {
        let mut view = ServedView {
            committed_days: self.committed_days,
            total_days: self.config.n_days,
            ..ServedView::default()
        };
        if self.committed_days == 0 {
            return Ok(view);
        }
        let json = |e: serde_json::Error| ServeError::Json(e.to_string());
        let outputs = self.outputs_from(&snapshot_pass(&self.live))?;
        view.records = outputs.trace_counts.records;
        view.failures = outputs.trace_counts.failures;
        view.sections = sections_of(&outputs)?;
        view.full = Some(serde_json::to_string(&outputs).map_err(json)?);
        if let Some(day) = self.window_outputs(1)? {
            view.last_day = Some(serde_json::to_string(&day).map_err(json)?);
        }
        if let Some(week) = self.window_outputs(7)? {
            view.last_week = Some(serde_json::to_string(&week).map_err(json)?);
        }
        Ok(view)
    }
}

/// Split a [`SweepOutputs`] into `(top-level field, compact JSON)` pairs
/// for section queries, in declaration order.
fn sections_of(o: &SweepOutputs) -> Result<Vec<(String, String)>, ServeError> {
    let json = |e: serde_json::Error| ServeError::Json(e.to_string());
    Ok(vec![
        ("trace_counts".into(), serde_json::to_string(&o.trace_counts).map_err(json)?),
        ("ho_types".into(), serde_json::to_string(&o.ho_types).map_err(json)?),
        ("durations".into(), serde_json::to_string(&o.durations).map_err(json)?),
        (
            "district_distribution".into(),
            serde_json::to_string(&o.district_distribution).map_err(json)?,
        ),
        (
            "population_inference".into(),
            serde_json::to_string(&o.population_inference).map_err(json)?,
        ),
        ("ho_density".into(), serde_json::to_string(&o.ho_density).map_err(json)?),
        ("temporal_evolution".into(), serde_json::to_string(&o.temporal_evolution).map_err(json)?),
        (
            "manufacturer_impact".into(),
            serde_json::to_string(&o.manufacturer_impact).map_err(json)?,
        ),
        ("hof_patterns".into(), serde_json::to_string(&o.hof_patterns).map_err(json)?),
        ("causes".into(), serde_json::to_string(&o.causes).map_err(json)?),
        ("pingpong".into(), serde_json::to_string(&o.pingpong).map_err(json)?),
        ("vendor_analysis".into(), serde_json::to_string(&o.vendor_analysis).map_err(json)?),
        ("frame".into(), serde_json::to_string(&o.frame).map_err(json)?),
        ("period_frame".into(), serde_json::to_string(&o.period_frame).map_err(json)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_store::DirStore;

    fn temp_store(tag: &str) -> Box<dyn ObjectStore> {
        let dir = std::env::temp_dir().join(format!("telco_serve_engine_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Box::new(DirStore::create(dir).unwrap())
    }

    fn test_config() -> SimConfig {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 120;
        cfg.n_days = 3;
        cfg
    }

    #[test]
    fn ingest_commits_and_exhausts() {
        let mut engine = IngestEngine::open(test_config(), temp_store("basic"), 7).unwrap();
        let mut total = 0;
        while let Some(report) = engine.ingest_next_day().unwrap() {
            assert_eq!(report.day + 1, engine.committed_days());
            assert!(report.records > 0);
            total += report.records;
        }
        assert_eq!(engine.committed_days(), 3);
        let view = engine.build_view().unwrap();
        assert_eq!(view.records, total);
        assert!(view.full.is_some() && view.last_day.is_some() && view.last_week.is_some());
        // The store holds exactly one baseline, the retained partials,
        // and the state object.
        let names = engine.store().list().unwrap();
        assert!(names.contains(&"baseline-00003.snap".to_string()), "{names:?}");
        assert!(!names.contains(&"baseline-00002.snap".to_string()), "{names:?}");
    }

    #[test]
    fn window_retention_gcs_old_partials() {
        let mut engine = IngestEngine::open(test_config(), temp_store("window"), 1).unwrap();
        while engine.ingest_next_day().unwrap().is_some() {}
        let names = engine.store().list().unwrap();
        assert!(names.contains(&"day-00002.snap".to_string()), "{names:?}");
        assert!(!names.contains(&"day-00000.snap".to_string()), "{names:?}");
        assert!(!names.contains(&"day-00001.snap".to_string()), "{names:?}");
    }

    #[test]
    fn reopen_resumes_from_commit_point() {
        let dir = std::env::temp_dir().join("telco_serve_engine_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = test_config();
        let mut first =
            IngestEngine::open(cfg.clone(), Box::new(DirStore::create(&dir).unwrap()), 7).unwrap();
        first.ingest_next_day().unwrap().unwrap();
        drop(first);
        let mut second =
            IngestEngine::open(cfg, Box::new(DirStore::open(&dir).unwrap()), 7).unwrap();
        assert_eq!(second.committed_days(), 1);
        assert_eq!(second.ingest_next_day().unwrap().unwrap().day, 1);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("telco_serve_engine_mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = test_config();
        let mut engine =
            IngestEngine::open(cfg.clone(), Box::new(DirStore::create(&dir).unwrap()), 7).unwrap();
        engine.ingest_next_day().unwrap();
        drop(engine);
        let mut other = cfg;
        other.seed ^= 1;
        let err = IngestEngine::open(other, Box::new(DirStore::open(&dir).unwrap()), 7)
            .err()
            .expect("mismatched config must not resume");
        assert!(matches!(err, ServeError::ConfigMismatch(_)), "{err}");
    }
}
