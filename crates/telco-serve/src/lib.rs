//! # telco-serve
//!
//! The batch study, turned inside out: instead of simulating every day
//! and sweeping the whole trace once, an [`IngestEngine`] folds days
//! into a live [`telco_analytics::StudyPasses`] composite **as they
//! arrive**, persists every fold through a crash-safe snapshot commit
//! protocol (see [`engine`]), and a [`QueryServer`] answers table,
//! figure, and sliding-window queries from the last committed view over
//! newline-delimited JSON on a loopback socket.
//!
//! The served numbers are not approximations: the final full view is
//! byte-identical to serializing a one-shot batch [`telco_analytics::Study`]
//! of the same config — the incremental fold is the day-parallel sweep's
//! fold, one day per merge, and the golden suite pins the equivalence.
//!
//! ## Example
//!
//! ```
//! use telco_serve::{IngestEngine, Published, QueryServer, query_line};
//! use telco_sim::SimConfig;
//! use telco_store::DirStore;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join("telco_serve_doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut cfg = SimConfig::tiny();
//! cfg.n_ues = 60;
//! let store = Box::new(DirStore::create(&dir).unwrap());
//! let mut engine = IngestEngine::open(cfg, store, 7).unwrap();
//!
//! let published = Arc::new(Published::new(engine.build_view().unwrap()));
//! let server = QueryServer::start(Arc::clone(&published), 0).unwrap();
//! while engine.ingest_next_day().unwrap().is_some() {
//!     published.publish(engine.build_view().unwrap());
//! }
//! let status = query_line(server.addr(), "{\"query\":\"status\"}").unwrap();
//! assert!(status.contains("\"committed_days\":2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod server;

pub use engine::{
    IngestEngine, IngestReport, ServeError, ServedView, DEFAULT_WINDOW, STATE_OBJECT,
};
pub use fault::{EXIT_INJECTED, FAULT_ENV};
pub use server::{handle_request, query_line, Published, QueryServer};
