//! `telco-served` — the standalone ingest worker the crash-recovery
//! suite drives as a subprocess: open a snapshot store, ingest every
//! pending day through the commit protocol (crashing at an injected
//! fault point if `TELCO_SERVE_FAULT` names one), and on a complete
//! ingest write the canonical full view to `final.json` in the store.
//!
//! ```text
//! telco-served --store <dir> [--ues N] [--days D] [--window W]
//! ```
//!
//! Unlike `telco-worker`, this binary is deliberately chatty on stderr:
//! the recovery tests read the per-day commit lines to prove a restart
//! resumes at the right day instead of replaying committed ones.
//!
//! Exit codes: `0` complete, `17` injected crash, `1` real failure,
//! `2` usage.

use telco_serve::IngestEngine;
use telco_sim::SimConfig;
use telco_store::{put_bytes, DirStore};

/// Progress/diagnostic line. The single stderr funnel of the binary.
fn note(msg: &str) {
    // telco-lint: allow(print): subprocess harness — stderr is the observable log the recovery tests assert on
    eprintln!("telco-served: {msg}");
}

fn die(msg: &str) -> ! {
    note(msg);
    std::process::exit(1);
}

fn usage() -> ! {
    note("usage: telco-served --store <dir> [--ues N] [--days D] [--window W]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut config = SimConfig::tiny();
    let mut window = telco_serve::DEFAULT_WINDOW;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => store_dir = iter.next().map(std::path::PathBuf::from),
            "--ues" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.n_ues = n,
                None => usage(),
            },
            "--days" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.n_days = n,
                None => usage(),
            },
            "--window" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => window = n,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let Some(store_dir) = store_dir else { usage() };

    let store = match DirStore::create(&store_dir) {
        Ok(store) => Box::new(store),
        Err(e) => die(&format!("cannot open store {}: {e}", store_dir.display())),
    };
    let mut engine = match IngestEngine::open(config, store, window) {
        Ok(engine) => engine,
        Err(e) => die(&format!("cannot open ingest: {e}")),
    };

    loop {
        match engine.ingest_next_day() {
            Ok(Some(report)) => {
                note(&format!("committed day {} ({} records)", report.day, report.records));
            }
            Ok(None) => break,
            Err(e) => die(&format!("ingest failed: {e}")),
        }
    }

    let view = match engine.build_view() {
        Ok(view) => view,
        Err(e) => die(&format!("cannot build view: {e}")),
    };
    let full = view.full.unwrap_or_else(|| "null".to_string());
    if let Err(e) = put_bytes(engine.store(), "final.json", full.as_bytes()) {
        die(&format!("cannot write final.json: {e}"));
    }
    // telco-lint: allow(print): the completion line is the binary's contract with its caller
    println!("DONE days={} records={}", view.committed_days, view.records);
}
