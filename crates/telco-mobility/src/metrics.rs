//! Mobility metrics: radius of gyration and visited-sector accounting.
//!
//! §3.3 of the paper defines two device-level mobility metrics computed at
//! daily intervals: the *number of distinct sectors* a UE successfully
//! communicates with, and the *radius of gyration* — the time-weighted RMS
//! distance of visited cell-site locations from the user's centre of mass.
//!
//! Note on the formula: the paper's inline expression multiplies locations
//! by dwell times inside the norm, which is dimensionally inconsistent as
//! printed; we implement the standard time-weighted form of González et
//! al. (Nature 2008), which the paper cites as its source:
//! `g = sqrt( Σ_j t_j ‖l_j − l_cm‖² / Σ_j t_j )` with
//! `l_cm = Σ_j t_j l_j / Σ_j t_j`.

use telco_geo::coords::KmPoint;

/// A visit: a location and the time spent there (any consistent unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// Visited cell-site location.
    pub location: KmPoint,
    /// Dwell weight (e.g. milliseconds spent camped on the site).
    pub dwell: f64,
}

/// Time-weighted centre of mass of a visit sequence. `None` if the total
/// dwell is zero.
pub fn center_of_mass(visits: &[Visit]) -> Option<KmPoint> {
    let total: f64 = visits.iter().map(|v| v.dwell).sum();
    if total <= 0.0 {
        return None;
    }
    let x = visits.iter().map(|v| v.location.x * v.dwell).sum::<f64>() / total;
    let y = visits.iter().map(|v| v.location.y * v.dwell).sum::<f64>() / total;
    Some(KmPoint::new(x, y))
}

/// Time-weighted radius of gyration in km. `None` if the total dwell is
/// zero (no observations).
pub fn radius_of_gyration(visits: &[Visit]) -> Option<f64> {
    let cm = center_of_mass(visits)?;
    let total: f64 = visits.iter().map(|v| v.dwell).sum();
    let ss: f64 = visits
        .iter()
        .map(|v| {
            let d = v.location.distance_km(&cm);
            v.dwell * d * d
        })
        .sum();
    Some((ss / total).sqrt())
}

/// Accumulates a day of sector visits for one UE and yields the two §3.3
/// metrics.
#[derive(Debug, Clone, Default)]
pub struct DailyMobility {
    visits: Vec<(u32, Visit)>, // (sector id, visit)
}

impl DailyMobility {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a camp interval on a sector located at `site_location`.
    pub fn record(&mut self, sector: u32, site_location: KmPoint, dwell_ms: f64) {
        // Merge consecutive intervals on the same sector to bound memory.
        if let Some((last_sector, last_visit)) = self.visits.last_mut() {
            if *last_sector == sector {
                last_visit.dwell += dwell_ms;
                return;
            }
        }
        self.visits.push((sector, Visit { location: site_location, dwell: dwell_ms }));
    }

    /// Reset for the next day, keeping the interval buffer's capacity.
    pub fn clear(&mut self) {
        self.visits.clear();
    }

    /// Number of *distinct* sectors visited.
    pub fn distinct_sectors(&self) -> usize {
        let mut ids = Vec::new();
        self.distinct_sectors_into(&mut ids)
    }

    /// [`DailyMobility::distinct_sectors`] using a caller-owned scratch
    /// buffer, so repeated daily evaluations don't allocate.
    pub fn distinct_sectors_into(&self, scratch: &mut Vec<u32>) -> usize {
        scratch.clear();
        scratch.extend(self.visits.iter().map(|&(s, _)| s));
        scratch.sort_unstable();
        scratch.dedup();
        scratch.len()
    }

    /// Radius of gyration over the recorded visits, km.
    pub fn gyration_km(&self) -> f64 {
        // Same time-weighted form as [`radius_of_gyration`], inlined over
        // the interval list so no temporary visit vector is needed.
        let total: f64 = self.visits.iter().map(|&(_, v)| v.dwell).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let x = self.visits.iter().map(|&(_, v)| v.location.x * v.dwell).sum::<f64>() / total;
        let y = self.visits.iter().map(|&(_, v)| v.location.y * v.dwell).sum::<f64>() / total;
        let cm = KmPoint::new(x, y);
        let ss: f64 = self
            .visits
            .iter()
            .map(|&(_, v)| {
                let d = v.location.distance_km(&cm);
                v.dwell * d * d
            })
            .sum();
        (ss / total).sqrt()
    }

    /// Whether any visit was recorded.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// Number of camp intervals (≥ distinct sectors; counts re-visits).
    pub fn intervals(&self) -> usize {
        self.visits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, t: f64) -> Visit {
        Visit { location: KmPoint::new(x, y), dwell: t }
    }

    #[test]
    fn single_location_has_zero_gyration() {
        let g = radius_of_gyration(&[v(3.0, 4.0, 100.0)]).unwrap();
        assert_eq!(g, 0.0);
    }

    #[test]
    fn symmetric_two_points() {
        // Equal dwell at (0,0) and (10,0): cm at (5,0), gyration 5.
        let g = radius_of_gyration(&[v(0.0, 0.0, 1.0), v(10.0, 0.0, 1.0)]).unwrap();
        assert!((g - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dwell_weighting_pulls_center() {
        // 3:1 dwell: cm at 2.5, gyration = sqrt((3*2.5² + 1*7.5²)/4) ≈ 4.33.
        let g = radius_of_gyration(&[v(0.0, 0.0, 3.0), v(10.0, 0.0, 1.0)]).unwrap();
        let expected = ((3.0 * 6.25 + 56.25) / 4.0f64).sqrt();
        assert!((g - expected).abs() < 1e-12);
        let cm = center_of_mass(&[v(0.0, 0.0, 3.0), v(10.0, 0.0, 1.0)]).unwrap();
        assert!((cm.x - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_dwell_is_none() {
        assert!(radius_of_gyration(&[v(0.0, 0.0, 0.0)]).is_none());
        assert!(radius_of_gyration(&[]).is_none());
    }

    #[test]
    fn daily_mobility_merges_consecutive_and_counts_distinct() {
        let mut m = DailyMobility::new();
        let p = KmPoint::new(0.0, 0.0);
        m.record(1, p, 10.0);
        m.record(1, p, 10.0); // merged
        m.record(2, KmPoint::new(1.0, 0.0), 5.0);
        m.record(1, p, 10.0); // revisit: new interval, same distinct id
        assert_eq!(m.intervals(), 3);
        assert_eq!(m.distinct_sectors(), 2);
        assert!(m.gyration_km() > 0.0);
    }

    #[test]
    fn static_ue_metrics() {
        let mut m = DailyMobility::new();
        m.record(7, KmPoint::new(5.0, 5.0), 86_400_000.0);
        assert_eq!(m.distinct_sectors(), 1);
        assert_eq!(m.gyration_km(), 0.0);
    }

    #[test]
    fn empty_mobility_defaults() {
        let m = DailyMobility::new();
        assert!(m.is_empty());
        assert_eq!(m.distinct_sectors(), 0);
        assert_eq!(m.gyration_km(), 0.0);
    }
}
