//! Mobility profiles.
//!
//! The paper's mobility metrics differ sharply across device types (§5.3,
//! Fig. 10): smartphones visit a median of 22 sectors/day with a 2.7 km
//! median radius of gyration; M2M/IoT devices are mostly static (median 1
//! sector, 0.0 km) yet include a fast-moving tail (modems on trains,
//! telematics — 20.1 km gyration at pct-95); feature phones sit in between
//! (3 sectors, 0.9 km). Profiles are the generative counterpart of those
//! observations.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use telco_devices::types::DeviceType;

/// How a UE moves through the country during a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MobilityProfile {
    /// Never moves (smart meters, fixed routers).
    Stationary,
    /// Moves rarely and locally (vending machines relocated, home devices).
    Nomadic,
    /// Short local trips on foot around a home anchor.
    Pedestrian,
    /// Daily home→work→home pattern with occasional extra trips.
    Commuter,
    /// Several medium-range road trips per day.
    Vehicular,
    /// Long-distance rail travel (the paper's high-HOF tail).
    HighSpeedTrain,
}

impl MobilityProfile {
    /// All profiles.
    pub const ALL: [MobilityProfile; 6] = [
        MobilityProfile::Stationary,
        MobilityProfile::Nomadic,
        MobilityProfile::Pedestrian,
        MobilityProfile::Commuter,
        MobilityProfile::Vehicular,
        MobilityProfile::HighSpeedTrain,
    ];

    /// Profile mix per device type, calibrated to Fig. 10's ECDFs.
    /// Order matches [`MobilityProfile::ALL`].
    pub fn mix(device_type: DeviceType) -> [f64; 6] {
        match device_type {
            // Smartphones: mostly commuters/pedestrians, small HST tail.
            DeviceType::Smartphone => [0.01, 0.03, 0.20, 0.62, 0.12, 0.02],
            // M2M/IoT: overwhelmingly static; ~10% vehicular/rail tail
            // (fleet modems, wearables) producing the 20 km pct-95.
            DeviceType::M2mIot => [0.72, 0.13, 0.03, 0.02, 0.08, 0.02],
            // Feature phones: local movement dominates.
            DeviceType::FeaturePhone => [0.10, 0.12, 0.48, 0.22, 0.07, 0.01],
        }
    }

    /// Sample a profile for a device type.
    pub fn sample<R: Rng + ?Sized>(device_type: DeviceType, rng: &mut R) -> Self {
        let mix = Self::mix(device_type);
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, &p) in mix.iter().enumerate() {
            acc += p;
            if u < acc {
                return Self::ALL[i];
            }
        }
        *Self::ALL.last().expect("nonempty")
    }

    /// Typical travel speed in km/h while on a trip.
    pub fn speed_kmh(&self) -> f64 {
        match self {
            MobilityProfile::Stationary => 0.0,
            MobilityProfile::Nomadic => 4.0,
            MobilityProfile::Pedestrian => 4.5,
            MobilityProfile::Commuter => 28.0,
            MobilityProfile::Vehicular => 70.0,
            MobilityProfile::HighSpeedTrain => 210.0,
        }
    }

    /// Typical one-way trip distance in km (log-median).
    pub fn trip_distance_km(&self) -> f64 {
        match self {
            MobilityProfile::Stationary => 0.0,
            MobilityProfile::Nomadic => 0.4,
            MobilityProfile::Pedestrian => 1.3,
            MobilityProfile::Commuter => 7.5,
            MobilityProfile::Vehicular => 22.0,
            MobilityProfile::HighSpeedTrain => 260.0,
        }
    }

    /// Number of trips on a typical active day.
    pub fn trips_per_day(&self) -> usize {
        match self {
            MobilityProfile::Stationary => 0,
            MobilityProfile::Nomadic => 1,
            MobilityProfile::Pedestrian => 3,
            MobilityProfile::Commuter => 4,
            MobilityProfile::Vehicular => 4,
            MobilityProfile::HighSpeedTrain => 2,
        }
    }

    /// Label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MobilityProfile::Stationary => "Stationary",
            MobilityProfile::Nomadic => "Nomadic",
            MobilityProfile::Pedestrian => "Pedestrian",
            MobilityProfile::Commuter => "Commuter",
            MobilityProfile::Vehicular => "Vehicular",
            MobilityProfile::HighSpeedTrain => "High-speed train",
        }
    }
}

impl std::fmt::Display for MobilityProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mixes_normalize() {
        for ty in DeviceType::ALL {
            let sum: f64 = MobilityProfile::mix(ty).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{ty}: mix sums to {sum}");
        }
    }

    #[test]
    fn m2m_is_mostly_static() {
        let mix = MobilityProfile::mix(DeviceType::M2mIot);
        assert!(mix[0] + mix[1] > 0.8, "M2M must be overwhelmingly static");
    }

    #[test]
    fn smartphones_are_mostly_commuting() {
        let mix = MobilityProfile::mix(DeviceType::Smartphone);
        assert!(mix[3] > 0.4, "commuter share too low");
        assert!(mix[0] < 0.05);
    }

    #[test]
    fn sampling_tracks_mix() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let stationary = (0..n)
            .filter(|_| {
                MobilityProfile::sample(DeviceType::M2mIot, &mut rng) == MobilityProfile::Stationary
            })
            .count();
        let frac = stationary as f64 / n as f64;
        assert!((frac - 0.72).abs() < 0.02, "stationary fraction {frac}");
    }

    #[test]
    fn speeds_and_distances_scale_with_profile() {
        assert!(
            MobilityProfile::HighSpeedTrain.speed_kmh() > MobilityProfile::Vehicular.speed_kmh()
        );
        assert!(
            MobilityProfile::Vehicular.trip_distance_km()
                > MobilityProfile::Commuter.trip_distance_km()
        );
        assert_eq!(MobilityProfile::Stationary.trips_per_day(), 0);
    }
}
