//! Per-UE daily trajectory synthesis.
//!
//! A trajectory is a piecewise-linear path through the km plane: waypoints
//! with millisecond-of-day timestamps. The simulation walks it, mapping
//! positions to serving sectors; everything the paper measures about
//! mobility (visited sectors, radius of gyration, HO timing) derives from
//! these paths.

use rand::{Rng, RngExt};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use telco_geo::coords::{KmPoint, KmRect};

use crate::profile::MobilityProfile;
use crate::schedule::{DayOfWeek, WeeklySchedule};

/// Milliseconds in a day.
pub const DAY_MS: u32 = 86_400_000;

/// A timestamped position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Millisecond of day.
    pub time_ms: u32,
    /// Position on the km plane.
    pub pos: KmPoint,
}

/// One day of movement: waypoints in ascending time order. The UE is
/// assumed to sit at the first waypoint from midnight and at the last
/// waypoint until the following midnight; between waypoints it moves
/// linearly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayTrajectory {
    waypoints: Vec<Waypoint>,
}

impl DayTrajectory {
    /// A trajectory that never leaves `home`.
    pub fn stationary(home: KmPoint) -> Self {
        DayTrajectory { waypoints: vec![Waypoint { time_ms: 0, pos: home }] }
    }

    /// Build from raw waypoints.
    ///
    /// # Panics
    ///
    /// Panics if empty or not strictly ascending in time.
    pub fn from_waypoints(waypoints: Vec<Waypoint>) -> Self {
        assert!(!waypoints.is_empty(), "trajectory needs at least one waypoint");
        assert!(
            waypoints.windows(2).all(|w| w[0].time_ms < w[1].time_ms),
            "waypoints must be strictly ascending in time"
        );
        assert!(
            waypoints.last().expect("nonempty").time_ms < DAY_MS,
            "waypoints must lie within the day"
        );
        DayTrajectory { waypoints }
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Position at a millisecond of day (linear interpolation).
    pub fn position_at(&self, t_ms: u32) -> KmPoint {
        let wps = &self.waypoints;
        if t_ms <= wps[0].time_ms {
            return wps[0].pos;
        }
        let last = wps.last().expect("nonempty");
        if t_ms >= last.time_ms {
            return last.pos;
        }
        // Find the segment containing t.
        let i = wps.partition_point(|w| w.time_ms <= t_ms);
        let (a, b) = (&wps[i - 1], &wps[i]);
        let f = (t_ms - a.time_ms) as f64 / (b.time_ms - a.time_ms) as f64;
        KmPoint::new(a.pos.x + (b.pos.x - a.pos.x) * f, a.pos.y + (b.pos.y - a.pos.y) * f)
    }

    /// Total path length in km.
    pub fn total_distance_km(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].pos.distance_km(&w[1].pos)).sum()
    }

    /// Whether the UE moves at all during the day.
    pub fn is_static(&self) -> bool {
        self.total_distance_km() < 1e-9
    }

    /// Generate a day of movement.
    ///
    /// `home` anchors the UE; `work` is used by commuter profiles on
    /// weekdays. All destinations are clamped into `bounds`.
    pub fn generate<R: Rng + ?Sized>(
        profile: MobilityProfile,
        home: KmPoint,
        work: Option<KmPoint>,
        day: DayOfWeek,
        schedule: &WeeklySchedule,
        bounds: &KmRect,
        rng: &mut R,
    ) -> Self {
        let mut out = DayTrajectory { waypoints: Vec::new() };
        Self::generate_into(profile, home, work, day, schedule, bounds, rng, &mut out);
        out
    }

    /// [`DayTrajectory::generate`] into a reused trajectory, so a caller
    /// looping over UE-days pays no per-day waypoint allocation once the
    /// buffer has grown to its working size.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_into<R: Rng + ?Sized>(
        profile: MobilityProfile,
        home: KmPoint,
        work: Option<KmPoint>,
        day: DayOfWeek,
        schedule: &WeeklySchedule,
        bounds: &KmRect,
        rng: &mut R,
        out: &mut DayTrajectory,
    ) {
        out.waypoints.clear();
        out.waypoints.push(Waypoint { time_ms: 0, pos: home });
        let mut b = TrajectoryBuilder {
            waypoints: &mut out.waypoints,
            speed_kmh: profile.speed_kmh().max(1.0),
            bounds: *bounds,
            free_at_ms: 0,
        };
        match profile {
            MobilityProfile::Stationary => {}
            MobilityProfile::Nomadic => {
                // One short relocation, sometimes returning.
                let depart = sample_departure(schedule, day, rng, 8.0, 20.0);
                let dest = b.random_destination(home, MobilityProfile::Nomadic, rng);
                b.travel_at(depart, dest);
                if rng.random::<f64>() < 0.5 {
                    b.travel_after_dwell(rng.random_range(1.0..5.0), home);
                }
            }
            MobilityProfile::Pedestrian => {
                let n_trips = 1 + rng.random_range(0..3);
                for _ in 0..n_trips {
                    let depart = sample_departure(schedule, day, rng, 7.0, 21.0);
                    let dest = b.random_destination(home, MobilityProfile::Pedestrian, rng);
                    if !b.travel_at(depart, dest) {
                        break;
                    }
                    b.travel_after_dwell(rng.random_range(0.4..1.6), home);
                }
            }
            MobilityProfile::Commuter => {
                if day.is_weekend() {
                    // Weekend: a midday leisure trip from home — commuter-
                    // scale distances (family visits, shopping centres).
                    let depart = sample_departure(schedule, day, rng, 10.0, 15.0);
                    let dest = b.random_destination(home, MobilityProfile::Commuter, rng);
                    if b.travel_at(depart, dest) {
                        b.travel_after_dwell(rng.random_range(1.0..4.0), home);
                    }
                } else {
                    let work = work.unwrap_or_else(|| {
                        b.random_destination(home, MobilityProfile::Commuter, rng)
                    });
                    // Morning commute, peaked before the 8:00 HO peak.
                    let depart = 6.6 + rng.random::<f64>() * 1.8;
                    b.travel_at(depart, work);
                    // Optional lunch errand.
                    if rng.random::<f64>() < 0.4 {
                        let lunch = b.random_destination(work, MobilityProfile::Pedestrian, rng);
                        b.travel_at(12.0 + rng.random::<f64>() * 1.5, lunch);
                        b.travel_after_dwell(0.7, work);
                    }
                    // Afternoon return, driving the 15:00–15:30 peak.
                    let ret = 14.8 + rng.random::<f64>() * 2.6;
                    b.travel_at(ret, home);
                    // Occasional evening errand.
                    if rng.random::<f64>() < 0.3 {
                        let ev = b.random_destination(home, MobilityProfile::Pedestrian, rng);
                        if b.travel_at(18.0 + rng.random::<f64>() * 3.0, ev) {
                            b.travel_after_dwell(rng.random_range(0.5..2.0), home);
                        }
                    }
                }
            }
            MobilityProfile::Vehicular => {
                let n_trips = 2 + rng.random_range(0..3);
                let mut from = home;
                for _ in 0..n_trips {
                    let depart = sample_departure(schedule, day, rng, 6.0, 20.0);
                    let dest = b.random_destination(from, MobilityProfile::Vehicular, rng);
                    if !b.travel_at(depart, dest) {
                        break;
                    }
                    from = dest;
                }
                b.travel_after_dwell(1.0, home);
            }
            MobilityProfile::HighSpeedTrain => {
                let depart = 6.5 + rng.random::<f64>() * 4.0;
                let dest = b.random_destination(home, MobilityProfile::HighSpeedTrain, rng);
                if b.travel_at(depart, dest) {
                    // Return in the evening when time allows.
                    b.travel_after_dwell(rng.random_range(3.0..6.0), home);
                }
            }
        }
    }
}

/// Incremental trajectory assembly with travel-time accounting. Borrows
/// the output waypoint buffer so generation can reuse a caller-owned
/// allocation.
struct TrajectoryBuilder<'a> {
    waypoints: &'a mut Vec<Waypoint>,
    speed_kmh: f64,
    bounds: KmRect,
    /// Time the UE becomes free after its last arrival (ms of day).
    free_at_ms: u32,
}

impl TrajectoryBuilder<'_> {
    fn last_pos(&self) -> KmPoint {
        self.waypoints.last().expect("nonempty").pos
    }

    /// Depart for `dest` at `hour` (or as soon as free). Returns false if
    /// the trip no longer fits in the day.
    fn travel_at(&mut self, hour: f64, dest: KmPoint) -> bool {
        let depart_ms = ((hour.clamp(0.0, 23.9) * 3_600_000.0) as u32).max(self.free_at_ms);
        let from = self.last_pos();
        let dist = from.distance_km(&dest);
        let travel_ms = (dist / self.speed_kmh * 3_600_000.0) as u32;
        let arrive_ms = depart_ms.saturating_add(travel_ms);
        if arrive_ms >= DAY_MS || depart_ms >= DAY_MS {
            return false;
        }
        // Departure waypoint (staying put until then) and arrival waypoint.
        if depart_ms > self.waypoints.last().expect("nonempty").time_ms {
            self.waypoints.push(Waypoint { time_ms: depart_ms, pos: from });
        }
        if arrive_ms > self.waypoints.last().expect("nonempty").time_ms {
            self.waypoints.push(Waypoint { time_ms: arrive_ms, pos: dest });
        }
        self.free_at_ms = arrive_ms;
        true
    }

    /// Travel to `dest` after dwelling `hours` at the current position.
    fn travel_after_dwell(&mut self, hours: f64, dest: KmPoint) -> bool {
        let hour = (self.free_at_ms as f64 / 3_600_000.0) + hours;
        self.travel_at(hour, dest)
    }

    /// Random destination at the profile's characteristic distance.
    fn random_destination<R: Rng + ?Sized>(
        &self,
        from: KmPoint,
        profile: MobilityProfile,
        rng: &mut R,
    ) -> KmPoint {
        let median = profile.trip_distance_km().max(0.05);
        let dist = LogNormal::new(median.ln(), 0.6).expect("valid lognormal").sample(rng);
        let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        self.bounds.clamp(&KmPoint::new(from.x + ang.cos() * dist, from.y + ang.sin() * dist))
    }
}

/// Draw a departure hour from the schedule's intensity curve, restricted to
/// a window of the day.
fn sample_departure<R: Rng + ?Sized>(
    schedule: &WeeklySchedule,
    day: DayOfWeek,
    rng: &mut R,
    from_hour: f64,
    to_hour: f64,
) -> f64 {
    let lo = (from_hour * 2.0) as usize;
    let hi = ((to_hour * 2.0) as usize).min(crate::schedule::SLOTS_PER_DAY - 1);
    // The window never exceeds a day, so the weights fit on the stack.
    let mut weights = [0.0f64; crate::schedule::SLOTS_PER_DAY];
    for (i, s) in (lo..=hi).enumerate() {
        weights[i] = schedule.intensity(day, s);
    }
    let n = hi - lo + 1;
    let total: f64 = weights[..n].iter().sum();
    let mut u: f64 = rng.random_range(0.0..total);
    for (i, &w) in weights[..n].iter().enumerate() {
        if u < w {
            return (lo + i) as f64 / 2.0 + rng.random::<f64>() * 0.5;
        }
        u -= w;
    }
    to_hour
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> KmRect {
        KmRect::new(KmPoint::new(0.0, 0.0), KmPoint::new(600.0, 500.0))
    }

    fn home() -> KmPoint {
        KmPoint::new(300.0, 250.0)
    }

    fn gen(profile: MobilityProfile, day: DayOfWeek, seed: u64) -> DayTrajectory {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DayTrajectory::generate(
            profile,
            home(),
            Some(KmPoint::new(306.0, 250.0)),
            day,
            &WeeklySchedule::default(),
            &bounds(),
            &mut rng,
        )
    }

    #[test]
    fn stationary_never_moves() {
        let t = gen(MobilityProfile::Stationary, DayOfWeek::Monday, 1);
        assert!(t.is_static());
        assert_eq!(t.position_at(0), home());
        assert_eq!(t.position_at(DAY_MS - 1), home());
    }

    #[test]
    fn commuter_reaches_work_and_returns() {
        let t = gen(MobilityProfile::Commuter, DayOfWeek::Tuesday, 2);
        assert!(t.total_distance_km() >= 2.0 * 6.0 - 0.5, "round trip expected");
        // At 11:00 the commuter is away from home; by 23:30 back home-ish.
        let midmorning = t.position_at(11 * 3_600_000);
        assert!(midmorning.distance_km(&home()) > 1.0);
        let night = t.position_at(DAY_MS - 1);
        assert!(night.distance_km(&home()) < 6.1 + 1e-9);
    }

    #[test]
    fn positions_interpolate_linearly() {
        let t = DayTrajectory::from_waypoints(vec![
            Waypoint { time_ms: 0, pos: KmPoint::new(0.0, 0.0) },
            Waypoint { time_ms: 1000, pos: KmPoint::new(10.0, 0.0) },
        ]);
        let p = t.position_at(500);
        assert!((p.x - 5.0).abs() < 1e-12);
        assert_eq!(t.position_at(2000), KmPoint::new(10.0, 0.0));
        assert_eq!(t.total_distance_km(), 10.0);
    }

    #[test]
    fn waypoints_are_time_ordered_for_all_profiles() {
        for (i, profile) in MobilityProfile::ALL.iter().enumerate() {
            for day in [DayOfWeek::Monday, DayOfWeek::Sunday] {
                let t = gen(*profile, day, 100 + i as u64);
                assert!(
                    t.waypoints().windows(2).all(|w| w[0].time_ms < w[1].time_ms),
                    "{profile} produced unordered waypoints"
                );
                assert!(t.waypoints().last().unwrap().time_ms < DAY_MS);
            }
        }
    }

    #[test]
    fn train_travels_far() {
        let mut longest: f64 = 0.0;
        for seed in 0..10 {
            let t = gen(MobilityProfile::HighSpeedTrain, DayOfWeek::Wednesday, seed);
            longest = longest.max(t.total_distance_km());
        }
        assert!(longest > 100.0, "HST should cover long distances: {longest}");
    }

    #[test]
    fn pedestrian_stays_local() {
        for seed in 0..10 {
            let t = gen(MobilityProfile::Pedestrian, DayOfWeek::Thursday, seed);
            for w in t.waypoints() {
                assert!(
                    w.pos.distance_km(&home()) < 30.0,
                    "pedestrian wandered {} km away",
                    w.pos.distance_km(&home())
                );
            }
        }
    }

    #[test]
    fn destinations_clamped_to_bounds() {
        // Home at the map corner: all destinations must stay inside.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let corner = KmPoint::new(0.5, 0.5);
        for _ in 0..20 {
            let t = DayTrajectory::generate(
                MobilityProfile::Vehicular,
                corner,
                None,
                DayOfWeek::Friday,
                &WeeklySchedule::default(),
                &bounds(),
                &mut rng,
            );
            for w in t.waypoints() {
                assert!(bounds().contains(&w.pos));
            }
        }
    }

    #[test]
    #[should_panic]
    fn unordered_waypoints_rejected() {
        DayTrajectory::from_waypoints(vec![
            Waypoint { time_ms: 100, pos: KmPoint::new(0.0, 0.0) },
            Waypoint { time_ms: 50, pos: KmPoint::new(1.0, 0.0) },
        ]);
    }
}
