//! Diurnal and weekly activity schedules.
//!
//! Calibrated to the paper's Fig. 7 temporal dynamics (§5.1): on weekdays,
//! HO activity rises ×3 between 6:00 and 8:00, peaks at 8:00–8:30 and again
//! at 15:00–15:30, then decays ≈11% per 30 minutes to a nightly minimum at
//! 2:00–3:30; weekends show a single midday peak (12:00–13:00) with the
//! Sunday peak ≈33% below Friday's, and the minimum shifted to 3:00–5:00.

use serde::{Deserialize, Serialize};

/// 30-minute slots per day.
pub const SLOTS_PER_DAY: usize = 48;

/// Day of week (the study starts Monday 2024-01-29).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Day of week for a zero-based study day index (day 0 = Monday).
    pub fn from_study_day(day: u32) -> Self {
        Self::ALL[(day % 7) as usize]
    }

    /// Whether the day is Saturday or Sunday.
    pub fn is_weekend(&self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            DayOfWeek::Monday => "Mo",
            DayOfWeek::Tuesday => "Tu",
            DayOfWeek::Wednesday => "We",
            DayOfWeek::Thursday => "Th",
            DayOfWeek::Friday => "Fr",
            DayOfWeek::Saturday => "Sa",
            DayOfWeek::Sunday => "Su",
        }
    }

    /// Index 0..7, Monday = 0.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|d| d == self).expect("listed")
    }
}

impl std::fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The weekly activity schedule: a relative mobility intensity per
/// 30-minute slot for weekdays and weekend days, plus per-day scaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklySchedule {
    weekday: Vec<f64>,
    weekend: Vec<f64>,
}

impl Default for WeeklySchedule {
    fn default() -> Self {
        WeeklySchedule { weekday: weekday_curve(), weekend: weekend_curve() }
    }
}

impl WeeklySchedule {
    /// Relative activity intensity (peak weekday slot = 1.0) for a slot of
    /// a given day. Saturday runs at 80% and Sunday at 67% of the weekday
    /// peak (Fig. 7: Sunday peak is −33% vs Friday).
    pub fn intensity(&self, day: DayOfWeek, slot: usize) -> f64 {
        assert!(slot < SLOTS_PER_DAY, "slot {slot} out of range");
        match day {
            DayOfWeek::Saturday => self.weekend[slot] * 0.80,
            DayOfWeek::Sunday => self.weekend[slot] * 0.67,
            _ => self.weekday[slot],
        }
    }

    /// The slot with maximum intensity on a day.
    pub fn peak_slot(&self, day: DayOfWeek) -> usize {
        (0..SLOTS_PER_DAY)
            .max_by(|&a, &b| {
                self.intensity(day, a).partial_cmp(&self.intensity(day, b)).expect("finite")
            })
            .expect("nonempty")
    }

    /// Probability weights for trip departure times on a day (normalized).
    pub fn departure_weights(&self, day: DayOfWeek) -> Vec<f64> {
        let mut w: Vec<f64> = (0..SLOTS_PER_DAY).map(|s| self.intensity(day, s)).collect();
        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        w
    }
}

/// Weekday intensity curve (48 slots, peak = 1.0).
fn weekday_curve() -> Vec<f64> {
    let mut c = vec![0.0; SLOTS_PER_DAY];
    for (slot, v) in c.iter_mut().enumerate() {
        let h = slot as f64 / 2.0;
        *v = if h < 2.0 {
            // Post-midnight decline into the minimum.
            0.14 - 0.02 * h
        } else if h < 3.5 {
            0.10 // nightly minimum at 2:00–3:30
        } else if h < 6.0 {
            0.10 + (h - 3.5) * 0.09 // slow pre-dawn rise
        } else if h < 8.0 {
            // The ×3 morning surge from 6:00 to the 8:00 peak.
            0.33 + (h - 6.0) / 2.0 * 0.67
        } else if h < 8.5 {
            1.0 // morning peak 8:00–8:30
        } else if h < 12.0 {
            0.80 // mid-morning plateau
        } else if h < 15.0 {
            0.85 // early afternoon build-up
        } else if h < 15.5 {
            0.97 // afternoon peak 15:00–15:30
        } else {
            // Geometric decay ≈11% per 30-minute slot until midnight.
            0.97 * 0.89_f64.powf((h - 15.5) * 2.0)
        };
    }
    c
}

/// Weekend intensity curve: single midday peak 12:00–13:00, minimum at
/// 3:00–5:00.
fn weekend_curve() -> Vec<f64> {
    let mut c = vec![0.0; SLOTS_PER_DAY];
    for (slot, v) in c.iter_mut().enumerate() {
        let h = slot as f64 / 2.0;
        *v = if h < 3.0 {
            0.16 - 0.02 * h
        } else if h < 5.0 {
            0.09 // weekend minimum 3:00–5:00
        } else if h < 12.0 {
            0.09 + (h - 5.0) / 7.0 * 0.91 // long morning ramp
        } else if h < 13.0 {
            1.0 // midday peak 12:00–13:00
        } else {
            // First post-peak slot already decayed one step.
            0.93_f64.powf((h - 13.0) * 2.0 + 1.0)
        };
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_day_zero_is_monday() {
        assert_eq!(DayOfWeek::from_study_day(0), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::from_study_day(5), DayOfWeek::Saturday);
        assert_eq!(DayOfWeek::from_study_day(6), DayOfWeek::Sunday);
        assert_eq!(DayOfWeek::from_study_day(7), DayOfWeek::Monday);
    }

    #[test]
    fn weekday_peaks_at_morning_rush() {
        let s = WeeklySchedule::default();
        let peak = s.peak_slot(DayOfWeek::Monday);
        assert_eq!(peak, 16, "peak must be the 8:00–8:30 slot");
    }

    #[test]
    fn weekend_peaks_at_midday() {
        let s = WeeklySchedule::default();
        let peak = s.peak_slot(DayOfWeek::Sunday);
        assert!((24..26).contains(&peak), "weekend peak slot {peak}");
    }

    #[test]
    fn sunday_peak_is_a_third_below_friday() {
        let s = WeeklySchedule::default();
        let fri = s.intensity(DayOfWeek::Friday, s.peak_slot(DayOfWeek::Friday));
        let sun = s.intensity(DayOfWeek::Sunday, s.peak_slot(DayOfWeek::Sunday));
        let drop = 1.0 - sun / fri;
        assert!((drop - 0.33).abs() < 0.02, "Sunday drop {drop}");
    }

    #[test]
    fn morning_surge_is_threefold() {
        let s = WeeklySchedule::default();
        let at6 = s.intensity(DayOfWeek::Tuesday, 12);
        let at8 = s.intensity(DayOfWeek::Tuesday, 16);
        let ratio = at8 / at6;
        assert!((2.5..3.5).contains(&ratio), "6→8 surge ×{ratio}");
    }

    #[test]
    fn weekday_minimum_in_small_hours() {
        let s = WeeklySchedule::default();
        let min_slot = (0..SLOTS_PER_DAY)
            .min_by(|&a, &b| {
                s.intensity(DayOfWeek::Wednesday, a)
                    .partial_cmp(&s.intensity(DayOfWeek::Wednesday, b))
                    .unwrap()
            })
            .unwrap();
        // 2:00–3:30 → slots 4..7.
        assert!((4..7).contains(&min_slot), "min slot {min_slot}");
    }

    #[test]
    fn afternoon_decay_rate() {
        let s = WeeklySchedule::default();
        // Between 16:00 and 20:00, each slot decays ≈11%.
        for slot in 32..40 {
            let r = s.intensity(DayOfWeek::Monday, slot + 1) / s.intensity(DayOfWeek::Monday, slot);
            assert!((r - 0.89).abs() < 0.02, "slot {slot} decay ratio {r}");
        }
    }

    #[test]
    fn departure_weights_normalize() {
        let s = WeeklySchedule::default();
        for day in DayOfWeek::ALL {
            let w = s.departure_weights(day);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert_eq!(w.len(), SLOTS_PER_DAY);
        }
    }
}
