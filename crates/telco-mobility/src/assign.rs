//! Home and work anchor assignment.
//!
//! UEs are anchored at home postcodes proportionally to census population —
//! which is what makes the paper's Fig. 5 inference (night-time home
//! location vs census) land on a near-perfect linear relationship — and
//! commuters get a work anchor biased towards employment centres (their
//! district's town postcode or a nearby urban one).

use rand::{Rng, RngExt};
use rand_distr::{Distribution, LogNormal};

use telco_geo::coords::KmPoint;
use telco_geo::country::Country;
use telco_geo::postcode::PostcodeId;

/// Weighted assignment of home postcodes: each UE independently draws a
/// postcode with probability proportional to its census population.
pub fn assign_home_postcodes<R: Rng + ?Sized>(
    country: &Country,
    n_ues: usize,
    rng: &mut R,
) -> Vec<PostcodeId> {
    let mut cumulative: Vec<f64> = Vec::with_capacity(country.postcodes().len());
    let mut acc = 0.0;
    for pc in country.postcodes() {
        acc += pc.population as f64;
        cumulative.push(acc);
    }
    assert!(acc > 0.0, "country has no population");
    (0..n_ues)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..acc);
            let idx = cumulative.partition_point(|&c| c <= u).min(cumulative.len() - 1);
            PostcodeId(idx as u32)
        })
        .collect()
}

/// A concrete home point inside a postcode: scattered around the centroid
/// within the postcode's equivalent radius.
pub fn home_point<R: Rng + ?Sized>(
    country: &Country,
    postcode: PostcodeId,
    rng: &mut R,
) -> KmPoint {
    let pc = country.postcode(postcode);
    let radius = (pc.area_km2 / std::f64::consts::PI).sqrt();
    let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let r: f64 = rng.random::<f64>().sqrt() * radius * 0.9;
    country
        .bounds
        .clamp(&KmPoint::new(pc.centroid.x + ang.cos() * r, pc.centroid.y + ang.sin() * r))
}

/// A work anchor for a commuter living at `home` in `home_postcode`:
/// a point at a commute-scaled distance, biased towards the district's
/// employment centre (the most populous postcode of the home district).
pub fn work_point<R: Rng + ?Sized>(
    country: &Country,
    home_postcode: PostcodeId,
    home: KmPoint,
    rng: &mut R,
) -> KmPoint {
    let district = country.district(country.postcode(home_postcode).district);
    // Employment centre: the district's most populous postcode.
    let centre = district
        .postcodes
        .iter()
        .map(|&p| country.postcode(p))
        .max_by_key(|p| p.population)
        .expect("district has postcodes")
        .centroid;
    // Commute distance: lognormal with ~7.5 km median (drives the 2.7 km
    // median radius of gyration of Fig. 10b).
    let dist = LogNormal::new(7.5f64.ln(), 0.55).expect("valid lognormal").sample(rng);
    let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let free = KmPoint::new(home.x + ang.cos() * dist, home.y + ang.sin() * dist);
    // Blend towards the employment centre.
    let w: f64 = rng.random_range(0.3..0.8);
    country
        .bounds
        .clamp(&KmPoint::new(free.x * (1.0 - w) + centre.x * w, free.y * (1.0 - w) + centre.y * w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use telco_geo::country::CountryConfig;

    #[test]
    fn homes_track_population() {
        let country = Country::generate(CountryConfig::tiny());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let homes = assign_home_postcodes(&country, 30_000, &mut rng);
        // Compare realized district shares against census shares.
        let mut per_district = vec![0usize; country.districts().len()];
        for &h in &homes {
            per_district[country.postcode(h).district.0 as usize] += 1;
        }
        let total_pop = country.total_population() as f64;
        for d in country.districts() {
            let census_share = d.population as f64 / total_pop;
            let realized = per_district[d.id.0 as usize] as f64 / homes.len() as f64;
            assert!(
                (realized - census_share).abs() < 0.02 + census_share * 0.25,
                "district {}: census {census_share:.4} vs realized {realized:.4}",
                d.id
            );
        }
    }

    #[test]
    fn home_points_inside_bounds() {
        let country = Country::generate(CountryConfig::tiny());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for pc in country.postcodes().iter().take(20) {
            for _ in 0..5 {
                let p = home_point(&country, pc.id, &mut rng);
                assert!(country.bounds.contains(&p));
            }
        }
    }

    #[test]
    fn work_points_at_commute_distance() {
        let country = Country::generate(CountryConfig::tiny());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pc = country.postcodes()[0].id;
        let home = home_point(&country, pc, &mut rng);
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let w = work_point(&country, pc, home, &mut rng);
            total += home.distance_km(&w);
            assert!(country.bounds.contains(&w));
        }
        let mean = total / n as f64;
        assert!(
            (1.0..30.0).contains(&mean),
            "mean commute distance {mean} km out of plausible range"
        );
    }

    #[test]
    fn assignment_is_deterministic_given_rng() {
        let country = Country::generate(CountryConfig::tiny());
        let a = assign_home_postcodes(&country, 100, &mut ChaCha8Rng::seed_from_u64(1));
        let b = assign_home_postcodes(&country, 100, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
