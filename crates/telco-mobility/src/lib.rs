//! # telco-mobility
//!
//! UE mobility substrate: per-device-type mobility profiles calibrated to
//! the paper's Fig. 10 ECDFs, diurnal/weekly activity schedules matching
//! Fig. 7's temporal dynamics, piecewise-linear daily trajectory synthesis,
//! home/work anchor assignment proportional to census population, and the
//! §3.3 mobility metrics (visited sectors, radius of gyration).
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use telco_geo::coords::{KmPoint, KmRect};
//! use telco_mobility::profile::MobilityProfile;
//! use telco_mobility::schedule::{DayOfWeek, WeeklySchedule};
//! use telco_mobility::trajectory::DayTrajectory;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let bounds = KmRect::new(KmPoint::new(0.0, 0.0), KmPoint::new(100.0, 100.0));
//! let t = DayTrajectory::generate(
//!     MobilityProfile::Commuter,
//!     KmPoint::new(50.0, 50.0),
//!     Some(KmPoint::new(55.0, 50.0)),
//!     DayOfWeek::Monday,
//!     &WeeklySchedule::default(),
//!     &bounds,
//!     &mut rng,
//! );
//! assert!(t.total_distance_km() > 0.0);
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod metrics;
pub mod profile;
pub mod schedule;
pub mod trajectory;

pub use assign::{assign_home_postcodes, home_point, work_point};
pub use metrics::{center_of_mass, radius_of_gyration, DailyMobility, Visit};
pub use profile::MobilityProfile;
pub use schedule::{DayOfWeek, WeeklySchedule, SLOTS_PER_DAY};
pub use trajectory::{DayTrajectory, Waypoint, DAY_MS};
