//! `repro bench-serve` — measure the always-on service: sustained ingest
//! rate (day folds through the full snapshot commit protocol, including
//! per-day view rebuilds) while concurrent clients hammer the query
//! socket, and the query latency distribution they observe. Writes the
//! numbers to `BENCH_serve.json` at the repo root.
//!
//! The query load runs *during* ingest on purpose: the design claim is
//! that queries never contend with a fold (they read the previously
//! published view), so their p99 should not balloon while days commit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use telco_serve::{query_line, IngestEngine, Published, QueryServer};
use telco_sim::SimConfig;
use telco_store::DirStore;

/// Concurrent query clients hammering the socket during ingest.
const CLIENTS: usize = 4;

const QUERIES: [&str; 5] = [
    "{\"query\":\"status\"}",
    "{\"query\":\"outputs\"}",
    "{\"query\":\"window\",\"days\":1}",
    "{\"query\":\"window\",\"days\":7}",
    "{\"query\":\"table\",\"name\":\"ho_types\"}",
];

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the serve benchmark on `config` and write `BENCH_serve.json`.
pub fn run(config: SimConfig, preset: &str) {
    let dir = std::env::temp_dir().join("telco-bench-serve");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Box::new(DirStore::create(&dir).expect("create bench store"));
    let mut engine = IngestEngine::open(config.clone(), store, telco_serve::DEFAULT_WINDOW)
        .expect("open ingest");
    let published = Arc::new(Published::new(engine.build_view().expect("initial view")));
    let mut server = QueryServer::start(Arc::clone(&published), 0).expect("bind query socket");
    let addr = server.addr();
    eprintln!(
        "bench-serve: {preset} preset ({} UEs x {} days), {CLIENTS} query clients on {addr}",
        config.n_ues, config.n_days
    );

    // Query clients: rotate through the query matrix until told to stop,
    // recording one latency sample per round trip.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::new();
                let mut i = c; // desynchronize the rotation across clients
                               // ordering: Relaxed — plain stop flag; latency samples publish via thread join, not the flag
                while !stop.load(Ordering::Relaxed) {
                    let query = QUERIES[i % QUERIES.len()];
                    i += 1;
                    let t0 = Instant::now();
                    if query_line(addr, query).is_err() {
                        break;
                    }
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();

    // The ingest loop under measurement: day fold + snapshot commits +
    // view rebuild + publish, i.e. exactly what `repro serve` sustains.
    let t0 = Instant::now();
    let mut records = 0u64;
    let mut days = 0u32;
    while let Some(report) = engine.ingest_next_day().expect("ingest day") {
        records += report.records;
        days += 1;
        published.publish(engine.build_view().expect("rebuild view"));
    }
    let ingest_secs = t0.elapsed().as_secs_f64();

    // Keep serving briefly after ingest so the tail of the latency
    // sample isn't dominated by fold contention — then stop the load.
    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed); // ordering: Relaxed — clients only need to see it eventually; join below is the barrier
    let mut latencies_ms: Vec<f64> =
        clients.into_iter().flat_map(|c| c.join().expect("query client")).collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    server.stop();

    let view_bytes = published.current().full.as_ref().map_or(0, String::len);
    let p50 = percentile_ms(&latencies_ms, 0.50);
    let p99 = percentile_ms(&latencies_ms, 0.99);
    eprintln!(
        "bench-serve: {days} days ({records} records) in {ingest_secs:.2}s; {} queries, \
         p50 {p50:.2}ms p99 {p99:.2}ms",
        latencies_ms.len()
    );

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"preset\": \"{preset}\",\n  \"ues\": {},\n  \"days\": {days},\n  \
         \"records\": {records},\n  \"ingest\": {{\n    \"secs\": {ingest_secs:.4},\n    \
         \"days_per_sec\": {:.3},\n    \"records_per_sec\": {:.0},\n    \
         \"includes_view_rebuild\": true\n  }},\n  \"queries\": {{\n    \
         \"clients\": {CLIENTS},\n    \"count\": {},\n    \"concurrent_with_ingest\": true,\n    \
         \"p50_ms\": {p50:.3},\n    \"p99_ms\": {p99:.3}\n  }},\n  \
         \"served_view_bytes\": {view_bytes}\n}}\n",
        config.n_ues,
        days as f64 / ingest_secs,
        records as f64 / ingest_secs,
        latencies_ms.len(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("bench-serve: wrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&dir);
}
