//! `repro` — regenerate every table and figure of *Through the Telco
//! Lens* (IMC '24) from a simulated countrywide trace.
//!
//! ```text
//! repro [--small|--tiny] [all|table1|table2|table3|table4|table5|table6|
//!        table7|table8|table9|fig3a|fig3b|fig4a|fig4b|fig5|fig6|fig7|
//!        fig8|fig9|fig10|fig11|fig12|fig13|fig14a|fig14b|fig15|fig16|
//!        fig17|fig18|headlines]
//! ```
//!
//! With no experiment argument, `all` is assumed. `--small` runs the
//! 7-day/3k-UE configuration instead of the full 28-day study; `--tiny`
//! is for smoke tests. `--spill-dir <dir>` runs the simulation out of
//! core: per-worker runs spill to `<dir>` as v2 chunk files and are
//! merged from disk, bounding trace memory (byte-identical output).

#![forbid(unsafe_code)]

use telco_analytics::modeling::HofModels;
use telco_analytics::Study;
use telco_sim::SimConfig;
use telco_stats::desc::percentile;

mod bench_runner;
mod bench_serve;
mod bench_study;
mod bench_trace;
mod orchestrate_cli;
mod serve_cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Sharded-sweep and serve subcommands route before flag parsing:
    // they own their argument grammar (see orchestrate_cli, serve_cli).
    if let Some(first) = args.first() {
        if ["plan", "worker", "orchestrate"].contains(&first.as_str()) {
            std::process::exit(orchestrate_cli::run(first, &args[1..]));
        }
        if ["serve", "query"].contains(&first.as_str()) {
            std::process::exit(serve_cli::run(first, &args[1..]));
        }
    }
    let mut config = SimConfig::default_study();
    let mut preset_name = "default";
    let mut spill_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => {
                config = SimConfig::small();
                preset_name = "small";
            }
            "--medium" => {
                config = SimConfig::medium();
                preset_name = "medium";
            }
            "--tiny" => {
                config = SimConfig::tiny();
                preset_name = "tiny";
            }
            "--spill-dir" => match iter.next() {
                Some(dir) => spill_dir = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("repro: --spill-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--small|--medium|--tiny] [--spill-dir <dir>] \
                     [bench-runner|bench-trace|bench-study|bench-serve|experiment ...]\n       \
                     repro plan|worker|orchestrate --dir <store> ...  (sharded sweeps; \
                     see EXPERIMENTS.md)\n       \
                     repro serve|query ...  (snapshot-native ingest + query service; \
                     see EXPERIMENTS.md)"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.iter().any(|w| w == "bench-serve") {
        // Service measurement: ingest rate + query latency under load.
        // Defaults to the small preset unless a scale flag was given.
        if preset_name == "default" {
            config = SimConfig::small();
            preset_name = "small";
        }
        bench_serve::run(config, preset_name);
        return;
    }
    if wanted.iter().any(|w| w == "bench-trace") {
        // Throughput measurement: defaults to the small preset unless a
        // scale flag was given explicitly.
        if preset_name == "default" {
            config = SimConfig::small();
            preset_name = "small";
        }
        bench_trace::run(config, preset_name);
        return;
    }
    if wanted.iter().any(|w| w == "bench-study") {
        // Sweep-throughput measurement: with no explicit scale flag the
        // full small + medium preset matrix runs; a scale flag restricts
        // the matrix to that preset. `--iters N` controls the best-of-N
        // repetition count (CI smoke uses 1).
        let presets: Vec<(SimConfig, &str)> = if preset_name == "default" {
            vec![(SimConfig::small(), "small"), (SimConfig::medium(), "medium")]
        } else {
            vec![(config, preset_name)]
        };
        let iters = wanted
            .iter()
            .position(|w| w == "--iters")
            .and_then(|i| wanted.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(3)
            .max(1);
        bench_study::run(presets, iters, spill_dir.as_deref());
        return;
    }
    if wanted.iter().any(|w| w == "bench-runner") {
        // Throughput measurement, not a table: defaults to the small
        // preset unless a scale flag was given explicitly.
        if preset_name == "default" {
            config = SimConfig::small();
            preset_name = "small";
        }
        // Optional externally measured seed-runner wall time, e.g.
        // `bench-runner --seed-secs 2.042`.
        let seed_secs = wanted
            .iter()
            .position(|w| w == "--seed-secs")
            .and_then(|i| wanted.get(i + 1))
            .and_then(|v| v.parse::<f64>().ok());
        bench_runner::run(config, preset_name, seed_secs);
        return;
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    eprintln!(
        "repro: simulating {} UEs × {} days (seed {})...",
        config.n_ues, config.n_days, config.seed
    );
    let t0 = std::time::Instant::now();
    let study = match &spill_dir {
        Some(dir) => {
            // Out-of-core: per-worker runs spill to disk as v2 chunk
            // files and merge from disk into one sealed trace; every
            // analysis below then streams it chunk-by-chunk — same
            // bytes, bounded memory.
            eprintln!("repro: spilling runs to {}", dir.display());
            std::fs::create_dir_all(dir).expect("create spill dir");
            Study::from_data(
                telco_sim::run_study_spilled(config, dir).expect("spilled simulation failed"),
            )
        }
        None => Study::run(config),
    };
    eprintln!("repro: simulation finished in {:?}", t0.elapsed());
    eprintln!(
        "repro: {} handover records, {} sector-day observations\n",
        study.data().trace.len(),
        study.frame().len()
    );

    // Models are shared by several outputs; compute lazily.
    let models = std::cell::OnceCell::<HofModels>::new();
    let get_models = || -> &HofModels { models.get_or_init(|| study.models()) };

    if want("table1") {
        println!("{}", study.dataset_stats().table());
    }
    if want("table2") {
        println!("{}", study.ho_types().table());
    }
    if want("table3") {
        println!("{}", HofModels::table3());
    }
    if want("fig3a") {
        println!("{}", study.deployment_evolution().table());
    }
    if want("fig3b") {
        println!("{}", study.rat_usage().table());
    }
    if want("fig4a") {
        println!("{}", study.device_mix().table_manufacturers());
    }
    if want("fig4b") {
        println!("{}", study.device_mix().table_rat_support());
    }
    if want("fig5") {
        println!("{}", study.population_inference().table());
    }
    if want("fig6") {
        println!("{}", study.ho_density().table());
    }
    if want("fig7") {
        println!("{}", study.temporal_evolution().table());
    }
    if want("fig8") {
        println!("{}", study.durations().table());
    }
    if want("fig9") {
        println!("{}", study.district_distribution().table());
    }
    if want("fig10") {
        println!("{}", study.mobility().table());
    }
    if want("fig11") {
        println!("{}", study.manufacturer_impact().table());
    }
    if want("fig12") {
        let patterns = study.hof_patterns();
        println!("{}", patterns.table());
        if patterns.rural_morning_excess.is_finite() {
            println!(
                "Rural morning-peak excess over urban: {:.1}% (paper: +32.4%)\n",
                100.0 * patterns.rural_morning_excess
            );
        }
    }
    if want("fig13") {
        println!("{}", study.hof_vs_mobility().table());
    }
    if want("fig14a") {
        let causes = study.causes();
        println!("{}", causes.table_shares());
        println!(
            "Principal causes cover {:.1}% of HOFs; {:.1}% of HOFs on ->3G, \
             {:.3}% on ->2G; {} distinct causes collected.\n",
            100.0 * causes.principal_share(),
            100.0 * causes.to3g_failure_share,
            100.0 * causes.to2g_failure_share,
            causes.distinct_causes
        );
    }
    if want("fig14b") {
        println!("{}", study.causes().table_durations());
    }
    if want("fig15") {
        println!("{}", study.causes().table_stacked());
    }
    if want("table4") {
        println!("{}", get_models().table4());
    }
    if want("table5") {
        println!(
            "{}",
            HofModels::regression_table(
                &get_models().full_model,
                "Table 5: Linear model, all covariates (outlier-filtered)"
            )
        );
    }
    if want("table6") {
        println!("{}", get_models().table6());
    }
    if want("table7") {
        println!(
            "{}",
            HofModels::regression_table(
                &get_models().no_2g_model,
                "Table 7: Linear model w/o 2G HOs"
            )
        );
    }
    if want("table8") {
        println!(
            "{}",
            HofModels::quantile_table(
                &get_models().quantile_filtered,
                "Table 8: Quantile regression w/o outliers"
            )
        );
    }
    if want("table9") {
        println!(
            "{}",
            HofModels::quantile_table(
                &get_models().quantile_all,
                "Table 9: Quantile regression - all non-zero HOF cells"
            )
        );
    }
    if want("fig16") {
        let m = get_models();
        println!("== Fig 16: ECDFs of HOF rate per HO type ==");
        for (label, panel) in [
            ("all cells", &m.ecdf_all),
            ("non-zero", &m.ecdf_nonzero),
            ("filtered", &m.ecdf_filtered),
        ] {
            for (t, e) in panel.iter().enumerate() {
                if let Some(e) = e {
                    println!(
                        "  {label:<9} type {t}: median {:.3}% p90 {:.2}% (n={})",
                        e.median(),
                        e.quantile(0.90),
                        e.len()
                    );
                }
            }
        }
        println!();
    }
    if want("pingpong") {
        println!("{}", study.pingpong().table());
    }
    if want("fig17") {
        println!("{}", study.vendor_analysis().table_shares());
    }
    if want("fig18") {
        println!("{}", study.vendor_analysis().table_boxplots());
    }
    if want("headlines") || all {
        print_headlines(&study, get_models());
    }
    // Ablations are opt-in (three extra simulations).
    if wanted.iter().any(|w| w == "ablations") {
        run_ablations(study.data().config.clone());
    }
}

/// Ablate the design choices DESIGN.md calls out: the vertical-fallback
/// (coverage) model and the intra-site carrier-change model. Each ablation
/// re-runs the same seed with one mechanism disabled and reports the
/// metrics that mechanism exists to produce.
fn run_ablations(base: SimConfig) {
    println!("== Ablations (same seed, one mechanism off) ==");
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>12}",
        "variant", "vertical%", "HOF rate%", "smart sectors", "HOs/UE/day"
    );
    let mut variants: Vec<(&str, SimConfig)> = vec![("baseline", base.clone())];
    let mut no_vertical = base.clone();
    no_vertical.coverage.urban_base = 0.0;
    no_vertical.coverage.rural_base = 0.0;
    variants.push(("no vertical fallback", no_vertical));
    let mut no_carrier = base.clone();
    no_carrier.session.carrier_change_per_slot = [0.0; 3];
    variants.push(("no carrier changes", no_carrier));

    for (name, config) in variants {
        let n_ues = config.n_ues;
        let study = Study::run(config);
        let counts = study.trace_counts();
        let total: u64 = counts.by_type.iter().sum();
        let vertical = (counts.by_type[1] + counts.by_type[2]) as f64 / total.max(1) as f64;
        let smart_sectors = study
            .mobility()
            .median_sectors(telco_devices::types::DeviceType::Smartphone)
            .unwrap_or(0.0);
        println!(
            "{:<26} {:>10.2} {:>12.3} {:>14.0} {:>12.1}",
            name,
            100.0 * vertical,
            100.0 * counts.hof_rate(),
            smart_sectors,
            counts.daily_mean() / n_ues as f64,
        );
    }
    println!(
        "\nReading: without the coverage model there are no vertical HOs (and \
         the HOF rate collapses, §6.3); without carrier changes smartphones \
         lose most of their visited sectors (Fig. 10) and HO volume."
    );
}

/// The paper's headline statistical claims, paper-vs-measured.
fn print_headlines(study: &Study, models: &HofModels) {
    println!("== Headline claims: paper vs measured ==");
    let t2 = study.ho_types();
    println!("intra share:            paper 94.14%   measured {:.2}%", 100.0 * t2.intra_share());
    let d = study.durations();
    println!("intra median duration:  paper 43 ms    measured {:.0} ms", d.intra.median());
    if let Some(e3) = &d.to3g {
        println!("->3G median duration:   paper 412 ms   measured {:.0} ms", e3.median());
    }
    let density = study.ho_density();
    println!("Pearson(HO, pop):       paper 0.97     measured {:.3}", density.pearson);
    let pop = study.population_inference();
    println!("census R²:              paper 0.92     measured {:.3}", pop.r_squared);
    let temporal = study.temporal_evolution();
    println!(
        "urban HO share:         paper 78%      measured {:.1}%",
        100.0 * temporal.urban_ho_share
    );
    println!(
        "Pearson(HO, active):    paper 0.9      measured {:.3}",
        temporal.ho_active_correlation
    );
    let causes = study.causes();
    println!(
        "HOFs on ->3G:           paper 75%      measured {:.1}%",
        100.0 * causes.to3g_failure_share
    );
    println!(
        "8 causes cover:         paper 92%      measured {:.1}%",
        100.0 * causes.principal_share()
    );
    println!(
        "ANOVA η² (HO type):     paper 0.81     measured {:.3}  (p={:.1e})",
        models.anova_ho_type.eta_squared, models.anova_ho_type.p_value
    );
    if let Some(c3) = models.to3g_coefficient() {
        println!("univariate ->3G coef:   paper +5.12    measured {c3:+.2}");
    }
    if let Some(c2) = models.to2g_coefficient() {
        println!("univariate ->2G coef:   paper +6.82    measured {c2:+.2}");
    }
    println!(
        "RF baseline (App. B):   linear RMSE {:.2}  forest RMSE {:.2}  MAE {:.2}",
        models.full_model.rmse, models.forest_quality.rmse, models.forest_quality.mae
    );
    let patterns = study.hof_patterns();
    if patterns.rural_morning_excess.is_finite() {
        println!(
            "rural HOF excess 7-8h:  paper +32.4%   measured {:+.1}%",
            100.0 * patterns.rural_morning_excess
        );
    }
    let mobility = study.mobility();
    if let Some(m) = mobility.median_sectors(telco_devices::types::DeviceType::Smartphone) {
        println!("smartphone sectors/day: paper 22       measured {m:.0}");
    }
    if let Some(g) = mobility.median_gyration(telco_devices::types::DeviceType::Smartphone) {
        println!("smartphone gyration km: paper 2.7      measured {g:.2}");
    }
    // HOF-rate p75 among high-mobility UEs (paper: up to 0.4%).
    let per_ue_high: Vec<f64> = study
        .data()
        .output
        .mobility
        .iter()
        .filter(|m| m.sectors > 100)
        .map(|m| 100.0 * m.hof_rate())
        .collect();
    if let Some(p75) = percentile(&per_ue_high, 75.0) {
        println!("high-mobility HOF p75:  paper 0.4%     measured {p75:.2}%");
    }
}
