//! `repro bench-trace` — measure the streaming trace store: v2 chunked
//! write/read throughput against the v1 single-buffer codec, plus the
//! one-pass out-of-core aggregation (`SectorDayFrame::from_reader`), and
//! write the numbers to `BENCH_trace.json` at the repo root.

use std::time::Instant;

use telco_analytics::SectorDayFrame;
use telco_sim::{run_study, SimConfig, StudyData};
use telco_trace::io::{encode, read_file, write_file, RECORD_BYTES};
use telco_trace::store::{write_file_v2, TraceReader};

struct Measurement {
    secs: f64,
    bytes: u64,
    records: u64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "{{\"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}}}",
            self.secs,
            self.bytes as f64 / self.secs / 1e6,
            self.records as f64 / self.secs
        )
    }
}

/// Best-of-three wall time of `f`, reported against `bytes`/`records`.
fn measure(what: &str, bytes: u64, records: u64, mut f: impl FnMut()) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "bench-trace: {what}: {best:.4}s ({:.1} MB/s, {:.0} records/s)",
        bytes as f64 / best / 1e6,
        records as f64 / best
    );
    Measurement { secs: best, bytes, records }
}

/// Run the benchmark and write `BENCH_trace.json`.
pub fn run(config: SimConfig, preset_name: &str) {
    eprintln!(
        "bench-trace: preset {preset_name}, simulating {} UEs × {} days...",
        config.n_ues, config.n_days
    );
    let data: StudyData = run_study(config);
    let dataset = data.trace.as_dataset().expect("in-memory study");
    let records = dataset.len() as u64;
    let payload_bytes = records * RECORD_BYTES as u64;
    eprintln!("bench-trace: {records} records ({:.1} MB framed)", payload_bytes as f64 / 1e6);

    let dir = std::env::temp_dir().join("telco-bench-trace");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join("bench.v1.tlho");
    let v2_path = dir.join("bench.v2.tlho");

    let v1_write = measure("v1 write", payload_bytes, records, || {
        write_file(dataset, &v1_path).expect("v1 write");
    });
    let v2_write = measure("v2 write", payload_bytes, records, || {
        write_file_v2(dataset, &v2_path).expect("v2 write");
    });
    let v2_size = std::fs::metadata(&v2_path).expect("v2 metadata").len();

    let v1_read = measure("v1 decode", payload_bytes, records, || {
        let d = read_file(&v1_path).expect("v1 decode");
        assert_eq!(d.len() as u64, records);
    });
    let v2_read = measure("v2 streaming read", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v2_path).expect("v2 open");
        let d = reader.read_to_dataset_strict().expect("v2 read");
        assert_eq!(d.len() as u64, records);
    });
    let v2_aggregate = measure("v2 stream → frame", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v2_path).expect("v2 open");
        let frame = SectorDayFrame::from_reader(&data.world, &mut reader, 1).expect("v2 aggregate");
        assert!(!frame.is_empty());
    });
    // Sanity: both containers round-trip to identical bits.
    {
        let mut reader = TraceReader::open(&v2_path).expect("v2 open");
        let back = reader.read_to_dataset_strict().expect("v2 read");
        assert_eq!(encode(&back), encode(dataset), "v2 round-trip drifted");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"preset\": \"{preset_name}\",\n  \"records\": {records},\n  \
         \"payload_bytes\": {payload_bytes},\n  \"v2_file_bytes\": {v2_size},\n  \
         \"v1_write\": {},\n  \"v2_write\": {},\n  \"v1_decode\": {},\n  \
         \"v2_streaming_read\": {},\n  \"v2_stream_aggregate\": {}\n}}\n",
        v1_write.json(),
        v2_write.json(),
        v1_read.json(),
        v2_read.json(),
        v2_aggregate.json()
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    eprintln!("bench-trace: wrote BENCH_trace.json");
}
