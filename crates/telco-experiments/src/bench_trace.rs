//! `repro bench-trace` — measure the trace codecs: the slice-by-16
//! CRC-32 kernel on its own, v1 single-buffer vs v2 row-chunked vs v3
//! columnar write/read throughput, the one-pass out-of-core aggregation
//! (`SectorDayFrame::from_reader`) over both chunked containers, and the
//! v3 compression ratio. Writes the numbers to `BENCH_trace.json` at the
//! repo root.

use std::time::Instant;

use telco_analytics::SectorDayFrame;
use telco_sim::{run_study, SimConfig, StudyData};
use telco_trace::crc32::crc32;
use telco_trace::io::{encode, read_file, write_file, RECORD_BYTES};
use telco_trace::store::{write_file_v2, write_file_v3, TraceReader};

struct Measurement {
    secs: f64,
    bytes: u64,
    records: u64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "{{\"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}}}",
            self.secs,
            self.bytes as f64 / self.secs / 1e6,
            self.records as f64 / self.secs
        )
    }
}

/// Best-of-three wall time of `f`, reported against `bytes`/`records`.
fn measure(what: &str, bytes: u64, records: u64, mut f: impl FnMut()) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "bench-trace: {what}: {best:.4}s ({:.1} MB/s, {:.0} records/s)",
        bytes as f64 / best / 1e6,
        records as f64 / best
    );
    Measurement { secs: best, bytes, records }
}

/// Run the benchmark and write `BENCH_trace.json`.
pub fn run(config: SimConfig, preset_name: &str) {
    eprintln!(
        "bench-trace: preset {preset_name}, simulating {} UEs × {} days...",
        config.n_ues, config.n_days
    );
    let data: StudyData = run_study(config);
    let dataset = data.trace.as_dataset().expect("in-memory study");
    let records = dataset.len() as u64;
    let payload_bytes = records * RECORD_BYTES as u64;
    eprintln!("bench-trace: {records} records ({:.1} MB framed)", payload_bytes as f64 / 1e6);

    // The CRC kernel in isolation: every chunked write and read funnels
    // through it, so its ceiling bounds the containers below.
    let crc_buf = vec![0xA5u8; 64 << 20];
    let crc_bytes = crc_buf.len() as u64;
    let crc = measure("crc32 slice-by-16 (64 MiB)", crc_bytes, 0, || {
        assert_ne!(crc32(&crc_buf), 0);
    });

    let dir = std::env::temp_dir().join("telco-bench-trace");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join("bench.v1.tlho");
    let v2_path = dir.join("bench.v2.tlho");
    let v3_path = dir.join("bench.v3.tlho");

    let v1_write = measure("v1 write", payload_bytes, records, || {
        write_file(dataset, &v1_path).expect("v1 write");
    });
    let v2_write = measure("v2 write", payload_bytes, records, || {
        write_file_v2(dataset, &v2_path).expect("v2 write");
    });
    let v3_write = measure("v3 write", payload_bytes, records, || {
        write_file_v3(dataset, &v3_path).expect("v3 write");
    });
    let v1_size = std::fs::metadata(&v1_path).expect("v1 metadata").len();
    let v2_size = std::fs::metadata(&v2_path).expect("v2 metadata").len();
    let v3_size = std::fs::metadata(&v3_path).expect("v3 metadata").len();
    eprintln!(
        "bench-trace: file sizes: v1 {v1_size} v2 {v2_size} v3 {v3_size} \
         (v3 compression {:.2}x over row bytes)",
        payload_bytes as f64 / v3_size as f64
    );

    let v1_read = measure("v1 decode", payload_bytes, records, || {
        let d = read_file(&v1_path).expect("v1 decode");
        assert_eq!(d.len() as u64, records);
    });
    let v2_read = measure("v2 streaming read", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v2_path).expect("v2 open");
        let d = reader.read_to_dataset_strict().expect("v2 read");
        assert_eq!(d.len() as u64, records);
    });
    let v3_read = measure("v3 streaming read", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v3_path).expect("v3 open");
        let d = reader.read_to_dataset_strict().expect("v3 read");
        assert_eq!(d.len() as u64, records);
    });
    let v2_aggregate = measure("v2 stream → frame", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v2_path).expect("v2 open");
        let frame = SectorDayFrame::from_reader(&data.world, &mut reader, 1).expect("v2 aggregate");
        assert!(!frame.is_empty());
    });
    let v3_aggregate = measure("v3 stream → frame", payload_bytes, records, || {
        let mut reader = TraceReader::open(&v3_path).expect("v3 open");
        let frame = SectorDayFrame::from_reader(&data.world, &mut reader, 1).expect("v3 aggregate");
        assert!(!frame.is_empty());
    });
    // Sanity: all three containers round-trip to identical bits.
    for path in [&v2_path, &v3_path] {
        let mut reader = TraceReader::open(path).expect("chunked open");
        let back = reader.read_to_dataset_strict().expect("chunked read");
        assert_eq!(encode(&back), encode(dataset), "chunked round-trip drifted");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"preset\": \"{preset_name}\",\n  \"records\": {records},\n  \
         \"payload_bytes\": {payload_bytes},\n  \"v1_file_bytes\": {v1_size},\n  \
         \"v2_file_bytes\": {v2_size},\n  \"v3_file_bytes\": {v3_size},\n  \
         \"v3_compression_ratio\": {:.3},\n  \"crc32_slice16\": {},\n  \
         \"v1_write\": {},\n  \"v2_write\": {},\n  \"v3_write\": {},\n  \
         \"v1_decode\": {},\n  \"v2_streaming_read\": {},\n  \"v3_streaming_read\": {},\n  \
         \"v2_stream_aggregate\": {},\n  \"v3_stream_aggregate\": {}\n}}\n",
        payload_bytes as f64 / v3_size as f64,
        crc.json(),
        v1_write.json(),
        v2_write.json(),
        v3_write.json(),
        v1_read.json(),
        v2_read.json(),
        v3_read.json(),
        v2_aggregate.json(),
        v3_aggregate.json()
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    eprintln!("bench-trace: wrote BENCH_trace.json");
}
