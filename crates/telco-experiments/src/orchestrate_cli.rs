//! The sharded-sweep subcommands of `repro`:
//!
//! ```text
//! repro plan --dir <store> [--tiny|--small|--medium] [--shards N]
//!            [--days-per-slice D] [--scenario NAME] [--v2]
//! repro worker --dir <store> --entry N [--fault <spec>]
//! repro orchestrate --dir <store> [--pool N] [--retries R]
//!                   [--timeout-ms T] [--in-process] [--analyze]
//!                   [--threads N]
//! ```
//!
//! `plan` writes the manifest into a fresh (or existing) shard store;
//! `orchestrate` dispatches incomplete shards to a bounded fleet of
//! `repro worker` subprocesses (itself, re-invoked), merges the shard
//! traces into one sealed study, and is safe to re-run after any crash —
//! it skips every shard whose artifacts validate. `worker` is the
//! subprocess entry point and mirrors the standalone `telco-worker`
//! binary. See EXPERIMENTS.md ("paper-scale sharded run") for the
//! walkthrough.

use telco_orchestrator::{
    load_manifest, open_study, orchestrate, run_entry, store_manifest, DirStore, FaultSpec,
    Launcher, Manifest, OrchestrateOptions, PlanOptions, PoolOptions, WorkerError, EXIT_INJECTED,
};
use telco_sim::SimConfig;

/// Run a sharded-sweep subcommand; returns the process exit code.
pub fn run(cmd: &str, args: &[String]) -> i32 {
    match cmd {
        "plan" => run_plan(args),
        "worker" => run_worker(args),
        "orchestrate" => run_orchestrate(args),
        _ => unreachable!("dispatcher only routes the three subcommands"),
    }
}

/// Pull the value following `flag` out of `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn store_at(args: &[String], create: bool) -> Result<DirStore, i32> {
    let Some(dir) = flag_value(args, "--dir") else {
        eprintln!("repro: --dir <store> is required");
        return Err(2);
    };
    let store = if create { DirStore::create(&dir) } else { DirStore::open(&dir) };
    store.map_err(|e| {
        eprintln!("repro: cannot open shard store {dir}: {e}");
        1
    })
}

fn run_plan(args: &[String]) -> i32 {
    let mut config = SimConfig::default_study();
    let mut preset = "default";
    if has_flag(args, "--tiny") {
        config = SimConfig::tiny();
        preset = "tiny";
    } else if has_flag(args, "--small") {
        config = SimConfig::small();
        preset = "small";
    } else if has_flag(args, "--medium") {
        config = SimConfig::medium();
        preset = "medium";
    }
    let mut opts = PlanOptions {
        scenario: flag_value(args, "--scenario").unwrap_or_else(|| preset.to_string()),
        ..PlanOptions::default()
    };
    if let Some(shards) = flag_value(args, "--shards").and_then(|v| v.parse().ok()) {
        opts.shards = shards;
    }
    if let Some(dps) = flag_value(args, "--days-per-slice").and_then(|v| v.parse().ok()) {
        opts.days_per_slice = dps;
    }
    if has_flag(args, "--v2") {
        opts.trace_version = telco_trace::store::VERSION2;
    }

    let store = match store_at(args, true) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let manifest = match Manifest::plan(config, &opts) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("repro: {e}");
            return 2;
        }
    };
    if let Err(e) = store_manifest(&store, &manifest) {
        eprintln!("repro: cannot store manifest: {e}");
        return 1;
    }
    println!(
        "planned {} shards ({} UEs x {} days, {} UE-days), scenario {:?}, manifest hash {}",
        manifest.entries.len(),
        manifest.config.n_ues,
        manifest.config.n_days,
        manifest.planned_ue_days(),
        manifest.scenario,
        telco_orchestrator::manifest::hash_hex(manifest.manifest_hash()),
    );
    0
}

fn run_worker(args: &[String]) -> i32 {
    let store = match store_at(args, false) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let Some(entry) = flag_value(args, "--entry").and_then(|v| v.parse().ok()) else {
        eprintln!("repro: worker needs --entry <index>");
        return 2;
    };
    let fault = match flag_value(args, "--fault") {
        Some(spec) => match FaultSpec::parse(&spec) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("repro: {e}");
                return 2;
            }
        },
        None => None,
    };
    let manifest = match load_manifest(&store) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("repro: {e}");
            return 1;
        }
    };
    match run_entry(&manifest, entry, &store, fault) {
        Ok(marker) => {
            eprintln!("shard {entry} sealed: {} records, {} chunks", marker.records, marker.chunks);
            0
        }
        Err(WorkerError::InjectedCrash) => EXIT_INJECTED,
        Err(e) => {
            eprintln!("repro: shard {entry} failed: {e}");
            1
        }
    }
}

fn run_orchestrate(args: &[String]) -> i32 {
    let store = match store_at(args, false) {
        Ok(s) => std::sync::Arc::new(s),
        Err(code) => return code,
    };
    let launcher = if has_flag(args, "--in-process") {
        Launcher::InProcess
    } else {
        // The fleet is this very binary re-invoked as `repro worker`.
        let program = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("repro: cannot locate own executable for the worker fleet: {e}");
                return 1;
            }
        };
        Launcher::Subprocess { program, prefix: vec!["worker".to_string()] }
    };
    let mut pool = PoolOptions::default();
    if let Some(n) = flag_value(args, "--pool").and_then(|v| v.parse().ok()) {
        pool.pool_size = n;
    }
    if let Some(r) = flag_value(args, "--retries").and_then(|v| v.parse().ok()) {
        pool.retries = r;
    }
    if let Some(t) = flag_value(args, "--timeout-ms").and_then(|v| v.parse().ok()) {
        pool.timeout_ms = t;
    }
    let opts = OrchestrateOptions { launcher, pool, faults: Vec::new() };

    let report = match orchestrate(store.clone(), &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: orchestration failed: {e}");
            eprintln!("repro: re-run the same command to resume from the completed shards");
            return 1;
        }
    };
    if report.reused_study {
        println!("study already sealed ({} records); nothing to do", report.records);
    } else {
        println!(
            "orchestrated {} shards ({} skipped as complete, {} dispatched, {} retries): \
             {} records sealed",
            report.total, report.skipped, report.dispatched, report.retried, report.records
        );
    }

    if has_flag(args, "--analyze") {
        let mut data = match open_study(store.as_ref()) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("repro: cannot open sealed study: {e}");
                return 1;
            }
        };
        // Analytics sweep the sealed trace with the chunk-parallel
        // out-of-core pipeline; `--threads N` overrides the planned
        // config (0 = available parallelism), byte-identical either way.
        if let Some(n) = flag_value(args, "--threads").and_then(|v| v.parse().ok()) {
            data.config.threads = n;
        }
        let study = telco_analytics::Study::from_data(data);
        println!("{}", study.dataset_stats().table());
        println!("{}", study.ho_types().table());
    }
    0
}
