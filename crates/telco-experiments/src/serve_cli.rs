//! `repro serve` / `repro query` — the CLI face of the snapshot-native
//! ingest service (`telco-serve`).
//!
//! ```text
//! repro serve [--tiny|--small|--medium] [--ues N] [--days D]
//!             [--window W] [--port P] [--store <dir>] [--check-batch]
//! repro query --addr 127.0.0.1:<port> <query> [--name <section>] [--days 1|7]
//! repro query --addr 127.0.0.1:<port> '{"query":"..."}'
//! ```
//!
//! `serve` opens (or resumes) a snapshot store, ingests the configured
//! day stream through the crash-safe commit protocol, publishes a fresh
//! query view after every committed day, and then stays up answering
//! newline-JSON queries until a `shutdown` query arrives. With
//! `--check-batch` it instead verifies the served study byte-for-byte
//! against a one-shot batch study (running a few self-queries through
//! the real socket on the way), prints `SERVE OK`, and exits — the CI
//! smoke entry point.

use std::sync::Arc;

use telco_serve::{query_line, IngestEngine, Published, QueryServer};
use telco_sim::SimConfig;
use telco_store::DirStore;

fn usage(cmd: &str) -> i32 {
    eprintln!(
        "usage: repro serve [--tiny|--small|--medium] [--ues N] [--days D] [--window W] \
         [--port P] [--store <dir>] [--check-batch]\n       \
         repro query --addr 127.0.0.1:<port> <status|outputs|shutdown|...> \
         [--name <section>] [--days 1|7]"
    );
    eprintln!("repro {cmd}: bad arguments");
    2
}

/// Entry point for the `serve` and `query` subcommands (routed before
/// the main flag parser, like the orchestrator subcommands).
pub fn run(cmd: &str, args: &[String]) -> i32 {
    match cmd {
        "serve" => run_serve(args),
        "query" => run_query(args),
        _ => usage(cmd),
    }
}

fn run_serve(args: &[String]) -> i32 {
    let mut config = SimConfig::small();
    let mut preset = "small";
    let mut port = 0u16;
    let mut window = telco_serve::DEFAULT_WINDOW;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut check_batch = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tiny" => (config, preset) = (SimConfig::tiny(), "tiny"),
            "--small" => (config, preset) = (SimConfig::small(), "small"),
            "--medium" => (config, preset) = (SimConfig::medium(), "medium"),
            "--ues" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.n_ues = n,
                None => return usage("serve"),
            },
            "--days" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.n_days = n,
                None => return usage("serve"),
            },
            "--window" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => window = n,
                None => return usage("serve"),
            },
            "--port" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => port = n,
                None => return usage("serve"),
            },
            "--store" => match iter.next() {
                Some(dir) => store_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage("serve"),
            },
            "--check-batch" => check_batch = true,
            _ => return usage("serve"),
        }
    }
    let store_dir =
        store_dir.unwrap_or_else(|| std::env::temp_dir().join(format!("telco-serve-{preset}")));

    let store = match DirStore::create(&store_dir) {
        Ok(store) => Box::new(store),
        Err(e) => {
            eprintln!("repro serve: cannot open store {}: {e}", store_dir.display());
            return 1;
        }
    };
    let mut engine = match IngestEngine::open(config.clone(), store, window) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("repro serve: cannot open ingest: {e}");
            return 1;
        }
    };
    let initial = match engine.build_view() {
        Ok(view) => view,
        Err(e) => {
            eprintln!("repro serve: cannot build view: {e}");
            return 1;
        }
    };
    let published = Arc::new(Published::new(initial));
    let mut server = match QueryServer::start(Arc::clone(&published), port) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("repro serve: cannot bind query socket: {e}");
            return 1;
        }
    };
    println!("repro serve: listening on {}", server.addr());
    eprintln!(
        "repro serve: {preset} preset, {} UEs x {} days, store {}, {} day(s) already committed",
        config.n_ues,
        config.n_days,
        store_dir.display(),
        engine.committed_days(),
    );

    loop {
        match engine.ingest_next_day() {
            Ok(Some(report)) => {
                eprintln!("repro serve: committed day {} ({} records)", report.day, report.records);
                match engine.build_view() {
                    Ok(view) => published.publish(view),
                    Err(e) => {
                        eprintln!("repro serve: cannot rebuild view: {e}");
                        return 1;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("repro serve: ingest failed: {e}");
                return 1;
            }
        }
        if server.shutdown_requested() {
            eprintln!("repro serve: shutdown requested mid-stream");
            return 0;
        }
    }
    eprintln!("repro serve: stream exhausted at {} days", engine.committed_days());

    if check_batch {
        return check_against_batch(&engine, server.addr(), config);
    }

    // Stay up until a shutdown query arrives.
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.stop();
    eprintln!("repro serve: shut down cleanly");
    0
}

/// The `--check-batch` self-test: the served full view must be
/// byte-identical to a one-shot batch study, and the live socket must
/// answer the query matrix.
fn check_against_batch(
    engine: &IngestEngine,
    addr: std::net::SocketAddr,
    config: SimConfig,
) -> i32 {
    let served = match engine.build_view() {
        Ok(view) => match view.full {
            Some(full) => full,
            None => {
                eprintln!("repro serve: no committed data to check");
                return 1;
            }
        },
        Err(e) => {
            eprintln!("repro serve: cannot build view: {e}");
            return 1;
        }
    };
    eprintln!("repro serve: running one-shot batch study for comparison...");
    let batch = telco_analytics::Study::run(config);
    let expected = match serde_json::to_string(batch.sweep()) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("repro serve: batch study failed to serialize: {e}");
            return 1;
        }
    };
    if served != expected {
        eprintln!(
            "repro serve: SERVE MISMATCH — served study differs from the batch study \
             ({} vs {} bytes)",
            served.len(),
            expected.len()
        );
        return 1;
    }

    // Exercise the socket the way a client would.
    for (query, must_contain) in [
        ("{\"query\":\"status\"}", "\"ok\":true"),
        ("{\"query\":\"outputs\"}", "\"trace_counts\""),
        ("{\"query\":\"table\",\"name\":\"ho_types\"}", "\"section\""),
        ("{\"query\":\"window\",\"days\":1}", "\"outputs\""),
        ("{\"query\":\"window\",\"days\":7}", "\"outputs\""),
        ("{\"query\":\"shutdown\"}", "shutting_down"),
    ] {
        match query_line(addr, query) {
            Ok(response) if response.contains(must_contain) => {}
            Ok(response) => {
                eprintln!("repro serve: query {query} answered unexpectedly: {response}");
                return 1;
            }
            Err(e) => {
                eprintln!("repro serve: query {query} failed: {e}");
                return 1;
            }
        }
    }
    println!(
        "SERVE OK: {} days, {} bytes of served outputs byte-identical to the batch study",
        engine.committed_days(),
        served.len()
    );
    0
}

fn run_query(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut days: Option<u32> = None;
    let mut what: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().cloned(),
            "--name" => name = iter.next().cloned(),
            "--days" => days = iter.next().and_then(|v| v.parse().ok()),
            other if what.is_none() => what = Some(other.to_string()),
            _ => return usage("query"),
        }
    }
    let (Some(addr), Some(what)) = (addr, what) else { return usage("query") };
    let Ok(addr) = addr.parse::<std::net::SocketAddr>() else {
        eprintln!("repro query: --addr must be host:port");
        return 2;
    };

    // A raw JSON object passes through verbatim; a bare word becomes
    // {"query": <word>, ...} with the optional --name / --days fields.
    let line = if what.starts_with('{') {
        what
    } else {
        let mut line = format!("{{\"query\":\"{what}\"");
        if let Some(name) = &name {
            line.push_str(&format!(",\"name\":\"{name}\""));
        }
        if let Some(days) = days {
            line.push_str(&format!(",\"days\":{days}"));
        }
        line.push('}');
        line
    };
    match query_line(addr, &line) {
        Ok(response) => {
            println!("{response}");
            i32::from(!response.contains("\"ok\":true"))
        }
        Err(e) => {
            eprintln!("repro query: {e}");
            1
        }
    }
}
