//! `repro bench-study` — measure the single-sweep analysis engine: the
//! full [`StudyPasses`] composite (every record analysis plus both
//! sector frames in one visitor) across a {1, 2, 4, 8}-thread scaling
//! matrix per preset, plus the spilled streaming sweep (columnar v3
//! trace) and the traversal count of a full study. Writes the numbers to
//! `BENCH_study.json` at the repo root.
//!
//! The matrix is honest about hardware: `hardware_threads` is the real
//! available parallelism, matrix entries requesting more threads than
//! exist are flagged `oversubscribed`, and the headline
//! `speedup_8_over_1` is reported as `null` (with a `parallel_warning`)
//! rather than pretending an oversubscribed number demonstrates scaling.

use std::path::Path;
use std::time::Instant;

use telco_analytics::{Study, StudyPasses, Sweep};
use telco_sim::{run_study, run_study_spilled, SimConfig};
use telco_trace::io::RECORD_BYTES;

/// The thread counts every preset is swept at.
pub const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    secs: f64,
    bytes: u64,
    records: u64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "{{\"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}}}",
            self.secs,
            self.bytes as f64 / self.secs / 1e6,
            self.records as f64 / self.secs
        )
    }
}

/// Best-of-`iters` wall time of `f`, reported against `bytes`/`records`.
fn measure(what: &str, bytes: u64, records: u64, iters: usize, mut f: impl FnMut()) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "bench-study: {what}: {best:.4}s ({:.1} MB/s, {:.0} records/s)",
        bytes as f64 / best / 1e6,
        records as f64 / best
    );
    Measurement { secs: best, bytes, records }
}

/// One preset's full measurement block, as a JSON object string.
fn run_preset(
    config: SimConfig,
    preset_name: &str,
    iters: usize,
    hardware_threads: usize,
    spill_dir: Option<&Path>,
) -> String {
    eprintln!(
        "bench-study: preset {preset_name}, simulating {} UEs × {} days (best of {iters})...",
        config.n_ues, config.n_days
    );
    let mut data = run_study(config.clone());
    let records = data.trace.len() as u64;
    let bytes = records * RECORD_BYTES as u64;
    eprintln!("bench-study: {records} records ({:.1} MB framed)", bytes as f64 / 1e6);

    // The scaling matrix: the same composite sweep at each thread count.
    // threads == 1 takes the sequential path (no worker spawn at all), so
    // the curve's baseline is the true single-thread cost.
    let mut matrix: Vec<(usize, bool, Measurement)> = Vec::new();
    for &threads in &THREAD_MATRIX {
        data.config.threads = threads;
        let oversubscribed = threads > hardware_threads;
        let tag = if oversubscribed { " (oversubscribed)" } else { "" };
        let m = measure(
            &format!("{preset_name} sweep @ {threads} thread(s){tag}"),
            bytes,
            records,
            iters,
            || {
                let out = Sweep::new(&data).run(StudyPasses::default).expect("sweep");
                assert_eq!(out.trace_counts.records, records);
            },
        );
        matrix.push((threads, oversubscribed, m));
    }
    // Claim a speedup only from honest entries: the largest in-hardware
    // thread count against the single-thread baseline.
    let speedup = matrix
        .iter()
        .rfind(|(threads, oversubscribed, _)| *threads > 1 && !oversubscribed)
        .map(|(threads, _, m)| (*threads, matrix[0].2.secs / m.secs));
    match &speedup {
        Some((threads, s)) => {
            eprintln!("bench-study: {preset_name}: {s:.2}x speedup at {threads} threads")
        }
        None => eprintln!(
            "bench-study: {preset_name}: single hardware thread — no parallel speedup to claim"
        ),
    }

    // The spilled variant streams the sealed columnar v3 trace.
    let tmp;
    let dir = match spill_dir {
        Some(dir) => dir,
        None => {
            tmp = std::env::temp_dir().join("telco-bench-study");
            &tmp
        }
    };
    std::fs::create_dir_all(dir).expect("create spill dir");
    let spilled_data = run_study_spilled(config, dir).expect("spilled study");
    assert!(spilled_data.trace.is_spilled());
    assert_eq!(spilled_data.trace.len() as u64, records);
    let spilled = measure("spilled streaming sweep (v3)", bytes, records, iters, || {
        let out = Sweep::new(&spilled_data).run(StudyPasses::default).expect("sweep");
        assert_eq!(out.trace_counts.records, records);
    });

    // Traversal count of a full study: touch every analysis the repro
    // pipeline renders and count trace sweeps (acceptance: ≤ 2, down
    // from ~15 one-scan-per-analysis).
    let sweeps_before = spilled_data.trace.sweeps();
    let study = Study::from_data(spilled_data);
    let _ = study.dataset_stats();
    let _ = study.ho_types();
    let _ = study.durations();
    let _ = study.district_distribution();
    let _ = study.population_inference();
    let _ = study.ho_density();
    let _ = study.temporal_evolution();
    let _ = study.manufacturer_impact();
    let _ = study.hof_patterns();
    let _ = study.causes();
    let _ = study.pingpong();
    let _ = study.vendor_analysis();
    let _ = study.models();
    let full_study_traversals = study.data().trace.sweeps() - sweeps_before;
    eprintln!("bench-study: full study = {full_study_traversals} trace traversal(s)");
    assert!(full_study_traversals <= 2, "full study exceeded the 2-traversal budget");
    if spill_dir.is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }

    let scaling_rows: Vec<String> = matrix
        .iter()
        .map(|(threads, oversubscribed, m)| {
            format!(
                "      {{\"threads\": {threads}, \"oversubscribed\": {oversubscribed}, \
                 \"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}, \
                 \"speedup_over_1\": {:.2}}}",
                m.secs,
                m.bytes as f64 / m.secs / 1e6,
                m.records as f64 / m.secs,
                matrix[0].2.secs / m.secs
            )
        })
        .collect();
    let speedup_json = match speedup {
        Some((threads, s)) => format!("{{\"threads\": {threads}, \"speedup\": {s:.2}}}"),
        None => "null".to_string(),
    };
    format!(
        "    {{\n      \"preset\": \"{preset_name}\",\n      \"records\": {records},\n      \
         \"payload_bytes\": {bytes},\n      \"scaling\": [\n{}\n      ],\n      \
         \"honest_speedup\": {speedup_json},\n      \
         \"sweep_spilled_streaming_v3\": {},\n      \
         \"full_study_traversals\": {full_study_traversals}\n    }}",
        scaling_rows.join(",\n"),
        spilled.json()
    )
}

/// Run the benchmark over `presets` and write `BENCH_study.json`.
pub fn run(presets: Vec<(SimConfig, &str)>, iters: usize, spill_dir: Option<&Path>) {
    let hardware_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let max_requested = THREAD_MATRIX.iter().copied().max().unwrap_or(1);
    let parallel_warning = if hardware_threads < max_requested {
        format!(
            "\n  \"parallel_warning\": \"only {hardware_threads} hardware thread(s) available; \
             matrix entries above that are oversubscribed and do not demonstrate parallel \
             scaling — the >1x targets are hardware-ceiling-limited on this machine\",",
        )
    } else {
        String::new()
    };
    eprintln!("bench-study: {hardware_threads} hardware thread(s), matrix {THREAD_MATRIX:?}");

    let blocks: Vec<String> = presets
        .into_iter()
        .map(|(config, name)| run_preset(config, name, iters, hardware_threads, spill_dir))
        .collect();

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"iters\": {iters},\n  \"hardware_threads\": {hardware_threads},\
         {parallel_warning}\n  \"thread_matrix\": {THREAD_MATRIX:?},\n  \
         \"presets\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    std::fs::write("BENCH_study.json", &json).expect("write BENCH_study.json");
    eprintln!("bench-study: wrote BENCH_study.json");
}
