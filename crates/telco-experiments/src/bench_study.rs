//! `repro bench-study` — measure the single-sweep analysis engine: the
//! full [`StudyPasses`] composite (every record analysis plus both
//! sector frames in one visitor) swept sequentially, day-parallel, and
//! streamed from a spilled v2 trace, plus the traversal count of a full
//! study. Writes the numbers to `BENCH_study.json` at the repo root.

use std::path::Path;
use std::time::Instant;

use telco_analytics::{Study, StudyPasses, Sweep};
use telco_sim::{run_study, run_study_spilled, SimConfig};
use telco_trace::io::RECORD_BYTES;

struct Measurement {
    secs: f64,
    bytes: u64,
    records: u64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "{{\"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}}}",
            self.secs,
            self.bytes as f64 / self.secs / 1e6,
            self.records as f64 / self.secs
        )
    }
}

/// Best-of-`iters` wall time of `f`, reported against `bytes`/`records`.
fn measure(what: &str, bytes: u64, records: u64, iters: usize, mut f: impl FnMut()) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "bench-study: {what}: {best:.4}s ({:.1} MB/s, {:.0} records/s)",
        bytes as f64 / best / 1e6,
        records as f64 / best
    );
    Measurement { secs: best, bytes, records }
}

/// Run the benchmark and write `BENCH_study.json`.
pub fn run(config: SimConfig, preset_name: &str, iters: usize, spill_dir: Option<&Path>) {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "bench-study: preset {preset_name}, simulating {} UEs × {} days (best of {iters})...",
        config.n_ues, config.n_days
    );
    let mut data = run_study(config.clone());
    let records = data.trace.len() as u64;
    let bytes = records * RECORD_BYTES as u64;
    eprintln!("bench-study: {records} records ({:.1} MB framed)", bytes as f64 / 1e6);

    data.config.threads = 1;
    let sequential = measure("sequential sweep", bytes, records, iters, || {
        let out = Sweep::new(&data).run(StudyPasses::default).expect("sweep");
        assert_eq!(out.trace_counts.records, records);
    });
    data.config.threads = max_threads;
    let parallel = measure("parallel sweep", bytes, records, iters, || {
        let out = Sweep::new(&data).run(StudyPasses::default).expect("sweep");
        assert_eq!(out.trace_counts.records, records);
    });

    // The spilled variant streams the sealed v2 trace chunk-by-chunk.
    let tmp;
    let dir = match spill_dir {
        Some(dir) => dir,
        None => {
            tmp = std::env::temp_dir().join("telco-bench-study");
            &tmp
        }
    };
    std::fs::create_dir_all(dir).expect("create spill dir");
    let spilled_data = run_study_spilled(config, dir).expect("spilled study");
    assert!(spilled_data.trace.is_spilled());
    assert_eq!(spilled_data.trace.len() as u64, records);
    let spilled = measure("spilled streaming sweep", bytes, records, iters, || {
        let out = Sweep::new(&spilled_data).run(StudyPasses::default).expect("sweep");
        assert_eq!(out.trace_counts.records, records);
    });

    // Traversal count of a full study: touch every analysis the repro
    // pipeline renders and count trace sweeps (acceptance: ≤ 2, down
    // from ~15 one-scan-per-analysis).
    let sweeps_before = spilled_data.trace.sweeps();
    let study = Study::from_data(spilled_data);
    let _ = study.dataset_stats();
    let _ = study.ho_types();
    let _ = study.durations();
    let _ = study.district_distribution();
    let _ = study.population_inference();
    let _ = study.ho_density();
    let _ = study.temporal_evolution();
    let _ = study.manufacturer_impact();
    let _ = study.hof_patterns();
    let _ = study.causes();
    let _ = study.pingpong();
    let _ = study.vendor_analysis();
    let _ = study.models();
    let full_study_traversals = study.data().trace.sweeps() - sweeps_before;
    eprintln!("bench-study: full study = {full_study_traversals} trace traversal(s)");
    assert!(full_study_traversals <= 2, "full study exceeded the 2-traversal budget");
    if spill_dir.is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"preset\": \"{preset_name}\",\n  \"records\": {records},\n  \
         \"payload_bytes\": {bytes},\n  \"iters\": {iters},\n  \
         \"hardware_threads\": {max_threads},\n  \
         \"sweep_sequential\": {},\n  \"sweep_parallel\": {},\n  \
         \"sweep_spilled_streaming\": {},\n  \
         \"full_study_traversals\": {full_study_traversals}\n}}\n",
        sequential.json(),
        parallel.json(),
        spilled.json()
    );
    std::fs::write("BENCH_study.json", &json).expect("write BENCH_study.json");
    eprintln!("bench-study: wrote BENCH_study.json");
}
