//! `repro bench-study` — measure the single-sweep analysis engine: the
//! full [`StudyPasses`] composite (every record analysis plus both
//! sector frames in one visitor) across a {1, 2, 4, 8}-thread scaling
//! matrix per preset, the spilled chunk-parallel sweep (columnar v3
//! trace) across the same matrix, a decode-vs-analyze breakdown of the
//! out-of-core path, and the traversal count of a full study. Writes the
//! numbers to `BENCH_study.json` at the repo root.
//!
//! The matrix is honest about hardware: `hardware_threads` is the real
//! available parallelism, matrix entries requesting more threads than
//! exist are flagged `oversubscribed`, and the headline
//! `speedup_8_over_1` is reported as `null` (with a `parallel_warning`)
//! rather than pretending an oversubscribed number demonstrates scaling.
//!
//! Every measured sweep must take the column fast path: the run aborts
//! if `TraceSource::column_batches()` stayed flat, so a silent fallback
//! to row-at-a-time dispatch can never masquerade as a columnar number.

use std::path::Path;
use std::time::Instant;

use telco_analytics::{Study, StudyPasses, Sweep};
use telco_sim::{run_study, run_study_spilled, SimConfig};
use telco_trace::io::RECORD_BYTES;

/// The thread counts every preset is swept at.
pub const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

/// Single-thread sweep throughput of the row-at-a-time engine this
/// columnar execution model replaced (records/s, committed
/// `BENCH_study.json` as of PR 5) — the "before" each run's matrix
/// baseline is compared against.
const ROW_PATH_BASELINE: [(&str, u64); 2] = [("small", 2_194_805), ("medium", 1_947_592)];

struct Measurement {
    secs: f64,
    bytes: u64,
    records: u64,
}

impl Measurement {
    fn json(&self) -> String {
        format!(
            "{{\"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}}}",
            self.secs,
            self.bytes as f64 / self.secs / 1e6,
            self.records as f64 / self.secs
        )
    }
}

/// Best-of-`iters` wall time of `f`, reported against `bytes`/`records`.
fn measure(what: &str, bytes: u64, records: u64, iters: usize, mut f: impl FnMut()) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "bench-study: {what}: {best:.4}s ({:.1} MB/s, {:.0} records/s)",
        bytes as f64 / best / 1e6,
        records as f64 / best
    );
    Measurement { secs: best, bytes, records }
}

/// One preset's full measurement block, as a JSON object string.
fn run_preset(
    config: SimConfig,
    preset_name: &str,
    iters: usize,
    hardware_threads: usize,
    spill_dir: Option<&Path>,
) -> String {
    eprintln!(
        "bench-study: preset {preset_name}, simulating {} UEs × {} days (best of {iters})...",
        config.n_ues, config.n_days
    );
    let mut data = run_study(config.clone());
    let records = data.trace.len() as u64;
    let bytes = records * RECORD_BYTES as u64;
    eprintln!("bench-study: {records} records ({:.1} MB framed)", bytes as f64 / 1e6);

    // One untimed warmup traversal first. The very first sweep of a
    // process pays costs no steady-state traversal repays — page faults
    // on the accumulators' freshly mapped heap and the allocator's mmap
    // threshold still training on MB-scale alloc/free cycles — worth
    // ~30% on this preset. Throughput is a steady-state claim, so the
    // timed iterations start warm.
    data.config.threads = 1;
    let warm = Sweep::new(&data).run(StudyPasses::default).expect("warmup sweep");
    assert_eq!(warm.trace_counts.records, records);

    // The scaling matrix: the same composite sweep at each thread count.
    // threads == 1 takes the sequential path (no worker spawn at all), so
    // the curve's baseline is the true single-thread cost.
    let mut matrix: Vec<(usize, bool, Measurement)> = Vec::new();
    for &threads in &THREAD_MATRIX {
        data.config.threads = threads;
        let oversubscribed = threads > hardware_threads;
        let tag = if oversubscribed { " (oversubscribed)" } else { "" };
        let batches_before = data.trace.column_batches();
        let m = measure(
            &format!("{preset_name} sweep @ {threads} thread(s){tag}"),
            bytes,
            records,
            iters,
            || {
                let out = Sweep::new(&data).run(StudyPasses::default).expect("sweep");
                assert_eq!(out.trace_counts.records, records);
            },
        );
        assert!(
            data.trace.column_batches() > batches_before,
            "sweep @ {threads} thread(s) silently fell back to row dispatch"
        );
        matrix.push((threads, oversubscribed, m));
    }
    // Claim a speedup only from honest entries: the largest in-hardware
    // thread count against the single-thread baseline.
    let speedup = matrix
        .iter()
        .rfind(|(threads, oversubscribed, _)| *threads > 1 && !oversubscribed)
        .map(|(threads, _, m)| (*threads, matrix[0].2.secs / m.secs));
    match &speedup {
        Some((threads, s)) => {
            eprintln!("bench-study: {preset_name}: {s:.2}x speedup at {threads} threads")
        }
        None => eprintln!(
            "bench-study: {preset_name}: single hardware thread — no parallel speedup to claim"
        ),
    }

    // The spilled variant streams the sealed columnar v3 trace.
    let tmp;
    let dir = match spill_dir {
        Some(dir) => dir,
        None => {
            tmp = std::env::temp_dir().join("telco-bench-study");
            &tmp
        }
    };
    std::fs::create_dir_all(dir).expect("create spill dir");
    let mut spilled_data = run_study_spilled(config, dir).expect("spilled study");
    assert!(spilled_data.trace.is_spilled());
    assert_eq!(spilled_data.trace.len() as u64, records);

    // Decode-vs-analyze breakdown: stream the sealed v3 trace into column
    // batches with no analysis attached, then with the full composite.
    // The gap is what the ~15 passes cost on top of pure decode — the
    // number that says whether the next optimization belongs in the codec
    // or in the passes.
    let decode_only = measure("spilled v3 decode only (no passes)", bytes, records, iters, || {
        let mut seen = 0u64;
        spilled_data.trace.for_each_columns(|batch| seen += batch.len() as u64).expect("decode");
        assert_eq!(seen, records);
    });

    // The spilled chunk-parallel sweep across the same thread matrix:
    // threads == 1 streams sequentially, > 1 takes the prefetch-queue +
    // work-stealing path. Byte-identity across the matrix is pinned by
    // the golden tests; here we measure and cross-check the counts.
    let mut spilled_matrix: Vec<(usize, bool, Measurement)> = Vec::new();
    for &threads in &THREAD_MATRIX {
        spilled_data.config.threads = threads;
        let oversubscribed = threads > hardware_threads;
        let tag = if oversubscribed { " (oversubscribed)" } else { "" };
        let batches_before = spilled_data.trace.column_batches();
        let m = measure(
            &format!("{preset_name} spilled v3 sweep @ {threads} thread(s){tag}"),
            bytes,
            records,
            iters,
            || {
                let out = Sweep::new(&spilled_data).run(StudyPasses::default).expect("sweep");
                assert_eq!(out.trace_counts.records, records);
            },
        );
        assert!(
            spilled_data.trace.column_batches() > batches_before,
            "spilled sweep @ {threads} thread(s) silently fell back to row dispatch"
        );
        spilled_matrix.push((threads, oversubscribed, m));
    }
    let spilled = &spilled_matrix[0].2;
    let analyze_secs = (spilled.secs - decode_only.secs).max(0.0);
    eprintln!(
        "bench-study: {preset_name} spilled breakdown: decode {:.4}s + analyze {:.4}s \
         ({:.0}% of the sweep is analysis)",
        decode_only.secs,
        analyze_secs,
        100.0 * analyze_secs / spilled.secs.max(1e-12)
    );
    let spilled_speedup = spilled_matrix
        .iter()
        .rfind(|(threads, oversubscribed, _)| *threads > 1 && !oversubscribed)
        .map(|(threads, _, m)| (*threads, spilled_matrix[0].2.secs / m.secs));

    // Traversal count of a full study: touch every analysis the repro
    // pipeline renders and count trace sweeps (acceptance: ≤ 2, down
    // from ~15 one-scan-per-analysis).
    let sweeps_before = spilled_data.trace.sweeps();
    let study = Study::from_data(spilled_data);
    let _ = study.dataset_stats();
    let _ = study.ho_types();
    let _ = study.durations();
    let _ = study.district_distribution();
    let _ = study.population_inference();
    let _ = study.ho_density();
    let _ = study.temporal_evolution();
    let _ = study.manufacturer_impact();
    let _ = study.hof_patterns();
    let _ = study.causes();
    let _ = study.pingpong();
    let _ = study.vendor_analysis();
    let _ = study.models();
    let full_study_traversals = study.data().trace.sweeps() - sweeps_before;
    eprintln!("bench-study: full study = {full_study_traversals} trace traversal(s)");
    assert!(full_study_traversals <= 2, "full study exceeded the 2-traversal budget");
    if spill_dir.is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }

    let rows_of = |matrix: &[(usize, bool, Measurement)]| -> String {
        matrix
            .iter()
            .map(|(threads, oversubscribed, m)| {
                format!(
                    "      {{\"threads\": {threads}, \"oversubscribed\": {oversubscribed}, \
                     \"secs\": {:.4}, \"mb_per_sec\": {:.1}, \"records_per_sec\": {:.0}, \
                     \"speedup_over_1\": {:.2}}}",
                    m.secs,
                    m.bytes as f64 / m.secs / 1e6,
                    m.records as f64 / m.secs,
                    matrix[0].2.secs / m.secs
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let speedup_json = |speedup: &Option<(usize, f64)>| match speedup {
        Some((threads, s)) => format!("{{\"threads\": {threads}, \"speedup\": {s:.2}}}"),
        None => "null".to_string(),
    };
    // The row-engine number this preset swept at before columnar
    // execution, so before/after lives in the same artifact.
    let before_json = ROW_PATH_BASELINE.iter().find(|(name, _)| *name == preset_name).map_or(
        "null".to_string(),
        |(_, rps)| {
            format!(
                "{{\"records_per_sec\": {rps}, \"speedup_now\": {:.2}}}",
                matrix[0].2.records as f64 / matrix[0].2.secs / *rps as f64
            )
        },
    );
    format!(
        "    {{\n      \"preset\": \"{preset_name}\",\n      \"records\": {records},\n      \
         \"payload_bytes\": {bytes},\n      \
         \"single_thread_row_baseline\": {before_json},\n      \
         \"scaling\": [\n{}\n      ],\n      \
         \"honest_speedup\": {},\n      \
         \"sweep_spilled_streaming_v3\": {},\n      \
         \"spilled_decode_only\": {},\n      \
         \"spilled_analyze_secs\": {analyze_secs:.4},\n      \
         \"spilled_scaling\": [\n{}\n      ],\n      \
         \"spilled_honest_speedup\": {},\n      \
         \"full_study_traversals\": {full_study_traversals}\n    }}",
        rows_of(&matrix),
        speedup_json(&speedup),
        spilled.json(),
        decode_only.json(),
        rows_of(&spilled_matrix),
        speedup_json(&spilled_speedup),
    )
}

/// Run the benchmark over `presets` and write `BENCH_study.json`.
pub fn run(presets: Vec<(SimConfig, &str)>, iters: usize, spill_dir: Option<&Path>) {
    let hardware_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let max_requested = THREAD_MATRIX.iter().copied().max().unwrap_or(1);
    let parallel_warning = if hardware_threads < max_requested {
        format!(
            "\n  \"parallel_warning\": \"only {hardware_threads} hardware thread(s) available; \
             matrix entries above that are oversubscribed and do not demonstrate parallel \
             scaling — the >1x targets are hardware-ceiling-limited on this machine\",",
        )
    } else {
        String::new()
    };
    eprintln!("bench-study: {hardware_threads} hardware thread(s), matrix {THREAD_MATRIX:?}");

    let blocks: Vec<String> = presets
        .into_iter()
        .map(|(config, name)| run_preset(config, name, iters, hardware_threads, spill_dir))
        .collect();

    // The vendored serde_json is a stand-in, so format by hand.
    let json = format!(
        "{{\n  \"iters\": {iters},\n  \"hardware_threads\": {hardware_threads},\
         {parallel_warning}\n  \"thread_matrix\": {THREAD_MATRIX:?},\n  \
         \"presets\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    std::fs::write("BENCH_study.json", &json).expect("write BENCH_study.json");
    eprintln!("bench-study: wrote BENCH_study.json");
}
