//! `repro bench-runner` — measure end-to-end study throughput of the
//! work-stealing runner against a baseline that reproduces the original
//! static-shard runner (fixed per-thread UE ranges, mutex-collected
//! shards, a fresh scratch per UE-day, and a final concatenate-and-sort),
//! and write the numbers to `BENCH_runner.json` at the repo root.

use std::sync::Mutex;
use std::time::Instant;

use telco_devices::population::UeId;
use telco_sim::{run_on_world, RunnerMode, SimConfig, SimOutput, SimScratch, World};

/// The original runner, kept verbatim in spirit: static UE ranges sized
/// `n_ues / threads`, one shard output per thread pushed through a mutex,
/// a fresh `SimScratch` per UE-day (the old engine allocated all its
/// buffers per call), and a full `sort` of the concatenated dataset.
fn run_static_shards(world: &World, config: &SimConfig, threads: usize) -> SimOutput {
    let n_ues = world.n_ues();
    let n_days = config.n_days;
    if threads <= 1 {
        let mut out = SimOutput::new(n_days);
        for day in 0..n_days {
            for ue in 0..n_ues {
                let mut scratch = SimScratch::new();
                simulate_one(world, config, ue, day, &mut scratch, &mut out);
            }
        }
        out.dataset.sort();
        return out;
    }
    let per = n_ues.div_ceil(threads);
    let shards: Mutex<Vec<(usize, SimOutput)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let shards = &shards;
            s.spawn(move || {
                let lo = t * per;
                let hi = ((t + 1) * per).min(n_ues);
                let mut out = SimOutput::new(n_days);
                for day in 0..n_days {
                    for ue in lo..hi {
                        let mut scratch = SimScratch::new();
                        simulate_one(world, config, ue, day, &mut scratch, &mut out);
                    }
                }
                shards.lock().unwrap().push((t, out));
            });
        }
    });
    let mut shards = shards.into_inner().unwrap();
    shards.sort_by_key(|&(t, _)| t);
    let mut merged = SimOutput::new(n_days);
    for (_, shard) in shards {
        merged.merge(shard);
    }
    merged.dataset.sort();
    merged.mobility.sort_by_key(|row| (row.day, row.ue.0));
    merged
}

fn simulate_one(
    world: &World,
    config: &SimConfig,
    ue: usize,
    day: u32,
    scratch: &mut SimScratch,
    out: &mut SimOutput,
) {
    telco_sim::simulate_ue_day(world, config, UeId(ue as u32), day, scratch, out);
}

struct Measurement {
    threads: usize,
    secs: f64,
    records: usize,
}

impl Measurement {
    fn json(&self, ue_days: u64) -> String {
        format!(
            "{{\"threads\": {}, \"secs\": {:.3}, \"ue_days_per_sec\": {:.1}, \
             \"records_per_sec\": {:.1}}}",
            self.threads,
            self.secs,
            ue_days as f64 / self.secs,
            self.records as f64 / self.secs
        )
    }
}

fn measure(what: &str, threads: usize, f: impl Fn() -> SimOutput) -> Measurement {
    // Best of three: study runs are long enough that the minimum is a
    // stable estimator and the total stays tolerable.
    let mut best = f64::INFINITY;
    let mut records = 0;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        records = out.dataset.len();
        best = best.min(secs);
    }
    eprintln!("bench-runner: {what} threads={threads}: {best:.3}s, {records} records");
    Measurement { threads, secs: best, records }
}

/// Run the benchmark and write `BENCH_runner.json`.
///
/// `seed_secs` is an externally measured wall time of the *seed* runner
/// (the pre-rework engine, built from the seed commit) on the same preset
/// and hardware; when given, it is recorded as the reference the speedup
/// criterion is judged against.
pub fn run(config: SimConfig, preset_name: &str, seed_secs: Option<f64>) {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let ue_days = config.n_ues as u64 * config.n_days as u64;
    eprintln!(
        "bench-runner: preset {preset_name}, {} UEs × {} days ({ue_days} UE-days), \
         {max_threads} hardware threads",
        config.n_ues, config.n_days
    );
    let world = World::build(&config);

    let baseline =
        measure("static-shards", max_threads, || run_static_shards(&world, &config, max_threads));

    let mut thread_counts = vec![1usize];
    if max_threads >= 2 {
        thread_counts.push(2);
    }
    if max_threads > 2 {
        thread_counts.push(max_threads);
    }
    let runner: Vec<Measurement> = thread_counts
        .into_iter()
        .map(|threads| {
            let mut cfg = config.clone();
            cfg.threads = threads;
            let m = measure("work-stealing", threads, || run_on_world(&world, &cfg));
            if threads > 1 {
                let out = run_on_world(&world, &cfg);
                assert_eq!(out.runner.mode, RunnerMode::WorkStealing);
            }
            m
        })
        .collect();

    let at_max = runner.last().expect("at least one measurement");
    let speedup = baseline.secs / at_max.secs;
    eprintln!(
        "bench-runner: {:.1} UE-days/s baseline → {:.1} UE-days/s work-stealing \
         ({speedup:.2}× at {max_threads} threads)",
        ue_days as f64 / baseline.secs,
        ue_days as f64 / at_max.secs
    );

    let seed_line = seed_secs.map_or(String::new(), |secs| {
        let sp = secs / at_max.secs;
        eprintln!("bench-runner: seed reference {secs:.3}s → speedup vs seed {sp:.2}×");
        format!(
            "  \"seed_runner_reference\": {{\"secs\": {secs:.3}, \
             \"ue_days_per_sec\": {:.1}, \"speedup_vs_seed\": {sp:.2}}},\n",
            ue_days as f64 / secs
        )
    });
    // The vendored serde_json is a stand-in, so format by hand.
    let runs: Vec<String> = runner.iter().map(|m| format!("    {}", m.json(ue_days))).collect();
    let json = format!(
        "{{\n  \"preset\": \"{preset_name}\",\n  \"ue_days\": {ue_days},\n  \
         \"hardware_threads\": {max_threads},\n{seed_line}  \
         \"baseline_static_shards\": {},\n  \
         \"work_stealing\": [\n{}\n  ],\n  \"speedup_at_max_threads\": {speedup:.2}\n}}\n",
        baseline.json(ue_days),
        runs.join(",\n")
    );
    std::fs::write("BENCH_runner.json", &json).expect("write BENCH_runner.json");
    eprintln!("bench-runner: wrote BENCH_runner.json");
}
