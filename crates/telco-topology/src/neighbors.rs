//! Neighbor relations between radio sectors.
//!
//! The source sector picks the handover target among its configured
//! neighbors (§2). We derive neighbor lists geometrically: the same-RAT
//! sectors of the `k` nearest hosting sites, plus all co-sited sectors
//! (inter-RAT neighbors enable the vertical handovers of §5.2).

use serde::{Deserialize, Serialize};

use crate::deployment::Topology;
use crate::elements::SectorId;
use crate::rat::Rat;

/// Precomputed neighbor lists, indexed by `SectorId.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    /// Same-RAT neighbors on nearby sites (handover candidates).
    intra_rat: Vec<Vec<SectorId>>,
    /// Co-sited sectors of other RATs (vertical fallback candidates).
    co_sited: Vec<Vec<SectorId>>,
}

impl NeighborTable {
    /// Build neighbor lists using the `k` nearest hosting sites per sector.
    pub fn build(topology: &Topology, k: usize) -> Self {
        let n = topology.sectors().len();
        let mut intra_rat = vec![Vec::new(); n];
        let mut co_sited = vec![Vec::new(); n];

        for sector in topology.sectors() {
            let site = topology.site(sector.site);
            let idx = sector.id.0 as usize;

            // Co-sited sectors of any RAT (excluding self).
            co_sited[idx] = site
                .sectors
                .iter()
                .copied()
                .filter(|&s| s != sector.id && topology.sector(s).rat != sector.rat)
                .collect();

            // Same-RAT sectors on the k nearest *other* hosting sites, plus
            // same-RAT co-sited faces.
            let mut neigh: Vec<SectorId> = site
                .sectors
                .iter()
                .copied()
                .filter(|&s| s != sector.id && topology.sector(s).rat == sector.rat)
                .collect();
            // k + 1 because the nearest hosting site is usually our own.
            let radius = sector.rat.nominal_range_km(true).max(2.0) * 6.0;
            let mut nearby = topology.sites_near(&site.position, sector.rat, radius);
            nearby.retain(|&s| s != sector.site);
            nearby.sort_by(|&a, &b| {
                let da = topology.site(a).position.distance_km(&site.position);
                let db = topology.site(b).position.distance_km(&site.position);
                da.partial_cmp(&db).expect("finite distances")
            });
            for other in nearby.into_iter().take(k) {
                for &s in &topology.site(other).sectors {
                    if topology.sector(s).rat == sector.rat {
                        neigh.push(s);
                    }
                }
            }
            intra_rat[idx] = neigh;
        }
        NeighborTable { intra_rat, co_sited }
    }

    /// Same-RAT handover candidates of a sector.
    pub fn intra_rat(&self, sector: SectorId) -> &[SectorId] {
        &self.intra_rat[sector.0 as usize]
    }

    /// Co-sited sectors of other RATs.
    pub fn co_sited(&self, sector: SectorId) -> &[SectorId] {
        &self.co_sited[sector.0 as usize]
    }

    /// Co-sited sector on a specific RAT, if the site hosts it.
    pub fn co_sited_on(&self, topology: &Topology, sector: SectorId, rat: Rat) -> Option<SectorId> {
        self.co_sited[sector.0 as usize].iter().copied().find(|&s| topology.sector(s).rat == rat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::TopologyConfig;
    use telco_geo::country::{Country, CountryConfig};

    fn setup() -> (Topology, NeighborTable) {
        let country = Country::generate(CountryConfig::tiny());
        let topo = Topology::generate(&country, TopologyConfig::tiny());
        let table = NeighborTable::build(&topo, 3);
        (topo, table)
    }

    #[test]
    fn neighbors_share_the_rat() {
        let (topo, table) = setup();
        for sector in topo.sectors() {
            for &n in table.intra_rat(sector.id) {
                assert_eq!(topo.sector(n).rat, sector.rat);
                assert_ne!(n, sector.id, "sector neighboring itself");
            }
        }
    }

    #[test]
    fn co_sited_are_on_same_site_other_rat() {
        let (topo, table) = setup();
        for sector in topo.sectors() {
            for &c in table.co_sited(sector.id) {
                assert_eq!(topo.sector(c).site, sector.site);
                assert_ne!(topo.sector(c).rat, sector.rat);
            }
        }
    }

    #[test]
    fn four_g_sectors_have_intra_neighbors() {
        let (topo, table) = setup();
        // 4G is everywhere; its sectors must see the two co-sited faces at
        // minimum.
        for sector in topo.sectors().iter().filter(|s| s.rat == Rat::G4) {
            assert!(
                table.intra_rat(sector.id).len() >= 2,
                "4G sector {} has too few neighbors",
                sector.id
            );
        }
    }

    #[test]
    fn co_sited_on_finds_legacy_fallback_where_hosted() {
        let (topo, table) = setup();
        let mut found_any = false;
        for sector in topo.sectors().iter().filter(|s| s.rat == Rat::G4) {
            if let Some(s3) = table.co_sited_on(&topo, sector.id, Rat::G3) {
                assert_eq!(topo.sector(s3).rat, Rat::G3);
                assert_eq!(topo.sector(s3).site, sector.site);
                found_any = true;
            }
        }
        assert!(found_any, "some site must host both 4G and 3G");
    }
}
