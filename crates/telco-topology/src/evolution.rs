//! Reconstruction of the network's deployment history (Fig. 3a).
//!
//! The topology snapshot holds only the sectors alive at the end of 2023;
//! Fig. 3a additionally shows the *decommissioning* of 2G/3G over the
//! years. The history therefore combines:
//!
//! * the snapshot's per-sector deployment years (ramp-up of each RAT), and
//! * a retention curve for legacy RATs: 2G/3G counts peaked in the early
//!   2010s and were gradually decommissioned, leaving the ≈18% + 18%
//!   observed in 2023.

use serde::{Deserialize, Serialize};

use crate::deployment::Topology;
use crate::rat::Rat;

/// First year covered by Fig. 3a.
pub const HISTORY_START: u16 = 2009;
/// Last year covered (the study snapshot).
pub const HISTORY_END: u16 = 2023;

/// Year the MNO began decommissioning legacy sectors.
const DECOMMISSION_START: u16 = 2014;
/// Fraction of the legacy peak still alive at the end of the window.
const LEGACY_RETENTION_2023: f64 = 0.55;

/// Reconstructed yearly deployment counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentHistory {
    /// Years covered, ascending.
    pub years: Vec<u16>,
    /// Estimated live sector count per RAT per year (`per_rat[rat][year]`).
    pub per_rat: [Vec<f64>; 4],
    /// Total live sectors per year.
    pub total_sectors: Vec<f64>,
    /// Cumulative cell sites per year (a site exists once its first sector
    /// is deployed; sites are not decommissioned in the window).
    pub total_sites: Vec<f64>,
}

impl DeploymentHistory {
    /// Reconstruct the history from a topology snapshot.
    pub fn reconstruct(topology: &Topology) -> Self {
        let years: Vec<u16> = (HISTORY_START..=HISTORY_END).collect();
        let n_years = years.len();

        // Cumulative deployments per RAT by year, from the snapshot.
        let mut cum =
            [vec![0f64; n_years], vec![0f64; n_years], vec![0f64; n_years], vec![0f64; n_years]];
        for s in topology.sectors() {
            let y0 = (s.deployed_year.max(HISTORY_START) - HISTORY_START) as usize;
            for c in cum[s.rat.index()][y0..n_years].iter_mut() {
                *c += 1.0;
            }
        }

        // Legacy RATs: survivors-in-snapshot / retention(2023) gives the
        // peak; the live count in year y is ramp(y) * retention(y) scaled.
        let mut per_rat = cum.clone();
        for rat in [Rat::G2, Rat::G3] {
            let idx = rat.index();
            let survivors = cum[idx][n_years - 1];
            if survivors == 0.0 {
                continue;
            }
            let peak_scale = 1.0 / LEGACY_RETENTION_2023;
            for (y, &year) in years.iter().enumerate() {
                let ramp = cum[idx][y] / survivors; // fraction deployed by y
                per_rat[idx][y] = survivors * peak_scale * ramp * retention(year);
            }
        }

        let total_sectors: Vec<f64> =
            (0..n_years).map(|y| per_rat.iter().map(|r| r[y]).sum()).collect();

        // Sites: first deployment year per site.
        let mut total_sites = vec![0f64; n_years];
        for site in topology.sites() {
            let first = site
                .sectors
                .iter()
                .map(|&s| topology.sector(s).deployed_year)
                .min()
                .unwrap_or(HISTORY_END);
            let y0 = (first.max(HISTORY_START) - HISTORY_START) as usize;
            for c in total_sites[y0..n_years].iter_mut() {
                *c += 1.0;
            }
        }

        DeploymentHistory { years, per_rat, total_sectors, total_sites }
    }

    /// Live sector count of a RAT in a year.
    ///
    /// # Panics
    ///
    /// Panics if the year is outside the history window.
    pub fn count(&self, rat: Rat, year: u16) -> f64 {
        let idx = self.year_index(year);
        self.per_rat[rat.index()][idx]
    }

    /// Share of a RAT among live sectors in a year.
    pub fn share(&self, rat: Rat, year: u16) -> f64 {
        let idx = self.year_index(year);
        let total = self.total_sectors[idx];
        if total == 0.0 {
            0.0
        } else {
            self.per_rat[rat.index()][idx] / total
        }
    }

    /// Relative growth of the total sector count between two years
    /// (`total(y1) / total(y0) − 1`).
    pub fn growth(&self, y0: u16, y1: u16) -> f64 {
        let a = self.total_sectors[self.year_index(y0)];
        let b = self.total_sectors[self.year_index(y1)];
        assert!(a > 0.0, "no sectors in base year {y0}");
        b / a - 1.0
    }

    fn year_index(&self, year: u16) -> usize {
        assert!(
            (HISTORY_START..=HISTORY_END).contains(&year),
            "year {year} outside history window"
        );
        (year - HISTORY_START) as usize
    }
}

/// Legacy retention curve: 1.0 until decommissioning starts, then a linear
/// glide to [`LEGACY_RETENTION_2023`] at the end of the window.
fn retention(year: u16) -> f64 {
    if year <= DECOMMISSION_START {
        return 1.0;
    }
    let span = (HISTORY_END - DECOMMISSION_START) as f64;
    let t = (year - DECOMMISSION_START) as f64 / span;
    1.0 - t * (1.0 - LEGACY_RETENTION_2023)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::TopologyConfig;
    use telco_geo::country::{Country, CountryConfig};

    fn history() -> DeploymentHistory {
        let country = Country::generate(CountryConfig::default());
        let topo = Topology::generate(&country, TopologyConfig::default());
        DeploymentHistory::reconstruct(&topo)
    }

    #[test]
    fn final_year_matches_snapshot() {
        let country = Country::generate(CountryConfig::default());
        let topo = Topology::generate(&country, TopologyConfig::default());
        let h = DeploymentHistory::reconstruct(&topo);
        let counts = topo.sector_counts();
        // 4G/5G histories end exactly at the snapshot; legacy ends at the
        // snapshot count by construction (ramp = 1, retention = 0.55, peak
        // scale = 1/0.55).
        assert!((h.count(Rat::G4, 2023) - counts[Rat::G4.index()] as f64).abs() < 1e-6);
        assert!((h.count(Rat::G5Nr, 2023) - counts[Rat::G5Nr.index()] as f64).abs() < 1e-6);
        assert!((h.count(Rat::G2, 2023) - counts[Rat::G2.index()] as f64).abs() < 1.0);
        assert!((h.count(Rat::G3, 2023) - counts[Rat::G3.index()] as f64).abs() < 1.0);
    }

    #[test]
    fn five_g_appears_in_2019() {
        let h = history();
        assert_eq!(h.count(Rat::G5Nr, 2018), 0.0);
        assert!(h.count(Rat::G5Nr, 2019) > 0.0);
        assert!(h.share(Rat::G5Nr, 2023) > 0.05);
    }

    #[test]
    fn legacy_peaks_then_declines() {
        let h = history();
        let peak_2g = h.years.iter().map(|&y| h.count(Rat::G2, y)).fold(0.0f64, f64::max);
        assert!(peak_2g > h.count(Rat::G2, 2023), "2G must decline from its peak");
        // Monotone decline after decommissioning starts and ramp completes.
        for y in 2016..2023 {
            assert!(h.count(Rat::G3, y) >= h.count(Rat::G3, y + 1) - 1e-9);
        }
    }

    #[test]
    fn total_growth_recent_years() {
        let h = history();
        let g = h.growth(2018, 2023);
        // Paper: +59% between 2018 and 2023; accept the neighbourhood.
        assert!((0.3..0.9).contains(&g), "2018→2023 growth {g}");
    }

    #[test]
    fn sites_monotone_nondecreasing() {
        let h = history();
        assert!(h.total_sites.windows(2).all(|w| w[0] <= w[1]));
        assert!(*h.total_sites.last().unwrap() > 0.0);
    }

    #[test]
    fn shares_sum_to_one_each_year() {
        let h = history();
        for (i, &y) in h.years.iter().enumerate() {
            if h.total_sectors[i] > 0.0 {
                let s: f64 = Rat::ALL.iter().map(|&r| h.share(r, y)).sum();
                assert!((s - 1.0).abs() < 1e-9, "year {y} shares sum {s}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_window_year_panics() {
        history().count(Rat::G4, 2008);
    }
}
