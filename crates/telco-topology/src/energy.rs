//! Dynamic energy-saving sector shutdown.
//!
//! MNOs switch off capacity-booster sectors when demand does not require
//! them (§5.1, citing carrier-shutdown modeling work): after the evening
//! the share of active sectors declines roughly 1% per 30 minutes until
//! midnight, bottoming out overnight, while ≈99% of sectors are active
//! between the morning peak and 17:00.

use serde::{Deserialize, Serialize};

use crate::elements::{RadioSector, SectorId};

/// Number of 30-minute slots in a day.
pub const SLOTS_PER_DAY: usize = 48;

/// The operator's energy-saving policy: a target active fraction for
/// capacity boosters per 30-minute slot of the day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergySavingPolicy {
    /// Target fraction of boosters active in each 30-minute slot.
    booster_active_fraction: Vec<f64>,
}

impl Default for EnergySavingPolicy {
    fn default() -> Self {
        let mut f = vec![1.0f64; SLOTS_PER_DAY];
        for (slot, v) in f.iter_mut().enumerate() {
            let hour = slot as f64 / 2.0;
            *v = if (7.0..17.0).contains(&hour) {
                // Daytime: effectively everything on (≈99% observed active).
                1.0
            } else if hour >= 17.0 {
                // Evening glide: ~2% of boosters off per 30-minute slot
                // (≈1% of all sectors, boosters being ~half of urban EPC
                // sectors), reaching the overnight floor at midnight.
                (1.0 - 0.028 * (hour - 17.0) * 2.0).max(0.60)
            } else {
                // Overnight floor rising back towards the morning peak.
                match hour as u32 {
                    0..=3 => 0.55,
                    4 => 0.62,
                    5 => 0.75,
                    _ => 0.90, // 6:00–7:00 ramp-up
                }
            };
        }
        EnergySavingPolicy { booster_active_fraction: f }
    }
}

impl EnergySavingPolicy {
    /// Target active fraction for boosters in a 30-minute slot (0..48).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 48`.
    pub fn booster_fraction(&self, slot: usize) -> f64 {
        self.booster_active_fraction[slot]
    }

    /// Whether a sector is active during `slot` (0..48) of `day`.
    ///
    /// Non-boosters are always on. Each booster draws a deterministic
    /// per-day priority from a hash of `(sector, day)`; as the target
    /// fraction declines through the evening, boosters with high priority
    /// values shut down first — so within a day the active set shrinks
    /// monotonically with the target, and across days the rotation differs
    /// (sharing the energy-saving burden).
    pub fn is_active(&self, sector: &RadioSector, day: u32, slot: usize) -> bool {
        if !sector.capacity_booster {
            return true;
        }
        let u = unit_hash(sector.id, day);
        u < self.booster_fraction(slot)
    }
}

/// Deterministic hash of `(sector, day)` to the unit interval.
fn unit_hash(sector: SectorId, day: u32) -> f64 {
    // SplitMix64 finalizer over the packed key.
    let mut z = ((sector.0 as u64) << 32) ^ (day as u64) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;
    use crate::vendor::Vendor;

    fn booster(id: u32) -> RadioSector {
        RadioSector {
            id: SectorId(id),
            site: crate::elements::SiteId(0),
            rat: Rat::G4,
            vendor: Vendor::V1,
            azimuth_deg: 0,
            carrier: 0,
            deployed_year: 2020,
            capacity_booster: true,
            capacity: 600,
        }
    }

    #[test]
    fn non_boosters_always_active() {
        let policy = EnergySavingPolicy::default();
        let mut s = booster(1);
        s.capacity_booster = false;
        for slot in 0..SLOTS_PER_DAY {
            assert!(policy.is_active(&s, 0, slot));
        }
    }

    #[test]
    fn daytime_fraction_is_full() {
        let policy = EnergySavingPolicy::default();
        for slot in 16..34 {
            // 8:00–17:00
            assert!(policy.booster_fraction(slot) >= 0.99, "slot {slot}");
        }
    }

    #[test]
    fn evening_declines_night_is_lowest() {
        let policy = EnergySavingPolicy::default();
        // Declining after 17:00.
        for slot in 34..SLOTS_PER_DAY - 1 {
            assert!(
                policy.booster_fraction(slot + 1) <= policy.booster_fraction(slot) + 1e-12,
                "evening slot {slot} must not increase"
            );
        }
        // Night floor below evening start.
        assert!(policy.booster_fraction(4) < policy.booster_fraction(35));
    }

    #[test]
    fn active_set_shrinks_monotonically_within_a_day() {
        let policy = EnergySavingPolicy::default();
        let sectors: Vec<RadioSector> = (0..500).map(booster).collect();
        let active = |slot: usize| -> Vec<u32> {
            sectors.iter().filter(|s| policy.is_active(s, 3, slot)).map(|s| s.id.0).collect()
        };
        // Every sector active at 22:00 is also active at 18:00.
        let evening = active(36);
        let late = active(44);
        for id in &late {
            assert!(evening.contains(id), "sector {id} flickered back on");
        }
        assert!(late.len() < evening.len());
    }

    #[test]
    fn rotation_differs_across_days() {
        let policy = EnergySavingPolicy::default();
        let sectors: Vec<RadioSector> = (0..300).map(booster).collect();
        let off_on = |day: u32| -> Vec<u32> {
            sectors.iter().filter(|s| !policy.is_active(s, day, 46)).map(|s| s.id.0).collect()
        };
        assert_ne!(off_on(0), off_on(1), "burden should rotate across days");
    }

    #[test]
    fn realized_fraction_tracks_target() {
        let policy = EnergySavingPolicy::default();
        let sectors: Vec<RadioSector> = (0..2000).map(booster).collect();
        for slot in [0, 20, 40, 47] {
            let active = sectors.iter().filter(|s| policy.is_active(s, 1, slot)).count() as f64;
            let target = policy.booster_fraction(slot);
            assert!(
                (active / 2000.0 - target).abs() < 0.05,
                "slot {slot}: realized {} vs target {target}",
                active / 2000.0
            );
        }
    }
}
