//! Radio access technologies.
//!
//! All four digital RAT generations developed over the last three decades
//! operate concurrently in the studied network (§1): 2G (GSM), 3G (UMTS),
//! 4G (LTE) and 5G NR in its Non-Standalone form anchored on the 4G EPC.

use serde::{Deserialize, Serialize};

/// A radio access technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rat {
    /// GSM/GPRS.
    G2,
    /// UMTS.
    G3,
    /// LTE.
    G4,
    /// 5G New Radio (NSA, anchored on the 4G EPC).
    G5Nr,
}

impl Rat {
    /// All RATs, oldest first.
    pub const ALL: [Rat; 4] = [Rat::G2, Rat::G3, Rat::G4, Rat::G5Nr];

    /// Generation number (2..=5).
    pub fn generation(&self) -> u8 {
        match self {
            Rat::G2 => 2,
            Rat::G3 => 3,
            Rat::G4 => 4,
            Rat::G5Nr => 5,
        }
    }

    /// Display label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Rat::G2 => "2G",
            Rat::G3 => "3G",
            Rat::G4 => "4G",
            Rat::G5Nr => "5G-NR",
        }
    }

    /// Whether mobility for this RAT is managed by the 4G EPC (MME) —
    /// true for 4G and 5G-NSA, which the paper cannot distinguish (§4.1).
    pub fn uses_epc(&self) -> bool {
        matches!(self, Rat::G4 | Rat::G5Nr)
    }

    /// Stable index for categorical encodings.
    pub fn index(&self) -> usize {
        match self {
            Rat::G2 => 0,
            Rat::G3 => 1,
            Rat::G4 => 2,
            Rat::G5Nr => 3,
        }
    }

    /// First year this RAT was deployed in the synthetic network's
    /// history (Fig. 3a: last major upgrade 5G-NR in 2019).
    pub fn first_deployment_year(&self) -> u16 {
        match self {
            Rat::G2 => 2009, // network history window starts in 2009
            Rat::G3 => 2009,
            Rat::G4 => 2013,
            Rat::G5Nr => 2019,
        }
    }

    /// Typical cell radius in km by environment density class; drives both
    /// sector placement and the serving-sector model.
    pub fn nominal_range_km(&self, urban: bool) -> f64 {
        match (self, urban) {
            (Rat::G2, true) => 3.0,
            (Rat::G2, false) => 15.0,
            (Rat::G3, true) => 2.0,
            (Rat::G3, false) => 10.0,
            (Rat::G4, true) => 1.2,
            (Rat::G4, false) => 8.0,
            (Rat::G5Nr, true) => 0.6,
            (Rat::G5Nr, false) => 3.0,
        }
    }
}

impl std::fmt::Display for Rat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_ascend() {
        let gens: Vec<u8> = Rat::ALL.iter().map(Rat::generation).collect();
        assert_eq!(gens, vec![2, 3, 4, 5]);
    }

    #[test]
    fn epc_membership() {
        assert!(Rat::G4.uses_epc());
        assert!(Rat::G5Nr.uses_epc());
        assert!(!Rat::G3.uses_epc());
        assert!(!Rat::G2.uses_epc());
    }

    #[test]
    fn ranges_shrink_with_generation_in_urban() {
        let r: Vec<f64> = Rat::ALL.iter().map(|r| r.nominal_range_km(true)).collect();
        assert!(r.windows(2).all(|w| w[0] > w[1]), "newer RATs are denser: {r:?}");
    }

    #[test]
    fn deployment_years_ordered() {
        assert!(Rat::G5Nr.first_deployment_year() > Rat::G4.first_deployment_year());
        assert_eq!(Rat::G5Nr.first_deployment_year(), 2019);
    }
}
