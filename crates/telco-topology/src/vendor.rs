//! Antenna vendors.
//!
//! Four principal vendors (anonymized V1–V4 in the paper) supply the
//! network's antennas, "distributed asymmetrically across different
//! regions" (§4.1, Appendix B Fig. 17). The vendor is a significant —
//! though small — covariate in the HOF models (Tables 5/7: V3's coefficient
//! is the largest vendor effect).

use serde::{Deserialize, Serialize};

use telco_geo::district::Region;

/// An anonymized antenna vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Vendor {
    V1,
    V2,
    V3,
    V4,
}

impl Vendor {
    /// All vendors in index order.
    pub const ALL: [Vendor; 4] = [Vendor::V1, Vendor::V2, Vendor::V3, Vendor::V4];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Vendor::V1 => "V1",
            Vendor::V2 => "V2",
            Vendor::V3 => "V3",
            Vendor::V4 => "V4",
        }
    }

    /// Stable index for categorical encodings.
    pub fn index(&self) -> usize {
        match self {
            Vendor::V1 => 0,
            Vendor::V2 => 1,
            Vendor::V3 => 2,
            Vendor::V4 => 3,
        }
    }

    /// Relative deployment weight of each vendor within a region. The
    /// asymmetry mirrors Fig. 17 (top): V1/V2 dominate overall, V3
    /// concentrates in the West, V4 is a small player in the North.
    pub fn region_weights(region: Region) -> [f64; 4] {
        match region {
            Region::Capital => [0.52, 0.44, 0.02, 0.02],
            Region::North => [0.38, 0.50, 0.02, 0.10],
            Region::South => [0.46, 0.50, 0.02, 0.02],
            Region::West => [0.30, 0.38, 0.28, 0.04],
        }
    }

    /// Multiplier on the baseline HOF rate attributable to the vendor's
    /// equipment and configuration defaults. Calibrated to the regression
    /// coefficients of Table 7 (baseline V1; V2 ≈ e^0.024, V3 ≈ e^1.0,
    /// V4 ≈ e^0.23).
    pub fn hof_rate_factor(&self) -> f64 {
        match self {
            Vendor::V1 => 1.00,
            Vendor::V2 => 1.02,
            Vendor::V3 => 2.7,
            Vendor::V4 => 1.26,
        }
    }
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_weights_normalize() {
        for region in Region::ALL {
            let w = Vendor::region_weights(region);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{region}: weights sum to {sum}");
        }
    }

    #[test]
    fn v3_concentrates_in_west() {
        let west = Vendor::region_weights(Region::West)[Vendor::V3.index()];
        for region in [Region::Capital, Region::North, Region::South] {
            let other = Vendor::region_weights(region)[Vendor::V3.index()];
            assert!(west > 5.0 * other, "V3 must be concentrated in the West");
        }
    }

    #[test]
    fn vendor_hof_ordering_matches_regression() {
        // Table 7: coefficient(V3) >> coefficient(V4) > coefficient(V2) > 0.
        assert!(Vendor::V3.hof_rate_factor() > Vendor::V4.hof_rate_factor());
        assert!(Vendor::V4.hof_rate_factor() > Vendor::V2.hof_rate_factor());
        assert!(Vendor::V2.hof_rate_factor() > Vendor::V1.hof_rate_factor());
    }

    #[test]
    fn indices_unique() {
        let idx: Vec<usize> = Vendor::ALL.iter().map(Vendor::index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
