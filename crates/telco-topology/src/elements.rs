//! Physical network elements: cell sites and radio sectors.

use serde::{Deserialize, Serialize};

use telco_geo::coords::KmPoint;
use telco_geo::district::DistrictId;
use telco_geo::postcode::PostcodeId;

use crate::rat::Rat;
use crate::vendor::Vendor;

/// Identifier of a cell site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{:05}", self.0)
    }
}

/// Identifier of a radio sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SectorId(pub u32);

impl std::fmt::Display for SectorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{:06}", self.0)
    }
}

/// A cell site: a physical location hosting one or more radio sectors
/// (typically three azimuths per supported RAT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSite {
    /// Identifier.
    pub id: SiteId,
    /// Position on the country's km plane.
    pub position: KmPoint,
    /// Postcode area the site is installed in.
    pub postcode: PostcodeId,
    /// District containing the postcode.
    pub district: DistrictId,
    /// Sectors hosted at this site.
    pub sectors: Vec<SectorId>,
}

/// A radio sector: one antenna face on one RAT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioSector {
    /// Identifier.
    pub id: SectorId,
    /// Hosting site.
    pub site: SiteId,
    /// Radio access technology.
    pub rat: Rat,
    /// Antenna vendor.
    pub vendor: Vendor,
    /// Antenna azimuth in degrees (0 = north, clockwise).
    pub azimuth_deg: u16,
    /// Carrier (frequency layer) index within the site's RAT: urban sites
    /// stack multiple carriers per RAT, which is why the studied network
    /// counts 350k+ sectors on 24k+ sites (Table 1).
    pub carrier: u8,
    /// Year the sector entered service (2009–2023, Fig. 3a).
    pub deployed_year: u16,
    /// Whether the sector is a capacity booster eligible for dynamic
    /// energy-saving shutdown during low-demand hours (§5.1).
    pub capacity_booster: bool,
    /// Nominal capacity in simultaneous handover admissions per 30-minute
    /// interval; the load model compares demand against this.
    pub capacity: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SiteId(3).to_string(), "S00003");
        assert_eq!(SectorId(123456).to_string(), "R123456");
    }

    #[test]
    fn sector_is_copy_and_compact() {
        // Sectors are stored by the hundred-thousand; keep them small.
        assert!(std::mem::size_of::<RadioSector>() <= 32);
    }
}
