//! # telco-topology
//!
//! Radio network topology substrate: RAT generations, anonymized antenna
//! vendors (V1–V4), cell sites and radio sectors, a deployment generator
//! calibrated to the paper's published network anatomy (Fig. 3a, §4.1), the
//! 2009–2023 deployment-history reconstruction, geometric neighbor
//! relations, and the dynamic energy-saving shutdown policy (§5.1).
//!
//! ## Example
//!
//! ```
//! use telco_geo::country::{Country, CountryConfig};
//! use telco_topology::deployment::{Topology, TopologyConfig};
//! use telco_topology::rat::Rat;
//!
//! let country = Country::generate(CountryConfig::tiny());
//! let topo = Topology::generate(&country, TopologyConfig::tiny());
//! // Every site hosts 4G, so any point has a serving 4G sector.
//! let point = country.capital().centroid;
//! assert!(topo.serving_sector(&point, Rat::G4).is_some());
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod elements;
pub mod energy;
pub mod evolution;
pub mod neighbors;
pub mod rat;
pub mod vendor;

pub use deployment::{RatHosting, Topology, TopologyConfig};
pub use elements::{CellSite, RadioSector, SectorId, SiteId};
pub use energy::{EnergySavingPolicy, SLOTS_PER_DAY};
pub use evolution::{DeploymentHistory, HISTORY_END, HISTORY_START};
pub use neighbors::NeighborTable;
pub use rat::Rat;
pub use vendor::Vendor;
