//! Deployment generation: placing cell sites and radio sectors over a
//! synthetic country, calibrated to the paper's published network anatomy.
//!
//! Calibration targets (§4.1, Fig. 3a; §5.1):
//! * sector RAT mix at the end of 2023: 4G ≈ 55%, 2G ≈ 18%, 3G ≈ 18%,
//!   5G-NR ≈ 8.4%;
//! * ~80% of sectors installed in urban postcode areas;
//! * every site hosts 4G; legacy RATs are over-represented at rural sites
//!   (coverage), 5G-NR concentrates at urban sites (capacity);
//! * vendors assigned per site with region-asymmetric weights (Fig. 17).

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use telco_geo::coords::KmPoint;
use telco_geo::country::Country;
use telco_geo::district::DistrictId;
use telco_geo::grid::GridIndex;
use telco_geo::postcode::{AreaType, PostcodeId};

use crate::elements::{CellSite, RadioSector, SectorId, SiteId};
use crate::rat::Rat;
use crate::vendor::Vendor;

/// Probability that a site hosts each RAT, by area type. Every site hosts
/// 4G; the other probabilities are calibrated so the country-wide sector
/// shares land on the paper's 55 / 18 / 18 / 8.4 split given the ~80/20
/// urban/rural site split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatHosting {
    /// P(site hosts 2G).
    pub g2: f64,
    /// P(site hosts 3G).
    pub g3: f64,
    /// P(site hosts 5G-NR).
    pub g5: f64,
}

/// Topology generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Sites per 1000 residents (the paper's MNO runs 24k+ sites).
    pub sites_per_1000_pop: f64,
    /// Minimum sites per postcode (coverage guarantee).
    pub min_sites_per_postcode: usize,
    /// RAT hosting probabilities at urban sites.
    pub urban_hosting: RatHosting,
    /// RAT hosting probabilities at rural sites.
    pub rural_hosting: RatHosting,
    /// Fraction of urban 4G/5G sectors flagged as capacity boosters
    /// (eligible for energy-saving shutdown, §5.1).
    pub booster_fraction: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x70b0,
            sites_per_1000_pop: 1.0,
            min_sites_per_postcode: 1,
            urban_hosting: RatHosting { g2: 0.28, g3: 0.28, g5: 0.19 },
            rural_hosting: RatHosting { g2: 0.52, g3: 0.52, g5: 0.01 },
            booster_fraction: 0.30,
        }
    }
}

impl TopologyConfig {
    /// Small configuration for fast tests (pairs with
    /// `CountryConfig::tiny()`).
    pub fn tiny() -> Self {
        TopologyConfig { sites_per_1000_pop: 0.8, ..Default::default() }
    }
}

/// The generated radio network: sites, sectors and spatial indices.
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    sites: Vec<CellSite>,
    sectors: Vec<RadioSector>,
    /// Per-RAT spatial index over sites hosting that RAT.
    site_index: [GridIndex<SiteId>; 4],
}

impl Topology {
    /// Generate a deployment over a country.
    pub fn generate(country: &Country, config: TopologyConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut sites: Vec<CellSite> = Vec::new();
        let mut sectors: Vec<RadioSector> = Vec::new();

        for pc in country.postcodes() {
            let n_sites = ((pc.population as f64 / 1000.0 * config.sites_per_1000_pop).round()
                as usize)
                .max(config.min_sites_per_postcode);
            let urban = pc.area_type == AreaType::Urban;
            let hosting = if urban { config.urban_hosting } else { config.rural_hosting };
            let scatter = (pc.area_km2 / std::f64::consts::PI).sqrt();
            let district = pc.district;
            let region = country.district(district).region;
            let vendor_weights = Vendor::region_weights(region);

            for _ in 0..n_sites {
                let ang: f64 = rng.random_range(0.0..std::f64::consts::TAU);
                let r: f64 = rng.random::<f64>().sqrt() * scatter;
                let pos = country.bounds.clamp(&KmPoint::new(
                    pc.centroid.x + ang.cos() * r,
                    pc.centroid.y + ang.sin() * r,
                ));
                let site_id = SiteId(sites.len() as u32);

                // Vendor per site, weighted by region.
                let u: f64 = rng.random::<f64>();
                let mut acc = 0.0;
                let mut vendor = Vendor::V1;
                for v in Vendor::ALL {
                    acc += vendor_weights[v.index()];
                    if u < acc {
                        vendor = v;
                        break;
                    }
                }

                // RATs hosted: 4G always; others by probability.
                let mut rats = vec![Rat::G4];
                if rng.random::<f64>() < hosting.g2 {
                    rats.push(Rat::G2);
                }
                if rng.random::<f64>() < hosting.g3 {
                    rats.push(Rat::G3);
                }
                if rng.random::<f64>() < hosting.g5 {
                    rats.push(Rat::G5Nr);
                }

                // Urban sites stack three carriers per hosted RAT (Table 1 s
                // 350k+ sectors on 24k+ sites imply multiple frequency
                // layers per site); rural coverage sites run one.
                let n_carriers: u8 = if urban { 3 } else { 1 };
                let mut sector_ids = Vec::with_capacity(rats.len() * 3 * n_carriers as usize);
                for rat in rats {
                    let year = sample_deployment_year(rat, &mut rng);
                    for carrier in 0..n_carriers {
                        for azimuth in [0u16, 120, 240] {
                            let id = SectorId(sectors.len() as u32);
                            let booster = urban
                                && rat.uses_epc()
                                && (carrier > 0 || rng.random::<f64>() < config.booster_fraction);
                            sectors.push(RadioSector {
                                id,
                                site: site_id,
                                rat,
                                vendor,
                                azimuth_deg: azimuth,
                                carrier,
                                deployed_year: year,
                                capacity_booster: booster,
                                capacity: nominal_capacity(rat, urban),
                            });
                            sector_ids.push(id);
                        }
                    }
                }
                sites.push(CellSite {
                    id: site_id,
                    position: pos,
                    postcode: pc.id,
                    district,
                    sectors: sector_ids,
                });
            }
        }

        // Spatial indices per RAT over hosting sites.
        let cell_km = (country.bounds.width().min(country.bounds.height()) / 40.0).max(2.0);
        let mut site_index = [
            GridIndex::new(country.bounds, cell_km),
            GridIndex::new(country.bounds, cell_km),
            GridIndex::new(country.bounds, cell_km),
            GridIndex::new(country.bounds, cell_km),
        ];
        for site in &sites {
            let mut hosted = [false; 4];
            for &sid in &site.sectors {
                hosted[sectors[sid.0 as usize].rat.index()] = true;
            }
            for rat in Rat::ALL {
                if hosted[rat.index()] {
                    site_index[rat.index()].insert(site.position, site.id);
                }
            }
        }

        Topology { config, sites, sectors, site_index }
    }

    /// The generation parameters.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// All sites, indexed by `SiteId.0`.
    pub fn sites(&self) -> &[CellSite] {
        &self.sites
    }

    /// All sectors, indexed by `SectorId.0`.
    pub fn sectors(&self) -> &[RadioSector] {
        &self.sectors
    }

    /// Look up a site.
    pub fn site(&self, id: SiteId) -> &CellSite {
        &self.sites[id.0 as usize]
    }

    /// Look up a sector.
    pub fn sector(&self, id: SectorId) -> &RadioSector {
        &self.sectors[id.0 as usize]
    }

    /// Postcode of a sector's site.
    pub fn sector_postcode(&self, id: SectorId) -> PostcodeId {
        self.site(self.sector(id).site).postcode
    }

    /// District of a sector's site.
    pub fn sector_district(&self, id: SectorId) -> DistrictId {
        self.site(self.sector(id).site).district
    }

    /// The serving sector for a UE at `point` on RAT `rat`: the matching
    /// sector (by bearing → azimuth) of the nearest site hosting that RAT.
    /// `None` if no site hosts the RAT (possible in tiny configurations).
    pub fn serving_sector(&self, point: &KmPoint, rat: Rat) -> Option<SectorId> {
        let (site_pos, &site_id) = self.site_index[rat.index()].nearest(point)?;
        let site = self.site(site_id);
        // Bearing from site to UE, degrees clockwise from north.
        let bearing = (point.x - site_pos.x).atan2(point.y - site_pos.y).to_degrees();
        let bearing = if bearing < 0.0 { bearing + 360.0 } else { bearing };
        site.sectors.iter().copied().filter(|&s| self.sector(s).rat == rat).min_by_key(|&s| {
            let az = self.sector(s).azimuth_deg as f64;
            let diff = (bearing - az).abs();
            (diff.min(360.0 - diff) * 1000.0) as u64
        })
    }

    /// Sites hosting `rat` within `radius_km` of a point.
    pub fn sites_near(&self, point: &KmPoint, rat: Rat, radius_km: f64) -> Vec<SiteId> {
        self.site_index[rat.index()]
            .within_radius(point, radius_km)
            .into_iter()
            .map(|(_, &id)| id)
            .collect()
    }

    /// Sector counts per RAT.
    pub fn sector_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for s in &self.sectors {
            counts[s.rat.index()] += 1;
        }
        counts
    }

    /// Fraction of sectors whose site sits in an urban postcode.
    pub fn urban_sector_fraction(&self, country: &Country) -> f64 {
        let urban = self
            .sectors
            .iter()
            .filter(|s| country.postcode(self.site(s.site).postcode).area_type == AreaType::Urban)
            .count();
        urban as f64 / self.sectors.len() as f64
    }
}

/// Nominal 30-minute handover admission capacity per sector.
fn nominal_capacity(rat: Rat, urban: bool) -> u32 {
    let base = match rat {
        Rat::G2 => 60,
        Rat::G3 => 120,
        Rat::G4 => 600,
        Rat::G5Nr => 900,
    };
    if urban {
        base
    } else {
        base / 2
    }
}

/// Deployment year per RAT, matching Fig. 3a's qualitative history: legacy
/// RATs deployed early in the window, 4G ramping from 2013, 5G-NR from 2019
/// with most of the build-out in 2021–2023.
fn sample_deployment_year(rat: Rat, rng: &mut ChaCha8Rng) -> u16 {
    let first = rat.first_deployment_year();
    match rat {
        Rat::G2 | Rat::G3 => first + rng.random_range(0..4u16),
        Rat::G4 => {
            // Growth-weighted: later years more likely (network expansion).
            let span = 2023 - first;
            let u: f64 = rng.random::<f64>();
            first + (u.sqrt() * (span as f64 + 1.0)) as u16
        }
        Rat::G5Nr => {
            let u: f64 = rng.random::<f64>();
            first + (u.powf(0.6) * 5.0) as u16
        }
    }
    .min(2023)
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_geo::country::CountryConfig;

    fn setup() -> (Country, Topology) {
        let country = Country::generate(CountryConfig::default());
        let topo = Topology::generate(&country, TopologyConfig::default());
        (country, topo)
    }

    #[test]
    fn generation_is_deterministic() {
        let country = Country::generate(CountryConfig::tiny());
        let a = Topology::generate(&country, TopologyConfig::tiny());
        let b = Topology::generate(&country, TopologyConfig::tiny());
        assert_eq!(a.sectors(), b.sectors());
    }

    #[test]
    fn rat_mix_matches_paper() {
        let (_, topo) = setup();
        let counts = topo.sector_counts();
        let total: usize = counts.iter().sum();
        let share = |r: Rat| counts[r.index()] as f64 / total as f64;
        assert!((share(Rat::G4) - 0.55).abs() < 0.03, "4G share {}", share(Rat::G4));
        assert!((share(Rat::G5Nr) - 0.084).abs() < 0.025, "5G share {}", share(Rat::G5Nr));
        assert!((share(Rat::G2) - 0.18).abs() < 0.03, "2G share {}", share(Rat::G2));
        assert!((share(Rat::G3) - 0.18).abs() < 0.03, "3G share {}", share(Rat::G3));
    }

    #[test]
    fn most_sectors_are_urban() {
        let (country, topo) = setup();
        let f = topo.urban_sector_fraction(&country);
        assert!((0.70..0.92).contains(&f), "urban sector fraction {f}");
    }

    #[test]
    fn every_site_hosts_4g() {
        let (_, topo) = setup();
        for site in topo.sites() {
            assert!(
                site.sectors.iter().any(|&s| topo.sector(s).rat == Rat::G4),
                "site {} lacks 4G",
                site.id
            );
        }
    }

    #[test]
    fn sectors_come_in_azimuth_triples_per_carrier() {
        let (_, topo) = setup();
        for site in topo.sites() {
            let mut per_rat = [0usize; 4];
            for &s in &site.sectors {
                per_rat[topo.sector(s).rat.index()] += 1;
            }
            for (i, &n) in per_rat.iter().enumerate() {
                assert!(n % 3 == 0 && n <= 9, "site {} has {n} sectors of RAT {i}", site.id);
            }
        }
        // Urban sites actually use the second carrier somewhere.
        let multi = topo.sectors().iter().filter(|s| s.carrier > 0).count();
        assert!(multi > 0, "no second-carrier sectors generated");
    }

    #[test]
    fn serving_sector_prefers_nearest_site_and_matching_azimuth() {
        let (_, topo) = setup();
        let site = &topo.sites()[0];
        // Query from just north of the site: expect the 0° azimuth sector.
        let q = KmPoint::new(site.position.x, site.position.y + 0.05);
        let s = topo.serving_sector(&q, Rat::G4).unwrap();
        let sec = topo.sector(s);
        // The nearest 4G site to a point 50 m from this site is the site
        // itself unless another sits even closer; allow either but require a
        // 4G sector with a sane azimuth.
        assert_eq!(sec.rat, Rat::G4);
        if sec.site == site.id {
            assert_eq!(sec.azimuth_deg, 0);
        }
    }

    #[test]
    fn deployment_years_respect_rat_windows() {
        let (_, topo) = setup();
        for s in topo.sectors() {
            assert!(s.deployed_year >= s.rat.first_deployment_year());
            assert!(s.deployed_year <= 2023);
        }
    }

    #[test]
    fn boosters_only_on_urban_epc_sectors() {
        let (country, topo) = setup();
        for s in topo.sectors() {
            if s.capacity_booster {
                assert!(s.rat.uses_epc(), "booster on legacy RAT");
                let pc = topo.site(s.site).postcode;
                assert_eq!(country.postcode(pc).area_type, AreaType::Urban);
            }
        }
    }

    #[test]
    fn capacity_positive_and_urban_higher() {
        assert!(nominal_capacity(Rat::G4, true) > nominal_capacity(Rat::G4, false));
        for rat in Rat::ALL {
            assert!(nominal_capacity(rat, false) > 0);
        }
    }

    #[test]
    fn every_postcode_has_coverage() {
        let (country, topo) = setup();
        let mut covered = vec![false; country.postcodes().len()];
        for site in topo.sites() {
            covered[site.postcode.0 as usize] = true;
        }
        assert!(covered.iter().all(|&c| c), "some postcode lacks any site");
    }
}
