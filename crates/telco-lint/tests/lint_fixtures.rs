//! Every rule must fire on the deliberately-broken fixture trees — and
//! fire at the exact (rule, path, line) it documents. A rule that stops
//! firing is indistinguishable from a clean workspace, so these tests
//! are what keep the linter honest.

use std::path::PathBuf;

use telco_lint::{run_lint, CatalogPaths, Diagnostic, LintConfig};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// `(rule, path-suffix, line)` triples, sorted the way `run_lint` sorts.
fn keys(diags: &[Diagnostic]) -> Vec<(&str, String, usize)> {
    diags.iter().map(|d| (d.rule, d.path.replace('\\', "/"), d.line)).collect()
}

#[test]
fn violation_fixtures_trip_every_rule() {
    let cfg = LintConfig::bare(fixture_root("violations"));
    let diags = run_lint(&cfg).expect("fixture tree readable");

    let expected: Vec<(&str, String, usize)> = vec![
        // Lines 16 (allow-waived) and 21 (outside the region) stay clean.
        ("alloc-discipline", "crates/allocy/src/lib.rs".into(), 6),
        ("alloc-discipline", "crates/allocy/src/lib.rs".into(), 11),
        // Line 15 (audited region) and line 21 (ordering note) stay clean.
        ("concurrency", "crates/atomicky/src/lib.rs".into(), 10),
        ("concurrency", "crates/atomicky/src/lib.rs".into(), 25),
        ("concurrency", "crates/atomicky/src/lib.rs".into(), 33),
        ("marker", "crates/marky/src/lib.rs".into(), 2),
        ("marker", "crates/marky/src/lib.rs".into(), 5),
        ("determinism", "crates/nondet/src/lib.rs".into(), 11),
        ("determinism", "crates/nondet/src/lib.rs".into(), 16),
        ("determinism", "crates/nondet/src/lib.rs".into(), 22),
        // The resolver regression tree: `std::cmp::Ordering` matches at
        // lines 21–22 and a local `Ordering::Relaxed` at line 29 resolve
        // to non-atomic enums and stay clean; only the genuinely atomic
        // `Ordering::AcqRel` fires.
        ("concurrency", "crates/ordersort/src/lib.rs".into(), 34),
        ("panic-free", "crates/panicky/src/lib.rs".into(), 5),
        ("panic-free", "crates/panicky/src/lib.rs".into(), 6),
        ("panic-free", "crates/panicky/src/lib.rs".into(), 10),
        ("no-print", "crates/printy/src/lib.rs".into(), 4),
        ("no-print", "crates/printy/src/lib.rs".into(), 8),
        // The same `counts.iter()` at line 14 stays clean: the region
        // form scopes the determinism rule to lines 17–21 only.
        ("determinism", "crates/regiony/src/lib.rs".into(), 19),
        // Line 17 (allow-waived) stays clean.
        ("error-discipline", "crates/swallowy/src/lib.rs".into(), 8),
        ("error-discipline", "crates/swallowy/src/lib.rs".into(), 12),
        ("unsafe-forbid", "crates/unsafy/src/lib.rs".into(), 1),
        ("unsafe-forbid", "crates/unsafy/src/lib.rs".into(), 2),
    ];
    assert_eq!(keys(&diags), expected, "full report:\n{}", telco_lint::report::render_text(&diags));
}

#[test]
fn violation_findings_name_the_construct() {
    let cfg = LintConfig::bare(fixture_root("violations"));
    let diags = run_lint(&cfg).expect("fixture tree readable");

    let text = telco_lint::report::render_text(&diags);
    for needle in [
        "`assert!`",
        "non-literal index `[i]`",
        "`unwrap`",
        "hash-ordered",
        "wall-clock",
        "`println!`",
        "`dbg!`",
        "forbid(unsafe_code)",
        "unknown directive `deny-everything`",
        "requires a justification",
        "audited-atomics region",
        "unbounded channel",
        "drop the guard before waiting",
        "deny-alloc region",
        "discards a Result",
        "swallows an error",
    ] {
        assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
    }
}

#[test]
fn catalog_fixture_reports_every_gap() {
    let src = "crates/sig/src";
    let cfg = LintConfig {
        root: fixture_root("catalog"),
        print_allowed_crates: Vec::new(),
        catalog: Some(CatalogPaths {
            causes: format!("{src}/causes.rs"),
            state_machine: format!("{src}/state_machine.rs"),
            messages: format!("{src}/messages.rs"),
            entities: format!("{src}/entities.rs"),
        }),
    };
    let diags = run_lint(&cfg).expect("fixture tree readable");
    let catalog: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "catalog").collect();

    assert_eq!(catalog.len(), 5, "report:\n{}", telco_lint::report::render_text(&diags));
    let text = telco_lint::report::render_text(&diags);
    for needle in [
        "PrincipalCause::Orphan has no abort mapping",
        "Phase::Done is never reached",
        "Message::Ghost is never emitted",
        "Message::COUNT is 2 but enum Message has 3 variants",
        "dimensioned by `Message::COUNT`",
    ] {
        assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
    }
    // The non-catalog rules must stay quiet on this tree: its files are
    // not crate roots and carry no opted-in markers.
    assert_eq!(catalog.len(), diags.len());
}

#[test]
fn json_report_is_machine_readable() {
    let cfg = LintConfig::bare(fixture_root("violations"));
    let lint = telco_lint::run_lint_full(&cfg).expect("fixture tree readable");
    let json = telco_lint::report::render_json(&lint.findings, &lint.waivers);
    assert!(json.contains("\"rule\": \"panic-free\""), "{json}");
    assert!(json.contains("\"waivers\": ["), "{json}");
    assert!(json.contains("\"waiver_count\":"), "{json}");
    // The inventory carries each suppression's justification verbatim —
    // here the ordering note from the atomicky fixture.
    assert!(json.contains("monitoring probe; stale reads are acceptable"), "{json}");
}
