#![forbid(unsafe_code)]

// telco-lint: deny-swallowed-errors

use std::io::Write;

pub fn flush_quietly(w: &mut impl Write) {
    let _ = w.flush();
}

pub fn sync_quietly(w: &mut impl Write) {
    w.flush().ok();
}

pub fn flush_with_excuse(w: &mut impl Write) {
    // telco-lint: allow(error): diagnostics-only sink; a failed flush loses a log line at most
    let _ = w.flush();
}
