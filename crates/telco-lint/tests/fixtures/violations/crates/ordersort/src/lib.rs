#![forbid(unsafe_code)]
//! The resolver must tell `std::cmp::Ordering` (and a same-named local
//! enum) apart from the atomic memory-ordering enum, all in one file.

use std::cmp::Ordering;
use std::sync::atomic::AtomicU32;

pub mod strictness {
    pub enum Ordering {
        Relaxed,
        Strict,
    }
}

pub fn rank(a: u32, b: u32) -> Ordering {
    a.cmp(&b)
}

pub fn widest(a: u32, b: u32) -> u32 {
    match a.cmp(&b) {
        Ordering::Less => b,
        Ordering::Equal | Ordering::Greater => a,
    }
}

pub fn policy() -> strictness::Ordering {
    use self::strictness::Ordering;
    // The local enum reuses an atomic variant name; resolution keeps it clean.
    Ordering::Relaxed
}

pub fn publish(flag: &AtomicU32) {
    use std::sync::atomic::Ordering;
    flag.swap(1, Ordering::AcqRel);
}
