#![forbid(unsafe_code)]
// telco-lint: deny-nondeterminism

use std::collections::HashMap;

pub fn tally(events: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in events {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.iter().map(|(&k, &v)| (k, v)).collect()
}

pub fn ordered(keys: std::collections::HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in &keys {
        out.push(*k);
    }
    out
}

pub fn elapsed_ns(epoch: std::time::Instant) -> u128 {
    epoch.elapsed().as_nanos()
}
