#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn tally(events: &[u32]) -> HashMap<u32, u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &k in events {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

pub fn free_order(counts: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    counts.iter().map(|(&k, &v)| (k, v)).collect()
}

// telco-lint: deny-nondeterminism(begin)
pub fn merged_order(counts: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    counts.iter().map(|(&k, &v)| (k, v)).collect()
}
// telco-lint: deny-nondeterminism(end)
