#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

pub static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::Relaxed)
}

// telco-lint: audited-atomics(begin): counter publishes via thread join; the RMW itself is atomic
pub fn bump_audited() -> u64 {
    COUNT.fetch_add(1, Ordering::Relaxed)
}
// telco-lint: audited-atomics(end)

pub fn probe() -> u64 {
    // ordering: monitoring probe; stale reads are acceptable
    COUNT.load(Ordering::Relaxed)
}

pub fn open_firehose() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}

pub fn drain_child(slots: &Mutex<u32>, child: &mut std::process::Child) -> u32 {
    let held = match slots.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let _status = child.wait();
    *held
}
