#![forbid(unsafe_code)]

pub fn report(n: usize) {
    println!("processed {n} records");
}

pub fn peek(n: usize) -> usize {
    dbg!(n)
}
