#![forbid(unsafe_code)]
// telco-lint: deny-panic

pub fn pick(v: &[u8], i: usize) -> u8 {
    assert!(i < v.len());
    v[i]
}

pub fn must(x: Option<u8>) -> u8 {
    x.unwrap()
}
