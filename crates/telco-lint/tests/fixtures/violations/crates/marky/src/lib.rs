#![forbid(unsafe_code)]
// telco-lint: deny-everything

pub fn f(x: Option<u8>) -> u8 {
    x.unwrap_or(0) // telco-lint: allow(panic):
}
