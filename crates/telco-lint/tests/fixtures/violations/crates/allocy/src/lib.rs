#![forbid(unsafe_code)]

// telco-lint: deny-alloc(begin)
pub fn scan(values: &[u32], out: &mut Vec<u32>) {
    for &v in values {
        out.push(v);
    }
}

pub fn label(code: u32) -> String {
    format!("code-{code}")
}

pub fn keep(tags: &mut Vec<String>, tag: &str) {
    // telco-lint: allow(alloc): interned once per unique tag at startup
    tags.push(tag.to_string());
}
// telco-lint: deny-alloc(end)

pub fn outside(out: &mut Vec<u32>, v: u32) {
    out.push(v);
}
