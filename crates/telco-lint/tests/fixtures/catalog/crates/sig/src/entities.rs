//! Fixture counter matrix: the message axis is a magic number.

pub struct Counters {
    pub rx: [u64; 19],
    pub by_element: [u64; Element::COUNT],
}
