//! Fixture message catalog: `Ghost` is never emitted and
//! `Message::COUNT` lags the enum.

pub enum Element {
    Ue,
    Mme,
}

impl Element {
    pub const COUNT: usize = 2;
}

pub enum Message {
    Ping,
    Pong,
    Ghost,
}

impl Message {
    pub const COUNT: usize = 2;
}
