//! Fixture state machine: `Phase::Done` is unreachable and the cut
//! only maps `Lost`.

pub enum Phase {
    Idle,
    Busy,
    Done,
}

pub struct Step {
    pub message: Message,
    pub phase_after: Phase,
}

pub const SCRIPT: [Step; 2] = [
    Step { message: Message::Ping, phase_after: Phase::Busy },
    Step { message: Message::Pong, phase_after: Phase::Busy },
];

pub fn failure_cut(cause: PrincipalCause) -> usize {
    match cause {
        PrincipalCause::Lost => 1,
    }
}
