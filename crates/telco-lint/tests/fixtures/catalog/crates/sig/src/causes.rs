//! Fixture cause catalog: `Orphan` has no abort mapping.

pub enum PrincipalCause {
    Lost,
    Orphan,
}
