//! The real workspace must lint clean. Running this as an ordinary
//! integration test makes every `telco-lint` finding a *test* failure
//! too, so the invariant gate cannot drift from the test gate.

use std::path::{Path, PathBuf};

use telco_lint::{run_lint, LintConfig};

/// Walk up from this crate's manifest dir to the directory whose
/// `Cargo.toml` declares the workspace.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).unwrap_or_default();
            if text.contains("[workspace]") {
                return dir;
            }
        }
        let Some(parent) = dir.parent().map(Path::to_path_buf) else {
            panic!("no workspace root above {}", env!("CARGO_MANIFEST_DIR"));
        };
        dir = parent;
    }
}

#[test]
fn workspace_lints_clean() {
    let cfg = LintConfig::workspace(workspace_root());
    let diags = run_lint(&cfg).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "the workspace has lint findings; run `cargo xtask lint`:\n{}",
        telco_lint::report::render_text(&diags)
    );
}
