//! # telco-lint
//!
//! Workspace-wide static invariant checker for the telco-lens repo,
//! run as `cargo xtask lint` (see `.cargo/config.toml`) and as the
//! fail-fast first job in CI.
//!
//! The linter enforces three families of *domain* invariants that
//! rustc/clippy cannot see, because they live in this repo's contracts
//! rather than in the language:
//!
//! - **panic-freedom** ([`rules::panic_free`]) in opted-in hot-path
//!   modules: the simulation engine, the handover state machine, and the
//!   trace-store read path must degrade into `Result`s, never abort a
//!   countrywide run at 97%;
//! - **determinism** ([`rules::determinism`]) in trace-producing crates:
//!   no hash-ordered iteration, wall-clock reads, or thread identity may
//!   influence trace bytes — byte-identical reruns are what the golden
//!   and spill-merge suites assert;
//! - **catalog exhaustiveness** ([`rules::catalog`]): the failure-cause,
//!   phase, and message catalogs in telco-signaling must stay mutually
//!   complete so no envelope or abort path silently drops out of the
//!   counter matrices.
//!
//! Plus two hygiene rules: crate roots must `forbid(unsafe_code)`
//! ([`rules::unsafe_forbid`]) and library crates must not print
//! ([`rules::no_print`]).
//!
//! Files opt in or locally waive rules through marker comments; the
//! grammar lives in [`markers`]. Scanning is lexical ([`scan`]) — no
//! `syn`, no dependencies — which keeps the gate fast and means the
//! linter can never be broken by the crates it checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod markers;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::{Diagnostic, Waiver};
pub use rules::catalog::CatalogPaths;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use markers::FileMarkers;
use scan::SourceFile;

/// What to lint and under which policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root: the directory holding `crates/`.
    pub root: PathBuf,
    /// Crates whose `src/` may print (CLI front-ends, the linter itself).
    pub print_allowed_crates: Vec<String>,
    /// Catalog file layout; `None` disables the catalog rule.
    pub catalog: Option<CatalogPaths>,
}

impl LintConfig {
    /// Policy for the real workspace.
    pub fn workspace(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            print_allowed_crates: vec!["telco-experiments".to_string(), "telco-lint".to_string()],
            catalog: Some(CatalogPaths::telco_signaling()),
        }
    }

    /// Policy for a bare tree (fixture tests): all rules except the
    /// catalog, no print exemptions.
    pub fn bare(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig { root: root.into(), print_allowed_crates: Vec::new(), catalog: None }
    }
}

struct Scanned {
    file: SourceFile,
    markers: FileMarkers,
    crate_name: Option<String>,
    is_crate_root: bool,
    in_src: bool,
}

/// The full lint result: findings plus the waiver inventory.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings sorted by (path, line, rule).
    pub findings: Vec<Diagnostic>,
    /// Every recorded suppression, sorted by (path, line, rule).
    pub waivers: Vec<Waiver>,
}

/// Lint the tree under `cfg.root`; returns diagnostics sorted by
/// (path, line, rule). See [`run_lint_full`] for the waiver inventory.
pub fn run_lint(cfg: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    run_lint_full(cfg).map(|r| r.findings)
}

/// Lint the tree under `cfg.root`, returning findings and the complete
/// waiver inventory.
pub fn run_lint_full(cfg: &LintConfig) -> io::Result<LintReport> {
    let mut scanned: Vec<Scanned> = Vec::new();

    let crates_dir = cfg.root.join("crates");
    if crates_dir.is_dir() {
        for crate_dir in sorted_dirs(&crates_dir)? {
            let name =
                crate_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            for sub in ["src", "tests", "benches", "examples"] {
                collect(cfg, &crate_dir.join(sub), Some(&name), sub == "src", &mut scanned)?;
            }
        }
    }
    // Workspace-root facade crate.
    for sub in ["src", "examples", "tests", "benches"] {
        collect(cfg, &cfg.root.join(sub), None, sub == "src", &mut scanned)?;
    }

    // A `deny-nondeterminism` marker in a crate root covers the whole
    // crate's src/; resolve the per-crate opt-in set first.
    let nondet_crates: Vec<Option<String>> = scanned
        .iter()
        .filter(|s| s.is_crate_root && s.markers.deny_nondet)
        .map(|s| s.crate_name.clone())
        .collect();

    let mut diags: Vec<Diagnostic> = Vec::new();
    for s in &scanned {
        diags.extend(s.markers.diags.iter().cloned());
        rules::panic_free::check(&s.file, &s.markers, &mut diags);
        rules::unsafe_forbid::check(&s.file, &s.markers, s.is_crate_root, &mut diags);

        let nondet_scope =
            s.markers.deny_nondet || (s.in_src && nondet_crates.contains(&s.crate_name));
        rules::determinism::check(&s.file, nondet_scope, &s.markers, &mut diags);

        let print_allowed = match &s.crate_name {
            Some(name) => cfg.print_allowed_crates.iter().any(|c| c == name),
            None => false,
        };
        if s.in_src && !print_allowed {
            rules::no_print::check(&s.file, &s.markers, &mut diags);
        }
        // Concurrency claims live in library code; tests may use any
        // ordering or queue shape that gets the scenario built.
        if s.in_src {
            rules::concurrency::check(&s.file, &s.markers, &mut diags);
        }
        // Alloc/error discipline scope themselves via markers.
        rules::alloc::check(&s.file, &s.markers, &mut diags);
        rules::errors::check(&s.file, &s.markers, &mut diags);
    }

    if let Some(catalog) = &cfg.catalog {
        let sources: Vec<&SourceFile> = scanned.iter().map(|s| &s.file).collect();
        rules::catalog::check(&sources, catalog, &mut diags);
    }

    let mut waivers: Vec<Waiver> = scanned
        .iter()
        .flat_map(|s| {
            s.markers.waivers.iter().map(|w| Waiver {
                rule: w.rule,
                path: s.file.rel_path.clone(),
                line: w.line,
                justification: w.justification.clone(),
            })
        })
        .collect();

    report::sort(&mut diags);
    report::sort_waivers(&mut waivers);
    Ok(LintReport { findings: diags, waivers })
}

/// Recursively gather `.rs` files under `dir` (sorted for deterministic
/// reports), skipping fixture trees — those are deliberately-broken
/// inputs for the linter's own tests.
fn collect(
    cfg: &LintConfig,
    dir: &Path,
    crate_name: Option<&str>,
    in_src: bool,
    out: &mut Vec<Scanned>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect(cfg, &path, crate_name, in_src, out)?;
        } else if name.ends_with(".rs") {
            let raw = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(&cfg.root).unwrap_or(&path);
            let file = SourceFile::parse(rel, raw);
            let markers = markers::analyze(&file);
            let is_crate_root = in_src
                && (name == "lib.rs" || name == "main.rs")
                && path.parent().and_then(|p| p.file_name()).is_some_and(|p| p == "src");
            out.push(Scanned {
                file,
                markers,
                crate_name: crate_name.map(str::to_string),
                is_crate_root,
                in_src,
            });
        }
    }
    Ok(())
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}
