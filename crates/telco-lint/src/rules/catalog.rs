//! Catalog-exhaustiveness rule.
//!
//! The signaling layer keeps three hand-maintained catalogs that must
//! stay mutually complete as the protocol model grows:
//!
//! 1. **Causes → aborts**: every [`PrincipalCause`] variant must name an
//!    abort path in `failure_cut` — a cause the cut cannot place would
//!    silently fall through to a success-shaped trace.
//! 2. **Phases → script**: every `Phase` (except the initial one) must be
//!    produced by some scripted step's `phase_after`, i.e. be reachable
//!    in the Fig. 1 message walk.
//! 3. **Messages → emission**: every `Message` variant must be emitted
//!    somewhere in the state machine (a scripted `message:` field or a
//!    qualified `Message::` path) — dead message kinds mean the
//!    Element×Message counter matrix carries permanently-zero rows.
//! 4. **Counter matrix dimensions**: `Element::COUNT` / `Message::COUNT`
//!    must equal the real variant counts, and the per-element counters in
//!    `entities.rs` must be dimensioned by those constants, not magic
//!    numbers.
//!
//! All checks are lexical over the masked sources; each finding anchors
//! at the enum variant (or constant) that lost its counterpart, which is
//! where the fix goes.
//!
//! [`PrincipalCause`]: https://docs.rs/telco-signaling

use crate::report::Diagnostic;
use crate::scan::{find_from, is_ident_byte, matching_delim, SourceFile};

/// Where the catalogs live, relative to the lint root.
#[derive(Debug, Clone)]
pub struct CatalogPaths {
    /// File declaring `enum PrincipalCause`.
    pub causes: String,
    /// File holding the scripted state machine and `failure_cut`.
    pub state_machine: String,
    /// File declaring `enum Element` / `enum Message` and their `COUNT`s.
    pub messages: String,
    /// File holding the Element×Message counter matrix.
    pub entities: String,
}

impl CatalogPaths {
    /// The real workspace layout (telco-signaling).
    pub fn telco_signaling() -> CatalogPaths {
        let src = "crates/telco-signaling/src";
        CatalogPaths {
            causes: format!("{src}/causes.rs"),
            state_machine: format!("{src}/state_machine.rs"),
            messages: format!("{src}/messages.rs"),
            entities: format!("{src}/entities.rs"),
        }
    }
}

/// Run the catalog checks over the scanned file set.
pub fn check(files: &[&SourceFile], paths: &CatalogPaths, out: &mut Vec<Diagnostic>) {
    let Some(causes) = lookup(files, &paths.causes, out) else { return };
    let Some(sm) = lookup(files, &paths.state_machine, out) else { return };
    let Some(messages) = lookup(files, &paths.messages, out) else { return };
    let Some(entities) = lookup(files, &paths.entities, out) else { return };

    check_causes(causes, sm, out);
    check_phases(sm, out);
    check_message_emission(messages, sm, out);
    check_counts(messages, "Element", out);
    check_counts(messages, "Message", out);
    check_matrix_dims(entities, out);
}

fn lookup<'a>(
    files: &[&'a SourceFile],
    rel: &str,
    out: &mut Vec<Diagnostic>,
) -> Option<&'a SourceFile> {
    let found = files.iter().find(|f| f.rel_path == rel).copied();
    if found.is_none() {
        out.push(Diagnostic {
            rule: "catalog",
            path: rel.to_string(),
            line: 1,
            message: "catalog check target not found under the lint root".to_string(),
            snippet: String::new(),
        });
    }
    found
}

fn check_causes(causes: &SourceFile, sm: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(variants) = enum_variants(causes, "PrincipalCause") else {
        out.push(missing_decl(causes, "enum PrincipalCause"));
        return;
    };
    let Some((body_start, body_end)) = fn_body(sm, "failure_cut") else {
        out.push(missing_decl(sm, "fn failure_cut"));
        return;
    };
    let body = &sm.masked[body_start..body_end];
    for (variant, line) in variants {
        if !contains_token(body, &format!("PrincipalCause::{variant}"))
            && !contains_token(body, &variant)
        {
            out.push(Diagnostic {
                rule: "catalog",
                path: causes.rel_path.clone(),
                line,
                message: format!(
                    "PrincipalCause::{variant} has no abort mapping in failure_cut; a run failing with this cause would produce a success-shaped trace"
                ),
                snippet: causes.raw_line(line).trim().to_string(),
            });
        }
    }
}

fn check_phases(sm: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(variants) = enum_variants(sm, "Phase") else {
        out.push(missing_decl(sm, "enum Phase"));
        return;
    };
    // The first variant is the entry phase: nothing needs to produce it.
    for (variant, line) in variants.into_iter().skip(1) {
        let produced = contains_token(&sm.masked, &format!("phase_after: Phase::{variant}"))
            || contains_token(&sm.masked, &format!("phase_after: {variant}"));
        if !produced {
            out.push(Diagnostic {
                rule: "catalog",
                path: sm.rel_path.clone(),
                line,
                message: format!(
                    "Phase::{variant} is never reached: no scripted step sets `phase_after` to it"
                ),
                snippet: sm.raw_line(line).trim().to_string(),
            });
        }
    }
}

fn check_message_emission(messages: &SourceFile, sm: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some(variants) = enum_variants(messages, "Message") else {
        out.push(missing_decl(messages, "enum Message"));
        return;
    };
    for (variant, line) in variants {
        let emitted = contains_token(&sm.masked, &format!("Message::{variant}"))
            || contains_token(&sm.masked, &format!("message: {variant}"));
        if !emitted {
            out.push(Diagnostic {
                rule: "catalog",
                path: messages.rel_path.clone(),
                line,
                message: format!(
                    "Message::{variant} is never emitted by the state machine; its counter-matrix column can only ever hold zeros"
                ),
                snippet: messages.raw_line(line).trim().to_string(),
            });
        }
    }
}

/// `COUNT` declared inside `impl <name>` must equal the variant count of
/// `enum <name>`.
fn check_counts(messages: &SourceFile, name: &str, out: &mut Vec<Diagnostic>) {
    let Some(variants) = enum_variants(messages, name) else {
        out.push(missing_decl(messages, &format!("enum {name}")));
        return;
    };
    let Some((impl_start, impl_end)) = impl_body(messages, name) else {
        out.push(missing_decl(messages, &format!("impl {name}")));
        return;
    };
    let body = &messages.masked[impl_start..impl_end];
    let Some(rel) = find_from(body, "const COUNT: usize = ", 0) else {
        out.push(missing_decl(messages, &format!("const COUNT in impl {name}")));
        return;
    };
    let val_start = rel + "const COUNT: usize = ".len();
    let digits: String = body[val_start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    let line = messages.line_of(impl_start + rel);
    match digits.parse::<usize>() {
        Ok(declared) if declared == variants.len() => {}
        Ok(declared) => out.push(Diagnostic {
            rule: "catalog",
            path: messages.rel_path.clone(),
            line,
            message: format!(
                "{name}::COUNT is {declared} but enum {name} has {} variants; every counter matrix sized by it is wrong",
                variants.len()
            ),
            snippet: messages.raw_line(line).trim().to_string(),
        }),
        Err(_) => out.push(Diagnostic {
            rule: "catalog",
            path: messages.rel_path.clone(),
            line,
            message: format!("{name}::COUNT is not an integer literal; cannot verify the catalog"),
            snippet: messages.raw_line(line).trim().to_string(),
        }),
    }
}

fn check_matrix_dims(entities: &SourceFile, out: &mut Vec<Diagnostic>) {
    for dim in ["; Element::COUNT]", "; Message::COUNT]"] {
        if !entities.masked.contains(dim) {
            out.push(Diagnostic {
                rule: "catalog",
                path: entities.rel_path.clone(),
                line: 1,
                message: format!(
                    "expected a counter array dimensioned by `{}` — magic-number dimensions drift when the enum grows",
                    dim.trim_start_matches("; ").trim_end_matches(']')
                ),
                snippet: String::new(),
            });
        }
    }
}

fn missing_decl(file: &SourceFile, what: &str) -> Diagnostic {
    Diagnostic {
        rule: "catalog",
        path: file.rel_path.clone(),
        line: 1,
        message: format!(
            "expected `{what}` in this file (catalog layout changed? update CatalogPaths)"
        ),
        snippet: String::new(),
    }
}

/// Does `hay` contain `token` with identifier boundaries on both sides?
fn contains_token(hay: &str, token: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = find_from(hay, token, from) {
        from = pos + 1;
        let pre_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let post_ok = !bytes.get(pos + token.len()).copied().is_some_and(is_ident_byte);
        if pre_ok && post_ok {
            return true;
        }
    }
    false
}

/// Variants of `enum <name>` in `file`, each with its 1-based line.
fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<(String, usize)>> {
    let decl = format!("enum {name}");
    let bytes = file.masked.as_bytes();
    let mut from = 0usize;
    let decl_pos = loop {
        let pos = find_from(&file.masked, &decl, from)?;
        from = pos + 1;
        let pre_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let post_ok = !bytes.get(pos + decl.len()).copied().is_some_and(is_ident_byte);
        if pre_ok && post_ok {
            break pos;
        }
    };
    let open = find_from(&file.masked, "{", decl_pos)?;
    let close = matching_delim(bytes, open, b'{', b'}')?;

    let mut variants = Vec::new();
    let mut j = open + 1;
    while j < close {
        let b = bytes[j];
        if b.is_ascii_whitespace() || b == b',' {
            j += 1;
        } else if b == b'#' && bytes.get(j + 1) == Some(&b'[') {
            j = matching_delim(bytes, j + 1, b'[', b']')? + 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = j;
            while j < close && is_ident_byte(bytes[j]) {
                j += 1;
            }
            variants.push((file.masked[start..j].to_string(), file.line_of(start)));
            // Skip the variant payload/discriminant to the next `,` at
            // this nesting level.
            let mut depth = 0isize;
            while j < close {
                match bytes[j] {
                    b'(' | b'{' | b'[' => depth += 1,
                    b')' | b'}' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        } else {
            j += 1;
        }
    }
    Some(variants)
}

/// Byte range of the body of `fn <name>` (between its braces).
fn fn_body(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let decl = format!("fn {name}");
    let bytes = file.masked.as_bytes();
    let mut from = 0usize;
    let pos = loop {
        let pos = find_from(&file.masked, &decl, from)?;
        from = pos + 1;
        let post = bytes.get(pos + decl.len()).copied();
        if !post.is_some_and(is_ident_byte) {
            break pos;
        }
    };
    let paren = find_from(&file.masked, "(", pos)?;
    let paren_close = matching_delim(bytes, paren, b'(', b')')?;
    let open = find_from(&file.masked, "{", paren_close)?;
    let close = matching_delim(bytes, open, b'{', b'}')?;
    Some((open + 1, close))
}

/// Byte range of the body of `impl <name>` (inherent impl).
fn impl_body(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let decl = format!("impl {name}");
    let bytes = file.masked.as_bytes();
    let mut from = 0usize;
    let pos = loop {
        let pos = find_from(&file.masked, &decl, from)?;
        from = pos + 1;
        let post = bytes.get(pos + decl.len()).copied();
        if !post.is_some_and(is_ident_byte) {
            break pos;
        }
    };
    let open = find_from(&file.masked, "{", pos)?;
    let close = matching_delim(bytes, open, b'{', b'}')?;
    Some((open + 1, close))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(Path::new(path), src.to_string())
    }

    fn paths() -> CatalogPaths {
        CatalogPaths {
            causes: "causes.rs".to_string(),
            state_machine: "sm.rs".to_string(),
            messages: "messages.rs".to_string(),
            entities: "entities.rs".to_string(),
        }
    }

    const MESSAGES_OK: &str = "pub enum Element { Ue, Mme }\nimpl Element { pub const COUNT: usize = 2; }\npub enum Message { Ping, Pong }\nimpl Message { pub const COUNT: usize = 2; }\n";
    const ENTITIES_OK: &str =
        "pub struct S { rx: [u64; Message::COUNT], stats: [u8; Element::COUNT] }\n";

    fn sm_ok() -> String {
        "pub enum Phase { Idle, Busy }\nconst S: Step = Step { message: Ping, phase_after: Phase::Busy };\nfn emit() { let _ = Message::Pong; }\npub enum PC2 { A }\nfn failure_cut(c: PrincipalCause) { match c { PrincipalCause::Lost => {} } }\n".to_string()
    }

    fn run(causes: &str, sm: &str, messages: &str, entities: &str) -> Vec<Diagnostic> {
        let files = [
            file("causes.rs", causes),
            file("sm.rs", sm),
            file("messages.rs", messages),
            file("entities.rs", entities),
        ];
        let refs: Vec<&SourceFile> = files.iter().collect();
        let mut out = Vec::new();
        check(&refs, &paths(), &mut out);
        out
    }

    #[test]
    fn complete_catalog_is_clean() {
        let d = run("pub enum PrincipalCause { Lost }\n", &sm_ok(), MESSAGES_OK, ENTITIES_OK);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unmapped_cause_flagged_at_variant() {
        let d = run(
            "pub enum PrincipalCause {\n    Lost,\n    Orphan,\n}\n",
            &sm_ok(),
            MESSAGES_OK,
            ENTITIES_OK,
        );
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].path.as_str(), d[0].line), ("causes.rs", 3));
        assert!(d[0].message.contains("Orphan"));
    }

    #[test]
    fn unreachable_phase_flagged() {
        let sm = sm_ok().replace("phase_after: Phase::Busy", "phase_after: Phase::Idle");
        let d = run("pub enum PrincipalCause { Lost }\n", &sm, MESSAGES_OK, ENTITIES_OK);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Phase::Busy"));
    }

    #[test]
    fn unemitted_message_flagged() {
        let messages = MESSAGES_OK
            .replace("pub enum Message { Ping, Pong }", "pub enum Message { Ping, Pong, Ghost }");
        let messages = messages.replace(
            "impl Message { pub const COUNT: usize = 2; }",
            "impl Message { pub const COUNT: usize = 3; }",
        );
        let d = run("pub enum PrincipalCause { Lost }\n", &sm_ok(), &messages, ENTITIES_OK);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Ghost"));
    }

    #[test]
    fn count_drift_flagged() {
        let messages = MESSAGES_OK.replace(
            "impl Element { pub const COUNT: usize = 2; }",
            "impl Element { pub const COUNT: usize = 3; }",
        );
        let d = run("pub enum PrincipalCause { Lost }\n", &sm_ok(), &messages, ENTITIES_OK);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Element::COUNT is 3"));
    }

    #[test]
    fn magic_number_matrix_flagged() {
        let entities = "pub struct S { rx: [u64; 19], stats: [u8; Element::COUNT] }\n";
        let d = run("pub enum PrincipalCause { Lost }\n", &sm_ok(), MESSAGES_OK, entities);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Message::COUNT"));
    }

    #[test]
    fn missing_target_file_reported() {
        let files = [file("causes.rs", "pub enum PrincipalCause { Lost }\n")];
        let refs: Vec<&SourceFile> = files.iter().collect();
        let mut out = Vec::new();
        check(&refs, &paths(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
    }

    #[test]
    fn variant_lines_skip_attributes_and_docs() {
        let causes =
            "pub enum PrincipalCause {\n    /// doc\n    #[deprecated]\n    Lost(u8),\n}\n";
        let d = run(causes, &sm_ok(), MESSAGES_OK, ENTITIES_OK);
        assert!(d.is_empty(), "{d:?}");
    }
}
