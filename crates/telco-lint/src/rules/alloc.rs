//! Allocation-discipline rule pack.
//!
//! The zero-alloc contract (DESIGN §10) says the per-element hot loops —
//! column scans in telco-analytics, the v3 columnar decode path, and
//! `simulate_ue_day` — must not allocate: scratch is borrowed, buffers
//! are recycled. One counting-allocator test pins that for one loop on
//! one code path; this rule makes it a static guarantee everywhere a
//! loop opts in with `deny-alloc` / `deny-alloc(begin)/(end)` markers.
//!
//! Inside an alloc-discipline scope the rule flags the allocating
//! surface syntax: `.push(`, `.collect`, `format!`, `.to_string(`,
//! `.to_vec(`, `.clone(`, `Box::new`, and `vec!`. `#[cfg(test)]` lines
//! are exempt, and a deliberate cold-path allocation (growing a reused
//! buffer once, an error path) carries an `allow(alloc)` waiver.
//!
//! Lexical honesty: `.clone()` on an `Arc` or a `Copy` type does not
//! allocate, and `.push(` onto a pre-reserved `Vec` only allocates when
//! it grows. The rule still flags them — inside a declared zero-alloc
//! region, "cheap today" clones are exactly how allocations creep back
//! in, and the waiver line documents the reasoning when one is kept.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::word_hits;
use crate::scan::SourceFile;

/// Surface syntax that allocates (or is one resize away from it).
const ALLOC_PATTERNS: [&str; 8] =
    [".push(", ".collect", "format!", ".to_string(", ".to_vec(", ".clone(", "Box::new", "vec!"];

/// Run the rule over one file; only `deny-alloc` scopes are checked.
pub fn check(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    if !markers.deny_alloc && !(1..=file.line_count()).any(|l| markers.alloc_scope(l)) {
        return;
    }
    for pat in ALLOC_PATTERNS {
        for pos in word_hits(&file.masked, pat) {
            let line = file.line_of(pos);
            if !markers.alloc_scope(line)
                || file.is_test_line(line)
                || markers.allowed(line, AllowWhat::Alloc)
            {
                continue;
            }
            out.push(Diagnostic {
                rule: "alloc-discipline",
                path: file.rel_path.clone(),
                line,
                message: format!(
                    "`{pat}` inside a deny-alloc region — hot loops borrow scratch and recycle buffers; move the allocation out or waive with allow(alloc)"
                ),
                snippet: file.raw_line(line).trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, &mut out);
        out
    }

    #[test]
    fn allocs_in_region_flagged() {
        let src = "pub fn f(v: &mut Vec<u8>, s: &str) {\n    // telco-lint: deny-alloc(begin)\n    v.push(1);\n    let t = s.to_string();\n    let b = Box::new(2u8);\n    // telco-lint: deny-alloc(end)\n    let outside = s.to_string();\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), [3, 4, 5]);
        assert!(d.iter().all(|d| d.rule == "alloc-discipline"));
    }

    #[test]
    fn file_level_marker_covers_whole_file() {
        let src =
            "// telco-lint: deny-alloc\npub fn f(s: &str) -> String {\n    format!(\"{s}\")\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn no_marker_means_no_findings() {
        assert!(lint("pub fn f(v: &mut Vec<u8>) { v.push(1); }\n").is_empty());
    }

    #[test]
    fn waiver_and_test_lines_exempt() {
        let src = "// telco-lint: deny-alloc\npub fn f(v: &mut Vec<u8>) {\n    v.push(1); // telco-lint: allow(alloc): reserved in the constructor, never grows\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![1, 2]; }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn collect_and_clone_and_vec_macro_flagged() {
        let src = "// telco-lint: deny-alloc\npub fn f(xs: &[u8]) {\n    let v: Vec<u8> = xs.iter().copied().collect();\n    let w = v.clone();\n    let z = vec![0u8; 4];\n}\n";
        let d = lint(src);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), [3, 4, 5]);
    }
}
