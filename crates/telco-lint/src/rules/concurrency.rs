//! Concurrency rule pack.
//!
//! PRs 5–7 bought throughput with lock-free work cursors, a prefetching
//! frame queue, and subprocess pools; each carries memory-ordering and
//! blocking-discipline claims that tests cannot exercise reliably. This
//! pack makes three of those claims machine-checked:
//!
//! - **ordering audit** — every atomic `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` use in library `src/` must sit inside an
//!   `audited-atomics(begin)/(end)` region or carry a one-line
//!   `// ordering: <why>` note. The resolver distinguishes atomic
//!   orderings from `std::cmp::Ordering` in sort comparators, so
//!   comparator-heavy analytics code never false-positives;
//! - **unbounded channels** — `std::sync::mpsc::channel` (or a
//!   crossbeam-style `unbounded`) between threads lets a fast producer
//!   run the process out of memory; bounded queues are the repo
//!   contract (`FrameQueue`, `sync_channel`);
//! - **guard across subprocess wait** — holding a `Mutex` guard while
//!   blocking on `Child::wait`/`try_wait`/`wait_with_output` stalls
//!   every sibling worker on a lock whose hold time is another
//!   process's lifetime. The zero-argument call shape distinguishes the
//!   process-wait family from `Condvar::wait(guard)`, which takes the
//!   guard as an argument.
//!
//! `#[cfg(test)]` regions are exempt (tests may use whatever ordering
//! gets the job done), and `allow(concurrency)` waives one occurrence.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::{find_word, word_hits};
use crate::scan::{is_ident_byte, SourceFile};

/// The atomic ordering variants; `cmp::Ordering` has none of these.
const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Process-wait call shapes (zero-argument, unlike `Condvar::wait`).
const WAIT_CALLS: [&str; 3] = [".wait()", ".try_wait()", ".wait_with_output()"];

/// Run the pack over one library-src file.
pub fn check(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    check_ordering_audit(file, markers, out);
    check_unbounded_channels(file, markers, out);
    check_guard_across_wait(file, markers, out);
}

/// Does the path at `pos` name an atomic `Ordering`? Resolves through
/// the file's use-map; an unresolvable bare `Ordering` with an atomic
/// variant name is treated as atomic (conservative: flag it).
fn is_atomic_ordering(file: &SourceFile, pos: usize) -> bool {
    let path = file.resolved_path(pos, "Ordering");
    path.contains("sync::atomic::Ordering") || path == "Ordering"
}

fn check_ordering_audit(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    let bytes = file.masked.as_bytes();
    for pos in word_hits(&file.masked, "Ordering") {
        let after = pos + "Ordering".len();
        if bytes.get(after) != Some(&b':') || bytes.get(after + 1) != Some(&b':') {
            continue;
        }
        let variant_start = after + 2;
        let Some(variant) = ATOMIC_VARIANTS.iter().find(|v| {
            file.masked[variant_start..].starts_with(**v)
                && !bytes.get(variant_start + v.len()).copied().is_some_and(is_ident_byte)
        }) else {
            continue;
        };
        if !is_atomic_ordering(file, pos) {
            continue; // `cmp::Ordering` or a local enum, not an atomic
        }
        let line = file.line_of(pos);
        if file.is_test_line(line)
            || markers.atomics_audited(line)
            || markers.ordering_note(line).is_some()
            || markers.allowed(line, AllowWhat::Concurrency)
        {
            continue;
        }
        out.push(Diagnostic {
            rule: "concurrency",
            path: file.rel_path.clone(),
            line,
            message: format!(
                "atomic `Ordering::{variant}` outside an audited-atomics region and without an `// ordering:` note — justify the ordering choice"
            ),
            snippet: file.raw_line(line).trim().to_string(),
        });
    }
}

fn check_unbounded_channels(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    let bytes = file.masked.as_bytes();
    for (ident, needle) in [("channel", "std::sync::mpsc::channel"), ("unbounded", "unbounded")] {
        for pos in word_hits(&file.masked, ident) {
            // A call site: `ident(` with an optional `::<..>` turbofish.
            let mut after = pos + ident.len();
            if file.masked[after..].starts_with("::<") {
                match file.masked[after..].find('>') {
                    Some(gt) => after += gt + 1,
                    None => continue,
                }
            }
            if bytes.get(after) != Some(&b'(') {
                continue; // not a call
            }
            let path = file.resolved_path(pos, ident);
            let is_unbounded = match ident {
                "channel" => path == needle,
                _ => path.ends_with("::unbounded"),
            };
            if !is_unbounded {
                continue;
            }
            let line = file.line_of(pos);
            if file.is_test_line(line) || markers.allowed(line, AllowWhat::Concurrency) {
                continue;
            }
            out.push(Diagnostic {
                rule: "concurrency",
                path: file.rel_path.clone(),
                line,
                message: format!(
                    "unbounded channel `{path}` — a fast producer can exhaust memory; use a bounded queue (`sync_channel`, `FrameQueue`)"
                ),
                snippet: file.raw_line(line).trim().to_string(),
            });
        }
    }
}

fn check_guard_across_wait(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    for pat in WAIT_CALLS {
        let mut from = 0usize;
        while let Some(pos) = find_word(&file.masked, pat, from) {
            from = pos + pat.len();
            let line = file.line_of(pos);
            if file.is_test_line(line) || markers.allowed(line, AllowWhat::Concurrency) {
                continue;
            }
            // A guard is (lexically) live across this wait if the same
            // brace scope takes a lock earlier in its span.
            let scope = file.scopes().innermost(pos);
            let (start, _) = file.scopes().span(scope);
            if find_word(&file.masked[start..pos], ".lock(", 0).is_none() {
                continue;
            }
            out.push(Diagnostic {
                rule: "concurrency",
                path: file.rel_path.clone(),
                line,
                message: format!(
                    "`{pat}` with a Mutex guard taken in the same scope — the lock is held for another process's lifetime; drop the guard before waiting"
                ),
                snippet: file.raw_line(line).trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, &mut out);
        out
    }

    #[test]
    fn unjustified_atomic_ordering_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("Ordering::Relaxed"));
    }

    #[test]
    fn ordering_note_and_audited_region_clean() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // ordering: counter, no ordering needed\n}\n// telco-lint: audited-atomics(begin): release publishes, acquire observes\npub fn g(c: &AtomicU64) {\n    c.store(1, Ordering::Release);\n    c.load(Ordering::Acquire);\n}\n// telco-lint: audited-atomics(end)\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn cmp_ordering_comparator_not_flagged() {
        let src = "use std::cmp::Ordering;\npub fn cmp(a: u64, b: u64) -> Ordering {\n    if a < b { Ordering::Less } else { Ordering::Greater }\n}\n";
        assert!(lint(src).is_empty());
    }

    /// The regression the resolver exists for: atomic and comparator
    /// `Ordering` in one file — only the unjustified atomic use fires.
    #[test]
    fn atomic_and_cmp_ordering_coexist() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn hot(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\npub fn key(a: u64, b: u64) -> std::cmp::Ordering { a.cmp(&b) }\npub fn cold(a: u64, b: u64) -> u64 {\n    use std::cmp::Ordering;\n    match a.cmp(&b) { Ordering::Less => b, _ => a }\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn test_lines_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    #[test]\n    fn t() { AtomicU64::new(0).load(Ordering::SeqCst); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn unbounded_mpsc_channel_flagged_sync_channel_clean() {
        let src = "use std::sync::mpsc;\npub fn f() {\n    let (tx, rx) = mpsc::channel::<u8>();\n    let (tx2, rx2) = mpsc::sync_channel::<u8>(8);\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("unbounded"));
    }

    #[test]
    fn guard_across_child_wait_flagged() {
        let src = "pub fn f(m: &std::sync::Mutex<u8>, child: &mut std::process::Child) {\n    let g = m.lock().unwrap();\n    let _st = child.wait();\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("guard"));
    }

    #[test]
    fn condvar_wait_and_guardless_wait_clean() {
        let src = "pub fn f(cv: &std::sync::Condvar, m: &std::sync::Mutex<u8>) {\n    let g = m.lock().unwrap();\n    let _g = cv.wait(g);\n}\npub fn g(child: &mut std::process::Child) {\n    let _st = child.wait();\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn waiver_accepted() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(c: &AtomicU64) {\n    c.load(Ordering::SeqCst); // telco-lint: allow(concurrency): strongest ordering is always sound\n}\n";
        assert!(lint(src).is_empty());
    }
}
