//! Determinism rule.
//!
//! Trace-producing crates opt in with a `deny-nondeterminism` marker in
//! their `lib.rs` (crate-wide over `src/`), per file, or per region
//! (`deny-nondeterminism(begin)`/`(end)` around accumulator-merge code
//! in files that are otherwise free to iterate hash maps). In scope, the
//! rule flags the three ways nondeterminism historically sneaks into
//! "deterministic" simulators:
//!
//! - **Hash-ordered iteration** — iterating a `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for x in &map`)
//!   yields a different order per process because `RandomState` seeds
//!   per-instance. Lookups are fine; iteration must go through a sorted
//!   collection or an explicit sort.
//! - **Wall-clock reads** — `std::time`, `Instant::now`, `SystemTime`:
//!   anything derived from them differs across runs.
//! - **Thread identity** — `thread::current`, `ThreadId`, or an OS-seeded
//!   `thread_rng`: output must be a pure function of the config, never of
//!   which worker executed the item.
//!
//! The rule is lexical and therefore deliberately over-approximate in
//! scope declarations: a collection *named* at a `HashMap`-typed binding
//! or field is tracked by identifier for the rest of the file.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::{ident_ending_at, last_nonspace_before, word_hits};
use crate::scan::{is_ident_byte, SourceFile};

const CLOCK_PATTERNS: [(&str, &str); 6] = [
    ("std::time", "wall-clock time is nondeterministic across runs"),
    ("Instant::now", "wall-clock time is nondeterministic across runs"),
    ("SystemTime", "wall-clock time is nondeterministic across runs"),
    ("thread::current", "thread identity must not influence trace output"),
    ("ThreadId", "thread identity must not influence trace output"),
    ("thread_rng", "OS-seeded RNG breaks run reproducibility; use the config-seeded stream"),
];

const ITER_SUFFIXES: [&str; 7] =
    [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("];

/// Run the rule over one file. `in_scope` is true when the whole file or
/// its crate opted in; otherwise only lines inside a
/// `deny-nondeterminism(begin)`/`(end)` region are checked.
pub fn check(file: &SourceFile, in_scope: bool, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    if !in_scope && !markers.has_nondet_region() {
        return;
    }
    let mut emit = |pos: usize, message: String| {
        let line = file.line_of(pos);
        if !in_scope && !markers.nondet_scope(line) {
            return;
        }
        if file.is_test_line(line) || markers.allowed(line, AllowWhat::Nondet) {
            return;
        }
        out.push(Diagnostic {
            rule: "determinism",
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.raw_line(line).trim().to_string(),
        });
    };

    for (pat, why) in CLOCK_PATTERNS {
        for pos in word_hits(&file.masked, pat) {
            emit(pos, format!("`{pat}`: {why}"));
        }
    }

    for name in hash_bindings(&file.masked) {
        for suffix in ITER_SUFFIXES {
            let pat = format!("{name}{suffix}");
            for pos in word_hits(&file.masked, &pat) {
                emit(pos, iteration_message(&name));
            }
        }
        for pos in for_in_hits(&file.masked, &name) {
            emit(pos, iteration_message(&name));
        }
    }
}

fn iteration_message(name: &str) -> String {
    format!(
        "`{name}` is hash-ordered; iterating it is nondeterministic — sort first or use a BTree collection"
    )
}

/// Identifiers bound or annotated with a `HashMap`/`HashSet` type in
/// this file: `name: HashMap<..>` (fields, lets, params) and
/// `let name = HashMap::new()`-style bindings. Sorted and deduplicated.
fn hash_bindings(masked: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let bytes = masked.as_bytes();
    for ty in ["HashMap", "HashSet"] {
        for pos in word_hits(masked, ty) {
            // Reject suffix matches like `HashMapExt`.
            if bytes.get(pos + ty.len()).copied().is_some_and(is_ident_byte) {
                continue;
            }
            if let Some(name) = binding_name_before(masked, pos) {
                names.push(name);
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Walk left from a `HashMap`/`HashSet` token, skipping any `path::`
/// qualifiers, to the binding context: `ident :` yields the annotated
/// name, `ident =` yields the assigned name, anything else (generics,
/// casts, turbofish) yields nothing.
fn binding_name_before(masked: &str, mut at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    loop {
        let prev = last_nonspace_before(bytes, at)?;
        if prev >= 1 && bytes[prev] == b':' && bytes[prev - 1] == b':' {
            // Path separator: hop over the qualifying segment.
            let (_, seg_start) =
                ident_ending_at(masked, last_nonspace_before(bytes, prev - 1)? + 1)?;
            at = seg_start;
            continue;
        }
        return match bytes[prev] {
            b':' => named_ident_before(masked, prev),
            b'=' if prev == 0 || bytes[prev - 1] != b'=' => named_ident_before(masked, prev),
            _ => None,
        };
    }
}

fn named_ident_before(masked: &str, sep: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let end = last_nonspace_before(bytes, sep)? + 1;
    let (ident, _) = ident_ending_at(masked, end)?;
    (ident != "mut").then(|| ident.to_string())
}

/// Occurrences of `for .. in <name>` / `in &name` / `in &mut name`.
fn for_in_hits<'a>(masked: &'a str, name: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = masked.as_bytes();
    word_hits(masked, "in ").filter(move |&pos| {
        let mut j = pos + 3;
        while bytes.get(j).copied().is_some_and(|b| b == b' ') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'&') {
            j += 1;
            if masked.get(j..j + 4) == Some("mut ") {
                j += 4;
            }
        }
        let end = j + name.len();
        // A following `.` means a method call — the suffix patterns own
        // that case; flagging here too would double-report the line.
        masked.get(j..end) == Some(name)
            && !bytes.get(end).copied().is_some_and(|b| is_ident_byte(b) || b == b'.')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, true, &m, &mut out);
        out
    }

    #[test]
    fn hash_iteration_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("`m`"));
    }

    #[test]
    fn for_loop_over_hash_flagged() {
        let src = "fn f(set: std::collections::HashSet<u32>) {\n    for x in &set {\n        let _ = x;\n    }\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn lookup_only_map_is_fine() {
        let src = "use std::collections::HashMap;\nfn f(by_tac: &HashMap<u32, usize>, k: u32) -> Option<usize> {\n    by_tac.get(&k).copied()\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn let_binding_tracked() {
        let src = "fn f() {\n    let mut seen = std::collections::HashSet::new();\n    seen.insert(1u32);\n    for v in seen.drain() { let _ = v; }\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn wall_clock_and_thread_identity_flagged() {
        let src = "fn f() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        let d = lint(src);
        assert!(!d.is_empty());
        assert!(d[0].message.contains("wall-clock"));
    }

    #[test]
    fn cfg_test_exempt_and_allow_waives() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        let s: std::collections::HashSet<u8> = Default::default();\n        for v in &s { let _ = v; }\n    }\n}\n";
        assert!(lint(src).is_empty());
        let src2 = "fn f(m: std::collections::HashMap<u8, u8>) -> usize {\n    m.iter().count() // telco-lint: allow(nondet): count is order-independent\n}\n";
        assert!(lint(src2).is_empty());
    }

    #[test]
    fn region_scopes_the_rule_without_file_opt_in() {
        // Same hash iteration twice: flagged inside the region, free
        // outside it. The file itself never opts in (`in_scope: false`).
        let src = "fn free(m: std::collections::HashMap<u8, u8>) -> usize {\n    m.iter().count()\n}\n// telco-lint: deny-nondeterminism(begin)\nfn merged(m: std::collections::HashMap<u8, u8>) -> usize {\n    m.iter().count()\n}\n// telco-lint: deny-nondeterminism(end)\n";
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        assert!(m.diags.is_empty());
        let mut out = Vec::new();
        check(&file, false, &m, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
    }

    #[test]
    fn out_of_scope_file_ignored() {
        let file = SourceFile::parse(
            Path::new("t.rs"),
            "fn f() { let _ = std::time::Instant::now(); }\n".to_string(),
        );
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, false, &m, &mut out);
        assert!(out.is_empty());
    }
}
