//! Error-discipline rule pack.
//!
//! The orchestrator's resume protocol is evidence-based: a shard is
//! "done" iff its result row exists and its CRC verifies. That chain of
//! evidence breaks silently if an IO error on the write path is
//! discarded — the run looks complete, the row is missing, and the
//! resume pass re-schedules nothing. In `deny-swallowed-errors` scopes
//! (telco-trace IO and the `ShardStore` paths) the rule flags the two
//! discard idioms:
//!
//! - `let _ = expr;` — binds away a `#[must_use]` result;
//! - a statement-position `.ok();` — converts the `Result` to an
//!   `Option` and drops it.
//!
//! Lexically we cannot see types, so `let _ =` fires on any expression
//! in scope, not just `Result`s — in an opted-in IO path, discarding
//! *anything* unnamed deserves at least a waiver line saying why
//! (`allow(error): <why>`). `.ok()` in value position (`.ok()?`,
//! passed as an argument, chained) is untouched. `#[cfg(test)]` lines
//! are exempt.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::word_hits;
use crate::scan::SourceFile;

/// Run the rule over one file; only `deny-swallowed-errors` scopes are
/// checked.
pub fn check(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    if !markers.deny_errors && !(1..=file.line_count()).any(|l| markers.errors_scope(l)) {
        return;
    }
    let bytes = file.masked.as_bytes();

    for pos in word_hits(&file.masked, "let _") {
        // `let _ =` exactly: `let _x` is a named (greppable) discard.
        let mut after = pos + "let _".len();
        if bytes.get(after).copied().is_some_and(crate::scan::is_ident_byte) {
            continue;
        }
        while bytes.get(after).is_some_and(|b| b.is_ascii_whitespace()) {
            after += 1;
        }
        if bytes.get(after) != Some(&b'=') {
            continue;
        }
        push_if_in_scope(
            file,
            markers,
            pos,
            "`let _ =` discards a Result — handle it, propagate it, or waive with allow(error)",
            out,
        );
    }

    let mut from = 0usize;
    while let Some(pos) = crate::rules::find_word(&file.masked, ".ok()", from) {
        from = pos + ".ok()".len();
        // Statement position only: the next non-space byte ends the
        // statement. `.ok()?`, `.ok().map(..)`, `if x.ok() ..` pass.
        let mut after = pos + ".ok()".len();
        while bytes.get(after).is_some_and(|b| b.is_ascii_whitespace()) {
            after += 1;
        }
        if bytes.get(after) != Some(&b';') {
            continue;
        }
        push_if_in_scope(
            file,
            markers,
            pos,
            "bare `.ok();` swallows an error — handle it, propagate it, or waive with allow(error)",
            out,
        );
    }
}

fn push_if_in_scope(
    file: &SourceFile,
    markers: &FileMarkers,
    pos: usize,
    message: &str,
    out: &mut Vec<Diagnostic>,
) {
    let line = file.line_of(pos);
    if !markers.errors_scope(line)
        || file.is_test_line(line)
        || markers.allowed(line, AllowWhat::ErrorDiscipline)
    {
        return;
    }
    out.push(Diagnostic {
        rule: "error-discipline",
        path: file.rel_path.clone(),
        line,
        message: message.to_string(),
        snippet: file.raw_line(line).trim().to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, &mut out);
        out
    }

    #[test]
    fn let_underscore_and_bare_ok_flagged() {
        let src = "// telco-lint: deny-swallowed-errors\npub fn f(w: &mut dyn std::io::Write) {\n    let _ = w.flush();\n    w.flush().ok();\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 2);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), [3, 4]);
        assert!(d.iter().all(|d| d.rule == "error-discipline"));
    }

    #[test]
    fn value_position_ok_and_named_discard_clean() {
        let src = "// telco-lint: deny-swallowed-errors\npub fn f(s: &str) -> Option<u32> {\n    let _keep = s.len();\n    let n = s.parse::<u32>().ok()?;\n    s.parse::<u32>().ok().map(|x| x + n)\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn region_form_scopes_the_rule() {
        let src = "pub fn f(w: &mut dyn std::io::Write) {\n    let _ = w.flush();\n    // telco-lint: deny-swallowed-errors(begin)\n    let _ = w.flush();\n    // telco-lint: deny-swallowed-errors(end)\n}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn waiver_and_test_lines_exempt() {
        let src = "// telco-lint: deny-swallowed-errors\npub fn f(w: &mut dyn std::io::Write) {\n    let _ = w.flush(); // telco-lint: allow(error): best-effort flush on shutdown path\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::fs::remove_file(\"tmp\"); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn no_marker_means_no_findings() {
        assert!(lint("pub fn f(w: &mut dyn std::io::Write) { let _ = w.flush(); }\n").is_empty());
    }
}
