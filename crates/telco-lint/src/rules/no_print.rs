//! No-print rule.
//!
//! Library crates must not write to stdout/stderr: user-facing output is
//! the CLI crate's job (`telco-experiments`), and a stray `dbg!` in the
//! simulation hot loop is both a perf cliff and noise in piped output.
//! The rule flags `println!`, `print!`, `eprintln!`, `eprint!`, and
//! `dbg!` in library `src/` trees; `#[cfg(test)]` regions are exempt
//! (debug prints in tests are a normal workflow), and a deliberate
//! diagnostic print can carry an `allow(print)` waiver.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::word_hits;
use crate::scan::SourceFile;

const PRINT_MACROS: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// Run the rule over one library-src file.
pub fn check(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    for pat in PRINT_MACROS {
        for pos in word_hits(&file.masked, pat) {
            let line = file.line_of(pos);
            if file.is_test_line(line) || markers.allowed(line, AllowWhat::Print) {
                continue;
            }
            out.push(Diagnostic {
                rule: "no-print",
                path: file.rel_path.clone(),
                line,
                message: format!(
                    "`{pat}` in a library crate; stdout/stderr belong to telco-experiments — return data instead"
                ),
                snippet: file.raw_line(line).trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, &mut out);
        out
    }

    #[test]
    fn println_and_dbg_flagged() {
        let d = lint("pub fn f(x: u8) -> u8 {\n    println!(\"{x}\");\n    dbg!(x)\n}\n");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn test_module_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"debugging\"); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn waiver_and_doc_mentions_clean() {
        let src = "/// Call `println!` yourself if needed.\npub fn f() {\n    eprintln!(\"progress\"); // telco-lint: allow(print): operator-facing progress line\n}\n";
        assert!(lint(src).is_empty());
    }
}
