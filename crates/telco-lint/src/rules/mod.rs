//! The lint rules. Each rule consumes scanned files plus their marker
//! state and appends [`Diagnostic`](crate::report::Diagnostic)s.

pub mod alloc;
pub mod catalog;
pub mod concurrency;
pub mod determinism;
pub mod errors;
pub mod no_print;
pub mod panic_free;
pub mod unsafe_forbid;

pub(crate) use crate::scan::ident_ending_at;
use crate::scan::{find_from, is_ident_byte};

/// Find `pat` in `masked` at or after `from`. When `pat` starts with an
/// identifier byte, the byte before the match must not be one (so
/// `debug_assert!` never matches an `assert!` pattern); patterns that
/// start with `.` carry their own boundary.
pub(crate) fn find_word(masked: &str, pat: &str, from: usize) -> Option<usize> {
    let needs_boundary = pat.bytes().next().is_some_and(is_ident_byte);
    let mut at = from;
    while let Some(pos) = find_from(masked, pat, at) {
        at = pos + 1;
        let bounded = !needs_boundary || pos == 0 || !is_ident_byte(masked.as_bytes()[pos - 1]);
        if bounded {
            return Some(pos);
        }
    }
    None
}

/// Iterate every word-bounded occurrence of `pat` in `masked`.
pub(crate) fn word_hits<'a>(masked: &'a str, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0usize;
    std::iter::from_fn(move || {
        let pos = find_word(masked, pat, from)?;
        from = pos + 1;
        Some(pos)
    })
}

/// Index of the last non-whitespace byte strictly before `pos`.
pub(crate) fn last_nonspace_before(bytes: &[u8], pos: usize) -> Option<usize> {
    (0..pos).rev().find(|&i| !bytes[i].is_ascii_whitespace())
}
