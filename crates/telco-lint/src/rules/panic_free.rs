//! Panic-freedom rule.
//!
//! Hot-path modules opt in with a `deny-panic` marker (file-wide) or a
//! `deny-panic(begin)`/`deny-panic(end)` region. Inside the scope, the
//! rule flags every construct that can abort the simulation at runtime:
//!
//! - `.unwrap()` / `.unwrap_err()` / `.expect(..)` / `.expect_err(..)`;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`;
//! - release-mode assertions (`assert!`, `assert_eq!`, `assert_ne!`) —
//!   `debug_assert*` stays legal: it vanishes in release builds, which
//!   is exactly the contract the hot path wants;
//! - slice/array indexing with a non-literal index (`v[i]`, `v[..n]`).
//!   Indexing by an integer literal or a literal-only range is allowed:
//!   it is reviewable at a glance and overwhelmingly used on fixed-size
//!   arrays. Everything data-dependent must go through `.get()`,
//!   pattern matching, or carry an `allow(index)` waiver with a written
//!   bounds argument.
//!
//! `#[cfg(test)]` regions are exempt: tests *should* assert.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::{ident_ending_at, last_nonspace_before, word_hits};
use crate::scan::{matching_delim, SourceFile};

const METHODS: [&str; 4] = [".unwrap()", ".unwrap_err(", ".expect(", ".expect_err("];
const MACROS: [&str; 7] =
    ["panic!", "unreachable!", "todo!", "unimplemented!", "assert!", "assert_eq!", "assert_ne!"];

/// Keywords that can directly precede `[` without it being an index
/// operation (slice patterns, slice types, array-literal positions).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "let", "mut", "ref", "in", "return", "break", "continue", "move", "if", "else", "match", "as",
    "static", "dyn",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, markers: &FileMarkers, out: &mut Vec<Diagnostic>) {
    if !markers.has_panic_scope() {
        return;
    }
    let mut emit = |pos: usize, what: AllowWhat, message: String| {
        let line = file.line_of(pos);
        if !markers.panic_scope(line) || file.is_test_line(line) || markers.allowed(line, what) {
            return;
        }
        out.push(Diagnostic {
            rule: "panic-free",
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.raw_line(line).trim().to_string(),
        });
    };

    for pat in METHODS {
        for pos in word_hits(&file.masked, pat) {
            let name = pat.trim_start_matches('.').trim_end_matches(['(', ')']);
            emit(
                pos,
                AllowWhat::Panic,
                format!("`{name}` can panic in a deny-panic scope; propagate the error or match"),
            );
        }
    }
    for pat in MACROS {
        for pos in word_hits(&file.masked, pat) {
            emit(
                pos,
                AllowWhat::Panic,
                format!(
                    "`{pat}` aborts at runtime in a deny-panic scope; return an error or use debug_assert!"
                ),
            );
        }
    }
    check_indexing(file, &mut emit);
}

fn check_indexing(file: &SourceFile, emit: &mut impl FnMut(usize, AllowWhat, String)) {
    let bytes = file.masked.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(prev) = last_nonspace_before(bytes, i) else { continue };
        let p = bytes[prev];
        let is_index_target = match p {
            b')' | b']' | b'?' => true,
            _ if crate::scan::is_ident_byte(p) => {
                // A keyword before `[` means pattern or literal position,
                // not an index on a value; a lifetime (`&'a [T]`) means a
                // slice type.
                match ident_ending_at(&file.masked, prev + 1) {
                    Some((word, start)) => {
                        !NON_INDEX_KEYWORDS.contains(&word)
                            && bytes.get(start.wrapping_sub(1)) != Some(&b'\'')
                    }
                    None => true,
                }
            }
            _ => false,
        };
        if !is_index_target {
            continue;
        }
        let Some(close) = matching_delim(bytes, i, b'[', b']') else { continue };
        let content = &file.masked[i + 1..close];
        if is_literal_index(content) {
            continue;
        }
        emit(
            i,
            AllowWhat::Index,
            format!(
                "non-literal index `[{}]` can panic in a deny-panic scope; use .get()/patterns",
                content.trim()
            ),
        );
    }
}

/// Is the bracket content a compile-time-reviewable index: an integer
/// literal, or a range whose endpoints are integer literals or open?
fn is_literal_index(content: &str) -> bool {
    let content = content.trim();
    if let Some((lo, hi)) = content.split_once("..") {
        let hi = hi.strip_prefix('=').unwrap_or(hi).trim();
        return is_literal_or_empty(lo.trim()) && is_literal_or_empty(hi);
    }
    !content.is_empty() && is_int_literal(content)
}

fn is_literal_or_empty(s: &str) -> bool {
    s.is_empty() || is_int_literal(s)
}

fn is_int_literal(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, &mut out);
        out
    }

    const OPT_IN: &str = "// telco-lint: deny-panic\n";

    #[test]
    fn unopted_file_is_ignored() {
        assert!(lint("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n").is_empty());
    }

    #[test]
    fn unwrap_and_expect_flagged() {
        let d = lint(&format!("{OPT_IN}fn f(x: Option<u8>) -> u8 {{ x.unwrap() }}\nfn g(x: Option<u8>) -> u8 {{ x.expect(\"set\") }}\n"));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(lint(&format!(
            "{OPT_IN}fn f(x: Option<u8>) -> u8 {{ x.unwrap_or(0).max(x.unwrap_or_default()) }}\n"
        ))
        .is_empty());
    }

    #[test]
    fn debug_assert_allowed_release_assert_flagged() {
        let d = lint(&format!("{OPT_IN}fn f(a: u8) {{ debug_assert!(a > 0); assert!(a > 0); }}\n"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("assert!"));
    }

    #[test]
    fn dynamic_index_flagged_literal_allowed() {
        let d = lint(&format!(
            "{OPT_IN}fn f(v: &[u8], i: usize) -> u8 {{ let _ = v[0]; let _ = v[2..4]; v[i] }}\n"
        ));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("[i]"));
    }

    #[test]
    fn slice_patterns_and_types_not_flagged() {
        assert!(lint(&format!(
            "{OPT_IN}fn f(v: &[u8; 2]) -> [u8; 2] {{ let [a, b] = *v; [b, a] }}\n"
        ))
        .is_empty());
    }

    #[test]
    fn allow_marker_waives_one_line() {
        let src = format!(
            "{OPT_IN}fn f(v: &[u8], i: usize) -> u8 {{\n    v[i] // telco-lint: allow(index): i < v.len() checked by caller\n}}\n"
        );
        assert!(lint(&src).is_empty());
    }

    #[test]
    fn cfg_test_region_exempt() {
        let src = format!(
            "{OPT_IN}#[cfg(test)]\nmod tests {{\n    fn t() {{ None::<u8>.unwrap(); }}\n}}\n"
        );
        assert!(lint(&src).is_empty());
    }

    #[test]
    fn region_scope_only_covers_region() {
        let src = "fn w(x: Option<u8>) -> u8 { x.unwrap() }\n// telco-lint: deny-panic(begin)\nfn r(x: Option<u8>) -> u8 { x.unwrap() }\n// telco-lint: deny-panic(end)\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }
}
