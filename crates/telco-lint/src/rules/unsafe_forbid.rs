//! Unsafe-freedom rule.
//!
//! None of the first-party crates need `unsafe` to do their job — the
//! one exception is the counting global allocator in telco-sim's
//! zero-allocation harness, which implements `GlobalAlloc` and carries a
//! file-level waiver with its justification. The rule enforces both
//! directions:
//!
//! - every crate root (`src/lib.rs` / `src/main.rs`) must carry
//!   `#![forbid(unsafe_code)]`, so an unsafe block cannot even compile;
//! - any `unsafe` token elsewhere (tests, benches, examples are scanned
//!   too — `forbid` in the library does not cover them) is a finding
//!   unless the file carries an `allow(unsafe)` waiver.

use crate::markers::{AllowWhat, FileMarkers};
use crate::report::Diagnostic;
use crate::rules::word_hits;
use crate::scan::{is_ident_byte, SourceFile};

const FORBID_ATTR: &str = "#![forbid(unsafe_code)]";

/// Run the rule over one file. `is_crate_root` marks `src/lib.rs` /
/// `src/main.rs` files that must carry the forbid attribute.
pub fn check(
    file: &SourceFile,
    markers: &FileMarkers,
    is_crate_root: bool,
    out: &mut Vec<Diagnostic>,
) {
    let waived = markers.allowed_anywhere(AllowWhat::Unsafe);
    if is_crate_root && !file.masked.contains(FORBID_ATTR) && !waived {
        out.push(Diagnostic {
            rule: "unsafe-forbid",
            path: file.rel_path.clone(),
            line: 1,
            message: format!("crate root is missing `{FORBID_ATTR}`"),
            snippet: String::new(),
        });
    }
    if waived {
        return;
    }
    let bytes = file.masked.as_bytes();
    for pos in word_hits(&file.masked, "unsafe") {
        // Reject `unsafe_code` and friends: require a boundary after.
        if bytes.get(pos + "unsafe".len()).copied().is_some_and(is_ident_byte) {
            continue;
        }
        let line = file.line_of(pos);
        out.push(Diagnostic {
            rule: "unsafe-forbid",
            path: file.rel_path.clone(),
            line,
            message: "`unsafe` outside a waived file; add `allow(unsafe)` with a justification or rewrite safely"
                .to_string(),
            snippet: file.raw_line(line).trim().to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markers;
    use std::path::Path;

    fn lint(src: &str, root: bool) -> Vec<Diagnostic> {
        let file = SourceFile::parse(Path::new("t.rs"), src.to_string());
        let m = markers::analyze(&file);
        let mut out = Vec::new();
        check(&file, &m, root, &mut out);
        out
    }

    #[test]
    fn root_without_forbid_flagged() {
        let d = lint("pub fn f() {}\n", true);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("forbid"));
    }

    #[test]
    fn root_with_forbid_clean() {
        assert!(lint("#![forbid(unsafe_code)]\npub fn f() {}\n", true).is_empty());
    }

    #[test]
    fn unsafe_block_flagged_in_any_file() {
        let d = lint("pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n", false);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn waiver_covers_the_file() {
        let src = "#![allow(unsafe_code)]\n// telco-lint: allow(unsafe): GlobalAlloc impl requires unsafe\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(lint(src, false).is_empty());
    }

    #[test]
    fn mention_in_comment_or_string_not_flagged() {
        let src =
            "#![forbid(unsafe_code)]\n// this crate has no unsafe\nconst S: &str = \"unsafe\";\n";
        assert!(lint(src, true).is_empty());
    }
}
