//! Lossless single-pass source scanner.
//!
//! Rust's grammar is far too rich to parse by hand, but the invariants the
//! linter enforces are all *lexical*: "this token sequence appears in real
//! code" or "this identifier is indexed with a non-literal expression".
//! The only genuinely hard part is deciding what counts as *real code* —
//! a `.unwrap()` inside a doc comment or a string literal must never fire
//! a diagnostic, and a rule match inside a `#[cfg(test)]` module is
//! test-only code that the panic rules deliberately exempt.
//!
//! [`SourceFile::parse`] therefore produces a *masked* copy of the source:
//! byte-for-byte the same length as the original, with every comment and
//! every string/char-literal interior replaced by spaces (newlines are
//! preserved so line numbers survive). All rule pattern matching runs on
//! the masked text; the raw text is kept for marker parsing (markers live
//! in comments) and for diagnostic snippets.
//!
//! The masker is a real lexer for the subset that matters: nested block
//! comments, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and escape sequences inside ordinary strings.

use std::path::Path;

/// A scanned source file: raw text plus the code-only masked view and the
/// per-line / per-byte classification the rules consume.
pub struct SourceFile {
    /// Path relative to the lint root, with forward slashes (stable for
    /// diagnostics and JSON reports across platforms).
    pub rel_path: String,
    /// Original file contents.
    pub raw: String,
    /// Same length as `raw`; comments and literal interiors blanked.
    pub masked: String,
    /// `in_comment[i]` is true iff byte `i` of `raw` lies inside a
    /// comment (line, doc, or block). Used to tell marker comments apart
    /// from string literals that merely *mention* a marker.
    in_comment: Vec<bool>,
    /// Byte offset of the start of each line (line 1 at index 0).
    line_starts: Vec<usize>,
    /// `in_test[l]` is true iff 1-based line `l+1` is inside an item
    /// gated by `#[cfg(test)]`.
    in_test: Vec<bool>,
    /// Brace-nesting tree over the masked text; scope 0 is the file.
    scopes: ScopeTree,
    /// `use`-declaration bindings, attached to their declaring scope.
    uses: UseMap,
}

impl SourceFile {
    /// Scan `raw`, producing the masked view, line/test maps, and the
    /// name-resolution structures (scope tree + use map).
    pub fn parse(rel_path: &Path, raw: String) -> SourceFile {
        let rel_path = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (masked, in_comment) = mask(&raw);
        let line_starts = line_starts(&raw);
        let in_test = test_lines(&masked, &line_starts);
        let scopes = ScopeTree::build(&masked);
        let uses = UseMap::build(&masked, &scopes);
        SourceFile { rel_path, raw, masked, in_comment, line_starts, in_test, scopes, uses }
    }

    /// 1-based line number containing byte offset `byte`.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point i means line_starts[i-1] <= byte
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Raw text of 1-based line `line` (without the trailing newline).
    pub fn raw_line(&self, line: usize) -> &str {
        self.line_slice(&self.raw, line)
    }

    /// Masked text of 1-based line `line`.
    pub fn masked_line(&self, line: usize) -> &str {
        self.line_slice(&self.masked, line)
    }

    /// True iff 1-based `line` is inside a `#[cfg(test)]`-gated item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True iff every byte of `range` lies inside a comment in the raw
    /// source (as opposed to code or a string literal).
    pub fn is_comment_range(&self, start: usize, end: usize) -> bool {
        start < end
            && end <= self.in_comment.len()
            && self.in_comment[start..end].iter().all(|&c| c)
    }

    /// The scope tree of this file (brace nesting over the masked text).
    pub fn scopes(&self) -> &ScopeTree {
        &self.scopes
    }

    /// Resolve the bare identifier `ident` as it is visible at byte
    /// `pos`: the canonical path its innermost enclosing `use` binding
    /// imports, or a glob-import guess, or `None` when no import binds
    /// it (a local definition or a prelude name).
    pub fn resolve(&self, pos: usize, ident: &str) -> Option<String> {
        let scope = self.scopes.innermost(pos);
        // Exact bindings win over globs; nearer scopes win over outer.
        for s in self.scopes.ancestry(scope) {
            if let Some(path) = self.uses.exact(s, ident) {
                return Some(path.to_string());
            }
        }
        for s in self.scopes.ancestry(scope) {
            if let Some(prefix) = self.uses.glob(s) {
                return Some(format!("{prefix}::{ident}"));
            }
        }
        None
    }

    /// The canonical path of the identifier token `ident` at byte `pos`,
    /// expanding any `seg::` qualifiers written immediately before it
    /// through the use map:
    ///
    /// - `Ordering` under `use std::sync::atomic::Ordering;` →
    ///   `std::sync::atomic::Ordering`;
    /// - `atomic::Ordering` under `use std::sync::atomic;` → the same;
    /// - `std::cmp::Ordering` → itself (absolute paths pass through);
    /// - an unimported bare `exit` → `exit` (a local name).
    pub fn resolved_path(&self, pos: usize, ident: &str) -> String {
        let bytes = self.masked.as_bytes();
        let mut segments = vec![ident.to_string()];
        let mut at = pos;
        while at >= 2 && bytes[at - 1] == b':' && bytes[at - 2] == b':' {
            let Some((seg, seg_start)) = ident_ending_at(&self.masked, at - 2) else {
                break;
            };
            segments.push(seg.to_string());
            at = seg_start;
        }
        segments.reverse();
        let head = segments.first().map(String::as_str).unwrap_or(ident);
        if segments.len() == 1 {
            return self.resolve(pos, ident).unwrap_or_else(|| ident.to_string());
        }
        match head {
            // Absolute or module-relative heads pass through literally.
            "std" | "core" | "alloc" | "crate" | "super" | "self" => segments.join("::"),
            _ => match self.resolve(at, head) {
                Some(head_path) => {
                    let tail = segments[1..].join("::");
                    format!("{head_path}::{tail}")
                }
                None => segments.join("::"),
            },
        }
    }

    fn line_slice<'a>(&self, text: &'a str, line: usize) -> &'a str {
        let Some(&start) = self.line_starts.get(line.wrapping_sub(1)) else {
            return "";
        };
        let end =
            self.line_starts.get(line).map(|&next| next.saturating_sub(1)).unwrap_or(text.len());
        text.get(start..end).unwrap_or("").trim_end_matches('\r')
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Is `b` part of an identifier? (ASCII view is enough: first-party code
/// uses ASCII identifiers, and rule patterns are all ASCII.)
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Read the identifier ending at byte `end` (exclusive) of `masked`,
/// returning it and its start index; `None` if the byte before `end` is
/// not an identifier byte.
pub fn ident_ending_at(masked: &str, end: usize) -> Option<(&str, usize)> {
    let bytes = masked.as_bytes();
    if end == 0 || !is_ident_byte(bytes[end - 1]) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    Some((&masked[start..end], start))
}

/// Blank comments and literal interiors out of `src`.
///
/// Returns the masked text (same byte length — multi-byte characters in
/// blanked regions become runs of spaces, which keeps the result valid
/// UTF-8) and the per-byte `in_comment` classification.
fn mask(src: &str) -> (String, Vec<bool>) {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut in_comment = vec![false; n];
    let mut i = 0usize;

    // Blank bytes [from, to) keeping newlines; mark as comment if asked.
    macro_rules! blank {
        ($from:expr, $to:expr, $comment:expr) => {
            for k in $from..$to {
                if out[k] != b'\n' {
                    out[k] = b' ';
                }
                if $comment {
                    in_comment[k] = true;
                }
            }
        };
    }

    while i < n {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = memchr_newline(bytes, i);
                blank!(i, end, true);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank!(i, j, true);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank!(i + 1, end.saturating_sub(1), false);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_literal_start(bytes, i) => {
                // One of r"..", r#".."#, b"..", br".., rb is not a thing.
                let (body_start, end) = skip_raw_or_byte(bytes, i);
                blank!(body_start, end, false);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank!(i + 1, end - 1, false);
                    i = end;
                } else {
                    i += 1; // lifetime: leave the quote and ident intact
                }
            }
            _ => i += 1,
        }
    }

    // Safety of from_utf8: only ASCII bytes were written over the
    // original, and whole multi-byte sequences were always replaced.
    (String::from_utf8(out).unwrap_or_else(|_| src.to_string()), in_comment)
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map(|p| from + p).unwrap_or(bytes.len())
}

/// Skip an ordinary `"..."` (or the tail of a `b"..."`) starting at the
/// opening quote index; returns the index just past the closing quote.
fn skip_string(bytes: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Does a raw/byte string literal start at `i`? Requires the preceding
/// byte to not be part of an identifier (so `var"` or `attr` names don't
/// trip it).
fn is_raw_or_byte_literal_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = match rest {
        [b'b', b'r', ..] => 2,
        [b'r', ..] | [b'b', ..] => 1,
        _ => return false,
    };
    let mut j = after_prefix;
    // b"..." has no hashes; r and br may have any number.
    if rest.first() == Some(&b'b') && after_prefix == 1 {
        return rest.get(j) == Some(&b'"');
    }
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

/// Skip a raw or byte string starting at `i`; returns (body_start, end)
/// where `end` is just past the closing delimiter.
fn skip_raw_or_byte(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    let body_start = j + 1;
    if hashes == 0 && bytes[i..j].contains(&b'b') && !bytes[i..j].contains(&b'r') {
        // Plain byte string: escapes apply.
        return (body_start, skip_string(bytes, j));
    }
    // Raw string: ends at `"` followed by `hashes` `#`s, no escapes.
    let mut k = body_start;
    while k < bytes.len() {
        if bytes[k] == b'"'
            && bytes[k + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return (body_start, k + 1 + hashes);
        }
        k += 1;
    }
    (body_start, bytes.len())
}

/// If a char literal starts at the `'` at index `i`, return the index
/// just past its closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(bytes.len());
    }
    // `'x'` (possibly multi-byte x) is a char literal; `'ident` without a
    // closing quote right after one character is a lifetime.
    let char_len = utf8_len(next);
    match bytes.get(i + 1 + char_len) {
        Some(&b'\'') => Some(i + 2 + char_len),
        _ => None,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Mark the lines covered by `#[cfg(test)]`-gated items.
///
/// For each `#[cfg(test)]` attribute (exactly that predicate — `not(test)`
/// and compound predicates are left alone), the gated item extends through
/// any further attributes to either the matching `}` of its first body
/// brace or the terminating `;`.
fn test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = find_from(masked, "#[cfg(", from) {
        from = pos + 1;
        let pred_start = pos + "#[cfg(".len();
        let Some(pred_end) = matching_delim(bytes, pred_start - 1, b'(', b')') else {
            continue;
        };
        let pred: String =
            masked[pred_start..pred_end].chars().filter(|c| !c.is_whitespace()).collect();
        if pred != "test" {
            continue;
        }
        // Past the attribute's closing `]`.
        let Some(attr_end) = matching_delim(bytes, pos + 1, b'[', b']') else {
            continue;
        };
        let Some(item_end) = item_extent(bytes, attr_end + 1) else {
            continue;
        };
        let first = line_of(line_starts, pos);
        let last = line_of(line_starts, item_end.min(bytes.len().saturating_sub(1)));
        for l in first..=last {
            if let Some(slot) = in_test.get_mut(l - 1) {
                *slot = true;
            }
        }
        from = item_end;
    }
    in_test
}

fn line_of(line_starts: &[usize], byte: usize) -> usize {
    match line_starts.binary_search(&byte) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Find `needle` in `hay` starting at byte `from`.
pub fn find_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    hay.get(from..)?.find(needle).map(|p| from + p)
}

/// Given `bytes[open] == open_b`, return the index of the matching
/// `close_b`, honouring nesting.
pub fn matching_delim(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    debug_assert_eq!(bytes.get(open), Some(&open_b));
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// The brace-nesting tree of a file: every `{ .. }` span in the masked
/// text, plus scope 0 covering the whole file. Built once per file, it
/// lets rules reason about lexical extent — which `use` bindings are
/// visible at a byte, or how long a `let` binding stays live.
pub struct ScopeTree {
    /// `(start, end)` byte spans; scope 0 is `(0, len)`. `end` points at
    /// the closing brace (or file end for unbalanced input).
    spans: Vec<(usize, usize)>,
    /// Parent scope index; scope 0 is its own parent.
    parents: Vec<usize>,
}

impl ScopeTree {
    /// Build the tree by walking the masked text's braces.
    pub fn build(masked: &str) -> ScopeTree {
        let bytes = masked.as_bytes();
        let mut spans: Vec<(usize, usize)> = vec![(0, bytes.len())];
        let mut parents: Vec<usize> = vec![0];
        let mut stack: Vec<usize> = vec![0];
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'{' => {
                    let parent = stack.last().copied().unwrap_or(0);
                    spans.push((i, bytes.len()));
                    parents.push(parent);
                    stack.push(spans.len() - 1);
                }
                // Scope 0 never pops: unbalanced closers are ignored.
                b'}' if stack.len() > 1 => {
                    if let Some(id) = stack.pop() {
                        if let Some(span) = spans.get_mut(id) {
                            span.1 = i;
                        }
                    }
                }
                _ => {}
            }
        }
        ScopeTree { spans, parents }
    }

    /// The innermost scope containing byte `pos`.
    pub fn innermost(&self, pos: usize) -> usize {
        let mut best = 0usize;
        let mut best_start = 0usize;
        for (id, &(start, end)) in self.spans.iter().enumerate().skip(1) {
            if start <= pos && pos <= end && start >= best_start {
                best = id;
                best_start = start;
            }
        }
        best
    }

    /// The scope chain from `scope` to the file root, inclusive.
    pub fn ancestry(&self, scope: usize) -> impl Iterator<Item = usize> + '_ {
        let mut at = Some(scope.min(self.spans.len().saturating_sub(1)));
        std::iter::from_fn(move || {
            let cur = at?;
            let parent = self.parents.get(cur).copied().unwrap_or(0);
            at = (parent != cur).then_some(parent);
            Some(cur)
        })
    }

    /// The `(start, end)` byte span of `scope`.
    pub fn span(&self, scope: usize) -> (usize, usize) {
        self.spans.get(scope).copied().unwrap_or((0, 0))
    }

    /// Number of scopes (including the file root).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Always false: scope 0 exists for every file.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The file's `use`-declaration bindings: which bare identifier each
/// import makes visible, in which scope, for which canonical path. This
/// is what lets rules tell `std::sync::atomic::Ordering` apart from
/// `std::cmp::Ordering`, and `std::process::exit` from a local `exit`.
pub struct UseMap {
    /// `(scope, alias, full_path)` triples.
    bindings: Vec<(usize, String, String)>,
    /// `(scope, module_path)` for `use path::*` glob imports.
    globs: Vec<(usize, String)>,
}

impl UseMap {
    /// Parse every `use` declaration in the masked text, expanding
    /// nested groups, `as` renames, `self`, and `*` globs.
    pub fn build(masked: &str, scopes: &ScopeTree) -> UseMap {
        let mut map = UseMap { bindings: Vec::new(), globs: Vec::new() };
        let bytes = masked.as_bytes();
        let mut from = 0usize;
        while let Some(pos) = find_from(masked, "use", from) {
            from = pos + 3;
            // Word boundaries on both sides: not `user`, not `abuse`.
            let bounded_left = pos == 0 || !is_ident_byte(bytes[pos - 1]);
            let bounded_right = bytes.get(pos + 3).is_some_and(|b| b.is_ascii_whitespace());
            if !bounded_left || !bounded_right {
                continue;
            }
            let Some(end) = find_from(masked, ";", pos) else { continue };
            // Collapse whitespace, keeping `as` findable: the rename
            // keyword becomes `@` (illegal in paths) so that stripping
            // the remaining spaces cannot glue it onto an identifier.
            let mut spec = String::new();
            for token in masked[pos + 3..end].split_whitespace() {
                spec.push_str(if token == "as" { "@" } else { token });
            }
            let scope = scopes.innermost(pos);
            map.add_tree(scope, "", &spec);
            from = end + 1;
        }
        map
    }

    /// Expand one use-tree `spec` under `prefix` (either empty or ending
    /// with `::`) into bindings.
    fn add_tree(&mut self, scope: usize, prefix: &str, spec: &str) {
        if spec.is_empty() {
            return;
        }
        if let Some(brace) = spec.find('{') {
            let Some(inner) = spec.get(brace + 1..spec.len().saturating_sub(1)) else {
                return;
            };
            if !spec.ends_with('}') {
                return;
            }
            let head = spec.get(..brace).unwrap_or("");
            let nested = format!("{prefix}{head}");
            for part in split_top_commas(inner) {
                self.add_tree(scope, &nested, part);
            }
            return;
        }
        if let Some(module) = spec.strip_suffix("::*").or(spec.strip_suffix('*')) {
            let module = module.trim_end_matches(':');
            let full = format!("{prefix}{module}");
            self.globs.push((scope, full.trim_end_matches(':').to_string()));
            return;
        }
        let (path, alias) = match spec.split_once('@') {
            Some((p, a)) if !p.is_empty() => (p, a),
            _ => (spec, ""),
        };
        let full = if path == "self" {
            prefix.trim_end_matches(':').to_string()
        } else {
            format!("{prefix}{path}")
        };
        let name = if alias.is_empty() {
            full.rsplit("::").next().unwrap_or(&full).to_string()
        } else {
            alias.to_string()
        };
        if name == "_" || name.is_empty() {
            return;
        }
        self.bindings.push((scope, name, full));
    }

    /// The path bound to `ident` by a `use` in exactly `scope`.
    pub fn exact(&self, scope: usize, ident: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|(s, alias, _)| *s == scope && alias == ident)
            .map(|(_, _, path)| path.as_str())
    }

    /// The first glob-import module path declared in exactly `scope`.
    pub fn glob(&self, scope: usize) -> Option<&str> {
        self.globs.iter().find(|(s, _)| *s == scope).map(|(_, path)| path.as_str())
    }
}

/// Split `s` on commas at brace-nesting depth zero.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// End byte of the item that starts at or after `from`: skips leading
/// whitespace and further attributes, then runs to the matching `}` of
/// the first top-level `;`.
fn item_extent(bytes: &[u8], from: usize) -> Option<usize> {
    let mut j = from;
    loop {
        while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
            j = matching_delim(bytes, j + 1, b'[', b']')? + 1;
        } else {
            break;
        }
    }
    let mut paren = 0isize;
    while j < bytes.len() {
        match bytes[j] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => return matching_delim(bytes, j, b'{', b'}'),
            b';' if paren == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("t.rs"), src.to_string())
    }

    #[test]
    fn masks_comments_and_strings() {
        let f = parse("let x = \"a.unwrap()\"; // .unwrap()\nx.unwrap();\n");
        assert!(!f.masked_line(1).contains("unwrap"));
        assert!(f.masked_line(2).contains(".unwrap()"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let f = parse("let a = r#\"x.unwrap()\"#;\nlet b = b\".expect(\";\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("expect"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let f = parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.masked.contains("<'a>"));
        assert!(!f.masked.contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let f = parse("/* outer /* inner */ still.unwrap() */ let y = 1;\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("let y = 1;"));
    }

    #[test]
    fn comment_bytes_classified() {
        let src = "let s = \"// telco-lint: x\"; // telco-lint: y\n";
        let f = parse(src);
        let in_string = src.find("x\"").unwrap();
        let in_comment = src.find(": y").unwrap();
        assert!(!f.is_comment_range(in_string, in_string + 1));
        assert!(f.is_comment_range(in_comment, in_comment + 3));
    }

    #[test]
    fn cfg_test_module_lines_marked() {
        let src = "pub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\npub fn live2() {}\n";
        let f = parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = parse("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn line_of_maps_bytes_to_lines() {
        let f = parse("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
        assert_eq!(f.line_count(), 3);
    }

    #[test]
    fn scope_tree_nests_and_walks_ancestry() {
        let src = "fn a() { if x { y(); } }\nfn b() { z(); }\n";
        let f = parse(src);
        let inner = src.find("y()").unwrap();
        let outer = src.find("z()").unwrap();
        let s_inner = f.scopes().innermost(inner);
        let s_outer = f.scopes().innermost(outer);
        assert_ne!(s_inner, s_outer);
        let chain: Vec<usize> = f.scopes().ancestry(s_inner).collect();
        assert_eq!(chain.len(), 3, "y() sits in if-block < fn-body < file");
        assert_eq!(*chain.last().unwrap(), 0);
        assert_eq!(f.scopes().ancestry(s_outer).count(), 2);
    }

    #[test]
    fn resolve_simple_use() {
        let src = "use std::sync::atomic::Ordering;\nfn f() { Ordering::Relaxed; }\n";
        let f = parse(src);
        let at = src.rfind("Ordering").unwrap();
        assert_eq!(f.resolve(at, "Ordering").as_deref(), Some("std::sync::atomic::Ordering"));
        assert_eq!(f.resolve(at, "Unbound"), None);
    }

    #[test]
    fn resolve_groups_aliases_and_self() {
        let src = "use std::sync::{Arc, atomic::{AtomicU64, Ordering as O}, mpsc::{self}};\n";
        let f = parse(src);
        let at = src.len() - 1;
        assert_eq!(f.resolve(at, "Arc").as_deref(), Some("std::sync::Arc"));
        assert_eq!(f.resolve(at, "AtomicU64").as_deref(), Some("std::sync::atomic::AtomicU64"));
        assert_eq!(f.resolve(at, "O").as_deref(), Some("std::sync::atomic::Ordering"));
        assert_eq!(f.resolve(at, "Ordering"), None, "`as` rename hides the original name");
        assert_eq!(f.resolve(at, "mpsc").as_deref(), Some("std::sync::mpsc"));
    }

    #[test]
    fn resolve_prefers_inner_scope_then_glob() {
        let src = "use std::cmp::Ordering;\nfn f() {\n    use std::sync::atomic::Ordering;\n    Ordering::Relaxed;\n}\nfn g() {\n    use std::sync::atomic::*;\n    Ordering::SeqCst; Wildcarded::X;\n}\nfn h() { Ordering::Less; }\n";
        let f = parse(src);
        let inner = src.find("Ordering::Relaxed").unwrap();
        let globbed = src.find("Ordering::SeqCst").unwrap();
        let wild = src.find("Wildcarded").unwrap();
        let outer = src.find("Ordering::Less").unwrap();
        assert_eq!(f.resolve(inner, "Ordering").as_deref(), Some("std::sync::atomic::Ordering"));
        assert_eq!(f.resolve(outer, "Ordering").as_deref(), Some("std::cmp::Ordering"));
        // Exact binding (file-scope cmp) wins over an inner glob; the
        // glob only answers for names with no exact binding anywhere.
        assert_eq!(f.resolve(globbed, "Ordering").as_deref(), Some("std::cmp::Ordering"));
        assert_eq!(f.resolve(wild, "Wildcarded").as_deref(), Some("std::sync::atomic::Wildcarded"));
    }

    #[test]
    fn resolved_path_expands_qualified_heads() {
        let src = "use std::sync::atomic;\nfn f() { atomic::Ordering::Relaxed; }\nfn g() { std::cmp::Ordering::Less; }\nfn h() { local::Ordering::X; }\n";
        let f = parse(src);
        let via_alias = src.find("Ordering::Relaxed").unwrap();
        let literal = src.find("Ordering::Less").unwrap();
        let unknown = src.find("Ordering::X").unwrap();
        assert_eq!(f.resolved_path(via_alias, "Ordering"), "std::sync::atomic::Ordering");
        assert_eq!(f.resolved_path(literal, "Ordering"), "std::cmp::Ordering");
        assert_eq!(f.resolved_path(unknown, "Ordering"), "local::Ordering");
    }

    /// Regression for the lexical false-positive class the resolver
    /// exists to kill: one file using `cmp::Ordering` in a comparator
    /// and atomic `Ordering` in the same module must yield different
    /// canonical paths at each use site.
    #[test]
    fn cmp_and_atomic_ordering_disambiguated_in_one_file() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn hot(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\nfn sort_key(a: u64, b: u64) -> std::cmp::Ordering { a.cmp(&b) }\nfn cmp2(a: u64, b: u64) -> core::cmp::Ordering {\n    use core::cmp::Ordering;\n    if a < b { Ordering::Less } else { Ordering::Greater }\n}\n";
        let f = parse(src);
        let atomic_use = src.find("Ordering::Relaxed").unwrap();
        let cmp_use = src.find("Ordering::Less").unwrap();
        assert_eq!(f.resolved_path(atomic_use, "Ordering"), "std::sync::atomic::Ordering");
        assert_eq!(f.resolved_path(cmp_use, "Ordering"), "core::cmp::Ordering");
        let ret_ty = src.find("std::cmp::Ordering").unwrap() + "std::cmp::".len();
        assert_eq!(f.resolved_path(ret_ty, "Ordering"), "std::cmp::Ordering");
    }
}
