//! Lossless single-pass source scanner.
//!
//! Rust's grammar is far too rich to parse by hand, but the invariants the
//! linter enforces are all *lexical*: "this token sequence appears in real
//! code" or "this identifier is indexed with a non-literal expression".
//! The only genuinely hard part is deciding what counts as *real code* —
//! a `.unwrap()` inside a doc comment or a string literal must never fire
//! a diagnostic, and a rule match inside a `#[cfg(test)]` module is
//! test-only code that the panic rules deliberately exempt.
//!
//! [`SourceFile::parse`] therefore produces a *masked* copy of the source:
//! byte-for-byte the same length as the original, with every comment and
//! every string/char-literal interior replaced by spaces (newlines are
//! preserved so line numbers survive). All rule pattern matching runs on
//! the masked text; the raw text is kept for marker parsing (markers live
//! in comments) and for diagnostic snippets.
//!
//! The masker is a real lexer for the subset that matters: nested block
//! comments, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and escape sequences inside ordinary strings.

use std::path::Path;

/// A scanned source file: raw text plus the code-only masked view and the
/// per-line / per-byte classification the rules consume.
pub struct SourceFile {
    /// Path relative to the lint root, with forward slashes (stable for
    /// diagnostics and JSON reports across platforms).
    pub rel_path: String,
    /// Original file contents.
    pub raw: String,
    /// Same length as `raw`; comments and literal interiors blanked.
    pub masked: String,
    /// `in_comment[i]` is true iff byte `i` of `raw` lies inside a
    /// comment (line, doc, or block). Used to tell marker comments apart
    /// from string literals that merely *mention* a marker.
    in_comment: Vec<bool>,
    /// Byte offset of the start of each line (line 1 at index 0).
    line_starts: Vec<usize>,
    /// `in_test[l]` is true iff 1-based line `l+1` is inside an item
    /// gated by `#[cfg(test)]`.
    in_test: Vec<bool>,
}

impl SourceFile {
    /// Scan `raw`, producing the masked view and line/test maps.
    pub fn parse(rel_path: &Path, raw: String) -> SourceFile {
        let rel_path = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (masked, in_comment) = mask(&raw);
        let line_starts = line_starts(&raw);
        let in_test = test_lines(&masked, &line_starts);
        SourceFile { rel_path, raw, masked, in_comment, line_starts, in_test }
    }

    /// 1-based line number containing byte offset `byte`.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point i means line_starts[i-1] <= byte
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Raw text of 1-based line `line` (without the trailing newline).
    pub fn raw_line(&self, line: usize) -> &str {
        self.line_slice(&self.raw, line)
    }

    /// Masked text of 1-based line `line`.
    pub fn masked_line(&self, line: usize) -> &str {
        self.line_slice(&self.masked, line)
    }

    /// True iff 1-based `line` is inside a `#[cfg(test)]`-gated item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True iff every byte of `range` lies inside a comment in the raw
    /// source (as opposed to code or a string literal).
    pub fn is_comment_range(&self, start: usize, end: usize) -> bool {
        start < end
            && end <= self.in_comment.len()
            && self.in_comment[start..end].iter().all(|&c| c)
    }

    fn line_slice<'a>(&self, text: &'a str, line: usize) -> &'a str {
        let Some(&start) = self.line_starts.get(line.wrapping_sub(1)) else {
            return "";
        };
        let end =
            self.line_starts.get(line).map(|&next| next.saturating_sub(1)).unwrap_or(text.len());
        text.get(start..end).unwrap_or("").trim_end_matches('\r')
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Is `b` part of an identifier? (ASCII view is enough: first-party code
/// uses ASCII identifiers, and rule patterns are all ASCII.)
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank comments and literal interiors out of `src`.
///
/// Returns the masked text (same byte length — multi-byte characters in
/// blanked regions become runs of spaces, which keeps the result valid
/// UTF-8) and the per-byte `in_comment` classification.
fn mask(src: &str) -> (String, Vec<bool>) {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut in_comment = vec![false; n];
    let mut i = 0usize;

    // Blank bytes [from, to) keeping newlines; mark as comment if asked.
    macro_rules! blank {
        ($from:expr, $to:expr, $comment:expr) => {
            for k in $from..$to {
                if out[k] != b'\n' {
                    out[k] = b' ';
                }
                if $comment {
                    in_comment[k] = true;
                }
            }
        };
    }

    while i < n {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = memchr_newline(bytes, i);
                blank!(i, end, true);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank!(i, j, true);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank!(i + 1, end.saturating_sub(1), false);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_literal_start(bytes, i) => {
                // One of r"..", r#".."#, b"..", br".., rb is not a thing.
                let (body_start, end) = skip_raw_or_byte(bytes, i);
                blank!(body_start, end, false);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank!(i + 1, end - 1, false);
                    i = end;
                } else {
                    i += 1; // lifetime: leave the quote and ident intact
                }
            }
            _ => i += 1,
        }
    }

    // Safety of from_utf8: only ASCII bytes were written over the
    // original, and whole multi-byte sequences were always replaced.
    (String::from_utf8(out).unwrap_or_else(|_| src.to_string()), in_comment)
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map(|p| from + p).unwrap_or(bytes.len())
}

/// Skip an ordinary `"..."` (or the tail of a `b"..."`) starting at the
/// opening quote index; returns the index just past the closing quote.
fn skip_string(bytes: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Does a raw/byte string literal start at `i`? Requires the preceding
/// byte to not be part of an identifier (so `var"` or `attr` names don't
/// trip it).
fn is_raw_or_byte_literal_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = match rest {
        [b'b', b'r', ..] => 2,
        [b'r', ..] | [b'b', ..] => 1,
        _ => return false,
    };
    let mut j = after_prefix;
    // b"..." has no hashes; r and br may have any number.
    if rest.first() == Some(&b'b') && after_prefix == 1 {
        return rest.get(j) == Some(&b'"');
    }
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

/// Skip a raw or byte string starting at `i`; returns (body_start, end)
/// where `end` is just past the closing delimiter.
fn skip_raw_or_byte(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    let body_start = j + 1;
    if hashes == 0 && bytes[i..j].contains(&b'b') && !bytes[i..j].contains(&b'r') {
        // Plain byte string: escapes apply.
        return (body_start, skip_string(bytes, j));
    }
    // Raw string: ends at `"` followed by `hashes` `#`s, no escapes.
    let mut k = body_start;
    while k < bytes.len() {
        if bytes[k] == b'"'
            && bytes[k + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return (body_start, k + 1 + hashes);
        }
        k += 1;
    }
    (body_start, bytes.len())
}

/// If a char literal starts at the `'` at index `i`, return the index
/// just past its closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(bytes.len());
    }
    // `'x'` (possibly multi-byte x) is a char literal; `'ident` without a
    // closing quote right after one character is a lifetime.
    let char_len = utf8_len(next);
    match bytes.get(i + 1 + char_len) {
        Some(&b'\'') => Some(i + 2 + char_len),
        _ => None,
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Mark the lines covered by `#[cfg(test)]`-gated items.
///
/// For each `#[cfg(test)]` attribute (exactly that predicate — `not(test)`
/// and compound predicates are left alone), the gated item extends through
/// any further attributes to either the matching `}` of its first body
/// brace or the terminating `;`.
fn test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = find_from(masked, "#[cfg(", from) {
        from = pos + 1;
        let pred_start = pos + "#[cfg(".len();
        let Some(pred_end) = matching_delim(bytes, pred_start - 1, b'(', b')') else {
            continue;
        };
        let pred: String =
            masked[pred_start..pred_end].chars().filter(|c| !c.is_whitespace()).collect();
        if pred != "test" {
            continue;
        }
        // Past the attribute's closing `]`.
        let Some(attr_end) = matching_delim(bytes, pos + 1, b'[', b']') else {
            continue;
        };
        let Some(item_end) = item_extent(bytes, attr_end + 1) else {
            continue;
        };
        let first = line_of(line_starts, pos);
        let last = line_of(line_starts, item_end.min(bytes.len().saturating_sub(1)));
        for l in first..=last {
            if let Some(slot) = in_test.get_mut(l - 1) {
                *slot = true;
            }
        }
        from = item_end;
    }
    in_test
}

fn line_of(line_starts: &[usize], byte: usize) -> usize {
    match line_starts.binary_search(&byte) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Find `needle` in `hay` starting at byte `from`.
pub fn find_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    hay.get(from..)?.find(needle).map(|p| from + p)
}

/// Given `bytes[open] == open_b`, return the index of the matching
/// `close_b`, honouring nesting.
pub fn matching_delim(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    debug_assert_eq!(bytes.get(open), Some(&open_b));
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

/// End byte of the item that starts at or after `from`: skips leading
/// whitespace and further attributes, then runs to the matching `}` of
/// the first top-level `{`, or to the first top-level `;`.
fn item_extent(bytes: &[u8], from: usize) -> Option<usize> {
    let mut j = from;
    loop {
        while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
            j = matching_delim(bytes, j + 1, b'[', b']')? + 1;
        } else {
            break;
        }
    }
    let mut paren = 0isize;
    while j < bytes.len() {
        match bytes[j] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => return matching_delim(bytes, j, b'{', b'}'),
            b';' if paren == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("t.rs"), src.to_string())
    }

    #[test]
    fn masks_comments_and_strings() {
        let f = parse("let x = \"a.unwrap()\"; // .unwrap()\nx.unwrap();\n");
        assert!(!f.masked_line(1).contains("unwrap"));
        assert!(f.masked_line(2).contains(".unwrap()"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let f = parse("let a = r#\"x.unwrap()\"#;\nlet b = b\".expect(\";\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("expect"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let f = parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(f.masked.contains("<'a>"));
        assert!(!f.masked.contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let f = parse("/* outer /* inner */ still.unwrap() */ let y = 1;\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("let y = 1;"));
    }

    #[test]
    fn comment_bytes_classified() {
        let src = "let s = \"// telco-lint: x\"; // telco-lint: y\n";
        let f = parse(src);
        let in_string = src.find("x\"").unwrap();
        let in_comment = src.find(": y").unwrap();
        assert!(!f.is_comment_range(in_string, in_string + 1));
        assert!(f.is_comment_range(in_comment, in_comment + 3));
    }

    #[test]
    fn cfg_test_module_lines_marked() {
        let src = "pub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\npub fn live2() {}\n";
        let f = parse(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = parse("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn line_of_maps_bytes_to_lines() {
        let f = parse("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
        assert_eq!(f.line_count(), 3);
    }
}
