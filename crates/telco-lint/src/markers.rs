//! Marker-comment grammar: how source files opt into (or locally waive)
//! lint rules.
//!
//! Markers are ordinary `//` comments whose text starts with the tool
//! name followed by a colon and a directive. The directives:
//!
//! - `deny-panic` — opt the whole file into the panic-freedom rule;
//! - `deny-panic(begin)` / `deny-panic(end)` — opt a region in (used for
//!   files where only one side, e.g. a reader path, must be total);
//! - `deny-nondeterminism` — opt the file into the determinism rule;
//!   placed in a crate's `lib.rs` it covers the whole crate's `src/`;
//! - `deny-nondeterminism(begin)` / `deny-nondeterminism(end)` — opt a
//!   region in (used for accumulator-merge code whose surrounding file
//!   is otherwise free to iterate hash maps);
//! - `audited-atomics(begin): <reasoning>` / `audited-atomics(end)` —
//!   declare a region whose atomic `Ordering` choices were audited as a
//!   unit; the reasoning is **required** on `begin` and lands in the
//!   waiver inventory. Inside the region the concurrency rule accepts
//!   orderings without per-use notes;
//! - `deny-alloc` / `deny-alloc(begin)` / `deny-alloc(end)` — opt the
//!   file or a region into the allocation-discipline rule (hot loops
//!   that must not allocate per element);
//! - `deny-swallowed-errors` and its `(begin)`/`(end)` region form —
//!   opt into the error-discipline rule (no `let _ =` / bare `.ok()`
//!   discarding a `Result`);
//! - `allow(<what>): <justification>` — waive one rule occurrence, where
//!   `<what>` is one of `panic`, `index`, `nondet`, `print`, `unsafe`,
//!   `concurrency`, `alloc`, `error`. The justification is **required**:
//!   an allow without a reason is itself a lint finding. A trailing
//!   marker waives its own line; a marker on its own line waives the
//!   next code line.
//!
//! Separately from the marker-prefix grammar, a `// ordering: <why>` comment
//! justifies the atomic `Ordering` use on its line (or, standalone, the
//! next code line) to the concurrency rule. The why-text is required.
//!
//! Markers must appear in comments. The scanner's byte classification
//! distinguishes a real marker comment from a string literal that merely
//! contains the marker text, so the linter can lint its own fixtures.
//!
//! Every suppression — `allow(...)`, `// ordering:` note, or
//! `audited-atomics` region — is recorded as a [`WaiverRecord`] so the
//! `--json` report can publish a complete waiver inventory.

use crate::report::Diagnostic;
use crate::scan::{find_from, SourceFile};

/// Prefix that introduces every marker comment.
pub const MARKER_PREFIX: &str = "telco-lint:";

/// What an `allow(...)` marker waives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowWhat {
    /// A panic-freedom finding other than indexing.
    Panic,
    /// A slice/array indexing finding.
    Index,
    /// A determinism finding.
    Nondet,
    /// A no-print finding.
    Print,
    /// Presence of `unsafe` (or absence of the crate-root forbid).
    Unsafe,
    /// A concurrency finding (unjustified ordering, unbounded channel,
    /// guard held across a subprocess wait).
    Concurrency,
    /// An allocation-discipline finding inside a `deny-alloc` scope.
    Alloc,
    /// An error-discipline finding (`let _ =` / bare `.ok()`).
    ErrorDiscipline,
}

impl AllowWhat {
    fn parse(s: &str) -> Option<AllowWhat> {
        match s {
            "panic" => Some(AllowWhat::Panic),
            "index" => Some(AllowWhat::Index),
            "nondet" => Some(AllowWhat::Nondet),
            "print" => Some(AllowWhat::Print),
            "unsafe" => Some(AllowWhat::Unsafe),
            "concurrency" => Some(AllowWhat::Concurrency),
            "alloc" => Some(AllowWhat::Alloc),
            "error" => Some(AllowWhat::ErrorDiscipline),
            _ => None,
        }
    }

    /// The rule name this waiver target maps to in the inventory.
    fn rule(self) -> &'static str {
        match self {
            AllowWhat::Panic | AllowWhat::Index => "panic-free",
            AllowWhat::Nondet => "determinism",
            AllowWhat::Print => "no-print",
            AllowWhat::Unsafe => "unsafe-forbid",
            AllowWhat::Concurrency => "concurrency",
            AllowWhat::Alloc => "alloc-discipline",
            AllowWhat::ErrorDiscipline => "error-discipline",
        }
    }
}

/// One recorded suppression, for the `--json` waiver inventory.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Rule the suppression applies to.
    pub rule: &'static str,
    /// 1-based line the suppression is anchored at.
    pub line: usize,
    /// The human-written reason. Grammar guarantees it is non-empty.
    pub justification: String,
}

/// The marker state of one file, resolved to per-line rule scopes.
pub struct FileMarkers {
    /// `deny_panic[l]` is true iff 1-based line `l+1` is in panic scope.
    deny_panic: Vec<bool>,
    /// File carries a file-level `deny-nondeterminism` marker.
    pub deny_nondet: bool,
    /// `deny_nondet_lines[l]` is true iff 1-based line `l+1` sits inside
    /// a `deny-nondeterminism(begin)`/`(end)` region.
    deny_nondet_lines: Vec<bool>,
    /// Resolved `(line, what)` waivers.
    allows: Vec<(usize, AllowWhat)>,
    /// `audited_atomics[l]` is true iff 1-based line `l+1` sits inside
    /// an `audited-atomics(begin)`/`(end)` region.
    audited_atomics: Vec<bool>,
    /// File carries a file-level `deny-alloc` marker.
    pub deny_alloc: bool,
    /// Per-line `deny-alloc(begin)`/`(end)` region membership.
    deny_alloc_lines: Vec<bool>,
    /// File carries a file-level `deny-swallowed-errors` marker.
    pub deny_errors: bool,
    /// Per-line `deny-swallowed-errors(begin)`/`(end)` region membership.
    deny_errors_lines: Vec<bool>,
    /// Resolved `(line, why)` `// ordering:` justification notes.
    ordering_notes: Vec<(usize, String)>,
    /// Every suppression in the file, for the waiver inventory.
    pub waivers: Vec<WaiverRecord>,
    /// Grammar errors found while parsing markers.
    pub diags: Vec<Diagnostic>,
}

impl FileMarkers {
    /// True iff 1-based `line` is inside a panic-freedom scope.
    pub fn panic_scope(&self, line: usize) -> bool {
        self.deny_panic.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// Does any line opt into panic-freedom?
    pub fn has_panic_scope(&self) -> bool {
        self.deny_panic.iter().any(|&b| b)
    }

    /// True iff 1-based `line` is inside a determinism scope — either the
    /// whole file opted in, or the line sits in a
    /// `deny-nondeterminism(begin)`/`(end)` region.
    pub fn nondet_scope(&self, line: usize) -> bool {
        self.deny_nondet
            || self.deny_nondet_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// Does any line opt into the determinism rule via a region marker?
    pub fn has_nondet_region(&self) -> bool {
        self.deny_nondet_lines.iter().any(|&b| b)
    }

    /// True iff `line` carries a waiver for `what`.
    pub fn allowed(&self, line: usize, what: AllowWhat) -> bool {
        self.allows.iter().any(|&(l, w)| l == line && w == what)
    }

    /// True iff the file waives `what` anywhere (file-level waivers such
    /// as `allow(unsafe)` on a test binary).
    pub fn allowed_anywhere(&self, what: AllowWhat) -> bool {
        self.allows.iter().any(|&(_, w)| w == what)
    }

    /// True iff 1-based `line` sits in an `audited-atomics` region.
    pub fn atomics_audited(&self, line: usize) -> bool {
        self.audited_atomics.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True iff 1-based `line` is in an allocation-discipline scope.
    pub fn alloc_scope(&self, line: usize) -> bool {
        self.deny_alloc || self.deny_alloc_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True iff 1-based `line` is in an error-discipline scope.
    pub fn errors_scope(&self, line: usize) -> bool {
        self.deny_errors
            || self.deny_errors_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// The `// ordering:` justification anchored at `line`, if any.
    pub fn ordering_note(&self, line: usize) -> Option<&str> {
        self.ordering_notes.iter().find(|(l, _)| *l == line).map(|(_, why)| why.as_str())
    }
}

/// Parse all markers in `file` and resolve their scopes.
pub fn analyze(file: &SourceFile) -> FileMarkers {
    let n_lines = file.line_count();
    let mut deny_panic = vec![false; n_lines];
    let mut deny_nondet = false;
    let mut deny_nondet_lines = vec![false; n_lines];
    let mut allows: Vec<(usize, AllowWhat)> = Vec::new();
    let mut audited_atomics = vec![false; n_lines];
    let mut deny_alloc = false;
    let mut deny_alloc_lines = vec![false; n_lines];
    let mut deny_errors = false;
    let mut deny_errors_lines = vec![false; n_lines];
    let mut ordering_notes: Vec<(usize, String)> = Vec::new();
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut regions: Vec<usize> = Vec::new(); // open `deny-panic(begin)` lines
    let mut nondet_regions: Vec<usize> = Vec::new(); // open `deny-nondeterminism(begin)` lines
    let mut audited_regions: Vec<usize> = Vec::new(); // open `audited-atomics(begin)` lines
    let mut alloc_regions: Vec<usize> = Vec::new(); // open `deny-alloc(begin)` lines
    let mut error_regions: Vec<usize> = Vec::new(); // open `deny-swallowed-errors(begin)` lines
    let mut file_level_panic = false;

    let mut from = 0usize;
    while let Some(pos) = find_from(&file.raw, MARKER_PREFIX, from) {
        from = pos + MARKER_PREFIX.len();
        if !file.is_comment_range(pos, pos + MARKER_PREFIX.len()) {
            continue; // mention inside a string literal or plain code
        }
        let line = file.line_of(pos);
        let text = file.raw_line(line);
        let Some(col) = text.find(MARKER_PREFIX) else { continue };
        let directive = text[col + MARKER_PREFIX.len()..].trim();

        let mut bad = |message: String| {
            diags.push(Diagnostic {
                rule: "marker",
                path: file.rel_path.clone(),
                line,
                message,
                snippet: text.trim().to_string(),
            });
        };

        match directive {
            "deny-panic" => file_level_panic = true,
            "deny-panic(begin)" => regions.push(line),
            "deny-panic(end)" => match regions.pop() {
                Some(begin) => {
                    for slot in deny_panic.iter_mut().take(line).skip(begin.saturating_sub(1)) {
                        *slot = true;
                    }
                }
                None => bad("deny-panic(end) without a matching begin".to_string()),
            },
            "deny-nondeterminism" => deny_nondet = true,
            "deny-nondeterminism(begin)" => nondet_regions.push(line),
            "deny-nondeterminism(end)" => match nondet_regions.pop() {
                Some(begin) => {
                    for slot in
                        deny_nondet_lines.iter_mut().take(line).skip(begin.saturating_sub(1))
                    {
                        *slot = true;
                    }
                }
                None => bad("deny-nondeterminism(end) without a matching begin".to_string()),
            },
            "deny-alloc" => deny_alloc = true,
            "deny-alloc(begin)" => alloc_regions.push(line),
            "deny-alloc(end)" => match alloc_regions.pop() {
                Some(begin) => {
                    for slot in deny_alloc_lines.iter_mut().take(line).skip(begin.saturating_sub(1))
                    {
                        *slot = true;
                    }
                }
                None => bad("deny-alloc(end) without a matching begin".to_string()),
            },
            "deny-swallowed-errors" => deny_errors = true,
            "deny-swallowed-errors(begin)" => error_regions.push(line),
            "deny-swallowed-errors(end)" => match error_regions.pop() {
                Some(begin) => {
                    for slot in
                        deny_errors_lines.iter_mut().take(line).skip(begin.saturating_sub(1))
                    {
                        *slot = true;
                    }
                }
                None => bad("deny-swallowed-errors(end) without a matching begin".to_string()),
            },
            "audited-atomics(end)" => match audited_regions.pop() {
                Some(begin) => {
                    for slot in audited_atomics.iter_mut().take(line).skip(begin.saturating_sub(1))
                    {
                        *slot = true;
                    }
                }
                None => bad("audited-atomics(end) without a matching begin".to_string()),
            },
            d if d.starts_with("audited-atomics(begin)") => {
                let rest = d["audited-atomics(begin)".len()..].trim();
                let reasoning = rest.strip_prefix(':').map(str::trim).unwrap_or("");
                if reasoning.is_empty() {
                    bad("audited-atomics(begin) requires its reasoning: `audited-atomics(begin): <why>`".to_string());
                    continue;
                }
                audited_regions.push(line);
                waivers.push(WaiverRecord {
                    rule: "concurrency",
                    line,
                    justification: reasoning.to_string(),
                });
            }
            d if d.starts_with("allow(") => {
                let Some(close) = d.find(')') else {
                    bad("malformed allow marker: missing `)`".to_string());
                    continue;
                };
                let what_str = &d["allow(".len()..close];
                let Some(what) = AllowWhat::parse(what_str) else {
                    bad(format!(
                        "unknown allow target `{what_str}` (expected panic/index/nondet/print/unsafe)"
                    ));
                    continue;
                };
                let rest = d[close + 1..].trim();
                let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
                if justification.is_empty() {
                    bad(format!(
                        "allow({what_str}) requires a justification: `allow({what_str}): <why>`"
                    ));
                    continue;
                }
                let target = resolve_target(file, line);
                allows.push((target, what));
                waivers.push(WaiverRecord {
                    rule: what.rule(),
                    line: target,
                    justification: justification.to_string(),
                });
            }
            other => bad(format!("unknown directive `{other}`")),
        }
    }

    for begin in regions {
        diags.push(Diagnostic {
            rule: "marker",
            path: file.rel_path.clone(),
            line: begin,
            message: "deny-panic(begin) without a matching end (scope runs to EOF)".to_string(),
            snippet: file.raw_line(begin).trim().to_string(),
        });
        for slot in deny_panic.iter_mut().skip(begin.saturating_sub(1)) {
            *slot = true;
        }
    }
    for begin in nondet_regions {
        diags.push(Diagnostic {
            rule: "marker",
            path: file.rel_path.clone(),
            line: begin,
            message: "deny-nondeterminism(begin) without a matching end (scope runs to EOF)"
                .to_string(),
            snippet: file.raw_line(begin).trim().to_string(),
        });
        for slot in deny_nondet_lines.iter_mut().skip(begin.saturating_sub(1)) {
            *slot = true;
        }
    }
    for (stack, what) in [
        (audited_regions, "audited-atomics"),
        (alloc_regions, "deny-alloc"),
        (error_regions, "deny-swallowed-errors"),
    ] {
        for begin in stack {
            diags.push(Diagnostic {
                rule: "marker",
                path: file.rel_path.clone(),
                line: begin,
                message: format!("{what}(begin) without a matching end (scope runs to EOF)"),
                snippet: file.raw_line(begin).trim().to_string(),
            });
            let lines = match what {
                "audited-atomics" => &mut audited_atomics,
                "deny-alloc" => &mut deny_alloc_lines,
                _ => &mut deny_errors_lines,
            };
            for slot in lines.iter_mut().skip(begin.saturating_sub(1)) {
                *slot = true;
            }
        }
    }
    if file_level_panic {
        deny_panic.iter_mut().for_each(|slot| *slot = true);
    }

    // `// ordering: <why>` justification notes live outside the marker
    // grammar: they annotate one atomic-ordering use for the concurrency
    // rule and feed the waiver inventory.
    const ORDERING_PREFIX: &str = "// ordering:";
    let mut from = 0usize;
    while let Some(pos) = find_from(&file.raw, ORDERING_PREFIX, from) {
        from = pos + ORDERING_PREFIX.len();
        if !file.is_comment_range(pos, pos + ORDERING_PREFIX.len()) {
            continue; // inside a string literal
        }
        // The `//` must *start* the comment: if the preceding byte is
        // already comment text, this is doc prose quoting the grammar
        // (`/// ordering:` or a backticked example), not a note.
        if pos > 0 && file.is_comment_range(pos - 1, pos) {
            continue;
        }
        let line = file.line_of(pos);
        let text = file.raw_line(line);
        let Some(col) = text.find(ORDERING_PREFIX) else { continue };
        let why = text[col + ORDERING_PREFIX.len()..].trim();
        if why.is_empty() {
            diags.push(Diagnostic {
                rule: "marker",
                path: file.rel_path.clone(),
                line,
                message: "ordering note requires a justification: `// ordering: <why>`".to_string(),
                snippet: text.trim().to_string(),
            });
            continue;
        }
        let target = resolve_target(file, line);
        ordering_notes.push((target, why.to_string()));
        waivers.push(WaiverRecord {
            rule: "concurrency",
            line: target,
            justification: why.to_string(),
        });
    }

    FileMarkers {
        deny_panic,
        deny_nondet,
        deny_nondet_lines,
        allows,
        audited_atomics,
        deny_alloc,
        deny_alloc_lines,
        deny_errors,
        deny_errors_lines,
        ordering_notes,
        waivers,
        diags,
    }
}

/// An allow marker trailing code waives its own line; a marker on a line
/// of its own waives the next line with real (masked) code on it.
fn resolve_target(file: &SourceFile, marker_line: usize) -> usize {
    if !file.masked_line(marker_line).trim().is_empty() {
        return marker_line;
    }
    let mut l = marker_line + 1;
    while l <= file.line_count() {
        if !file.masked_line(l).trim().is_empty() {
            return l;
        }
        l += 1;
    }
    marker_line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn markers(src: &str) -> FileMarkers {
        analyze(&SourceFile::parse(Path::new("t.rs"), src.to_string()))
    }

    #[test]
    fn file_level_deny_panic_covers_every_line() {
        let m = markers("// telco-lint: deny-panic\nfn a() {}\nfn b() {}\n");
        assert!(m.panic_scope(1) && m.panic_scope(3));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn region_covers_between_begin_and_end() {
        let src = "fn a() {}\n// telco-lint: deny-panic(begin)\nfn b() {}\n// telco-lint: deny-panic(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.panic_scope(1));
        assert!(m.panic_scope(3));
        assert!(!m.panic_scope(5));
    }

    #[test]
    fn unmatched_begin_reported_and_runs_to_eof() {
        let m = markers("// telco-lint: deny-panic(begin)\nfn b() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.panic_scope(2));
    }

    #[test]
    fn trailing_allow_waives_own_line_standalone_waives_next() {
        let src = "let a = x[i]; // telco-lint: allow(index): bounds checked above\n// telco-lint: allow(panic): unreachable by construction\nlet b = y.unwrap();\n";
        let m = markers(src);
        assert!(m.allowed(1, AllowWhat::Index));
        assert!(m.allowed(3, AllowWhat::Panic));
        assert!(!m.allowed(2, AllowWhat::Panic));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let m = markers("// telco-lint: allow(panic)\nlet b = y.unwrap();\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("justification"));
        assert!(!m.allowed(2, AllowWhat::Panic));
    }

    #[test]
    fn unknown_directive_is_a_finding() {
        let m = markers("// telco-lint: deny-everything\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("unknown directive"));
    }

    #[test]
    fn marker_text_inside_string_is_ignored() {
        let m = markers("let s = \"// telco-lint: deny-panic\";\nlet b = y.unwrap();\n");
        assert!(!m.has_panic_scope());
        assert!(m.diags.is_empty());
    }

    #[test]
    fn nondeterminism_marker_sets_flag() {
        assert!(markers("// telco-lint: deny-nondeterminism\n").deny_nondet);
    }

    #[test]
    fn nondet_region_covers_between_begin_and_end() {
        let src = "fn a() {}\n// telco-lint: deny-nondeterminism(begin)\nfn b() {}\n// telco-lint: deny-nondeterminism(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.deny_nondet);
        assert!(m.has_nondet_region());
        assert!(!m.nondet_scope(1));
        assert!(m.nondet_scope(3));
        assert!(!m.nondet_scope(5));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn file_level_nondet_puts_every_line_in_scope() {
        let m = markers("// telco-lint: deny-nondeterminism\nfn a() {}\n");
        assert!(m.nondet_scope(2));
        assert!(!m.has_nondet_region());
    }

    #[test]
    fn unmatched_nondet_begin_reported_and_runs_to_eof() {
        let m = markers("// telco-lint: deny-nondeterminism(begin)\nfn b() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("deny-nondeterminism(begin)"));
        assert!(m.nondet_scope(2));
    }

    #[test]
    fn unmatched_nondet_end_is_a_finding() {
        let m = markers("fn a() {}\n// telco-lint: deny-nondeterminism(end)\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("without a matching begin"));
        assert!(!m.has_nondet_region());
    }

    #[test]
    fn audited_atomics_region_requires_reasoning_and_records_waiver() {
        let src = "fn a() {}\n// telco-lint: audited-atomics(begin): single-location RMW is totally ordered\nfn b() {}\n// telco-lint: audited-atomics(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.atomics_audited(1));
        assert!(m.atomics_audited(3));
        assert!(!m.atomics_audited(5));
        assert!(m.diags.is_empty());
        assert_eq!(m.waivers.len(), 1);
        assert_eq!(m.waivers[0].rule, "concurrency");
        assert_eq!(m.waivers[0].line, 2);
        assert!(m.waivers[0].justification.contains("totally ordered"));
    }

    #[test]
    fn audited_atomics_begin_without_reasoning_is_a_finding() {
        let m = markers("// telco-lint: audited-atomics(begin)\nfn a() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("reasoning"));
        assert!(!m.atomics_audited(2));
        assert!(m.waivers.is_empty());
    }

    #[test]
    fn alloc_and_error_scopes_file_and_region_forms() {
        let m = markers("// telco-lint: deny-alloc\nfn a() {}\n");
        assert!(m.alloc_scope(2));
        let src = "fn a() {}\n// telco-lint: deny-swallowed-errors(begin)\nfn b() {}\n// telco-lint: deny-swallowed-errors(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.errors_scope(1));
        assert!(m.errors_scope(3));
        assert!(!m.errors_scope(5));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn unmatched_alloc_begin_reported_and_runs_to_eof() {
        let m = markers("// telco-lint: deny-alloc(begin)\nfn b() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("deny-alloc(begin)"));
        assert!(m.alloc_scope(2));
    }

    #[test]
    fn ordering_note_trailing_and_standalone() {
        let src = "end.store(1, Ordering::Release); // ordering: publishes the frame count\n// ordering: pairs with the Release store above\nlet n = end.load(Ordering::Acquire);\n";
        let m = markers(src);
        assert_eq!(m.ordering_note(1), Some("publishes the frame count"));
        assert_eq!(m.ordering_note(3), Some("pairs with the Release store above"));
        assert!(m.diags.is_empty());
        assert_eq!(m.waivers.len(), 2);
        assert!(m.waivers.iter().all(|w| w.rule == "concurrency"));
    }

    #[test]
    fn ordering_note_without_why_is_a_finding() {
        let m = markers("x.load(Ordering::Relaxed); // ordering:\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("justification"));
        assert!(m.ordering_note(1).is_none());
    }

    #[test]
    fn ordering_text_in_string_or_doc_comment_is_ignored() {
        let m = markers("let s = \"// ordering: fake\";\n/// ordering: doc text\nfn a() {}\n");
        assert!(m.ordering_notes.is_empty());
        assert!(m.diags.is_empty());
    }

    #[test]
    fn ordering_grammar_quoted_mid_comment_is_not_a_note() {
        // Doc prose that *quotes* the note grammar must not register a
        // waiver: the match does not start its comment.
        let src = "//! Uses may carry a `// ordering: <why>` note instead.\nfn a() {}\n";
        let m = markers(src);
        assert!(m.ordering_notes.is_empty());
        assert!(m.waivers.is_empty());
        assert!(m.diags.is_empty());
    }

    #[test]
    fn new_allow_targets_parse_and_feed_inventory() {
        let src = "let v = x.clone(); // telco-lint: allow(alloc): cold path, once per shard\nlet _ = tx.send(m); // telco-lint: allow(error): receiver gone means shutdown\nq.load(Ordering::SeqCst); // telco-lint: allow(concurrency): audited in DESIGN \u{a7}12\n";
        let m = markers(src);
        assert!(m.allowed(1, AllowWhat::Alloc));
        assert!(m.allowed(2, AllowWhat::ErrorDiscipline));
        assert!(m.allowed(3, AllowWhat::Concurrency));
        assert!(m.diags.is_empty());
        let rules: Vec<&str> = m.waivers.iter().map(|w| w.rule).collect();
        assert_eq!(rules, ["alloc-discipline", "error-discipline", "concurrency"]);
        assert!(m.waivers.iter().all(|w| !w.justification.is_empty()));
    }
}
