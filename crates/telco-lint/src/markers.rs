//! Marker-comment grammar: how source files opt into (or locally waive)
//! lint rules.
//!
//! Markers are ordinary `//` comments whose text starts with the tool
//! name followed by a colon and a directive. The directives:
//!
//! - `deny-panic` — opt the whole file into the panic-freedom rule;
//! - `deny-panic(begin)` / `deny-panic(end)` — opt a region in (used for
//!   files where only one side, e.g. a reader path, must be total);
//! - `deny-nondeterminism` — opt the file into the determinism rule;
//!   placed in a crate's `lib.rs` it covers the whole crate's `src/`;
//! - `deny-nondeterminism(begin)` / `deny-nondeterminism(end)` — opt a
//!   region in (used for accumulator-merge code whose surrounding file
//!   is otherwise free to iterate hash maps);
//! - `allow(<what>): <justification>` — waive one rule occurrence, where
//!   `<what>` is one of `panic`, `index`, `nondet`, `print`, `unsafe`.
//!   The justification is **required**: an allow without a reason is
//!   itself a lint finding. A trailing marker waives its own line; a
//!   marker on its own line waives the next code line.
//!
//! Markers must appear in comments. The scanner's byte classification
//! distinguishes a real marker comment from a string literal that merely
//! contains the marker text, so the linter can lint its own fixtures.

use crate::report::Diagnostic;
use crate::scan::{find_from, SourceFile};

/// Prefix that introduces every marker comment.
pub const MARKER_PREFIX: &str = "telco-lint:";

/// What an `allow(...)` marker waives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowWhat {
    /// A panic-freedom finding other than indexing.
    Panic,
    /// A slice/array indexing finding.
    Index,
    /// A determinism finding.
    Nondet,
    /// A no-print finding.
    Print,
    /// Presence of `unsafe` (or absence of the crate-root forbid).
    Unsafe,
}

impl AllowWhat {
    fn parse(s: &str) -> Option<AllowWhat> {
        match s {
            "panic" => Some(AllowWhat::Panic),
            "index" => Some(AllowWhat::Index),
            "nondet" => Some(AllowWhat::Nondet),
            "print" => Some(AllowWhat::Print),
            "unsafe" => Some(AllowWhat::Unsafe),
            _ => None,
        }
    }
}

/// The marker state of one file, resolved to per-line rule scopes.
pub struct FileMarkers {
    /// `deny_panic[l]` is true iff 1-based line `l+1` is in panic scope.
    deny_panic: Vec<bool>,
    /// File carries a file-level `deny-nondeterminism` marker.
    pub deny_nondet: bool,
    /// `deny_nondet_lines[l]` is true iff 1-based line `l+1` sits inside
    /// a `deny-nondeterminism(begin)`/`(end)` region.
    deny_nondet_lines: Vec<bool>,
    /// Resolved `(line, what)` waivers.
    allows: Vec<(usize, AllowWhat)>,
    /// Grammar errors found while parsing markers.
    pub diags: Vec<Diagnostic>,
}

impl FileMarkers {
    /// True iff 1-based `line` is inside a panic-freedom scope.
    pub fn panic_scope(&self, line: usize) -> bool {
        self.deny_panic.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// Does any line opt into panic-freedom?
    pub fn has_panic_scope(&self) -> bool {
        self.deny_panic.iter().any(|&b| b)
    }

    /// True iff 1-based `line` is inside a determinism scope — either the
    /// whole file opted in, or the line sits in a
    /// `deny-nondeterminism(begin)`/`(end)` region.
    pub fn nondet_scope(&self, line: usize) -> bool {
        self.deny_nondet
            || self.deny_nondet_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// Does any line opt into the determinism rule via a region marker?
    pub fn has_nondet_region(&self) -> bool {
        self.deny_nondet_lines.iter().any(|&b| b)
    }

    /// True iff `line` carries a waiver for `what`.
    pub fn allowed(&self, line: usize, what: AllowWhat) -> bool {
        self.allows.iter().any(|&(l, w)| l == line && w == what)
    }

    /// True iff the file waives `what` anywhere (file-level waivers such
    /// as `allow(unsafe)` on a test binary).
    pub fn allowed_anywhere(&self, what: AllowWhat) -> bool {
        self.allows.iter().any(|&(_, w)| w == what)
    }
}

/// Parse all markers in `file` and resolve their scopes.
pub fn analyze(file: &SourceFile) -> FileMarkers {
    let n_lines = file.line_count();
    let mut deny_panic = vec![false; n_lines];
    let mut deny_nondet = false;
    let mut deny_nondet_lines = vec![false; n_lines];
    let mut allows: Vec<(usize, AllowWhat)> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut regions: Vec<usize> = Vec::new(); // open `deny-panic(begin)` lines
    let mut nondet_regions: Vec<usize> = Vec::new(); // open `deny-nondeterminism(begin)` lines
    let mut file_level_panic = false;

    let mut from = 0usize;
    while let Some(pos) = find_from(&file.raw, MARKER_PREFIX, from) {
        from = pos + MARKER_PREFIX.len();
        if !file.is_comment_range(pos, pos + MARKER_PREFIX.len()) {
            continue; // mention inside a string literal or plain code
        }
        let line = file.line_of(pos);
        let text = file.raw_line(line);
        let Some(col) = text.find(MARKER_PREFIX) else { continue };
        let directive = text[col + MARKER_PREFIX.len()..].trim();

        let mut bad = |message: String| {
            diags.push(Diagnostic {
                rule: "marker",
                path: file.rel_path.clone(),
                line,
                message,
                snippet: text.trim().to_string(),
            });
        };

        match directive {
            "deny-panic" => file_level_panic = true,
            "deny-panic(begin)" => regions.push(line),
            "deny-panic(end)" => match regions.pop() {
                Some(begin) => {
                    for slot in deny_panic.iter_mut().take(line).skip(begin.saturating_sub(1)) {
                        *slot = true;
                    }
                }
                None => bad("deny-panic(end) without a matching begin".to_string()),
            },
            "deny-nondeterminism" => deny_nondet = true,
            "deny-nondeterminism(begin)" => nondet_regions.push(line),
            "deny-nondeterminism(end)" => match nondet_regions.pop() {
                Some(begin) => {
                    for slot in
                        deny_nondet_lines.iter_mut().take(line).skip(begin.saturating_sub(1))
                    {
                        *slot = true;
                    }
                }
                None => bad("deny-nondeterminism(end) without a matching begin".to_string()),
            },
            d if d.starts_with("allow(") => {
                let Some(close) = d.find(')') else {
                    bad("malformed allow marker: missing `)`".to_string());
                    continue;
                };
                let what_str = &d["allow(".len()..close];
                let Some(what) = AllowWhat::parse(what_str) else {
                    bad(format!(
                        "unknown allow target `{what_str}` (expected panic/index/nondet/print/unsafe)"
                    ));
                    continue;
                };
                let rest = d[close + 1..].trim();
                let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
                if justification.is_empty() {
                    bad(format!(
                        "allow({what_str}) requires a justification: `allow({what_str}): <why>`"
                    ));
                    continue;
                }
                allows.push((resolve_target(file, line), what));
            }
            other => bad(format!("unknown directive `{other}`")),
        }
    }

    for begin in regions {
        diags.push(Diagnostic {
            rule: "marker",
            path: file.rel_path.clone(),
            line: begin,
            message: "deny-panic(begin) without a matching end (scope runs to EOF)".to_string(),
            snippet: file.raw_line(begin).trim().to_string(),
        });
        for slot in deny_panic.iter_mut().skip(begin.saturating_sub(1)) {
            *slot = true;
        }
    }
    for begin in nondet_regions {
        diags.push(Diagnostic {
            rule: "marker",
            path: file.rel_path.clone(),
            line: begin,
            message: "deny-nondeterminism(begin) without a matching end (scope runs to EOF)"
                .to_string(),
            snippet: file.raw_line(begin).trim().to_string(),
        });
        for slot in deny_nondet_lines.iter_mut().skip(begin.saturating_sub(1)) {
            *slot = true;
        }
    }
    if file_level_panic {
        deny_panic.iter_mut().for_each(|slot| *slot = true);
    }

    FileMarkers { deny_panic, deny_nondet, deny_nondet_lines, allows, diags }
}

/// An allow marker trailing code waives its own line; a marker on a line
/// of its own waives the next line with real (masked) code on it.
fn resolve_target(file: &SourceFile, marker_line: usize) -> usize {
    if !file.masked_line(marker_line).trim().is_empty() {
        return marker_line;
    }
    let mut l = marker_line + 1;
    while l <= file.line_count() {
        if !file.masked_line(l).trim().is_empty() {
            return l;
        }
        l += 1;
    }
    marker_line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn markers(src: &str) -> FileMarkers {
        analyze(&SourceFile::parse(Path::new("t.rs"), src.to_string()))
    }

    #[test]
    fn file_level_deny_panic_covers_every_line() {
        let m = markers("// telco-lint: deny-panic\nfn a() {}\nfn b() {}\n");
        assert!(m.panic_scope(1) && m.panic_scope(3));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn region_covers_between_begin_and_end() {
        let src = "fn a() {}\n// telco-lint: deny-panic(begin)\nfn b() {}\n// telco-lint: deny-panic(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.panic_scope(1));
        assert!(m.panic_scope(3));
        assert!(!m.panic_scope(5));
    }

    #[test]
    fn unmatched_begin_reported_and_runs_to_eof() {
        let m = markers("// telco-lint: deny-panic(begin)\nfn b() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.panic_scope(2));
    }

    #[test]
    fn trailing_allow_waives_own_line_standalone_waives_next() {
        let src = "let a = x[i]; // telco-lint: allow(index): bounds checked above\n// telco-lint: allow(panic): unreachable by construction\nlet b = y.unwrap();\n";
        let m = markers(src);
        assert!(m.allowed(1, AllowWhat::Index));
        assert!(m.allowed(3, AllowWhat::Panic));
        assert!(!m.allowed(2, AllowWhat::Panic));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let m = markers("// telco-lint: allow(panic)\nlet b = y.unwrap();\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("justification"));
        assert!(!m.allowed(2, AllowWhat::Panic));
    }

    #[test]
    fn unknown_directive_is_a_finding() {
        let m = markers("// telco-lint: deny-everything\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("unknown directive"));
    }

    #[test]
    fn marker_text_inside_string_is_ignored() {
        let m = markers("let s = \"// telco-lint: deny-panic\";\nlet b = y.unwrap();\n");
        assert!(!m.has_panic_scope());
        assert!(m.diags.is_empty());
    }

    #[test]
    fn nondeterminism_marker_sets_flag() {
        assert!(markers("// telco-lint: deny-nondeterminism\n").deny_nondet);
    }

    #[test]
    fn nondet_region_covers_between_begin_and_end() {
        let src = "fn a() {}\n// telco-lint: deny-nondeterminism(begin)\nfn b() {}\n// telco-lint: deny-nondeterminism(end)\nfn c() {}\n";
        let m = markers(src);
        assert!(!m.deny_nondet);
        assert!(m.has_nondet_region());
        assert!(!m.nondet_scope(1));
        assert!(m.nondet_scope(3));
        assert!(!m.nondet_scope(5));
        assert!(m.diags.is_empty());
    }

    #[test]
    fn file_level_nondet_puts_every_line_in_scope() {
        let m = markers("// telco-lint: deny-nondeterminism\nfn a() {}\n");
        assert!(m.nondet_scope(2));
        assert!(!m.has_nondet_region());
    }

    #[test]
    fn unmatched_nondet_begin_reported_and_runs_to_eof() {
        let m = markers("// telco-lint: deny-nondeterminism(begin)\nfn b() {}\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("deny-nondeterminism(begin)"));
        assert!(m.nondet_scope(2));
    }

    #[test]
    fn unmatched_nondet_end_is_a_finding() {
        let m = markers("fn a() {}\n// telco-lint: deny-nondeterminism(end)\n");
        assert_eq!(m.diags.len(), 1);
        assert!(m.diags[0].message.contains("without a matching begin"));
        assert!(!m.has_nondet_region());
    }
}
