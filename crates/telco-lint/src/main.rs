//! `telco-lint` CLI: lint the workspace, print file:line diagnostics,
//! optionally dump a machine-readable JSON report.
//!
//! ```text
//! cargo xtask lint                 # lint the workspace, exit 1 on findings
//! cargo xtask lint --json out.json # also write the JSON report
//! cargo xtask lint --root <dir>    # lint another tree (fixture debugging)
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use telco_lint::{report, run_lint_full, LintConfig};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The alias invokes `telco-lint lint`; accept and ignore the
            // subcommand so future subcommands have a namespace.
            "lint" => {}
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: telco-lint [lint] [--root DIR] [--json FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("telco-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("telco-lint: no workspace root found above the current directory");
                return ExitCode::from(2);
            }
        },
    };

    let lint = match run_lint_full(&LintConfig::workspace(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("telco-lint: io error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = lint.findings;

    print!("{}", report::render_text(&diags));
    if !lint.waivers.is_empty() {
        println!("telco-lint: {} waiver(s) recorded (see --json inventory)", lint.waivers.len());
    }
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report::render_json(&diags, &lint.waivers)) {
            eprintln!("telco-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]` section.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
