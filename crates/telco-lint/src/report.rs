//! Diagnostics and the two report renderers (human text, machine JSON).

use std::fmt;

/// One lint finding, anchored at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`panic-free`, `determinism`, `catalog`,
    /// `unsafe-forbid`, `no-print`, `marker`).
    pub rule: &'static str,
    /// Path relative to the lint root, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the violated invariant.
    pub message: String,
    /// The offending source line, trimmed (may be empty for file-level
    /// findings such as a missing crate attribute).
    pub snippet: String,
}

/// One recorded suppression: a rule occurrence someone deliberately
/// waived (`allow(...)`), justified (`// ordering:`), or audited
/// (`audited-atomics` region), with the written reason. The `--json`
/// report publishes the full inventory so reviewers and CI can see
/// every hole in the static guarantees in one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule the suppression applies to.
    pub rule: &'static str,
    /// Path relative to the lint root, forward slashes.
    pub path: String,
    /// 1-based line the suppression is anchored at.
    pub line: usize,
    /// The human-written reason (grammar rejects empty ones).
    pub justification: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n    {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Order diagnostics deterministically: by path, then line, then rule,
/// then message (ties possible when one line breaks several rules).
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
}

/// Render the human-readable report.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str("telco-lint: clean\n");
    } else {
        out.push_str(&format!("telco-lint: {} finding(s)\n", diags.len()));
    }
    out
}

/// Order waivers deterministically: by path, then line, then rule.
pub fn sort_waivers(waivers: &mut [Waiver]) {
    waivers.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.justification).cmp(&(
            &b.path,
            b.line,
            b.rule,
            &b.justification,
        ))
    });
}

/// Render the machine-readable JSON report: an object with a `findings`
/// array (rule/path/line/message/snippet per finding) and a `waivers`
/// inventory (rule/path/line/justification per suppression).
///
/// Serialised by hand — the report shape is a handful of scalar fields,
/// and keeping the linter dependency-free means a broken vendored serde
/// can never take the CI gate down with it.
pub fn render_json(diags: &[Diagnostic], waivers: &[Waiver]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            json_string(&d.message),
            json_string(&d.snippet),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {},\n  \"waivers\": [", diags.len()));
    for (i, w) in waivers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}}}",
            json_string(w.rule),
            json_string(&w.path),
            w.line,
            json_string(&w.justification),
        ));
    }
    if !waivers.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"waiver_count\": {}\n}}\n", waivers.len()));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule: "panic-free",
            path: path.to_string(),
            line,
            message: "m \"q\"".to_string(),
            snippet: "s".to_string(),
        }
    }

    #[test]
    fn sort_is_path_then_line() {
        let mut d = vec![diag("b.rs", 1), diag("a.rs", 9), diag("a.rs", 2)];
        sort(&mut d);
        assert_eq!(
            d.iter().map(|d| (d.path.as_str(), d.line)).collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json(&[diag("a.rs", 1)], &[]);
        assert!(json.contains("\"message\": \"m \\\"q\\\"\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"waiver_count\": 0"));
    }

    #[test]
    fn empty_report_is_clean() {
        assert!(render_text(&[]).contains("clean"));
        assert!(render_json(&[], &[]).contains("\"count\": 0"));
    }

    #[test]
    fn waiver_inventory_rendered() {
        let w = Waiver {
            rule: "concurrency",
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            justification: "single-location RMW".to_string(),
        };
        let json = render_json(&[], &[w]);
        assert!(json.contains("\"waivers\": ["));
        assert!(json.contains("\"justification\": \"single-location RMW\""));
        assert!(json.contains("\"waiver_count\": 1"));
    }

    #[test]
    fn waiver_sort_is_path_then_line() {
        let w = |p: &str, l: usize| Waiver {
            rule: "concurrency",
            path: p.to_string(),
            line: l,
            justification: "j".to_string(),
        };
        let mut ws = vec![w("b.rs", 1), w("a.rs", 9), w("a.rs", 2)];
        sort_waivers(&mut ws);
        assert_eq!(
            ws.iter().map(|w| (w.path.as_str(), w.line)).collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }
}
