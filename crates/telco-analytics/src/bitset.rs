//! A dense id set for "distinct sectors seen" accumulators.
//!
//! Sector ids are dense (`0..n_sectors`), so a word-packed bitmap beats a
//! hash set in the sweep hot loops: insertion is one shift/or with no
//! hashing or probing, cardinality is a popcount fold, and merge is a
//! word-wise OR. Words grow on demand, so an empty set costs nothing and
//! a set only pays for the highest id it ever saw.

/// A grow-on-demand bitmap over `u32` ids with set semantics.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdSet {
    words: Vec<u64>,
}

impl IdSet {
    /// Mark `id` as present.
    #[inline]
    pub(crate) fn insert(&mut self, id: u32) {
        let word = (id / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if let Some(w) = self.words.get_mut(word) {
            *w |= 1u64 << (id % 64);
        }
    }

    /// Number of distinct ids inserted.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set union: absorb every id present in `other`.
    pub(crate) fn union(&mut self, other: &IdSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (mine, theirs) in self.words.iter_mut().zip(&other.words) {
            *mine |= theirs;
        }
    }

    /// Encode into a snapshot. Trailing zero words are trimmed so two
    /// sets holding the same ids encode identically whatever their
    /// capacity history.
    pub(crate) fn snapshot(&self, w: &mut telco_trace::snap::SnapWriter) {
        let used = self.words.iter().rposition(|&word| word != 0).map_or(0, |i| i + 1);
        w.put_varint(used as u64);
        for &word in &self.words[..used] {
            w.put_u64(word);
        }
    }

    /// Decode from a snapshot, replacing the current contents.
    pub(crate) fn restore(
        &mut self,
        r: &mut telco_trace::snap::SnapReader,
    ) -> Result<(), telco_trace::snap::SnapError> {
        let n = r.get_len()?;
        self.words.clear();
        self.words.reserve(n);
        for _ in 0..n {
            self.words.push(r.get_u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_len_union() {
        let mut a = IdSet::default();
        assert_eq!(a.len(), 0);
        a.insert(0);
        a.insert(63);
        a.insert(64);
        a.insert(64); // idempotent
        assert_eq!(a.len(), 3);
        let mut b = IdSet::default();
        b.insert(64);
        b.insert(1000);
        a.union(&b);
        assert_eq!(a.len(), 4);
    }
}
