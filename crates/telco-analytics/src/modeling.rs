//! §6.3 + Appendix B — Modeling HOFs: the sector-day regression dataset,
//! ANOVA / Kruskal–Wallis tests, the OLS models of Tables 4, 5 and 7, the
//! quantile regressions of Tables 8 and 9, and the Fig. 16 ECDFs.
//!
//! The dependent variable follows the paper: the (log-transformed) daily
//! HOF rate of each source sector per handover type, with the covariates
//! of Table 3. Cells are filtered to a minimum number of handovers so the
//! rate is meaningful at simulation scale (the paper's sectors carry
//! thousands of daily HOs; ours carry tens).

use serde::{Deserialize, Serialize};

use telco_geo::postcode::AreaType;
use telco_signaling::messages::HoType;
use telco_stats::anova::{one_way_anova, tukey_hsd, AnovaResult, TukeyComparison};
use telco_stats::desc::Summary;
use telco_stats::ecdf::Ecdf;
use telco_stats::kruskal::{kruskal_wallis, KruskalResult};
use telco_stats::quantile_reg::{quantile_regression, QuantileFit, QuantileOptions};
use telco_stats::regression::{ols, Design, OlsFit, Value};

use crate::frame::{SectorDayFrame, SectorDayObs};
use crate::tables::{coef, num, TextTable};

/// Pseudo-count added before the log transform so zero rates stay finite:
/// `y = ln(HOF% + LOG_EPSILON)`.
pub const LOG_EPSILON: f64 = 0.01;

/// Configuration of the modeling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelingOptions {
    /// Minimum handovers per (sector, day, type) cell.
    pub min_cell_hos: u32,
    /// Outlier filter: maximum HOF rate (%) — Table 5 uses 50%.
    pub max_rate_pct: f64,
    /// Outlier filter: daily-HO bounds (paper: [50, 30k], scaled here).
    pub daily_bounds: (u32, u32),
}

impl Default for ModelingOptions {
    fn default() -> Self {
        ModelingOptions { min_cell_hos: 5, max_rate_pct: 50.0, daily_bounds: (1, 30_000) }
    }
}

/// The §6.3 statistical results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HofModels {
    /// Number of observations after the minimum-cell filter.
    pub n_observations: usize,
    /// Table 6 — summary of daily HOs per sector.
    pub summary_daily_hos: Summary,
    /// Table 6 — summary of the HOF rate (%).
    pub summary_hof_rate: Summary,
    /// Median HOF rate (%) per handover type (paper: 0.04 / 5.85 / 21.42).
    pub median_rate_by_type: [f64; 3],
    /// One-way ANOVA of log rate on the HO type.
    pub anova_ho_type: AnovaResult,
    /// Tukey HSD pairwise comparisons for the HO-type ANOVA.
    pub tukey_ho_type: Vec<TukeyComparison>,
    /// Kruskal–Wallis on the same grouping.
    pub kruskal_ho_type: KruskalResult,
    /// One-way ANOVA of log rate on the antenna vendor.
    pub anova_vendor: AnovaResult,
    /// One-way ANOVA of log rate on the area type.
    pub anova_area: AnovaResult,
    /// Table 4 — univariate model: log rate ~ HO type (no intercept
    /// means; reported as intercept + contrasts like the paper).
    pub univariate: OlsFit,
    /// Table 5 — all covariates, outlier-filtered.
    pub full_model: OlsFit,
    /// Table 7 — all covariates without →2G observations.
    pub no_2g_model: OlsFit,
    /// Table 8 — quantile regressions (τ = .2/.4/.6/.8), outlier-filtered.
    pub quantile_filtered: Vec<QuantileFit>,
    /// Table 9 — quantile regressions on all non-zero HOF-rate cells.
    pub quantile_all: Vec<QuantileFit>,
    /// Fig. 16 — ECDFs of the HOF rate per HO type: all cells.
    pub ecdf_all: Vec<Option<Ecdf>>,
    /// Fig. 16 — non-zero cells only.
    pub ecdf_nonzero: Vec<Option<Ecdf>>,
    /// Fig. 16 — outlier-filtered cells.
    pub ecdf_filtered: Vec<Option<Ecdf>>,
    /// Appendix B — Random-Forest baseline quality on the full design
    /// (the paper reports RMSE/MAE "comparable" to the linear models).
    pub forest_quality: telco_stats::forest::FitQuality,
}

fn log_rate(o: &SectorDayObs) -> f64 {
    (o.hof_rate_pct() + LOG_EPSILON).ln()
}

/// Mapping from handover types to categorical levels, skipping types with
/// no observations (tiny runs may never hand over to 2G; an all-zero dummy
/// column would make the design singular).
#[derive(Debug, Clone)]
struct HoTypeLevels {
    labels: Vec<&'static str>,
    level: [Option<usize>; 3],
}

impl HoTypeLevels {
    fn detect<'a>(obs: impl Iterator<Item = &'a SectorDayObs>) -> Self {
        let mut present = [false; 3];
        for o in obs {
            present[o.ho_type.index()] = true;
        }
        // Intra is always the baseline (level 0); it is present in any
        // non-degenerate trace.
        let mut labels = vec![HoType::Intra4g5g.label()];
        let mut level = [None; 3];
        level[HoType::Intra4g5g.index()] = Some(0);
        for t in [HoType::To3g, HoType::To2g] {
            if present[t.index()] {
                level[t.index()] = Some(labels.len());
                labels.push(t.label());
            }
        }
        HoTypeLevels { labels, level }
    }

    fn of(&self, t: HoType) -> usize {
        self.level[t.index()].expect("observation of an absent level")
    }

    fn n(&self) -> usize {
        self.labels.len()
    }
}

/// Build a design with all Table 3 covariates from observations.
///
/// Treatment coding with Urban / V1 / Capital / intra as baselines — the
/// paper's Table 5 lists both area levels against an implicit baseline,
/// which is rank-deficient with an intercept; we report the Rural contrast
/// (the difference between the paper's two area coefficients, 0.26 − 0.19).
fn full_design(obs: &[&SectorDayObs]) -> Design {
    let levels = HoTypeLevels::detect(obs.iter().copied());
    assert!(levels.n() >= 2, "need at least two HO types to model the effect");
    let mut d = Design::new()
        .intercept()
        .categorical("HO type", &levels.labels)
        .numeric("Number of daily HOs")
        .categorical("Area Type", &["Urban", "Rural"])
        .categorical("Antenna Vendor", &["V1", "V2", "V3", "V4"])
        .categorical("Sector Region", &["Capital", "North", "South", "West"])
        .numeric("District population");
    for o in obs {
        let area_level = usize::from(o.area == AreaType::Rural);
        d.add(
            &[
                Value::Cat(levels.of(o.ho_type)),
                Value::Num(o.daily_hos as f64),
                Value::Cat(area_level),
                Value::Cat(o.vendor.index()),
                Value::Cat(o.region.index()),
                Value::Num(o.district_population as f64),
            ],
            log_rate(o),
        );
    }
    d
}

impl HofModels {
    /// Run the whole §6.3 pipeline on a sector-day frame.
    pub fn compute(frame: &SectorDayFrame, opts: ModelingOptions) -> Self {
        // →2G cells are exempt from the cell floor: they are ~0.04% of the
        // dataset (paper, Appendix B) yet carry the headline →2G effect.
        let obs: Vec<&SectorDayObs> = frame
            .observations()
            .iter()
            .filter(|o| o.hos >= opts.min_cell_hos || o.ho_type == HoType::To2g)
            .collect();
        assert!(obs.len() > 50, "too few observations ({}) for modeling", obs.len());

        // --- Table 6 summaries. ---
        let daily: Vec<f64> = obs.iter().map(|o| o.daily_hos as f64).collect();
        let rates: Vec<f64> = obs.iter().map(|o| o.hof_rate_pct()).collect();
        let summary_daily_hos = Summary::of(&daily).expect("nonempty");
        let summary_hof_rate = Summary::of(&rates).expect("nonempty");

        // --- Median per type + grouped log rates. ---
        let mut by_type: [Vec<f64>; 3] = Default::default();
        let mut by_type_log: [Vec<f64>; 3] = Default::default();
        for o in &obs {
            by_type[o.ho_type.index()].push(o.hof_rate_pct());
            by_type_log[o.ho_type.index()].push(log_rate(o));
        }
        let median_rate_by_type = [
            median_of(&mut by_type[0].clone()),
            median_of(&mut by_type[1].clone()),
            median_of(&mut by_type[2].clone()),
        ];

        // Groups for the tests: drop empty groups (tiny runs may lack 2G).
        let log_groups: Vec<&[f64]> =
            by_type_log.iter().filter(|g| !g.is_empty()).map(|g| g.as_slice()).collect();
        let anova_ho_type = one_way_anova(&log_groups).expect("ANOVA groups valid");
        let tukey_ho_type = tukey_hsd(&log_groups, &anova_ho_type);
        let kruskal_ho_type = kruskal_wallis(&log_groups).expect("KW groups valid");

        // Vendor and area groupings.
        let mut by_vendor: [Vec<f64>; 4] = Default::default();
        let mut by_area: [Vec<f64>; 2] = Default::default();
        for o in &obs {
            by_vendor[o.vendor.index()].push(log_rate(o));
            by_area[o.area.index()].push(log_rate(o));
        }
        let vendor_groups: Vec<&[f64]> =
            by_vendor.iter().filter(|g| g.len() > 1).map(|g| g.as_slice()).collect();
        let anova_vendor = one_way_anova(&vendor_groups).expect("vendor groups valid");
        let area_groups: Vec<&[f64]> =
            by_area.iter().filter(|g| g.len() > 1).map(|g| g.as_slice()).collect();
        let anova_area = one_way_anova(&area_groups).expect("area groups valid");

        // --- Table 4: univariate log rate ~ HO type. ---
        let uni_levels = HoTypeLevels::detect(obs.iter().copied());
        let mut uni = Design::new().intercept().categorical("HO type", &uni_levels.labels);
        for o in &obs {
            uni.add(&[Value::Cat(uni_levels.of(o.ho_type))], log_rate(o));
        }
        let univariate = ols(&uni).expect("univariate model well-posed");

        // --- Table 5: full covariates with the outlier filter. ---
        let filtered: Vec<&SectorDayObs> = obs
            .iter()
            .copied()
            .filter(|o| {
                o.hof_rate_pct() < opts.max_rate_pct
                    && o.daily_hos >= opts.daily_bounds.0
                    && o.daily_hos <= opts.daily_bounds.1
            })
            .collect();
        let full_model = ols(&full_design(&filtered)).expect("full model well-posed");

        // --- Table 7: without →2G observations. ---
        let no2g: Vec<&SectorDayObs> =
            filtered.iter().copied().filter(|o| o.ho_type != HoType::To2g).collect();
        let no_2g_model = ols(&full_design(&no2g)).expect("no-2G model well-posed");

        // --- Tables 8 & 9: quantile regressions on HO type only. ---
        let taus = [0.2, 0.4, 0.6, 0.8];
        let quantile_filtered = quantiles_on(&filtered, &taus);
        let nonzero: Vec<&SectorDayObs> = obs.iter().copied().filter(|o| o.hofs > 0).collect();
        let quantile_all = quantiles_on(&nonzero, &taus);

        // --- Fig. 16 ECDFs. ---
        let ecdfs = |subset: &[&SectorDayObs]| -> Vec<Option<Ecdf>> {
            let mut groups: [Vec<f64>; 3] = Default::default();
            for o in subset {
                groups[o.ho_type.index()].push(o.hof_rate_pct());
            }
            groups.into_iter().map(|g| (!g.is_empty()).then(|| Ecdf::new(&g))).collect()
        };
        let ecdf_all = ecdfs(&obs);
        let ecdf_nonzero = ecdfs(&nonzero);
        let ecdf_filtered = ecdfs(&filtered);

        // --- Appendix B: Random-Forest baseline (subsampled for cost). ---
        let rf_sample: Vec<&SectorDayObs> = if filtered.len() > 20_000 {
            let stride = filtered.len() / 20_000 + 1;
            filtered.iter().step_by(stride).copied().collect()
        } else {
            filtered.clone()
        };
        let rf_design = full_design(&rf_sample);
        let forest = telco_stats::forest::RandomForest::fit(
            &rf_design,
            telco_stats::forest::ForestOptions { n_trees: 20, max_depth: 8, ..Default::default() },
        );
        let forest_quality = forest.evaluate(&rf_design);

        HofModels {
            n_observations: obs.len(),
            summary_daily_hos,
            summary_hof_rate,
            median_rate_by_type,
            anova_ho_type,
            tukey_ho_type,
            kruskal_ho_type,
            anova_vendor,
            anova_area,
            univariate,
            full_model,
            no_2g_model,
            quantile_filtered,
            quantile_all,
            ecdf_all,
            ecdf_nonzero,
            ecdf_filtered,
            forest_quality,
        }
    }

    /// Render Table 3 (the covariates).
    pub fn table3() -> TextTable {
        let mut t = TextTable::new("Table 3: Regression covariates", &["Feature", "Values"]);
        t.row_strs(&["Number of HOs per day", ">= 0"]);
        t.row_strs(&["RATs", "4G/5G-NSA, 3G, 2G"]);
        t.row_strs(&["District population", ">= 0"]);
        t.row_strs(&["Sector Region", "Capital, North, South, West"]);
        t.row_strs(&["Area Type", "Rural / Urban"]);
        t.row_strs(&["Antenna Vendor", "V1, V2, V3, V4"]);
        t
    }

    /// Render Table 4 (univariate coefficients).
    pub fn table4(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 4: Linear model for log(HOF rate) ~ HO type",
            &["Feature", "Coef.", "95% CI", "P-value"],
        );
        for c in &self.univariate.coefficients {
            t.row(&[
                rename_intercept(&c.name),
                coef(c.estimate),
                format!("{}, {}", coef(c.ci95.0), coef(c.ci95.1)),
                format!("{:.3e}", c.p_value),
            ]);
        }
        t
    }

    /// Render Table 5 / Table 7 style regression summaries.
    pub fn regression_table(fit: &OlsFit, title: &str) -> TextTable {
        let mut t = TextTable::new(title, &["Feature", "Coeff.", "Std Err", "t value", "Pr(>|t|)"]);
        for c in &fit.coefficients {
            t.row(&[
                c.name.clone(),
                coef(c.estimate),
                coef(c.std_err),
                num(c.t_value, 1),
                format!("{:.3e}", c.p_value),
            ]);
        }
        t.row(&[
            format!("N = {}", fit.n),
            format!("RMSE={:.3}", fit.rmse),
            format!("R²={:.4}", fit.r_squared),
            format!("AIC={:.0}", fit.aic),
            String::new(),
        ]);
        t
    }

    /// Render Table 6.
    pub fn table6(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 6: Summary stats of the sector-day dataset",
            &["Feature", "Min", "1st Qu", "Median", "Mean", "3rd Qu", "Max"],
        );
        for (name, s) in
            [("Daily HOs", &self.summary_daily_hos), ("HOF rate (%)", &self.summary_hof_rate)]
        {
            t.row(&[
                name.to_string(),
                num(s.min, 1),
                num(s.q1, 1),
                num(s.median, 3),
                num(s.mean, 3),
                num(s.q3, 3),
                num(s.max, 1),
            ]);
        }
        t
    }

    /// Render Tables 8/9 (quantile regressions).
    pub fn quantile_table(fits: &[QuantileFit], title: &str) -> TextTable {
        let mut t = TextTable::new(title, &["Feature; Quantile", "Coeff.", "Std Err", "t value"]);
        for fit in fits {
            for c in &fit.coefficients {
                t.row(&[
                    format!("{}; τ={}", rename_intercept(&c.name), fit.tau),
                    coef(c.estimate),
                    coef(c.std_err),
                    num(c.t_value, 1),
                ]);
            }
        }
        t
    }

    /// The →3G coefficient of the univariate model (paper: +5.12).
    pub fn to3g_coefficient(&self) -> Option<f64> {
        self.univariate.coefficient("HO type: 4G/5G-NSA->3G").map(|c| c.estimate)
    }

    /// The →2G coefficient of the univariate model (paper: +6.82).
    pub fn to2g_coefficient(&self) -> Option<f64> {
        self.univariate.coefficient("HO type: 4G/5G-NSA->2G").map(|c| c.estimate)
    }
}

fn rename_intercept(name: &str) -> String {
    if name == "(Intercept)" {
        "Intra 4G/5G-NSA (Intercept)".to_string()
    } else {
        name.to_string()
    }
}

fn median_of(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    xs[xs.len() / 2]
}

fn quantiles_on(obs: &[&SectorDayObs], taus: &[f64]) -> Vec<QuantileFit> {
    let levels = HoTypeLevels::detect(obs.iter().copied());
    if levels.n() < 2 {
        return Vec::new();
    }
    let mut d = Design::new().intercept().categorical("HO type", &levels.labels);
    for o in obs {
        d.add(&[Value::Cat(levels.of(o.ho_type))], log_rate(o));
    }
    taus.iter()
        .filter_map(|&tau| quantile_regression(&d, tau, QuantileOptions::default()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SectorDayFrame;
    use telco_sim::{run_study, SimConfig};

    fn models() -> &'static HofModels {
        static CELL: std::sync::OnceLock<HofModels> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 2_500;
            cfg.n_days = 4;
            cfg.threads = 0;
            let study = run_study(cfg);
            // Full-period frame: the scale-equivalent of the paper's
            // sector-day unit (see the module docs).
            let frame = SectorDayFrame::build_windowed(&study, study.config.n_days);
            HofModels::compute(&frame, ModelingOptions { min_cell_hos: 4, ..Default::default() })
        })
    }

    #[test]
    fn ho_type_effect_is_significant_and_large() {
        let m = models();
        assert!(m.anova_ho_type.p_value < 0.001, "ANOVA p = {}", m.anova_ho_type.p_value);
        assert!(
            m.anova_ho_type.eta_squared > 0.1,
            "η² = {} too small",
            m.anova_ho_type.eta_squared
        );
        assert!(m.kruskal_ho_type.p_value < 0.001);
    }

    #[test]
    fn vertical_coefficients_positive_and_ordered() {
        let m = models();
        let c3 = m.to3g_coefficient().expect("→3G level present");
        assert!(c3 > 1.0, "→3G coefficient {c3} must be strongly positive");
        if let Some(c2) = m.to2g_coefficient() {
            assert!(c2 > c3 * 0.6, "→2G coefficient {c2} should rival →3G {c3}");
        }
        // Intercept near the intra log-rate.
        let intercept = m.univariate.coefficient("(Intercept)").unwrap().estimate;
        assert!(intercept < 0.0, "intra baseline must be small: {intercept}");
    }

    #[test]
    fn mean_log_rates_ordered_by_type() {
        // At tiny scale both medians can legitimately be zero (cells carry
        // a handful of HOs); the ANOVA group means on the log scale are the
        // robust ordering check. Group 0 is intra, group 1 is →3G.
        let m = models();
        assert!(
            m.anova_ho_type.group_means[1] > m.anova_ho_type.group_means[0] + 0.5,
            "→3G mean log rate {} must exceed intra {}",
            m.anova_ho_type.group_means[1],
            m.anova_ho_type.group_means[0]
        );
    }

    #[test]
    fn full_model_keeps_ho_type_dominant() {
        let m = models();
        let c3 =
            m.full_model.coefficient("HO type: 4G/5G-NSA->3G").expect("covariate present").estimate;
        assert!(c3 > 1.0);
        // Every other coefficient is smaller in magnitude than the HO-type
        // effect (the paper's key robustness claim).
        for c in &m.full_model.coefficients {
            if !c.name.starts_with("HO type") && c.name != "(Intercept)" {
                assert!(
                    c.estimate.abs() < c3,
                    "{} = {} rivals the HO-type effect",
                    c.name,
                    c.estimate
                );
            }
        }
    }

    #[test]
    fn quantile_fits_cover_all_taus() {
        let m = models();
        assert_eq!(m.quantile_all.len(), 4);
        for fit in &m.quantile_all {
            let c3 = fit.coefficient("HO type: 4G/5G-NSA->3G");
            if let Some(c3) = c3 {
                assert!(c3.estimate > 0.5, "τ={} →3G {}", fit.tau, c3.estimate);
            }
        }
    }

    #[test]
    fn ecdf_panels_populated() {
        let m = models();
        assert!(m.ecdf_all[0].is_some());
        assert!(m.ecdf_all[1].is_some());
        // Non-zero panel has fewer observations than the full panel.
        let all_n = m.ecdf_all[0].as_ref().unwrap().len();
        let nz_n = m.ecdf_nonzero[0].as_ref().map_or(0, |e| e.len());
        assert!(nz_n <= all_n);
    }

    #[test]
    fn tables_render() {
        let m = models();
        assert!(HofModels::table3().to_string().contains("Antenna Vendor"));
        assert!(m.table4().to_string().contains("Coef."));
        assert!(m.table6().to_string().contains("Median"));
        assert!(HofModels::regression_table(&m.full_model, "Table 5")
            .to_string()
            .contains("t value"));
        assert!(HofModels::quantile_table(&m.quantile_all, "Table 9")
            .to_string()
            .contains("τ=0.2"));
    }
}
