//! Ping-pong handover analysis.
//!
//! A ping-pong (PP) handover occurs when a UE is handed from a source to a
//! target sector and back to the source within a short predefined window
//! (§7, footnote 10 — the operator-side studies of Féher et al. and Zidic
//! et al. that the paper positions itself against). PP HOs are wasted
//! signaling; operators tune hysteresis and time-to-trigger to suppress
//! them. This analysis measures their prevalence in a study trace.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use telco_devices::types::Manufacturer;
use telco_trace::record::HoRecord;

use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, pct, TextTable};

/// The conventional PP detection window, ms (Zidic et al. use 5 s).
pub const DEFAULT_WINDOW_MS: u64 = 5_000;

/// Ping-pong statistics over a study trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingPongAnalysis {
    /// Detection window used, ms.
    pub window_ms: u64,
    /// Total handovers inspected.
    pub total_hos: u64,
    /// Handovers that complete a ping-pong pair (the "return leg").
    pub pingpong_hos: u64,
    /// PP rate among all handovers.
    pub rate: f64,
    /// PP rate per manufacturer, sorted by manufacturer index (only
    /// manufacturers with ≥ 100 HOs).
    pub by_manufacturer: Vec<(Manufacturer, f64)>,
    /// Mean time between the out and return legs, ms.
    pub mean_return_ms: f64,
}

impl PingPongAnalysis {
    /// Render as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Ping-pong handovers (window {} ms)", self.window_ms),
            &["Metric", "Value"],
        );
        t.row_strs(&["Total HOs", &self.total_hos.to_string()]);
        t.row_strs(&["Ping-pong return legs", &self.pingpong_hos.to_string()]);
        t.row_strs(&["PP rate", &pct(self.rate, 2)]);
        t.row_strs(&["Mean return time (ms)", &num(self.mean_return_ms, 0)]);
        for (m, r) in &self.by_manufacturer {
            t.row(&[format!("PP rate: {m}"), pct(*r, 2)]);
        }
        t
    }
}

/// Streaming accumulator for [`PingPongAnalysis`]: for each UE, a handover
/// A→B followed within the window by B→A counts the return leg as a
/// ping-pong. Records arrive timestamp-sorted by construction; merging
/// partitions stitches pairs across the boundary by checking each UE's
/// first handover of the later span against its last of the earlier one.
#[derive(Debug)]
pub struct PingPongPass {
    window_ms: u64,
    /// First handover per UE in this span: (timestamp, source, target).
    first: HashMap<u32, (u64, u32, u32)>,
    /// Last handover per UE in this span.
    last: HashMap<u32, (u64, u32, u32)>,
    total: u64,
    pingpong: u64,
    return_sum: f64,
    /// Per manufacturer: (HOs, ping-pongs).
    per_mfr: HashMap<Manufacturer, (u64, u64)>,
}

impl PingPongPass {
    /// A pass with an explicit detection window.
    pub fn new(window_ms: u64) -> Self {
        PingPongPass {
            window_ms,
            first: HashMap::new(),
            last: HashMap::new(),
            total: 0,
            pingpong: 0,
            return_sum: 0.0,
            per_mfr: HashMap::new(),
        }
    }
}

impl Default for PingPongPass {
    fn default() -> Self {
        PingPongPass::new(DEFAULT_WINDOW_MS)
    }
}

impl AnalysisPass for PingPongPass {
    type Output = PingPongAnalysis;

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.total += 1;
        let mfr = e.manufacturer(r);
        let counts = self.per_mfr.entry(mfr).or_insert((0, 0));
        counts.0 += 1;
        if let Some(&(prev_ts, prev_src, prev_tgt)) = self.last.get(&r.ue.0) {
            let is_return = r.source_sector.0 == prev_tgt
                && r.target_sector.0 == prev_src
                && r.timestamp_ms.saturating_sub(prev_ts) <= self.window_ms;
            if is_return {
                self.pingpong += 1;
                counts.1 += 1;
                self.return_sum += (r.timestamp_ms - prev_ts) as f64;
            }
        }
        let leg = (r.timestamp_ms, r.source_sector.0, r.target_sector.0);
        self.first.entry(r.ue.0).or_insert(leg);
        self.last.insert(r.ue.0, leg);
    }

    fn merge(&mut self, other: Self, ctx: &SweepCtx) {
        self.total += other.total;
        self.pingpong += other.pingpong;
        self.return_sum += other.return_sum;
        for (mfr, (n, pp)) in other.per_mfr {
            let counts = self.per_mfr.entry(mfr).or_insert((0, 0));
            counts.0 += n;
            counts.1 += pp;
        }
        // Boundary stitch: `other`'s first leg per UE may return `self`'s
        // last one.
        for (&ue, &(ts, src, tgt)) in &other.first {
            if let Some(&(prev_ts, prev_src, prev_tgt)) = self.last.get(&ue) {
                let is_return = src == prev_tgt
                    && tgt == prev_src
                    && ts.saturating_sub(prev_ts) <= self.window_ms;
                if is_return {
                    self.pingpong += 1;
                    self.return_sum += (ts - prev_ts) as f64;
                    let mfr = ctx.world.ue(telco_devices::population::UeId(ue)).manufacturer;
                    self.per_mfr.entry(mfr).or_insert((0, 0)).1 += 1;
                }
            }
        }
        // `other` is later in trace order: its last legs supersede ours,
        // and its first legs only fill UEs we never saw.
        for (ue, leg) in other.last {
            self.last.insert(ue, leg);
        }
        for (ue, leg) in other.first {
            self.first.entry(ue).or_insert(leg);
        }
    }

    fn end(self, _ctx: &SweepCtx) -> PingPongAnalysis {
        let mut by_manufacturer: Vec<(Manufacturer, f64)> = self
            .per_mfr
            .into_iter()
            .filter(|(_, (n, _))| *n >= 100)
            .map(|(m, (n, pp))| (m, pp as f64 / n as f64))
            .collect();
        by_manufacturer.sort_by_key(|(m, _)| m.index());

        PingPongAnalysis {
            window_ms: self.window_ms,
            total_hos: self.total,
            pingpong_hos: self.pingpong,
            rate: self.pingpong as f64 / self.total.max(1) as f64,
            by_manufacturer,
            mean_return_ms: if self.pingpong > 0 {
                self.return_sum / self.pingpong as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig, StudyData};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 1_500;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    fn pingpong() -> PingPongAnalysis {
        Sweep::new(study()).run(PingPongPass::default).unwrap()
    }

    #[test]
    fn pingpongs_exist_and_are_minority() {
        let pp = pingpong();
        assert!(pp.total_hos > 1_000);
        assert!(pp.pingpong_hos > 0, "chatty manufacturers must produce ping-pongs");
        assert!(pp.rate < 0.35, "PP rate {} implausibly high", pp.rate);
        assert!(pp.mean_return_ms <= DEFAULT_WINDOW_MS as f64);
    }

    #[test]
    fn window_zero_finds_only_instant_returns() {
        let sweep = Sweep::new(study());
        let strict = sweep.run(|| PingPongPass::new(1)).unwrap();
        let loose = sweep.run(|| PingPongPass::new(60_000)).unwrap();
        assert!(strict.pingpong_hos <= loose.pingpong_hos);
    }

    #[test]
    fn parallel_stitch_matches_sequential() {
        // Same trace swept with 1 thread and with day partitioning: the
        // boundary stitch must recover every cross-midnight ping-pong.
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 1_000;
        cfg.threads = 1;
        let seq = run_study(cfg.clone());
        cfg.threads = 4;
        let par = run_study(cfg);
        let a = Sweep::new(&seq).run(PingPongPass::default).unwrap();
        let b = Sweep::new(&par).run(PingPongPass::default).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chatty_manufacturers_pingpong_more() {
        let pp = pingpong();
        let get =
            |m: Manufacturer| pp.by_manufacturer.iter().find(|(x, _)| *x == m).map(|(_, r)| *r);
        if let (Some(simcom), Some(apple)) = (get(Manufacturer::Simcom), get(Manufacturer::Apple)) {
            assert!(simcom > apple, "Simcom PP rate {simcom} should exceed Apple's {apple}");
        }
    }

    #[test]
    fn table_renders() {
        assert!(pingpong().table().to_string().contains("PP rate"));
    }
}
