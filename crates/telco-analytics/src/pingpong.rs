//! Ping-pong handover analysis.
//!
//! A ping-pong (PP) handover occurs when a UE is handed from a source to a
//! target sector and back to the source within a short predefined window
//! (§7, footnote 10 — the operator-side studies of Féher et al. and Zidic
//! et al. that the paper positions itself against). PP HOs are wasted
//! signaling; operators tune hysteresis and time-to-trigger to suppress
//! them. This analysis measures their prevalence in a study trace.

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_devices::types::Manufacturer;
use telco_trace::columnar::ColumnBatch;
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, pct, TextTable};

/// The conventional PP detection window, ms (Zidic et al. use 5 s).
pub const DEFAULT_WINDOW_MS: u64 = 5_000;

/// Ping-pong statistics over a study trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingPongAnalysis {
    /// Detection window used, ms.
    pub window_ms: u64,
    /// Total handovers inspected.
    pub total_hos: u64,
    /// Handovers that complete a ping-pong pair (the "return leg").
    pub pingpong_hos: u64,
    /// PP rate among all handovers.
    pub rate: f64,
    /// PP rate per manufacturer, sorted by manufacturer index (only
    /// manufacturers with ≥ 100 HOs).
    pub by_manufacturer: Vec<(Manufacturer, f64)>,
    /// Mean time between the out and return legs, ms.
    pub mean_return_ms: f64,
}

impl PingPongAnalysis {
    /// Render as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Ping-pong handovers (window {} ms)", self.window_ms),
            &["Metric", "Value"],
        );
        t.row_strs(&["Total HOs", &self.total_hos.to_string()]);
        t.row_strs(&["Ping-pong return legs", &self.pingpong_hos.to_string()]);
        t.row_strs(&["PP rate", &pct(self.rate, 2)]);
        t.row_strs(&["Mean return time (ms)", &num(self.mean_return_ms, 0)]);
        for (m, r) in &self.by_manufacturer {
            t.row(&[format!("PP rate: {m}"), pct(*r, 2)]);
        }
        t
    }
}

/// One handover leg: (timestamp, source sector, target sector).
type Leg = (u64, u32, u32);

/// The per-UE edge slot for `ue`, growing the table if the trace names a
/// UE the world didn't (the fold then still stitches it correctly).
#[inline]
fn leg_slot(legs: &mut Vec<Option<Leg>>, ue: usize) -> &mut Option<Leg> {
    if ue >= legs.len() {
        legs.resize(ue + 1, None);
    }
    &mut legs[ue]
}

/// Encode a per-UE edge table. Trailing absent slots are trimmed so the
/// bytes depend only on the legs actually observed, not on how far the
/// table happened to grow.
fn snapshot_legs(legs: &[Option<Leg>], w: &mut SnapWriter) {
    let used = legs.iter().rposition(Option::is_some).map_or(0, |i| i + 1);
    w.put_varint(used as u64);
    for leg in &legs[..used] {
        match leg {
            None => w.put_bool(false),
            Some((ts, src, tgt)) => {
                w.put_bool(true);
                w.put_varint(*ts);
                w.put_u32(*src);
                w.put_u32(*tgt);
            }
        }
    }
}

fn restore_legs(r: &mut SnapReader) -> Result<Vec<Option<Leg>>, SnapError> {
    let n = r.get_len()?;
    let mut legs = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        legs.push(if r.get_bool()? {
            Some((r.get_varint()?, r.get_u32()?, r.get_u32()?))
        } else {
            None
        });
    }
    Ok(legs)
}

/// Streaming accumulator for [`PingPongAnalysis`]: for each UE, a handover
/// A→B followed within the window by B→A counts the return leg as a
/// ping-pong. Records arrive timestamp-sorted by construction; merging
/// partitions stitches pairs across the boundary by checking each UE's
/// first handover of the later span against its last of the earlier one —
/// exact at any split point, which is what lets the chunk-granular
/// parallel sweep fold this pass.
///
/// Per-UE edges and per-manufacturer counters live in flat vectors
/// (UE ids and the manufacturer catalog are both dense), so the hot loop
/// performs no hashing at all.
#[derive(Debug)]
pub struct PingPongPass {
    window_ms: u64,
    /// First handover per UE in this span, indexed by UE id.
    first: Vec<Option<Leg>>,
    /// Last handover per UE in this span, indexed by UE id.
    last: Vec<Option<Leg>>,
    total: u64,
    pingpong: u64,
    return_sum: f64,
    /// Per manufacturer (catalog index order): (HOs, ping-pongs).
    per_mfr: Vec<(u64, u64)>,
}

impl PingPongPass {
    /// A pass with an explicit detection window.
    pub fn new(window_ms: u64) -> Self {
        PingPongPass {
            window_ms,
            first: Vec::new(),
            last: Vec::new(),
            total: 0,
            pingpong: 0,
            return_sum: 0.0,
            per_mfr: vec![(0, 0); Manufacturer::ALL.len()],
        }
    }

    #[inline]
    fn observe(&mut self, ue: u32, ts: u64, src: u32, tgt: u32, e: &Enriched) {
        self.total += 1;
        let mfr_idx = e.manufacturer_idx_of(ue);
        if mfr_idx >= self.per_mfr.len() {
            self.per_mfr.resize(mfr_idx + 1, (0, 0));
        }
        self.per_mfr[mfr_idx].0 += 1;
        let prev = leg_slot(&mut self.last, ue as usize);
        if let Some((prev_ts, prev_src, prev_tgt)) = *prev {
            let is_return =
                src == prev_tgt && tgt == prev_src && ts.saturating_sub(prev_ts) <= self.window_ms;
            if is_return {
                self.pingpong += 1;
                self.per_mfr[mfr_idx].1 += 1;
                self.return_sum += (ts - prev_ts) as f64;
            }
        }
        *prev = Some((ts, src, tgt));
        let opening = leg_slot(&mut self.first, ue as usize);
        if opening.is_none() {
            *opening = Some((ts, src, tgt));
        }
    }
}

impl Default for PingPongPass {
    fn default() -> Self {
        PingPongPass::new(DEFAULT_WINDOW_MS)
    }
}

impl AnalysisPass for PingPongPass {
    type Output = PingPongAnalysis;

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.observe(r.ue.0, r.timestamp_ms, r.source_sector.0, r.target_sector.0, e);
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        let rows = batch
            .timestamps()
            .iter()
            .zip(batch.ues())
            .zip(batch.source_sectors())
            .zip(batch.target_sectors());
        for (((&ts, &ue), &src), &tgt) in rows {
            self.observe(ue, ts, src, tgt, e);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, ctx: &SweepCtx) {
        self.total += other.total;
        self.pingpong += other.pingpong;
        self.return_sum += other.return_sum;
        if self.per_mfr.len() < other.per_mfr.len() {
            self.per_mfr.resize(other.per_mfr.len(), (0, 0));
        }
        for (mine, theirs) in self.per_mfr.iter_mut().zip(&other.per_mfr) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
        // Boundary stitch: `other`'s first leg per UE may return `self`'s
        // last one.
        for (ue, leg) in other.first.iter().enumerate() {
            let Some((ts, src, tgt)) = *leg else { continue };
            let Some(Some((prev_ts, prev_src, prev_tgt))) = self.last.get(ue).copied() else {
                continue;
            };
            let is_return =
                src == prev_tgt && tgt == prev_src && ts.saturating_sub(prev_ts) <= self.window_ms;
            if is_return {
                self.pingpong += 1;
                self.return_sum += (ts - prev_ts) as f64;
                let mfr = ctx.world.ue(UeId(ue as u32)).manufacturer;
                if let Some(counts) = self.per_mfr.get_mut(mfr.index()) {
                    counts.1 += 1;
                }
            }
        }
        // `other` is later in trace order: its last legs supersede ours,
        // and its first legs only fill UEs we never saw.
        if self.last.len() < other.last.len() {
            self.last.resize(other.last.len(), None);
        }
        for (mine, theirs) in self.last.iter_mut().zip(other.last) {
            if theirs.is_some() {
                *mine = theirs;
            }
        }
        if self.first.len() < other.first.len() {
            self.first.resize(other.first.len(), None);
        }
        for (mine, theirs) in self.first.iter_mut().zip(other.first) {
            if mine.is_none() {
                *mine = theirs;
            }
        }
    }

    fn end(self, _ctx: &SweepCtx) -> PingPongAnalysis {
        // Catalog order by construction — no post-sort needed.
        let by_manufacturer: Vec<(Manufacturer, f64)> = self
            .per_mfr
            .iter()
            .enumerate()
            .filter(|&(_, &(n, _))| n >= 100)
            .filter_map(|(i, &(n, pp))| {
                Manufacturer::ALL.get(i).map(|&m| (m, pp as f64 / n as f64))
            })
            .collect();

        PingPongAnalysis {
            window_ms: self.window_ms,
            total_hos: self.total,
            pingpong_hos: self.pingpong,
            rate: self.pingpong as f64 / self.total.max(1) as f64,
            by_manufacturer,
            mean_return_ms: if self.pingpong > 0 {
                self.return_sum / self.pingpong as f64
            } else {
                0.0
            },
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.window_ms);
        snapshot_legs(&self.first, w);
        snapshot_legs(&self.last, w);
        w.put_varint(self.total);
        w.put_varint(self.pingpong);
        w.put_f64(self.return_sum);
        w.put_varint(self.per_mfr.len() as u64);
        for &(hos, pps) in &self.per_mfr {
            w.put_varint(hos);
            w.put_varint(pps);
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.window_ms = r.get_varint()?;
        self.first = restore_legs(r)?;
        self.last = restore_legs(r)?;
        self.total = r.get_varint()?;
        self.pingpong = r.get_varint()?;
        self.return_sum = r.get_f64()?;
        let n = r.get_len()?;
        self.per_mfr = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            self.per_mfr.push((r.get_varint()?, r.get_varint()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig, StudyData};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 1_500;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    fn pingpong() -> PingPongAnalysis {
        Sweep::new(study()).run(PingPongPass::default).unwrap()
    }

    #[test]
    fn pingpongs_exist_and_are_minority() {
        let pp = pingpong();
        assert!(pp.total_hos > 1_000);
        assert!(pp.pingpong_hos > 0, "chatty manufacturers must produce ping-pongs");
        assert!(pp.rate < 0.35, "PP rate {} implausibly high", pp.rate);
        assert!(pp.mean_return_ms <= DEFAULT_WINDOW_MS as f64);
    }

    #[test]
    fn window_zero_finds_only_instant_returns() {
        let sweep = Sweep::new(study());
        let strict = sweep.run(|| PingPongPass::new(1)).unwrap();
        let loose = sweep.run(|| PingPongPass::new(60_000)).unwrap();
        assert!(strict.pingpong_hos <= loose.pingpong_hos);
    }

    #[test]
    fn parallel_stitch_matches_sequential() {
        // Same trace swept with 1 thread and with day partitioning: the
        // boundary stitch must recover every cross-midnight ping-pong.
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 1_000;
        cfg.threads = 1;
        let seq = run_study(cfg.clone());
        cfg.threads = 4;
        let par = run_study(cfg);
        let a = Sweep::new(&seq).run(PingPongPass::default).unwrap();
        let b = Sweep::new(&par).run(PingPongPass::default).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chatty_manufacturers_pingpong_more() {
        let pp = pingpong();
        let get =
            |m: Manufacturer| pp.by_manufacturer.iter().find(|(x, _)| *x == m).map(|(_, r)| *r);
        if let (Some(simcom), Some(apple)) = (get(Manufacturer::Simcom), get(Manufacturer::Apple)) {
            assert!(simcom > apple, "Simcom PP rate {simcom} should exceed Apple's {apple}");
        }
    }

    #[test]
    fn table_renders() {
        assert!(pingpong().table().to_string().contains("PP rate"));
    }
}
