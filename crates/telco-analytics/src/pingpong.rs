//! Ping-pong handover analysis.
//!
//! A ping-pong (PP) handover occurs when a UE is handed from a source to a
//! target sector and back to the source within a short predefined window
//! (§7, footnote 10 — the operator-side studies of Féher et al. and Zidic
//! et al. that the paper positions itself against). PP HOs are wasted
//! signaling; operators tune hysteresis and time-to-trigger to suppress
//! them. This analysis measures their prevalence in a study trace.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use telco_devices::types::Manufacturer;
use telco_sim::StudyData;

use crate::frame::Enriched;
use crate::tables::{num, pct, TextTable};

/// The conventional PP detection window, ms (Zidic et al. use 5 s).
pub const DEFAULT_WINDOW_MS: u64 = 5_000;

/// Ping-pong statistics over a study trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingPongAnalysis {
    /// Detection window used, ms.
    pub window_ms: u64,
    /// Total handovers inspected.
    pub total_hos: u64,
    /// Handovers that complete a ping-pong pair (the "return leg").
    pub pingpong_hos: u64,
    /// PP rate among all handovers.
    pub rate: f64,
    /// PP rate per manufacturer, sorted by manufacturer index (only
    /// manufacturers with ≥ 100 HOs).
    pub by_manufacturer: Vec<(Manufacturer, f64)>,
    /// Mean time between the out and return legs, ms.
    pub mean_return_ms: f64,
}

impl PingPongAnalysis {
    /// Detect ping-pongs with the default 5-second window.
    pub fn compute(study: &StudyData) -> Self {
        Self::compute_with_window(study, DEFAULT_WINDOW_MS)
    }

    /// Detect ping-pongs: for each UE, a handover A→B followed within the
    /// window by B→A counts the return leg as a ping-pong.
    pub fn compute_with_window(study: &StudyData, window_ms: u64) -> Self {
        let enriched = Enriched::new(study);
        // Last handover per UE: (timestamp, source, target).
        let mut last: HashMap<u32, (u64, u32, u32)> = HashMap::new();
        let mut total = 0u64;
        let mut pingpong = 0u64;
        let mut return_sum = 0.0f64;
        let mut per_mfr: HashMap<Manufacturer, (u64, u64)> = HashMap::new();

        // Records are timestamp-sorted by construction.
        for r in study.output.dataset.records() {
            total += 1;
            let mfr = enriched.manufacturer(r);
            let counts = per_mfr.entry(mfr).or_insert((0, 0));
            counts.0 += 1;
            if let Some(&(prev_ts, prev_src, prev_tgt)) = last.get(&r.ue.0) {
                let is_return = r.source_sector.0 == prev_tgt
                    && r.target_sector.0 == prev_src
                    && r.timestamp_ms.saturating_sub(prev_ts) <= window_ms;
                if is_return {
                    pingpong += 1;
                    counts.1 += 1;
                    return_sum += (r.timestamp_ms - prev_ts) as f64;
                }
            }
            last.insert(r.ue.0, (r.timestamp_ms, r.source_sector.0, r.target_sector.0));
        }

        let mut by_manufacturer: Vec<(Manufacturer, f64)> = per_mfr
            .into_iter()
            .filter(|(_, (n, _))| *n >= 100)
            .map(|(m, (n, pp))| (m, pp as f64 / n as f64))
            .collect();
        by_manufacturer.sort_by_key(|(m, _)| m.index());

        PingPongAnalysis {
            window_ms,
            total_hos: total,
            pingpong_hos: pingpong,
            rate: pingpong as f64 / total.max(1) as f64,
            by_manufacturer,
            mean_return_ms: if pingpong > 0 { return_sum / pingpong as f64 } else { 0.0 },
        }
    }

    /// Render as a table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            &format!("Ping-pong handovers (window {} ms)", self.window_ms),
            &["Metric", "Value"],
        );
        t.row_strs(&["Total HOs", &self.total_hos.to_string()]);
        t.row_strs(&["Ping-pong return legs", &self.pingpong_hos.to_string()]);
        t.row_strs(&["PP rate", &pct(self.rate, 2)]);
        t.row_strs(&["Mean return time (ms)", &num(self.mean_return_ms, 0)]);
        for (m, r) in &self.by_manufacturer {
            t.row(&[format!("PP rate: {m}"), pct(*r, 2)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 1_500;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    #[test]
    fn pingpongs_exist_and_are_minority() {
        let pp = PingPongAnalysis::compute(study());
        assert!(pp.total_hos > 1_000);
        assert!(pp.pingpong_hos > 0, "chatty manufacturers must produce ping-pongs");
        assert!(pp.rate < 0.35, "PP rate {} implausibly high", pp.rate);
        assert!(pp.mean_return_ms <= DEFAULT_WINDOW_MS as f64);
    }

    #[test]
    fn window_zero_finds_only_instant_returns() {
        let strict = PingPongAnalysis::compute_with_window(study(), 1);
        let loose = PingPongAnalysis::compute_with_window(study(), 60_000);
        assert!(strict.pingpong_hos <= loose.pingpong_hos);
    }

    #[test]
    fn chatty_manufacturers_pingpong_more() {
        let pp = PingPongAnalysis::compute(study());
        let get =
            |m: Manufacturer| pp.by_manufacturer.iter().find(|(x, _)| *x == m).map(|(_, r)| *r);
        if let (Some(simcom), Some(apple)) = (get(Manufacturer::Simcom), get(Manufacturer::Apple)) {
            assert!(simcom > apple, "Simcom PP rate {simcom} should exceed Apple's {apple}");
        }
    }

    #[test]
    fn table_renders() {
        assert!(PingPongAnalysis::compute(study()).table().to_string().contains("PP rate"));
    }
}
