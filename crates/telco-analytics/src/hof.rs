//! §6.1 / §6.2 — HOF patterns (Fig. 12) and the cause analysis
//! (Figs. 14–15), as streaming passes.

use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer};
use telco_geo::postcode::AreaType;
use telco_signaling::causes::{CauseCode, PrincipalCause};
use telco_signaling::messages::HoType;
use telco_stats::boxplot::BoxplotStats;
use telco_stats::ecdf::Ecdf;
use telco_trace::columnar::{ColumnBatch, FLAG_FAILURE};
use telco_trace::hash::FxHashSet;
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::bitset::IdSet;
use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, pct, TextTable};

/// Fig. 12 — hourly HOF counts, urban vs rural, normalized by the number
/// of active sectors in each class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HofPatterns {
    /// Per hour (0..24): boxplot of daily normalized HOF counts, urban.
    pub urban: Vec<Option<BoxplotStats>>,
    /// Per hour: boxplot of daily normalized HOF counts, rural.
    pub rural: Vec<Option<BoxplotStats>>,
    /// Ratio of rural to urban median normalized HOFs during the morning
    /// peak [7:00–8:00) (paper: rural is 32.4% higher).
    pub rural_morning_excess: f64,
}

impl HofPatterns {
    /// Render per-hour medians.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 12: HOFs per hour, normalized by active sectors",
            &["Hour", "Urban median", "Rural median"],
        );
        for hour in 0..24 {
            t.row(&[
                format!("{hour:02}:00"),
                self.urban[hour].as_ref().map_or("-".into(), |b| num(b.median, 4)),
                self.rural[hour].as_ref().map_or("-".into(), |b| num(b.median, 4)),
            ]);
        }
        t
    }
}

/// Streaming accumulator for [`HofPatterns`]: per (day, hour, area) HOF
/// counts and active-sector sets. Each (day, hour) index belongs to a
/// single study day, so day-partitioned merges touch disjoint slots.
#[derive(Debug, Default)]
pub struct HofPatternsPass {
    hofs: Vec<[u32; 2]>,
    active: Vec<[IdSet; 2]>,
}

impl HofPatternsPass {
    #[inline]
    fn observe(&mut self, ts: u64, sector: u32, fail: bool, e: &Enriched) {
        let day = (ts / 86_400_000) as usize;
        let hour = ((ts % 86_400_000) / 3_600_000) as usize;
        let idx = day * 24 + hour;
        if idx >= self.hofs.len() {
            return;
        }
        let ai = e.area_of(sector).index();
        self.active[idx][ai].insert(sector);
        if fail {
            self.hofs[idx][ai] += 1;
        }
    }
}

impl AnalysisPass for HofPatternsPass {
    type Output = HofPatterns;

    fn begin(&mut self, ctx: &SweepCtx) {
        let slots = ctx.config.n_days.max(1) as usize * 24;
        self.hofs = vec![[0u32; 2]; slots];
        self.active = Vec::new();
        self.active.resize_with(slots, Default::default);
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.observe(r.timestamp_ms, r.source_sector.0, r.is_failure(), e);
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        let rows = batch.timestamps().iter().zip(batch.source_sectors()).zip(batch.flags());
        for ((&ts, &sector), &flags) in rows {
            self.observe(ts, sector, flags & FLAG_FAILURE != 0, e);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.hofs.iter_mut().zip(other.hofs) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
        for (mine, theirs) in self.active.iter_mut().zip(other.active) {
            for (set, t) in mine.iter_mut().zip(theirs) {
                set.union(&t);
            }
        }
    }

    fn end(self, ctx: &SweepCtx) -> HofPatterns {
        let n_days = ctx.config.n_days.max(1) as usize;
        // Normalized per-day samples per hour.
        let mut urban_samples: Vec<Vec<f64>> = vec![Vec::new(); 24];
        let mut rural_samples: Vec<Vec<f64>> = vec![Vec::new(); 24];
        for day in 0..n_days {
            for hour in 0..24 {
                let idx = day * 24 + hour;
                for (ai, samples) in [(0, &mut urban_samples), (1, &mut rural_samples)] {
                    let n_active = self.active[idx][ai].len();
                    if n_active > 0 {
                        samples[hour].push(self.hofs[idx][ai] as f64 / n_active as f64);
                    }
                }
            }
        }
        let median_at = |samples: &[Vec<f64>], hour: usize| -> f64 {
            BoxplotStats::of(&samples[hour]).map_or(0.0, |b| b.median)
        };
        let urban_peak = median_at(&urban_samples, 7);
        let rural_peak = median_at(&rural_samples, 7);
        HofPatterns {
            rural_morning_excess: if urban_peak > 0.0 {
                rural_peak / urban_peak - 1.0
            } else {
                f64::INFINITY
            },
            urban: urban_samples.iter().map(|s| BoxplotStats::of(s)).collect(),
            rural: rural_samples.iter().map(|s| BoxplotStats::of(s)).collect(),
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.hofs.len() as u64);
        for slot in &self.hofs {
            for &c in slot {
                w.put_varint(u64::from(c));
            }
        }
        w.put_varint(self.active.len() as u64);
        for slot in &self.active {
            for set in slot {
                set.snapshot(w);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let slots = r.get_len()?;
        self.hofs = vec![[0u32; 2]; slots];
        for slot in &mut self.hofs {
            for c in slot {
                *c = u32::try_from(r.get_varint()?)
                    .map_err(|_| SnapError::Malformed("hof count overflow"))?;
            }
        }
        let slots = r.get_len()?;
        self.active = Vec::new();
        self.active.resize_with(slots, Default::default);
        for slot in &mut self.active {
            for set in slot {
                set.restore(r)?;
            }
        }
        Ok(())
    }
}

/// Figs. 14–15 — the cause analysis: shares per cause, durations per
/// cause, and the conditioned (stacked-bar) splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CauseAnalysis {
    /// Share of total HOFs per principal cause (index = cause number − 1)
    /// plus the long tail in slot 8 — mean over days.
    pub shares: [f64; 9],
    /// Daily min of each share.
    pub shares_min: [f64; 9],
    /// Daily max of each share.
    pub shares_max: [f64; 9],
    /// Share of all HOFs occurring on →3G handovers (paper: 75%).
    pub to3g_failure_share: f64,
    /// Share on →2G (paper: 0.03%).
    pub to2g_failure_share: f64,
    /// Distinct cause codes observed (paper collects 1k+).
    pub distinct_causes: usize,
    /// Duration ECDF per principal cause (None when unobserved).
    pub durations: Vec<Option<Ecdf>>,
    /// Cause shares conditioned on area type (`[area][cause]`).
    pub by_area: [[f64; 9]; 2],
    /// Cause shares conditioned on device type (`[device][cause]`).
    pub by_device: [[f64; 9]; 3],
    /// Cause shares for the top-5 smartphone manufacturers
    /// (`[mfr index in TOP5][cause]`).
    pub by_top5_manufacturer: Vec<(Manufacturer, [f64; 9])>,
}

fn cause_slot(cause: CauseCode) -> usize {
    cause.as_principal().map_or(8, |p| p.index())
}

impl CauseAnalysis {
    /// Combined share of the 8 principal causes (paper: 92%).
    pub fn principal_share(&self) -> f64 {
        self.shares[..8].iter().sum()
    }

    /// Render Fig. 14a.
    pub fn table_shares(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 14a: HOF cause shares (% of all HOFs)",
            &["Cause", "mean", "min", "max"],
        );
        for c in PrincipalCause::ALL {
            let i = c.index();
            t.row(&[
                format!("#{} {}", c.number(), c.description()),
                pct(self.shares[i], 1),
                pct(self.shares_min[i], 1),
                pct(self.shares_max[i], 1),
            ]);
        }
        t.row(&[
            "Long tail (vendor sub-causes)".to_string(),
            pct(self.shares[8], 1),
            pct(self.shares_min[8], 1),
            pct(self.shares_max[8], 1),
        ]);
        t
    }

    /// Render Fig. 14b.
    pub fn table_durations(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 14b: HO signaling time per failure cause (ms)",
            &["Cause", "median", "p95"],
        );
        for c in PrincipalCause::ALL {
            if let Some(e) = &self.durations[c.index()] {
                t.row(&[format!("#{}", c.number()), num(e.median(), 0), num(e.quantile(0.95), 0)]);
            }
        }
        t
    }

    /// Render Fig. 15 (conditioned stacked bars, as rows).
    pub fn table_stacked(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 15: Cause mix by area / device type / top-5 manufacturer",
            &["Split", "#1", "#2", "#3", "#4", "#5", "#6", "#7", "#8", "tail"],
        );
        let mut push = |label: String, s: &[f64; 9]| {
            let mut row = vec![label];
            row.extend(s.iter().map(|&v| pct(v, 1)));
            t.row(&row);
        };
        push("Urban".into(), &self.by_area[AreaType::Urban.index()]);
        push("Rural".into(), &self.by_area[AreaType::Rural.index()]);
        for d in DeviceType::ALL {
            push(d.to_string(), &self.by_device[d.index()]);
        }
        for (m, s) in &self.by_top5_manufacturer {
            push(m.to_string(), s);
        }
        t
    }
}

/// Streaming accumulator for [`CauseAnalysis`]. Only failure records
/// contribute; successes fall through [`AnalysisPass::record`] untouched.
/// Per-manufacturer cells sit in a flat catalog-indexed vector and the
/// distinct-cause set uses [`FxHashSet`], so the failure loop hashes one
/// `u16` per record at most.
#[derive(Debug, Default)]
pub struct CausePass {
    daily: Vec<[u64; 9]>,
    daily_total: Vec<u64>,
    by_type: [u64; 3],
    seen: FxHashSet<u16>,
    durations: Vec<Vec<f64>>,
    by_area: [[u64; 9]; 2],
    by_device: [[u64; 9]; 3],
    /// `Manufacturer::index()` → per-cause-slot failure counts.
    by_mfr: Vec<[u64; 9]>,
    total_failures: u64,
}

impl CausePass {
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn observe_failure(
        &mut self,
        ue: u32,
        sector: u32,
        day: u32,
        cause: CauseCode,
        ho_type: HoType,
        duration: f32,
        e: &Enriched,
    ) {
        let slot = cause_slot(cause);
        let day = (day as usize).min(self.daily.len().saturating_sub(1));
        if let Some(cells) = self.daily.get_mut(day) {
            cells[slot] += 1;
        }
        if let Some(total) = self.daily_total.get_mut(day) {
            *total += 1;
        }
        self.by_type[ho_type.index()] += 1;
        self.seen.insert(cause.0);
        if let Some(samples) = self.durations.get_mut(slot) {
            samples.push(duration as f64);
        }
        self.by_area[e.area_of(sector).index()][slot] += 1;
        self.by_device[e.device_of(ue).index()][slot] += 1;
        let mfr = e.manufacturer_of(ue);
        if Manufacturer::TOP5_SMARTPHONE.contains(&mfr) {
            let idx = e.manufacturer_idx_of(ue);
            if idx >= self.by_mfr.len() {
                self.by_mfr.resize(idx + 1, [0; 9]);
            }
            self.by_mfr[idx][slot] += 1;
        }
        self.total_failures += 1;
    }
}

impl AnalysisPass for CausePass {
    type Output = CauseAnalysis;

    fn begin(&mut self, ctx: &SweepCtx) {
        let n_days = ctx.config.n_days.max(1) as usize;
        self.daily = vec![[0u64; 9]; n_days];
        self.daily_total = vec![0u64; n_days];
        self.durations = vec![Vec::new(); 8];
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        if !r.is_failure() {
            return;
        }
        let cause = r.cause.expect("failures carry a cause");
        self.observe_failure(
            r.ue.0,
            r.source_sector.0,
            r.day(),
            cause,
            r.ho_type(),
            r.duration_ms,
            e,
        );
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        let rows = batch
            .timestamps()
            .iter()
            .zip(batch.ues())
            .zip(batch.source_sectors())
            .zip(batch.target_rats())
            .zip(batch.flags())
            .zip(batch.causes())
            .zip(batch.durations());
        for ((((((&ts, &ue), &sector), &rat), &flags), &cause), &duration) in rows {
            if flags & FLAG_FAILURE == 0 {
                continue;
            }
            self.observe_failure(
                ue,
                sector,
                (ts / 86_400_000) as u32,
                CauseCode(cause),
                HoType::from_target_rat(rat),
                duration,
                e,
            );
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.daily.iter_mut().zip(other.daily) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
        for (mine, theirs) in self.daily_total.iter_mut().zip(other.daily_total) {
            *mine += theirs;
        }
        for (mine, theirs) in self.by_type.iter_mut().zip(other.by_type) {
            *mine += theirs;
        }
        self.seen.extend(other.seen);
        for (mine, theirs) in self.durations.iter_mut().zip(other.durations) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.by_area.iter_mut().zip(other.by_area) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
        for (mine, theirs) in self.by_device.iter_mut().zip(other.by_device) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
        if self.by_mfr.len() < other.by_mfr.len() {
            self.by_mfr.resize(other.by_mfr.len(), [0; 9]);
        }
        for (mine, theirs) in self.by_mfr.iter_mut().zip(other.by_mfr) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
        self.total_failures += other.total_failures;
    }

    fn end(self, _ctx: &SweepCtx) -> CauseAnalysis {
        let n_days = self.daily.len();
        // Daily shares, then mean/min/max.
        let mut shares = [0.0; 9];
        let mut shares_min = [f64::INFINITY; 9];
        let mut shares_max = [0.0f64; 9];
        let mut active_days = 0usize;
        for day in 0..n_days {
            if self.daily_total[day] == 0 {
                continue;
            }
            active_days += 1;
            for c in 0..9 {
                let s = self.daily[day][c] as f64 / self.daily_total[day] as f64;
                shares[c] += s;
                shares_min[c] = shares_min[c].min(s);
                shares_max[c] = shares_max[c].max(s);
            }
        }
        for c in 0..9 {
            shares[c] /= active_days.max(1) as f64;
            if !shares_min[c].is_finite() {
                shares_min[c] = 0.0;
            }
        }

        let normalize = |counts: [u64; 9]| -> [f64; 9] {
            let t: u64 = counts.iter().sum();
            let mut out = [0.0; 9];
            if t > 0 {
                for c in 0..9 {
                    out[c] = counts[c] as f64 / t as f64;
                }
            }
            out
        };
        let mut top5: Vec<(Manufacturer, [f64; 9])> = Manufacturer::TOP5_SMARTPHONE
            .iter()
            .filter_map(|m| {
                let counts = self.by_mfr.get(m.index())?;
                // A manufacturer enters only once it has observed
                // failures, matching the old lazily-created map cells.
                (counts.iter().sum::<u64>() > 0).then(|| (*m, normalize(*counts)))
            })
            .collect();
        top5.sort_by_key(|(m, _)| m.index());

        let total_failures = self.total_failures;
        CauseAnalysis {
            shares,
            shares_min,
            shares_max,
            to3g_failure_share: self.by_type[HoType::To3g.index()] as f64
                / total_failures.max(1) as f64,
            to2g_failure_share: self.by_type[HoType::To2g.index()] as f64
                / total_failures.max(1) as f64,
            distinct_causes: self.seen.len(),
            durations: self
                .durations
                .into_iter()
                .map(|v| (!v.is_empty()).then(|| Ecdf::new(&v)))
                .collect(),
            by_area: [normalize(self.by_area[0]), normalize(self.by_area[1])],
            by_device: [
                normalize(self.by_device[0]),
                normalize(self.by_device[1]),
                normalize(self.by_device[2]),
            ],
            by_top5_manufacturer: top5,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.daily.len() as u64);
        for day in &self.daily {
            for &c in day {
                w.put_varint(c);
            }
        }
        w.put_u64s(&self.daily_total);
        for &c in &self.by_type {
            w.put_varint(c);
        }
        // Sorted so the set's insertion history never reaches the bytes.
        let mut seen: Vec<u16> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        w.put_varint(seen.len() as u64);
        for code in seen {
            w.put_u16(code);
        }
        w.put_varint(self.durations.len() as u64);
        for samples in &self.durations {
            w.put_f64s(samples);
        }
        for area in &self.by_area {
            for &c in area {
                w.put_varint(c);
            }
        }
        for device in &self.by_device {
            for &c in device {
                w.put_varint(c);
            }
        }
        w.put_varint(self.by_mfr.len() as u64);
        for mfr in &self.by_mfr {
            for &c in mfr {
                w.put_varint(c);
            }
        }
        w.put_varint(self.total_failures);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let days = r.get_len()?;
        self.daily = vec![[0u64; 9]; days];
        for day in &mut self.daily {
            for c in day {
                *c = r.get_varint()?;
            }
        }
        self.daily_total = r.get_u64s()?;
        for c in &mut self.by_type {
            *c = r.get_varint()?;
        }
        let n = r.get_len()?;
        self.seen = FxHashSet::default();
        self.seen.reserve(n);
        for _ in 0..n {
            self.seen.insert(r.get_u16()?);
        }
        let slots = r.get_len()?;
        self.durations = Vec::with_capacity(slots);
        for _ in 0..slots {
            self.durations.push(r.get_f64s()?);
        }
        for area in &mut self.by_area {
            for c in area {
                *c = r.get_varint()?;
            }
        }
        for device in &mut self.by_device {
            for c in device {
                *c = r.get_varint()?;
            }
        }
        let mfrs = r.get_len()?;
        self.by_mfr = vec![[0u64; 9]; mfrs];
        for mfr in &mut self.by_mfr {
            for c in mfr {
                *c = r.get_varint()?;
            }
        }
        self.total_failures = r.get_varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig, StudyData};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 2_000;
            cfg.n_days = 3;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    fn causes() -> CauseAnalysis {
        Sweep::new(study()).run(CausePass::default).unwrap()
    }

    #[test]
    fn cause_shares_concentrate_in_principals() {
        let c = causes();
        let total: f64 = c.shares.iter().sum();
        assert!((total - 1.0).abs() < 0.05, "shares sum {total}");
        assert!(c.principal_share() > 0.8, "principal causes carry {}", c.principal_share());
        assert!(c.distinct_causes > 8, "only {} distinct causes", c.distinct_causes);
    }

    #[test]
    fn three_g_failures_dominate() {
        let c = causes();
        assert!(c.to3g_failure_share > 0.5, "→3G failure share {}", c.to3g_failure_share);
        assert!(c.to2g_failure_share < 0.05);
    }

    #[test]
    fn cause_durations_ranked_like_fig14b() {
        let c = causes();
        // #3 aborts before signaling: zero median when observed.
        if let Some(e3) = &c.durations[PrincipalCause::InvalidTargetSector.index()] {
            assert_eq!(e3.median(), 0.0);
        }
        // #8 sits at the relocation timer when observed.
        if let Some(e8) = &c.durations[PrincipalCause::RelocationTimeout.index()] {
            assert!(e8.median() > 9_000.0);
        }
    }

    #[test]
    fn hof_patterns_have_peaks() {
        let h = Sweep::new(study()).run(HofPatternsPass::default).unwrap();
        // Some daytime hour must carry more normalized HOFs than 03:00.
        let night = h.urban[3].as_ref().map_or(0.0, |b| b.median);
        let day_max =
            (7..20).filter_map(|hr| h.urban[hr].as_ref().map(|b| b.median)).fold(0.0f64, f64::max);
        assert!(day_max >= night, "daytime {day_max} vs night {night}");
        assert!(h.table().len() == 24);
    }

    #[test]
    fn stacked_table_renders_all_rows() {
        let t = causes().table_stacked();
        assert!(t.len() >= 5, "expected at least area + device rows, got {}", t.len());
    }
}
