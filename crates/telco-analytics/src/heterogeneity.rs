//! §4 — Exploring data heterogeneity: dataset statistics (Table 1), the
//! deployment evolution and RAT usage (Fig. 3), and the device mix
//! (Fig. 4).

use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer, RatSupport};
use telco_sim::StudyData;
use telco_topology::evolution::DeploymentHistory;
use telco_topology::rat::Rat;
use telco_trace::io::RECORD_BYTES;

use crate::tables::{num, pct, TextTable};

/// Table 1 — dataset statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of census districts.
    pub districts: usize,
    /// Cell sites deployed.
    pub sites: usize,
    /// Radio sectors deployed.
    pub sectors: usize,
    /// UEs measured.
    pub ues: usize,
    /// Mean handovers per day.
    pub daily_hos: f64,
    /// Measurement duration, days.
    pub days: u32,
    /// Daily trace size, bytes (binary encoding).
    pub daily_trace_bytes: u64,
}

impl DatasetStats {
    /// Compute from a study.
    pub fn compute(study: &StudyData) -> Self {
        DatasetStats {
            districts: study.world.country.districts().len(),
            sites: study.world.topology.sites().len(),
            sectors: study.world.topology.sectors().len(),
            ues: study.world.n_ues(),
            daily_hos: study.trace.daily_mean(),
            days: study.config.n_days,
            daily_trace_bytes: (study.trace.daily_mean() * RECORD_BYTES as f64) as u64,
        }
    }

    /// Render as the paper's Table 1.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new("Table 1: Dataset statistics", &["Feature", "Value"]);
        t.row_strs(&["Area covered", &format!("Synthetic country ({} districts)", self.districts)]);
        t.row_strs(&["# of cell sites", &self.sites.to_string()]);
        t.row_strs(&["# of radio sectors", &self.sectors.to_string()]);
        t.row_strs(&["# of UEs measured", &self.ues.to_string()]);
        t.row_strs(&["# handovers (daily)", &format!("{:.0}", self.daily_hos)]);
        t.row_strs(&["Measurement duration", &format!("{} days", self.days)]);
        t.row_strs(&["Trace size (daily)", &format!("{} KiB", self.daily_trace_bytes / 1024)]);
        t
    }
}

/// Fig. 3a — deployment evolution series per RAT plus totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentEvolution {
    /// The reconstructed history.
    pub history: DeploymentHistory,
    /// Share of 5G-NR sectors in the final year.
    pub final_5g_share: f64,
    /// Share of 4G sectors in the final year.
    pub final_4g_share: f64,
    /// Total-sector growth 2018 → 2023.
    pub growth_2018_2023: f64,
}

impl DeploymentEvolution {
    /// Compute from a study.
    pub fn compute(study: &StudyData) -> Self {
        let history = DeploymentHistory::reconstruct(&study.world.topology);
        DeploymentEvolution {
            final_5g_share: history.share(Rat::G5Nr, 2023),
            final_4g_share: history.share(Rat::G4, 2023),
            growth_2018_2023: history.growth(2018, 2023),
            history,
        }
    }

    /// Render the yearly series.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 3a: Deployment evolution (sectors per RAT per year)",
            &["Year", "2G", "3G", "4G", "5G-NR", "Total", "Sites"],
        );
        for (i, &year) in self.history.years.iter().enumerate() {
            t.row(&[
                year.to_string(),
                num(self.history.per_rat[0][i], 0),
                num(self.history.per_rat[1][i], 0),
                num(self.history.per_rat[2][i], 0),
                num(self.history.per_rat[3][i], 0),
                num(self.history.total_sectors[i], 0),
                num(self.history.total_sites[i], 0),
            ]);
        }
        t
    }
}

/// Fig. 3b — average daily RAT use (attach-time shares) and traffic split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatUsage {
    /// Attach-time share per RAT (`Rat::index()` order).
    pub time_shares: [f64; 4],
    /// Combined 4G/5G-NSA time share.
    pub epc_time_share: f64,
    /// Uplink traffic share carried by 4G/5G-NSA.
    pub epc_ul_share: f64,
    /// Downlink traffic share carried by 4G/5G-NSA.
    pub epc_dl_share: f64,
}

impl RatUsage {
    /// Compute from a study.
    pub fn compute(study: &StudyData) -> Self {
        let ledger = &study.output.ledger;
        let ul = ledger.ul_shares();
        let dl = ledger.dl_shares();
        RatUsage {
            time_shares: ledger.time_shares(),
            epc_time_share: ledger.epc_time_share(),
            epc_ul_share: ul[Rat::G4.index()] + ul[Rat::G5Nr.index()],
            epc_dl_share: dl[Rat::G4.index()] + dl[Rat::G5Nr.index()],
        }
    }

    /// Render.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 3b: Average daily RAT use & traffic",
            &["Metric", "2G", "3G", "4G/5G-NSA"],
        );
        t.row(&[
            "Attach-time share".to_string(),
            pct(self.time_shares[0], 1),
            pct(self.time_shares[1], 1),
            pct(self.epc_time_share, 1),
        ]);
        t.row(&[
            "UL traffic share".to_string(),
            "-".to_string(),
            pct(1.0 - self.epc_ul_share, 2),
            pct(self.epc_ul_share, 2),
        ]);
        t.row(&[
            "DL traffic share".to_string(),
            "-".to_string(),
            pct(1.0 - self.epc_dl_share, 2),
            pct(self.epc_dl_share, 2),
        ]);
        t
    }
}

/// Fig. 4 — device mix: manufacturer shares per device type and supported
/// RAT shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMix {
    /// Share of each device type in the UE population.
    pub type_shares: [f64; 3],
    /// Top manufacturers per device type: `(manufacturer, share within
    /// type)` sorted descending.
    pub manufacturers: Vec<(DeviceType, Vec<(Manufacturer, f64)>)>,
    /// Share of UEs per RAT-support ceiling (`RatSupport::ALL` order).
    pub rat_support_shares: [f64; 4],
    /// Share of smartphones that are 5G-capable.
    pub smartphone_5g_share: f64,
}

impl DeviceMix {
    /// Compute from the realized UE population.
    pub fn compute(study: &StudyData) -> Self {
        let n = study.world.n_ues() as f64;
        let mut type_counts = [0usize; 3];
        let mut rat_counts = [0usize; 4];
        let mut by_type_mfr: Vec<std::collections::HashMap<Manufacturer, usize>> =
            vec![Default::default(); 3];
        let mut smart_5g = 0usize;
        let mut smart_total = 0usize;
        for attrs in &study.world.ues {
            let ti = attrs.device_type.index();
            type_counts[ti] += 1;
            rat_counts[attrs.rat_support as usize] += 1;
            *by_type_mfr[ti].entry(attrs.manufacturer).or_insert(0) += 1;
            if attrs.device_type == DeviceType::Smartphone {
                smart_total += 1;
                if attrs.rat_support == RatSupport::UpTo5g {
                    smart_5g += 1;
                }
            }
        }
        let manufacturers = DeviceType::ALL
            .iter()
            .map(|&ty| {
                let mut v: Vec<(Manufacturer, f64)> = by_type_mfr[ty.index()]
                    .iter()
                    .map(|(&m, &c)| (m, c as f64 / type_counts[ty.index()].max(1) as f64))
                    .collect();
                // Tie-break on the manufacturer index: equal shares are
                // common at small scale, and HashMap iteration order must
                // not leak into the output.
                v.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite shares")
                        .then(a.0.index().cmp(&b.0.index()))
                });
                (ty, v)
            })
            .collect();
        DeviceMix {
            type_shares: [
                type_counts[0] as f64 / n,
                type_counts[1] as f64 / n,
                type_counts[2] as f64 / n,
            ],
            manufacturers,
            rat_support_shares: [
                rat_counts[0] as f64 / n,
                rat_counts[1] as f64 / n,
                rat_counts[2] as f64 / n,
                rat_counts[3] as f64 / n,
            ],
            smartphone_5g_share: smart_5g as f64 / smart_total.max(1) as f64,
        }
    }

    /// Share of UEs supporting at most 3G (the decommissioning headache).
    pub fn at_most_3g_share(&self) -> f64 {
        self.rat_support_shares[0] + self.rat_support_shares[1]
    }

    /// Render Fig. 4a.
    pub fn table_manufacturers(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 4a: Device types & top manufacturers",
            &["Device type", "Pop. share", "Top manufacturers (share within type)"],
        );
        for (ty, mfrs) in &self.manufacturers {
            let top: Vec<String> =
                mfrs.iter().take(5).map(|(m, s)| format!("{m} {}", pct(*s, 1))).collect();
            t.row(&[ty.to_string(), pct(self.type_shares[ty.index()], 1), top.join(", ")]);
        }
        t
    }

    /// Render Fig. 4b.
    pub fn table_rat_support(&self) -> TextTable {
        let mut t =
            TextTable::new("Fig 4b: Supported RATs across UEs", &["Ceiling", "Share of UEs"]);
        for rs in RatSupport::ALL {
            t.row(&[rs.to_string(), pct(self.rat_support_shares[rs as usize], 1)]);
        }
        t.row(&["5G among smartphones".to_string(), pct(self.smartphone_5g_share, 1)]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn dataset_stats_consistent() {
        let s = study();
        let stats = DatasetStats::compute(&s);
        assert_eq!(stats.ues, s.config.n_ues);
        assert_eq!(stats.days, s.config.n_days);
        assert!(stats.sectors > stats.sites);
        assert!(stats.daily_hos > 0.0);
        let rendered = stats.table().to_string();
        assert!(rendered.contains("# of cell sites"));
    }

    #[test]
    fn rat_usage_shares_sane() {
        let s = study();
        let usage = RatUsage::compute(&s);
        let sum: f64 = usage.time_shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(usage.epc_time_share > 0.5);
        assert!(usage.epc_ul_share > 0.8);
        assert!(usage.epc_dl_share > usage.epc_ul_share, "DL more EPC-skewed than UL");
    }

    #[test]
    fn device_mix_tracks_catalog() {
        let s = study();
        let mix = DeviceMix::compute(&s);
        let sum: f64 = mix.type_shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Smartphones dominate; Apple leads smartphones.
        assert!(mix.type_shares[0] > 0.45);
        let (_, smart_mfrs) = &mix.manufacturers[0];
        assert_eq!(smart_mfrs[0].0, Manufacturer::Apple);
        assert!(mix.at_most_3g_share() > 0.2);
        assert!(mix.smartphone_5g_share > 0.3 && mix.smartphone_5g_share < 0.7);
    }

    #[test]
    fn evolution_reaches_snapshot() {
        let s = study();
        let evo = DeploymentEvolution::compute(&s);
        assert!(evo.final_4g_share > 0.4);
        assert!(evo.final_5g_share > 0.02);
        assert!(evo.growth_2018_2023 > 0.0);
        assert_eq!(evo.table().len(), evo.history.years.len());
    }
}
