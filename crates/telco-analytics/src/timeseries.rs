//! §5.1 — Geo-temporal analysis (Fig. 7): weekly handover and
//! active-sector curves at 30-minute granularity, split urban/rural and
//! normalized by the period maximum (as the MNO's privacy rules require).

use serde::{Deserialize, Serialize};

use telco_geo::postcode::AreaType;
use telco_mobility::schedule::DayOfWeek;
use telco_stats::corr::pearson;
use telco_trace::columnar::ColumnBatch;
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::bitset::IdSet;
use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, TextTable};

/// 30-minute slots per week.
pub const SLOTS_PER_WEEK: usize = 48 * 7;

/// One weekly curve: average, minimum and maximum across the study's weeks
/// for each 30-minute slot of the week.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyCurve {
    /// Mean value per slot of week.
    pub mean: Vec<f64>,
    /// Minimum across weeks.
    pub min: Vec<f64>,
    /// Maximum across weeks.
    pub max: Vec<f64>,
}

impl WeeklyCurve {
    fn from_weeks(weeks: &[Vec<f64>]) -> Self {
        let n = SLOTS_PER_WEEK;
        let mut mean = vec![0.0; n];
        let mut min = vec![f64::INFINITY; n];
        let mut max = vec![0.0f64; n];
        for week in weeks {
            for (i, &v) in week.iter().enumerate() {
                mean[i] += v;
                min[i] = min[i].min(v);
                max[i] = max[i].max(v);
            }
        }
        let k = weeks.len().max(1) as f64;
        for v in &mut mean {
            *v /= k;
        }
        for v in &mut min {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        WeeklyCurve { mean, min, max }
    }

    /// Normalize all three series by the global maximum of `mean`.
    fn normalize(&mut self) {
        let peak = self.mean.iter().copied().fold(0.0f64, f64::max).max(1e-9);
        for series in [&mut self.mean, &mut self.min, &mut self.max] {
            for v in series.iter_mut() {
                *v /= peak;
            }
        }
    }

    /// Value at `(day-of-week, slot-of-day)`.
    pub fn at(&self, day: DayOfWeek, slot: usize) -> f64 {
        self.mean[day.index() * 48 + slot]
    }

    /// The slot-of-week index with maximum mean.
    pub fn peak_slot(&self) -> usize {
        (0..SLOTS_PER_WEEK)
            .max_by(|&a, &b| self.mean[a].partial_cmp(&self.mean[b]).expect("finite"))
            .expect("nonempty")
    }
}

/// Fig. 7 — temporal evolution of HOs (top) and active sectors (bottom),
/// urban and rural.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalEvolution {
    /// Normalized HO counts, urban.
    pub hos_urban: WeeklyCurve,
    /// Normalized HO counts, rural.
    pub hos_rural: WeeklyCurve,
    /// Normalized active-sector counts, urban.
    pub active_urban: WeeklyCurve,
    /// Normalized active-sector counts, rural.
    pub active_rural: WeeklyCurve,
    /// Share of all HOs occurring in urban areas (paper: 78%).
    pub urban_ho_share: f64,
    /// Pearson correlation between HO counts and active sectors (paper:
    /// 0.9).
    pub ho_active_correlation: f64,
    /// Sunday-vs-Friday peak drop (paper: ≈33%).
    pub sunday_vs_friday_drop: f64,
    /// Ratio of the 8:00 weekday level to the 6:00 level (paper: ×3).
    pub morning_surge: f64,
}

impl TemporalEvolution {
    /// Render the summary statistics (the curves themselves are series).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 7: Temporal evolution of HOs & active sectors",
            &["Metric", "Value"],
        );
        t.row_strs(&["Urban share of HOs", &num(100.0 * self.urban_ho_share, 1)]);
        t.row_strs(&["Pearson(HOs, active sectors)", &num(self.ho_active_correlation, 3)]);
        t.row_strs(&["Sunday vs Friday peak drop", &num(100.0 * self.sunday_vs_friday_drop, 1)]);
        t.row_strs(&["Morning surge 6:00→8:00 (×)", &num(self.morning_surge, 2)]);
        let peak = self.hos_urban.peak_slot();
        t.row_strs(&[
            "Urban peak (day, slot)",
            &format!("{} {:02}:{:02}", DayOfWeek::ALL[peak / 48], (peak % 48) / 2, (peak % 2) * 30),
        ]);
        t
    }
}

/// Streaming accumulator for [`TemporalEvolution`]. Postcodes lacking
/// reliable census data are dropped, as in the paper (§5.1 footnote).
/// Every (week, slot-of-week) index belongs to exactly one study day, so
/// day-partitioned merges add integer counts into disjoint slots and
/// union disjoint active-sector sets — exactly the sequential result.
#[derive(Debug, Default)]
pub struct TemporalPass {
    n_weeks: usize,
    /// `ho_weeks[area][week][slot_of_week]`, integer-valued counts.
    ho_weeks: [Vec<Vec<f64>>; 2],
    /// Active sectors: distinct sectors with ≥1 HO per slot (sector ids
    /// are dense, so a bitmap beats hashing in the record loop).
    active: Vec<[IdSet; 2]>,
    urban_total: u64,
    total: u64,
}

impl TemporalPass {
    #[inline]
    fn observe(&mut self, ts: u64, sector: u32, e: &Enriched) {
        if !e.reliable_of(sector) {
            return;
        }
        let area = e.area_of(sector);
        let day = (ts / 86_400_000) as u32;
        let week = (day / 7) as usize;
        if week >= self.n_weeks {
            return;
        }
        let slot_of_week = (day % 7) as usize * 48 + ((ts % 86_400_000) / 1_800_000) as usize;
        let ai = area.index().min(1);
        if let Some(week_slots) = self.ho_weeks[ai].get_mut(week) {
            if let Some(v) = week_slots.get_mut(slot_of_week) {
                *v += 1.0;
            }
        }
        if let Some(sets) = self.active.get_mut(week * SLOTS_PER_WEEK + slot_of_week) {
            sets[ai].insert(sector);
        }
        self.total += 1;
        if area == AreaType::Urban {
            self.urban_total += 1;
        }
    }
}

impl AnalysisPass for TemporalPass {
    type Output = TemporalEvolution;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.n_weeks = ctx.config.n_days.div_ceil(7).max(1) as usize;
        self.ho_weeks = [
            vec![vec![0.0; SLOTS_PER_WEEK]; self.n_weeks],
            vec![vec![0.0; SLOTS_PER_WEEK]; self.n_weeks],
        ];
        self.active = Vec::new();
        self.active.resize_with(self.n_weeks * SLOTS_PER_WEEK, Default::default);
        self.urban_total = 0;
        self.total = 0;
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.observe(r.timestamp_ms, r.source_sector.0, e);
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for (&ts, &sector) in batch.timestamps().iter().zip(batch.source_sectors()) {
            self.observe(ts, sector, e);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.ho_weeks.iter_mut().zip(other.ho_weeks) {
            for (week, t_week) in mine.iter_mut().zip(theirs) {
                for (v, t) in week.iter_mut().zip(t_week) {
                    *v += t;
                }
            }
        }
        for (mine, theirs) in self.active.iter_mut().zip(other.active) {
            for (set, t) in mine.iter_mut().zip(theirs) {
                set.union(&t);
            }
        }
        self.urban_total += other.urban_total;
        self.total += other.total;
    }

    fn end(self, _ctx: &SweepCtx) -> TemporalEvolution {
        let n_weeks = self.n_weeks;
        let active_weeks: [Vec<Vec<f64>>; 2] = [0, 1].map(|ai| {
            (0..n_weeks)
                .map(|w| {
                    (0..SLOTS_PER_WEEK)
                        .map(|s| self.active[w * SLOTS_PER_WEEK + s][ai].len() as f64)
                        .collect()
                })
                .collect()
        });

        let mut hos_urban = WeeklyCurve::from_weeks(&self.ho_weeks[0]);
        let mut hos_rural = WeeklyCurve::from_weeks(&self.ho_weeks[1]);
        let mut active_urban = WeeklyCurve::from_weeks(&active_weeks[0]);
        let mut active_rural = WeeklyCurve::from_weeks(&active_weeks[1]);

        // Correlation before normalization (it is scale-free anyway).
        let combined_hos: Vec<f64> =
            (0..SLOTS_PER_WEEK).map(|i| hos_urban.mean[i] + hos_rural.mean[i]).collect();
        let combined_active: Vec<f64> =
            (0..SLOTS_PER_WEEK).map(|i| active_urban.mean[i] + active_rural.mean[i]).collect();
        let correlation = pearson(&combined_hos, &combined_active).unwrap_or(0.0);

        let peak_of_day = |day: DayOfWeek| -> f64 {
            (0..48).map(|s| combined_hos[day.index() * 48 + s]).fold(0.0f64, f64::max)
        };
        let friday = peak_of_day(DayOfWeek::Friday);
        let sunday = peak_of_day(DayOfWeek::Sunday);
        // Average weekday 6:00 vs 8:00 levels.
        let weekday_level =
            |slot: usize| -> f64 { (0..5).map(|d| combined_hos[d * 48 + slot]).sum::<f64>() / 5.0 };
        let morning_surge = weekday_level(16) / weekday_level(12).max(1e-9);

        hos_urban.normalize();
        hos_rural.normalize();
        active_urban.normalize();
        active_rural.normalize();

        TemporalEvolution {
            hos_urban,
            hos_rural,
            active_urban,
            active_rural,
            urban_ho_share: self.urban_total as f64 / self.total.max(1) as f64,
            ho_active_correlation: correlation,
            sunday_vs_friday_drop: 1.0 - sunday / friday.max(1e-9),
            morning_surge,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.n_weeks as u64);
        for area in &self.ho_weeks {
            w.put_varint(area.len() as u64);
            for week in area {
                w.put_f64s(week);
            }
        }
        w.put_varint(self.active.len() as u64);
        for slot in &self.active {
            for set in slot {
                set.snapshot(w);
            }
        }
        w.put_varint(self.urban_total);
        w.put_varint(self.total);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.n_weeks = r.get_len()?;
        for area in &mut self.ho_weeks {
            let weeks = r.get_len()?;
            *area = Vec::with_capacity(weeks);
            for _ in 0..weeks {
                area.push(r.get_f64s()?);
            }
        }
        let slots = r.get_len()?;
        self.active = Vec::new();
        self.active.resize_with(slots, Default::default);
        for slot in &mut self.active {
            for set in slot {
                set.restore(r)?;
            }
        }
        self.urban_total = r.get_varint()?;
        self.total = r.get_varint()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig};

    fn evolution() -> TemporalEvolution {
        // A one-week study so every day of week is populated.
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 600;
        cfg.n_days = 7;
        let data = run_study(cfg);
        Sweep::new(&data).run(TemporalPass::default).unwrap()
    }

    #[test]
    fn urban_dominates_handovers() {
        let e = evolution();
        assert!(e.urban_ho_share > 0.55, "urban HO share {} too low", e.urban_ho_share);
    }

    #[test]
    fn hos_and_active_sectors_correlate() {
        let e = evolution();
        assert!(e.ho_active_correlation > 0.6, "corr {}", e.ho_active_correlation);
    }

    #[test]
    fn weekday_peak_in_business_hours() {
        let e = evolution();
        let peak = e.hos_urban.peak_slot();
        let day = peak / 48;
        let slot = peak % 48;
        assert!(day < 5, "peak on a weekend day {day}");
        assert!((12..36).contains(&slot), "peak slot {slot} outside daytime");
    }

    #[test]
    fn sunday_quieter_than_friday() {
        let e = evolution();
        assert!(e.sunday_vs_friday_drop > 0.1, "Sunday drop {}", e.sunday_vs_friday_drop);
    }

    #[test]
    fn morning_surge_exists() {
        let e = evolution();
        assert!(e.morning_surge > 1.5, "surge ×{}", e.morning_surge);
    }

    #[test]
    fn curves_normalized_to_unit_peak() {
        let e = evolution();
        let m = e.hos_urban.mean.iter().copied().fold(0.0f64, f64::max);
        assert!((m - 1.0).abs() < 1e-9);
    }
}
