//! Record enrichment and the sector-day observation frame.
//!
//! Most analyses join the handover trace against the topology, the device
//! catalog and the census. [`Enriched`] provides those joins per record;
//! [`SectorDayFrame`] is the §6.3 reshape — one observation per
//! `(source sector, day, HO type)` with the covariates of Table 3.

use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer};
use telco_geo::district::{DistrictId, Region};
use telco_geo::postcode::AreaType;
use telco_signaling::messages::HoType;
use telco_sim::{StudyData, World};
use telco_topology::elements::SectorId;
use telco_topology::vendor::Vendor;
use telco_trace::io::CodecError;
use telco_trace::record::HoRecord;
use telco_trace::store::{ChunkIssue, TraceReader};

/// Per-record join helpers over a completed study.
#[derive(Clone, Copy)]
pub struct Enriched<'a> {
    study: &'a StudyData,
}

impl<'a> Enriched<'a> {
    /// Wrap a study.
    pub fn new(study: &'a StudyData) -> Self {
        Enriched { study }
    }

    /// The underlying study.
    pub fn study(&self) -> &'a StudyData {
        self.study
    }

    /// Urban/rural classification of the record's source sector.
    pub fn area(&self, r: &HoRecord) -> AreaType {
        let pc = self.study.world.topology.sector_postcode(r.source_sector);
        self.study.world.country.postcode(pc).area_type
    }

    /// District of the record's source sector.
    pub fn district(&self, r: &HoRecord) -> DistrictId {
        self.study.world.topology.sector_district(r.source_sector)
    }

    /// Region of the record's source sector.
    pub fn region(&self, r: &HoRecord) -> Region {
        self.study.world.country.district(self.district(r)).region
    }

    /// Antenna vendor of the record's source sector.
    pub fn vendor(&self, r: &HoRecord) -> Vendor {
        self.study.world.topology.sector(r.source_sector).vendor
    }

    /// Device type of the record's UE.
    pub fn device_type(&self, r: &HoRecord) -> DeviceType {
        self.study.world.ue(r.ue).device_type
    }

    /// Manufacturer of the record's UE.
    pub fn manufacturer(&self, r: &HoRecord) -> Manufacturer {
        self.study.world.ue(r.ue).manufacturer
    }
}

/// One observation of the §6.3 reshape: the daily HOF rate of one source
/// sector for one handover type, with the Table 3 covariates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorDayObs {
    /// Source sector.
    pub sector: SectorId,
    /// Study day (or window index for windowed frames).
    pub day: u32,
    /// Handover type of the cell.
    pub ho_type: HoType,
    /// Handovers of this type from this sector this day.
    pub hos: u32,
    /// Failures among them.
    pub hofs: u32,
    /// Total daily handovers of the sector across all types ("Number of
    /// HOs per day" covariate).
    pub daily_hos: u32,
    /// Urban/rural classification.
    pub area: AreaType,
    /// Antenna vendor.
    pub vendor: Vendor,
    /// Sector region.
    pub region: Region,
    /// District population.
    pub district_population: u64,
}

impl SectorDayObs {
    /// HOF rate in percent.
    pub fn hof_rate_pct(&self) -> f64 {
        if self.hos == 0 {
            0.0
        } else {
            100.0 * self.hofs as f64 / self.hos as f64
        }
    }
}

/// The full sector-day observation table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SectorDayFrame {
    observations: Vec<SectorDayObs>,
}

impl SectorDayFrame {
    /// Build the daily frame from a study (single pass over the trace).
    pub fn build(study: &StudyData) -> Self {
        Self::build_windowed(study, 1)
    }

    /// Build the frame with `window_days`-long periods instead of single
    /// days. The paper's sectors carry thousands of daily handovers; at
    /// simulation scale the statistically equivalent observation pools
    /// several days, so the per-cell HOF rate is not quantized to zero.
    /// `daily_hos` is reported per day (window total / window length).
    pub fn build_windowed(study: &StudyData, window_days: u32) -> Self {
        Self::from_records(
            &study.world,
            study.output.dataset.records().iter().copied(),
            window_days,
        )
    }

    /// Build the frame from any record stream — one pass, memory bounded
    /// by the number of distinct `(sector, window, type)` cells, never the
    /// record count. The in-memory [`SectorDayFrame::build_windowed`]
    /// delegates here; out-of-core callers feed it straight from a
    /// [`TraceReader`] via [`SectorDayFrame::from_reader`].
    pub fn from_records(
        world: &World,
        records: impl IntoIterator<Item = HoRecord>,
        window_days: u32,
    ) -> Self {
        let mut builder = FrameBuilder::new(window_days);
        for r in records {
            builder.add(&r);
        }
        builder.finish(world)
    }

    /// Stream a trace into a frame without materializing the dataset:
    /// one pass, one chunk in memory at a time. Damaged chunks are
    /// skipped with the issue left on the reader ([`TraceReader::issues`])
    /// — check it afterwards if partial aggregation matters — while
    /// underlying I/O failures abort the build.
    pub fn from_reader<R: std::io::Read>(
        world: &World,
        reader: &mut TraceReader<R>,
        window_days: u32,
    ) -> Result<Self, ChunkIssue> {
        let mut builder = FrameBuilder::new(window_days);
        while let Some(chunk) = reader.next_chunk() {
            match chunk {
                Ok(records) => {
                    for r in &records {
                        builder.add(r);
                    }
                }
                Err(issue) if matches!(issue.error, CodecError::Io(_)) => return Err(issue),
                Err(_) => {} // corruption: skip the chunk, keep aggregating
            }
        }
        Ok(builder.finish(world))
    }

    /// All observations.
    pub fn observations(&self) -> &[SectorDayObs] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observations of one handover type.
    pub fn of_type(&self, ho_type: HoType) -> impl Iterator<Item = &SectorDayObs> + '_ {
        self.observations.iter().filter(move |o| o.ho_type == ho_type)
    }

    /// The paper's outlier filter (Table 5 footnote, scaled): keep cells
    /// with HOF rate below `max_rate_pct` and daily HOs within
    /// `[min_daily, max_daily]`.
    pub fn filtered(
        &self,
        max_rate_pct: f64,
        min_daily: u32,
        max_daily: u32,
    ) -> Vec<&SectorDayObs> {
        self.observations
            .iter()
            .filter(|o| {
                o.hof_rate_pct() < max_rate_pct
                    && o.daily_hos >= min_daily
                    && o.daily_hos <= max_daily
            })
            .collect()
    }
}

/// Streaming aggregation state of the §6.3 reshape: two hash maps keyed
/// by sector/window, independent of how many records flow through.
struct FrameBuilder {
    window_days: u32,
    /// (sector, window, type) → (hos, hofs).
    cells: std::collections::HashMap<(u32, u32, usize), (u32, u32)>,
    /// (sector, window) → total handovers across types.
    totals: std::collections::HashMap<(u32, u32), u32>,
}

impl FrameBuilder {
    fn new(window_days: u32) -> Self {
        FrameBuilder {
            window_days: window_days.max(1),
            cells: std::collections::HashMap::new(),
            totals: std::collections::HashMap::new(),
        }
    }

    fn add(&mut self, r: &HoRecord) {
        let window = r.day() / self.window_days;
        let e =
            self.cells.entry((r.source_sector.0, window, r.ho_type().index())).or_insert((0, 0));
        e.0 += 1;
        e.1 += u32::from(r.is_failure());
        *self.totals.entry((r.source_sector.0, window)).or_insert(0) += 1;
    }

    fn finish(self, world: &World) -> SectorDayFrame {
        let FrameBuilder { window_days, cells, totals } = self;
        let mut observations: Vec<SectorDayObs> = cells
            .into_iter()
            .map(|((sector, day, type_idx), (hos, hofs))| {
                let sector_id = SectorId(sector);
                let pc = world.topology.sector_postcode(sector_id);
                let postcode = world.country.postcode(pc);
                let district = world.country.district(postcode.district);
                SectorDayObs {
                    sector: sector_id,
                    day,
                    ho_type: HoType::ALL[type_idx],
                    hos,
                    hofs,
                    daily_hos: (totals[&(sector, day)] / window_days).max(1),
                    area: postcode.area_type,
                    vendor: world.topology.sector(sector_id).vendor,
                    region: district.region,
                    district_population: district.population,
                }
            })
            .collect();
        observations.sort_by_key(|o| (o.sector.0, o.day, o.ho_type.index()));
        SectorDayFrame { observations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn frame_covers_every_record() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        let total_hos: u32 = frame.observations().iter().map(|o| o.hos).sum();
        assert_eq!(total_hos as usize, s.output.dataset.len());
        let total_hofs: u32 = frame.observations().iter().map(|o| o.hofs).sum();
        assert_eq!(total_hofs as usize, s.output.dataset.failures().count());
    }

    #[test]
    fn daily_totals_are_consistent() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.observations() {
            assert!(o.daily_hos >= o.hos, "cell exceeds its sector-day total");
            assert!(o.hofs <= o.hos);
        }
    }

    #[test]
    fn enrichment_matches_world() {
        let s = study();
        let e = Enriched::new(&s);
        for r in s.output.dataset.records().iter().take(50) {
            let pc = s.world.topology.sector_postcode(r.source_sector);
            assert_eq!(e.area(r), s.world.country.postcode(pc).area_type);
            assert_eq!(e.device_type(r), s.world.ue(r.ue).device_type);
        }
    }

    #[test]
    fn filter_bounds_apply() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.filtered(50.0, 2, 10_000) {
            assert!(o.hof_rate_pct() < 50.0);
            assert!(o.daily_hos >= 2);
        }
    }

    #[test]
    fn from_reader_matches_in_memory_build() {
        let s = study();
        let in_mem = SectorDayFrame::build(&s);
        // Round the trace through the v2 store and aggregate the stream.
        let mut w = telco_trace::store::TraceWriter::new(Vec::new(), s.config.n_days).unwrap();
        w.write_dataset(&s.output.dataset).unwrap();
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let streamed = SectorDayFrame::from_reader(&s.world, &mut reader, 1).unwrap();
        assert_eq!(streamed.observations(), in_mem.observations());
        assert!(reader.issues().is_empty());
    }

    #[test]
    fn from_reader_skips_damaged_chunks() {
        let s = study();
        let mut w = telco_trace::store::TraceWriter::new(Vec::new(), s.config.n_days).unwrap();
        w.write_dataset(&s.output.dataset).unwrap();
        let mut bytes = w.finish().unwrap();
        // Corrupt one payload byte inside the first chunk.
        bytes[10 + 16 + 40] ^= 0x40;
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let frame = SectorDayFrame::from_reader(&s.world, &mut reader, 1).unwrap();
        let in_mem = SectorDayFrame::build(&s);
        let streamed_hos: u32 = frame.observations().iter().map(|o| o.hos).sum();
        let full_hos: u32 = in_mem.observations().iter().map(|o| o.hos).sum();
        assert!(streamed_hos < full_hos, "damaged chunk was not skipped");
        assert_eq!(reader.issues().len(), 1);
    }

    #[test]
    fn observations_sorted_and_deterministic() {
        let s = study();
        let a = SectorDayFrame::build(&s);
        let b = SectorDayFrame::build(&s);
        assert_eq!(a.observations(), b.observations());
        assert!(a
            .observations()
            .windows(2)
            .all(|w| (w[0].sector.0, w[0].day) <= (w[1].sector.0, w[1].day)));
    }
}
