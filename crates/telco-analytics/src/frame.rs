//! Record enrichment and the sector-day observation frame.
//!
//! Most analyses join the handover trace against the topology, the device
//! catalog and the census. [`Enriched`] provides those joins per record;
//! [`SectorDayFrame`] is the §6.3 reshape — one observation per
//! `(source sector, day, HO type)` with the covariates of Table 3.

use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer};
use telco_geo::district::{DistrictId, Region};
use telco_geo::postcode::AreaType;
use telco_signaling::messages::HoType;
use telco_sim::StudyData;
use telco_topology::elements::SectorId;
use telco_topology::vendor::Vendor;
use telco_trace::record::HoRecord;

/// Per-record join helpers over a completed study.
#[derive(Clone, Copy)]
pub struct Enriched<'a> {
    study: &'a StudyData,
}

impl<'a> Enriched<'a> {
    /// Wrap a study.
    pub fn new(study: &'a StudyData) -> Self {
        Enriched { study }
    }

    /// The underlying study.
    pub fn study(&self) -> &'a StudyData {
        self.study
    }

    /// Urban/rural classification of the record's source sector.
    pub fn area(&self, r: &HoRecord) -> AreaType {
        let pc = self.study.world.topology.sector_postcode(r.source_sector);
        self.study.world.country.postcode(pc).area_type
    }

    /// District of the record's source sector.
    pub fn district(&self, r: &HoRecord) -> DistrictId {
        self.study.world.topology.sector_district(r.source_sector)
    }

    /// Region of the record's source sector.
    pub fn region(&self, r: &HoRecord) -> Region {
        self.study.world.country.district(self.district(r)).region
    }

    /// Antenna vendor of the record's source sector.
    pub fn vendor(&self, r: &HoRecord) -> Vendor {
        self.study.world.topology.sector(r.source_sector).vendor
    }

    /// Device type of the record's UE.
    pub fn device_type(&self, r: &HoRecord) -> DeviceType {
        self.study.world.ue(r.ue).device_type
    }

    /// Manufacturer of the record's UE.
    pub fn manufacturer(&self, r: &HoRecord) -> Manufacturer {
        self.study.world.ue(r.ue).manufacturer
    }
}

/// One observation of the §6.3 reshape: the daily HOF rate of one source
/// sector for one handover type, with the Table 3 covariates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorDayObs {
    /// Source sector.
    pub sector: SectorId,
    /// Study day (or window index for windowed frames).
    pub day: u32,
    /// Handover type of the cell.
    pub ho_type: HoType,
    /// Handovers of this type from this sector this day.
    pub hos: u32,
    /// Failures among them.
    pub hofs: u32,
    /// Total daily handovers of the sector across all types ("Number of
    /// HOs per day" covariate).
    pub daily_hos: u32,
    /// Urban/rural classification.
    pub area: AreaType,
    /// Antenna vendor.
    pub vendor: Vendor,
    /// Sector region.
    pub region: Region,
    /// District population.
    pub district_population: u64,
}

impl SectorDayObs {
    /// HOF rate in percent.
    pub fn hof_rate_pct(&self) -> f64 {
        if self.hos == 0 {
            0.0
        } else {
            100.0 * self.hofs as f64 / self.hos as f64
        }
    }
}

/// The full sector-day observation table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SectorDayFrame {
    observations: Vec<SectorDayObs>,
}

impl SectorDayFrame {
    /// Build the daily frame from a study (single pass over the trace).
    pub fn build(study: &StudyData) -> Self {
        Self::build_windowed(study, 1)
    }

    /// Build the frame with `window_days`-long periods instead of single
    /// days. The paper's sectors carry thousands of daily handovers; at
    /// simulation scale the statistically equivalent observation pools
    /// several days, so the per-cell HOF rate is not quantized to zero.
    /// `daily_hos` is reported per day (window total / window length).
    pub fn build_windowed(study: &StudyData, window_days: u32) -> Self {
        use std::collections::HashMap;
        let window_days = window_days.max(1);
        let enriched = Enriched::new(study);
        // (sector, window, type) → (hos, hofs); (sector, window) → total.
        let mut cells: HashMap<(u32, u32, usize), (u32, u32)> = HashMap::new();
        let mut totals: HashMap<(u32, u32), u32> = HashMap::new();
        for r in study.output.dataset.records() {
            let window = r.day() / window_days;
            let key = (r.source_sector.0, window, r.ho_type().index());
            let e = cells.entry(key).or_insert((0, 0));
            e.0 += 1;
            e.1 += u32::from(r.is_failure());
            *totals.entry((r.source_sector.0, window)).or_insert(0) += 1;
        }
        let mut observations: Vec<SectorDayObs> = cells
            .into_iter()
            .map(|((sector, day, type_idx), (hos, hofs))| {
                let sector_id = SectorId(sector);
                let pc = study.world.topology.sector_postcode(sector_id);
                let postcode = study.world.country.postcode(pc);
                let district = study.world.country.district(postcode.district);
                let _ = &enriched;
                SectorDayObs {
                    sector: sector_id,
                    day,
                    ho_type: HoType::ALL[type_idx],
                    hos,
                    hofs,
                    daily_hos: (totals[&(sector, day)] / window_days).max(1),
                    area: postcode.area_type,
                    vendor: study.world.topology.sector(sector_id).vendor,
                    region: district.region,
                    district_population: district.population,
                }
            })
            .collect();
        observations.sort_by_key(|o| (o.sector.0, o.day, o.ho_type.index()));
        SectorDayFrame { observations }
    }

    /// All observations.
    pub fn observations(&self) -> &[SectorDayObs] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observations of one handover type.
    pub fn of_type(&self, ho_type: HoType) -> impl Iterator<Item = &SectorDayObs> + '_ {
        self.observations.iter().filter(move |o| o.ho_type == ho_type)
    }

    /// The paper's outlier filter (Table 5 footnote, scaled): keep cells
    /// with HOF rate below `max_rate_pct` and daily HOs within
    /// `[min_daily, max_daily]`.
    pub fn filtered(
        &self,
        max_rate_pct: f64,
        min_daily: u32,
        max_daily: u32,
    ) -> Vec<&SectorDayObs> {
        self.observations
            .iter()
            .filter(|o| {
                o.hof_rate_pct() < max_rate_pct
                    && o.daily_hos >= min_daily
                    && o.daily_hos <= max_daily
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn frame_covers_every_record() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        let total_hos: u32 = frame.observations().iter().map(|o| o.hos).sum();
        assert_eq!(total_hos as usize, s.output.dataset.len());
        let total_hofs: u32 = frame.observations().iter().map(|o| o.hofs).sum();
        assert_eq!(total_hofs as usize, s.output.dataset.failures().count());
    }

    #[test]
    fn daily_totals_are_consistent() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.observations() {
            assert!(o.daily_hos >= o.hos, "cell exceeds its sector-day total");
            assert!(o.hofs <= o.hos);
        }
    }

    #[test]
    fn enrichment_matches_world() {
        let s = study();
        let e = Enriched::new(&s);
        for r in s.output.dataset.records().iter().take(50) {
            let pc = s.world.topology.sector_postcode(r.source_sector);
            assert_eq!(e.area(r), s.world.country.postcode(pc).area_type);
            assert_eq!(e.device_type(r), s.world.ue(r.ue).device_type);
        }
    }

    #[test]
    fn filter_bounds_apply() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.filtered(50.0, 2, 10_000) {
            assert!(o.hof_rate_pct() < 50.0);
            assert!(o.daily_hos >= 2);
        }
    }

    #[test]
    fn observations_sorted_and_deterministic() {
        let s = study();
        let a = SectorDayFrame::build(&s);
        let b = SectorDayFrame::build(&s);
        assert_eq!(a.observations(), b.observations());
        assert!(a
            .observations()
            .windows(2)
            .all(|w| (w[0].sector.0, w[0].day) <= (w[1].sector.0, w[1].day)));
    }
}
