//! Record enrichment and the sector-day observation frame.
//!
//! Most analyses join the handover trace against the topology, the device
//! catalog and the census. [`Enriched`] provides those joins per record;
//! [`SectorDayFrame`] is the §6.3 reshape — one observation per
//! `(source sector, day, HO type)` with the covariates of Table 3. The
//! frame is built by [`FramePass`] inside the shared analysis sweep, so a
//! full study never re-scans the trace for it.

use serde::{Deserialize, Serialize};

use telco_devices::population::UeId;
use telco_devices::types::{DeviceType, Manufacturer};
use telco_geo::district::{DistrictId, Region};
use telco_geo::postcode::AreaType;
use telco_signaling::messages::HoType;
use telco_sim::{StudyData, World};
use telco_topology::elements::SectorId;
use telco_topology::vendor::Vendor;
use telco_trace::columnar::{ColumnBatch, FLAG_FAILURE};
use telco_trace::hash::FxHashMap;
use telco_trace::io::CodecError;
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};
use telco_trace::store::{ChunkIssue, TraceReader};

use crate::sweep::{AnalysisPass, SweepCtx};

/// Per-record join helpers over the simulated world. Only the world is
/// needed — enrichment never touches the trace itself, which is what lets
/// every pass share one traversal.
///
/// Construction flattens the multi-hop world joins (sector → site →
/// postcode → district, UE → catalog entry) into dense lookup tables
/// indexed by the raw sector/UE ids, built once per sweep in
/// `O(sectors + UEs)`. The per-record joins the passes perform millions
/// of times then cost one bounds-checked array load instead of two or
/// three pointer chases — the `*_of` accessors are what the column-scan
/// pass implementations use. Ids outside the tables (impossible for a
/// well-formed world; conceivable for a corrupt-but-CRC-clean trace)
/// fall back to the original world join, preserving its behavior
/// exactly.
pub struct Enriched<'a> {
    world: &'a World,
    /// Sector → urban/rural of its postcode, indexed by `SectorId.0`.
    sector_area: Vec<AreaType>,
    /// Sector → district, indexed by `SectorId.0`.
    sector_district: Vec<DistrictId>,
    /// Sector → antenna vendor, indexed by `SectorId.0`.
    sector_vendor: Vec<Vendor>,
    /// Sector → census reliability of its postcode, indexed by `SectorId.0`.
    sector_reliable: Vec<bool>,
    /// UE → device type, indexed by `UeId.0`.
    ue_device: Vec<DeviceType>,
    /// UE → manufacturer, indexed by `UeId.0`.
    ue_mfr: Vec<Manufacturer>,
    /// UE → `Manufacturer::index()`, cached because that index is a
    /// linear scan of the catalog — far too slow for a per-record loop.
    ue_mfr_idx: Vec<u8>,
    /// UE → home district, indexed by `UeId.0`.
    ue_home_district: Vec<DistrictId>,
}

impl<'a> Enriched<'a> {
    /// Wrap a world, building the flat join tables.
    pub fn new(world: &'a World) -> Self {
        let topo = &world.topology;
        let n_sectors = topo.sectors().len();
        let mut sector_area = Vec::with_capacity(n_sectors);
        let mut sector_district = Vec::with_capacity(n_sectors);
        let mut sector_vendor = Vec::with_capacity(n_sectors);
        let mut sector_reliable = Vec::with_capacity(n_sectors);
        for s in topo.sectors() {
            let pc = world.country.postcode(topo.sector_postcode(s.id));
            sector_area.push(pc.area_type);
            sector_reliable.push(pc.census_reliable);
            sector_district.push(topo.sector_district(s.id));
            sector_vendor.push(s.vendor);
        }
        let n_ues = world.ues.len();
        let mut ue_device = Vec::with_capacity(n_ues);
        let mut ue_mfr = Vec::with_capacity(n_ues);
        let mut ue_mfr_idx = Vec::with_capacity(n_ues);
        let mut ue_home_district = Vec::with_capacity(n_ues);
        for ue in &world.ues {
            ue_device.push(ue.device_type);
            ue_mfr.push(ue.manufacturer);
            ue_mfr_idx.push(ue.manufacturer.index() as u8);
            ue_home_district.push(world.country.postcode(ue.home_postcode).district);
        }
        Enriched {
            world,
            sector_area,
            sector_district,
            sector_vendor,
            sector_reliable,
            ue_device,
            ue_mfr,
            ue_mfr_idx,
            ue_home_district,
        }
    }

    /// The underlying world.
    pub fn world(&self) -> &'a World {
        self.world
    }

    /// Urban/rural classification of a source sector by raw id.
    #[inline]
    pub fn area_of(&self, sector: u32) -> AreaType {
        match self.sector_area.get(sector as usize) {
            Some(&a) => a,
            None => {
                let pc = self.world.topology.sector_postcode(SectorId(sector));
                self.world.country.postcode(pc).area_type
            }
        }
    }

    /// District of a source sector by raw id.
    #[inline]
    pub fn district_of(&self, sector: u32) -> DistrictId {
        match self.sector_district.get(sector as usize) {
            Some(&d) => d,
            None => self.world.topology.sector_district(SectorId(sector)),
        }
    }

    /// Antenna vendor of a source sector by raw id.
    #[inline]
    pub fn vendor_of(&self, sector: u32) -> Vendor {
        match self.sector_vendor.get(sector as usize) {
            Some(&v) => v,
            None => self.world.topology.sector(SectorId(sector)).vendor,
        }
    }

    /// Whether the census entry behind a sector's postcode is reliable.
    #[inline]
    pub fn reliable_of(&self, sector: u32) -> bool {
        match self.sector_reliable.get(sector as usize) {
            Some(&ok) => ok,
            None => {
                let pc = self.world.topology.sector_postcode(SectorId(sector));
                self.world.country.postcode(pc).census_reliable
            }
        }
    }

    /// Device type of a UE by raw id.
    #[inline]
    pub fn device_of(&self, ue: u32) -> DeviceType {
        match self.ue_device.get(ue as usize) {
            Some(&d) => d,
            None => self.world.ue(UeId(ue)).device_type,
        }
    }

    /// Manufacturer of a UE by raw id.
    #[inline]
    pub fn manufacturer_of(&self, ue: u32) -> Manufacturer {
        match self.ue_mfr.get(ue as usize) {
            Some(&m) => m,
            None => self.world.ue(UeId(ue)).manufacturer,
        }
    }

    /// `Manufacturer::index()` of a UE's manufacturer by raw id (cached).
    #[inline]
    pub fn manufacturer_idx_of(&self, ue: u32) -> usize {
        match self.ue_mfr_idx.get(ue as usize) {
            Some(&i) => i as usize,
            None => self.world.ue(UeId(ue)).manufacturer.index(),
        }
    }

    /// Home district of a UE by raw id.
    #[inline]
    pub fn home_district_of(&self, ue: u32) -> DistrictId {
        match self.ue_home_district.get(ue as usize) {
            Some(&d) => d,
            None => self.world.country.postcode(self.world.ue(UeId(ue)).home_postcode).district,
        }
    }

    /// Urban/rural classification of the record's source sector.
    #[inline]
    pub fn area(&self, r: &HoRecord) -> AreaType {
        self.area_of(r.source_sector.0)
    }

    /// District of the record's source sector.
    #[inline]
    pub fn district(&self, r: &HoRecord) -> DistrictId {
        self.district_of(r.source_sector.0)
    }

    /// Region of the record's source sector.
    pub fn region(&self, r: &HoRecord) -> Region {
        self.world.country.district(self.district(r)).region
    }

    /// Antenna vendor of the record's source sector.
    #[inline]
    pub fn vendor(&self, r: &HoRecord) -> Vendor {
        self.vendor_of(r.source_sector.0)
    }

    /// Device type of the record's UE.
    #[inline]
    pub fn device_type(&self, r: &HoRecord) -> DeviceType {
        self.device_of(r.ue.0)
    }

    /// Manufacturer of the record's UE.
    #[inline]
    pub fn manufacturer(&self, r: &HoRecord) -> Manufacturer {
        self.manufacturer_of(r.ue.0)
    }

    /// Home district of the record's UE (where its home postcode lies).
    #[inline]
    pub fn home_district(&self, r: &HoRecord) -> DistrictId {
        self.home_district_of(r.ue.0)
    }
}

/// One observation of the §6.3 reshape: the daily HOF rate of one source
/// sector for one handover type, with the Table 3 covariates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorDayObs {
    /// Source sector.
    pub sector: SectorId,
    /// Study day (or window index for windowed frames).
    pub day: u32,
    /// Handover type of the cell.
    pub ho_type: HoType,
    /// Handovers of this type from this sector this day.
    pub hos: u32,
    /// Failures among them.
    pub hofs: u32,
    /// Total daily handovers of the sector across all types ("Number of
    /// HOs per day" covariate).
    pub daily_hos: u32,
    /// Urban/rural classification.
    pub area: AreaType,
    /// Antenna vendor.
    pub vendor: Vendor,
    /// Sector region.
    pub region: Region,
    /// District population.
    pub district_population: u64,
}

impl SectorDayObs {
    /// HOF rate in percent.
    pub fn hof_rate_pct(&self) -> f64 {
        if self.hos == 0 {
            0.0
        } else {
            100.0 * self.hofs as f64 / self.hos as f64
        }
    }
}

/// The full sector-day observation table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SectorDayFrame {
    observations: Vec<SectorDayObs>,
}

impl SectorDayFrame {
    /// Build the daily frame from a study in one trace traversal.
    ///
    /// # Panics
    ///
    /// Panics if a spilled trace fails with an I/O error mid-stream.
    pub fn build(study: &StudyData) -> Self {
        Self::build_windowed(study, 1)
    }

    /// Build the frame with `window_days`-long periods instead of single
    /// days. The paper's sectors carry thousands of daily handovers; at
    /// simulation scale the statistically equivalent observation pools
    /// several days, so the per-cell HOF rate is not quantized to zero.
    /// `daily_hos` is reported per day (window total / window length).
    ///
    /// # Panics
    ///
    /// Panics if a spilled trace fails with an I/O error mid-stream.
    pub fn build_windowed(study: &StudyData, window_days: u32) -> Self {
        let mut builder = FrameBuilder::new(window_days);
        study
            .trace
            .for_each_chunk(|chunk| builder.add_chunk(chunk))
            .expect("trace stream failed while building the frame");
        builder.finish(&study.world)
    }

    /// Build the frame from any record stream — one pass, memory bounded
    /// by the number of distinct `(sector, window, type)` cells, never the
    /// record count.
    pub fn from_records(
        world: &World,
        records: impl IntoIterator<Item = HoRecord>,
        window_days: u32,
    ) -> Self {
        let mut builder = FrameBuilder::new(window_days);
        for r in records {
            builder.add(&r);
        }
        builder.finish(world)
    }

    /// Stream a trace into a frame without materializing the dataset:
    /// one pass, one chunk in memory at a time. Damaged chunks are
    /// skipped with the issue left on the reader ([`TraceReader::issues`])
    /// — check it afterwards if partial aggregation matters — while
    /// underlying I/O failures abort the build.
    pub fn from_reader<R: std::io::Read>(
        world: &World,
        reader: &mut TraceReader<R>,
        window_days: u32,
    ) -> Result<Self, ChunkIssue> {
        let mut builder = FrameBuilder::new(window_days);
        let mut chunk: Vec<HoRecord> = Vec::new();
        while let Some(result) = reader.next_chunk_into(&mut chunk) {
            match result {
                Ok(()) => builder.add_chunk(&chunk),
                Err(issue) if matches!(issue.error, CodecError::Io(_)) => return Err(issue),
                Err(_) => {} // corruption: skip the chunk, keep aggregating
            }
        }
        Ok(builder.finish(world))
    }

    /// All observations.
    pub fn observations(&self) -> &[SectorDayObs] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observations of one handover type.
    pub fn of_type(&self, ho_type: HoType) -> impl Iterator<Item = &SectorDayObs> + '_ {
        self.observations.iter().filter(move |o| o.ho_type == ho_type)
    }

    /// The paper's outlier filter (Table 5 footnote, scaled): keep cells
    /// with HOF rate below `max_rate_pct` and daily HOs within
    /// `[min_daily, max_daily]`.
    pub fn filtered(
        &self,
        max_rate_pct: f64,
        min_daily: u32,
        max_daily: u32,
    ) -> Vec<&SectorDayObs> {
        self.observations
            .iter()
            .filter(|o| {
                o.hof_rate_pct() < max_rate_pct
                    && o.daily_hos >= min_daily
                    && o.daily_hos <= max_daily
            })
            .collect()
    }
}

/// One `(sector, window)` group of the frame accumulator: `(hos, hofs)`
/// per handover type. The window total — the `daily_hos` covariate — is
/// the sum across types, derived at `finish` instead of being tracked in
/// a second map.
type CellGroup = [(u32, u32); HoType::ALL.len()];

/// Streaming aggregation state of the §6.3 reshape, independent of how
/// many records flow through.
///
/// This is the hottest per-record loop in the analytics layer (the
/// stream-aggregate benchmark is essentially this plus the codec), so
/// the layout is chosen for one hash operation per record: a single
/// [`FxHashMap`] keyed by the packed `sector << 32 | window` word, whose
/// value carries all three per-type cells inline. The previous shape —
/// two SipHash maps, `(sector, window, type) → cell` plus
/// `(sector, window) → total` — cost two randomized-SipHash probes per
/// record and dominated the profile.
pub(crate) struct FrameBuilder {
    window_days: u32,
    /// Dense-grid bounds: sector ids `< n_sectors` and windows
    /// `< n_windows` index `dense` arithmetically; everything else (and
    /// every cell when no grid was provisioned) goes through `spill`.
    n_sectors: u32,
    n_windows: u32,
    /// `sector * n_windows + window` → per-type `(hos, hofs)` cells.
    dense: Vec<CellGroup>,
    /// `sector << 32 | window` → cells outside the dense grid.
    spill: FxHashMap<u64, CellGroup>,
}

impl FrameBuilder {
    pub(crate) fn new(window_days: u32) -> Self {
        FrameBuilder {
            window_days: window_days.max(1),
            n_sectors: 0,
            n_windows: 0,
            dense: Vec::new(),
            spill: FxHashMap::default(),
        }
    }

    /// A builder with a preallocated `n_sectors × n_windows` grid so the
    /// hot loop indexes arithmetically instead of hashing. The grid is
    /// the whole topology × study period, so in practice every record
    /// lands in it; `spill` only exists so ids outside the provisioned
    /// world still aggregate identically.
    pub(crate) fn with_grid(window_days: u32, n_sectors: usize, n_windows: u32) -> Self {
        let mut b = FrameBuilder::new(window_days);
        b.n_sectors = n_sectors as u32;
        b.n_windows = n_windows.max(1);
        b.dense = vec![CellGroup::default(); n_sectors * b.n_windows as usize];
        b
    }

    #[inline]
    fn cell_group(&mut self, sector: u32, window: u32) -> &mut CellGroup {
        if sector < self.n_sectors && window < self.n_windows {
            let idx = sector as usize * self.n_windows as usize + window as usize;
            if let Some(group) = self.dense.get_mut(idx) {
                return group;
            }
        }
        let key = (u64::from(sector) << 32) | u64::from(window);
        self.spill.entry(key).or_default()
    }

    #[inline]
    pub(crate) fn add(&mut self, r: &HoRecord) {
        let window = r.day() / self.window_days;
        let group = self.cell_group(r.source_sector.0, window);
        let cell = &mut group[r.ho_type().index()];
        cell.0 += 1;
        cell.1 += u32::from(r.is_failure());
    }

    /// Fold a whole chunk; the single tight loop keeps the map access
    /// pattern visible to the optimizer (no per-record closure frames).
    #[inline]
    pub(crate) fn add_chunk(&mut self, chunk: &[HoRecord]) {
        for r in chunk {
            self.add(r);
        }
    }

    /// Fold a column batch: same cells as [`FrameBuilder::add`] per row,
    /// reading only the three columns the frame actually needs.
    #[inline]
    pub(crate) fn add_columns(&mut self, batch: &ColumnBatch) {
        let window_days = self.window_days;
        let rows = batch
            .timestamps()
            .iter()
            .zip(batch.source_sectors())
            .zip(batch.target_rats())
            .zip(batch.flags());
        for (((&ts, &sector), &rat), &flags) in rows {
            let window = (ts / 86_400_000) as u32 / window_days;
            let group = self.cell_group(sector, window);
            let cell = &mut group[HoType::from_target_rat(rat).index()];
            cell.0 += 1;
            cell.1 += u32::from(flags & FLAG_FAILURE != 0);
        }
    }

    // telco-lint: deny-nondeterminism(begin)
    /// Fold another builder's cells into this one. Both stores hold
    /// purely additive counters and the dense/spill split is a pure
    /// function of (sector, window) shared by both sides, so the fold is
    /// order-independent and a partitioned parallel sweep merges to the
    /// sequential result.
    pub(crate) fn merge(&mut self, other: FrameBuilder) {
        debug_assert_eq!(self.dense.len(), other.dense.len(), "merging mismatched frame grids");
        for (mine, theirs) in self.dense.iter_mut().zip(other.dense) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.0 += t.0;
                m.1 += t.1;
            }
        }
        for (k, v) in other.spill {
            // telco-lint: allow(nondet): additive counter fold; visit order cannot affect sums
            let group = self.spill.entry(k).or_default();
            for (mine, theirs) in group.iter_mut().zip(v) {
                mine.0 += theirs.0;
                mine.1 += theirs.1;
            }
        }
    }
    // telco-lint: deny-nondeterminism(end)

    /// Encode the accumulator. Spill cells are written in sorted key
    /// order so the bytes never depend on hash-insertion history.
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u32(self.window_days);
        w.put_u32(self.n_sectors);
        w.put_u32(self.n_windows);
        w.put_varint(self.dense.len() as u64);
        for group in &self.dense {
            for &(hos, hofs) in group {
                w.put_varint(u64::from(hos));
                w.put_varint(u64::from(hofs));
            }
        }
        let mut spill: Vec<(u64, CellGroup)> = self.spill.iter().map(|(&k, &v)| (k, v)).collect();
        spill.sort_unstable_by_key(|&(k, _)| k);
        w.put_varint(spill.len() as u64);
        for (key, group) in spill {
            w.put_varint(key);
            for (hos, hofs) in group {
                w.put_varint(u64::from(hos));
                w.put_varint(u64::from(hofs));
            }
        }
    }

    pub(crate) fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let get_u32_counter = |r: &mut SnapReader| -> Result<u32, SnapError> {
            u32::try_from(r.get_varint()?).map_err(|_| SnapError::Malformed("cell count overflow"))
        };
        self.window_days = r.get_u32()?;
        self.n_sectors = r.get_u32()?;
        self.n_windows = r.get_u32()?;
        let n = r.get_len()?;
        self.dense = vec![CellGroup::default(); n];
        for group in &mut self.dense {
            for cell in group {
                cell.0 = get_u32_counter(r)?;
                cell.1 = get_u32_counter(r)?;
            }
        }
        let n = r.get_len()?;
        self.spill = FxHashMap::default();
        self.spill.reserve(n);
        for _ in 0..n {
            let key = r.get_varint()?;
            let mut group = CellGroup::default();
            for cell in &mut group {
                cell.0 = get_u32_counter(r)?;
                cell.1 = get_u32_counter(r)?;
            }
            self.spill.insert(key, group);
        }
        Ok(())
    }

    pub(crate) fn finish(self, world: &World) -> SectorDayFrame {
        let FrameBuilder { window_days, n_windows, dense, spill, .. } = self;
        let mut observations: Vec<SectorDayObs> = Vec::with_capacity(spill.len());
        let mut emit = |sector: u32, day: u32, group: &CellGroup| {
            let total: u32 = group.iter().map(|c| c.0).sum();
            if total == 0 {
                return;
            }
            let sector_id = SectorId(sector);
            let pc = world.topology.sector_postcode(sector_id);
            let postcode = world.country.postcode(pc);
            let district = world.country.district(postcode.district);
            for (type_idx, &(hos, hofs)) in group.iter().enumerate() {
                if hos == 0 {
                    continue;
                }
                observations.push(SectorDayObs {
                    sector: sector_id,
                    day,
                    ho_type: HoType::ALL[type_idx],
                    hos,
                    hofs,
                    daily_hos: (total / window_days).max(1),
                    area: postcode.area_type,
                    vendor: world.topology.sector(sector_id).vendor,
                    region: district.region,
                    district_population: district.population,
                });
            }
        };
        for (idx, group) in dense.iter().enumerate() {
            let (sector, day) = (idx as u32 / n_windows, idx as u32 % n_windows);
            emit(sector, day, group);
        }
        for (&key, group) in &spill {
            emit((key >> 32) as u32, key as u32, group);
        }
        // A cell lives in exactly one store, so the sort canonicalizes the
        // dense/spill interleaving without any dedup concern.
        observations.sort_by_key(|o| (o.sector.0, o.day, o.ho_type.index()));
        SectorDayFrame { observations }
    }
}

/// The [`SectorDayFrame`] as a sweep pass: `Daily` windows for the
/// Appendix-B vendor boxplots, `FullPeriod` for the §6.3 models.
pub struct FramePass {
    window: FrameWindow,
    builder: FrameBuilder,
}

/// Window mode of a [`FramePass`], resolved against the study config at
/// `begin` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameWindow {
    /// One observation per `(sector, day, type)`.
    Daily,
    /// One observation per `(sector, study period, type)`.
    FullPeriod,
}

impl FramePass {
    /// A pass with the given window mode.
    pub fn new(window: FrameWindow) -> Self {
        FramePass { window, builder: FrameBuilder::new(1) }
    }
}

impl AnalysisPass for FramePass {
    type Output = SectorDayFrame;

    fn begin(&mut self, ctx: &SweepCtx) {
        let days = match self.window {
            FrameWindow::Daily => 1,
            FrameWindow::FullPeriod => ctx.config.n_days.max(1),
        };
        let n_windows = ctx.config.n_days.max(1).div_ceil(days.max(1));
        self.builder = FrameBuilder::with_grid(days, ctx.world.topology.sectors().len(), n_windows);
    }

    fn record(&mut self, r: &HoRecord, _e: &Enriched) {
        self.builder.add(r);
    }

    fn record_chunk(&mut self, chunk: &[HoRecord], _e: &Enriched) {
        self.builder.add_chunk(chunk);
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, _e: &Enriched) {
        self.builder.add_columns(batch);
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        self.builder.merge(other.builder);
    }

    fn end(self, ctx: &SweepCtx) -> SectorDayFrame {
        self.builder.finish(ctx.world)
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u8(match self.window {
            FrameWindow::Daily => 0,
            FrameWindow::FullPeriod => 1,
        });
        self.builder.snapshot(w);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.window = match r.get_u8()? {
            0 => FrameWindow::Daily,
            1 => FrameWindow::FullPeriod,
            _ => return Err(SnapError::Malformed("frame window tag")),
        };
        self.builder.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn frame_covers_every_record() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        let d = s.trace.as_dataset().unwrap();
        let total_hos: u32 = frame.observations().iter().map(|o| o.hos).sum();
        assert_eq!(total_hos as usize, d.len());
        let total_hofs: u32 = frame.observations().iter().map(|o| o.hofs).sum();
        assert_eq!(total_hofs as usize, d.failures().count());
    }

    #[test]
    fn daily_totals_are_consistent() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.observations() {
            assert!(o.daily_hos >= o.hos, "cell exceeds its sector-day total");
            assert!(o.hofs <= o.hos);
        }
    }

    #[test]
    fn enrichment_matches_world() {
        let s = study();
        let e = Enriched::new(&s.world);
        for r in s.trace.as_dataset().unwrap().records().iter().take(50) {
            let pc = s.world.topology.sector_postcode(r.source_sector);
            assert_eq!(e.area(r), s.world.country.postcode(pc).area_type);
            assert_eq!(e.device_type(r), s.world.ue(r.ue).device_type);
        }
    }

    #[test]
    fn filter_bounds_apply() {
        let s = study();
        let frame = SectorDayFrame::build(&s);
        for o in frame.filtered(50.0, 2, 10_000) {
            assert!(o.hof_rate_pct() < 50.0);
            assert!(o.daily_hos >= 2);
        }
    }

    #[test]
    fn from_reader_matches_in_memory_build() {
        let s = study();
        let in_mem = SectorDayFrame::build(&s);
        // Round the trace through the store (columnar v3 by default) and
        // aggregate the stream.
        let dataset = s.trace.as_dataset().unwrap();
        let mut w = telco_trace::store::TraceWriter::new(Vec::new(), s.config.n_days).unwrap();
        w.write_dataset(dataset).unwrap();
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let streamed = SectorDayFrame::from_reader(&s.world, &mut reader, 1).unwrap();
        assert_eq!(streamed.observations(), in_mem.observations());
        assert!(reader.issues().is_empty());
    }

    #[test]
    fn from_reader_skips_damaged_chunks() {
        let s = study();
        let dataset = s.trace.as_dataset().unwrap();
        let mut w = telco_trace::store::TraceWriter::new(Vec::new(), s.config.n_days).unwrap();
        w.write_dataset(dataset).unwrap();
        let mut bytes = w.finish().unwrap();
        // Corrupt one payload byte inside the first chunk.
        bytes[10 + 16 + 40] ^= 0x40;
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let frame = SectorDayFrame::from_reader(&s.world, &mut reader, 1).unwrap();
        let in_mem = SectorDayFrame::build(&s);
        let streamed_hos: u32 = frame.observations().iter().map(|o| o.hos).sum();
        let full_hos: u32 = in_mem.observations().iter().map(|o| o.hos).sum();
        assert!(streamed_hos < full_hos, "damaged chunk was not skipped");
        assert_eq!(reader.issues().len(), 1);
    }

    #[test]
    fn observations_sorted_and_deterministic() {
        let s = study();
        let a = SectorDayFrame::build(&s);
        let b = SectorDayFrame::build(&s);
        assert_eq!(a.observations(), b.observations());
        assert!(a
            .observations()
            .windows(2)
            .all(|w| (w[0].sector.0, w[0].day) <= (w[1].sector.0, w[1].day)));
    }

    #[test]
    fn frame_pass_matches_direct_build() {
        let s = study();
        let direct = SectorDayFrame::build(&s);
        let swept = Sweep::new(&s).run(|| FramePass::new(FrameWindow::Daily)).unwrap();
        assert_eq!(swept.observations(), direct.observations());
        let period = Sweep::new(&s).run(|| FramePass::new(FrameWindow::FullPeriod)).unwrap();
        assert_eq!(period.observations().len(), {
            let windowed = SectorDayFrame::build_windowed(&s, s.config.n_days);
            windowed.observations().len()
        });
    }
}
