//! Appendix B — vendor and area effects (Figs. 17 and 18): vendor shares
//! per region and per handover type, and HOF-rate boxplots per vendor and
//! per area.

use serde::{Deserialize, Serialize};

use telco_geo::district::Region;
use telco_geo::postcode::AreaType;
use telco_signaling::messages::HoType;
use telco_sim::World;
use telco_stats::boxplot::BoxplotStats;
use telco_topology::vendor::Vendor;
use telco_trace::columnar::ColumnBatch;
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::{Enriched, SectorDayFrame};
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, pct, TextTable};

/// Figs. 17–18 — vendor/area breakdowns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorAnalysis {
    /// Vendor share of deployed sectors per region (`[region][vendor]`).
    pub sectors_by_region: [[f64; 4]; 4],
    /// Vendor share of handovers per handover type (`[ho_type][vendor]`).
    pub hos_by_type: [[f64; 4]; 3],
    /// HOF-rate (%) boxplots per vendor over sector-day cells.
    pub hof_by_vendor: Vec<Option<BoxplotStats>>,
    /// HOF-rate (%) boxplots per area type.
    pub hof_by_area: Vec<Option<BoxplotStats>>,
}

impl VendorAnalysis {
    /// Assemble from the swept per-type vendor counts plus the sector-day
    /// frame (itself filled by the same sweep via
    /// [`crate::frame::FramePass`]).
    pub fn from_parts(world: &World, type_counts: [[u64; 4]; 3], frame: &SectorDayFrame) -> Self {
        // Fig. 17 top: sectors per region.
        let mut reg_counts = [[0u64; 4]; 4];
        for s in world.topology.sectors() {
            let district = world.topology.sector_district(s.id);
            let region = world.country.district(district).region;
            reg_counts[region.index()][s.vendor.index()] += 1;
        }
        let mut sectors_by_region = [[0.0; 4]; 4];
        for r in 0..4 {
            let total: u64 = reg_counts[r].iter().sum();
            for v in 0..4 {
                sectors_by_region[r][v] = reg_counts[r][v] as f64 / total.max(1) as f64;
            }
        }

        // Fig. 17 bottom: handovers per type by source-sector vendor.
        let mut hos_by_type = [[0.0; 4]; 3];
        for t in 0..3 {
            let total: u64 = type_counts[t].iter().sum();
            for v in 0..4 {
                hos_by_type[t][v] = type_counts[t][v] as f64 / total.max(1) as f64;
            }
        }

        // Fig. 18: HOF-rate distributions by vendor / area over cells with
        // enough handovers to make the rate meaningful.
        let mut by_vendor: [Vec<f64>; 4] = Default::default();
        let mut by_area: [Vec<f64>; 2] = Default::default();
        for o in frame.observations().iter().filter(|o| o.hos >= 3) {
            by_vendor[o.vendor.index()].push(o.hof_rate_pct());
            by_area[o.area.index()].push(o.hof_rate_pct());
        }
        VendorAnalysis {
            sectors_by_region,
            hos_by_type,
            hof_by_vendor: by_vendor.iter().map(|v| BoxplotStats::of(v)).collect(),
            hof_by_area: by_area.iter().map(|v| BoxplotStats::of(v)).collect(),
        }
    }

    /// Render Fig. 17.
    pub fn table_shares(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 17: Vendor share per region (sectors) and per HO type (HOs)",
            &["Split", "V1", "V2", "V3", "V4"],
        );
        for region in Region::ALL {
            let s = self.sectors_by_region[region.index()];
            t.row(&[region.to_string(), pct(s[0], 1), pct(s[1], 1), pct(s[2], 1), pct(s[3], 1)]);
        }
        for (i, label) in ["Intra 4G/5G-NSA HOs", "->3G HOs", "->2G HOs"].iter().enumerate() {
            let s = self.hos_by_type[i];
            t.row(&[label.to_string(), pct(s[0], 1), pct(s[1], 1), pct(s[2], 1), pct(s[3], 1)]);
        }
        t
    }

    /// Render Fig. 18.
    pub fn table_boxplots(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 18: HOF rate (%) per vendor and per area (sector-day cells)",
            &["Group", "median", "mean", "p75"],
        );
        for v in Vendor::ALL {
            if let Some(b) = &self.hof_by_vendor[v.index()] {
                t.row(&[v.to_string(), num(b.median, 3), num(b.mean, 3), num(b.q3, 3)]);
            }
        }
        for a in [AreaType::Urban, AreaType::Rural] {
            if let Some(b) = &self.hof_by_area[a.index()] {
                t.row(&[a.to_string(), num(b.median, 3), num(b.mean, 3), num(b.q3, 3)]);
            }
        }
        t
    }
}

/// Streaming accumulator for the record-derived half of
/// [`VendorAnalysis`]: handovers per (type, source-sector vendor). The
/// frame-derived boxplots come from [`crate::frame::FramePass`], joined by
/// [`VendorAnalysis::from_parts`].
#[derive(Debug, Default)]
pub struct VendorPass {
    type_counts: [[u64; 4]; 3],
}

impl AnalysisPass for VendorPass {
    type Output = [[u64; 4]; 3];

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.type_counts[r.ho_type().index()][e.vendor(r).index()] += 1;
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for (&sector, &rat) in batch.source_sectors().iter().zip(batch.target_rats()) {
            self.type_counts[HoType::from_target_rat(rat).index()][e.vendor_of(sector).index()] +=
                1;
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.type_counts.iter_mut().zip(other.type_counts) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
    }

    fn end(self, _ctx: &SweepCtx) -> [[u64; 4]; 3] {
        self.type_counts
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        for row in &self.type_counts {
            for &c in row {
                w.put_varint(c);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for row in &mut self.type_counts {
            for c in row {
                *c = r.get_varint()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig};

    fn analysis() -> VendorAnalysis {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 1_500;
        cfg.n_days = 3;
        let study = run_study(cfg);
        let frame = SectorDayFrame::build(&study);
        let type_counts = Sweep::new(&study).run(VendorPass::default).unwrap();
        VendorAnalysis::from_parts(&study.world, type_counts, &frame)
    }

    #[test]
    fn region_shares_normalize() {
        let a = analysis();
        for r in 0..4 {
            let sum: f64 = a.sectors_by_region[r].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "region {r}: {sum}");
        }
    }

    #[test]
    fn v3_concentrates_in_west() {
        let a = analysis();
        let west = a.sectors_by_region[Region::West.index()][Vendor::V3.index()];
        let capital = a.sectors_by_region[Region::Capital.index()][Vendor::V3.index()];
        assert!(west > capital, "V3 west {west} vs capital {capital}");
    }

    #[test]
    fn vendor_hof_ordering_visible() {
        let a = analysis();
        let v1 = a.hof_by_vendor[Vendor::V1.index()].as_ref().map(|b| b.mean);
        let v3 = a.hof_by_vendor[Vendor::V3.index()].as_ref().map(|b| b.mean);
        if let (Some(v1), Some(v3)) = (v1, v3) {
            assert!(v3 > v1, "V3 mean {v3} should exceed V1 {v1}");
        }
    }

    #[test]
    fn rural_cells_fail_more() {
        let a = analysis();
        let urban = a.hof_by_area[AreaType::Urban.index()].as_ref().map(|b| b.mean);
        let rural = a.hof_by_area[AreaType::Rural.index()].as_ref().map(|b| b.mean);
        if let (Some(u), Some(r)) = (urban, rural) {
            assert!(r > u * 0.8, "rural mean {r} vs urban {u}");
        }
    }

    #[test]
    fn tables_render() {
        let a = analysis();
        assert!(a.table_shares().to_string().contains("V3"));
        assert!(a.table_boxplots().to_string().contains("median"));
    }
}
