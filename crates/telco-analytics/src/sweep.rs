// telco-lint: deny-nondeterminism
//! The single-sweep streaming analysis engine.
//!
//! Every record-scanning analysis is an [`AnalysisPass`]: an accumulator
//! with `begin → record* → end` lifecycle plus a deterministic `merge`
//! for day-partitioned parallel sweeps. The [`Sweep`] driver runs any
//! pass (or a composite of many) in **one** shared traversal of the
//! study's [`telco_sim::TraceSource`] — borrowed slice-by-slice from the
//! in-memory dataset, or streamed chunk-by-chunk from a spilled v2 trace
//! with bounded memory.
//!
//! # Determinism of the parallel merge
//!
//! The parallel sweep claims whole study days off a
//! [`telco_sim::StealCursor`], runs a fresh pass per day, then folds the
//! per-day accumulators **in day order** (via
//! [`telco_sim::collect_runs`]), so which worker processed which day can
//! never reach the output. Pass authors keep the fold exact by obeying
//! the [`AnalysisPass::merge`] contract: accumulate only order-robust
//! state during `record` (integer counters, integer-valued `f64` sums —
//! exact under regrouping below 2^53 — set unions, and sample vectors
//! concatenated in trace order) and defer every order-sensitive
//! computation (ratios, sorts, ECDFs, world joins) to `end`.

use telco_sim::{collect_runs, SimConfig, StealCursor, StudyData, World};
use telco_trace::record::HoRecord;
use telco_trace::store::ChunkIssue;

use crate::frame::Enriched;

/// Shared context handed to every pass hook: the world for joins and the
/// config for scale parameters. Never carries the trace — records only
/// flow through [`AnalysisPass::record`].
pub struct SweepCtx<'a> {
    /// The simulated world (topology, census, device catalog).
    pub world: &'a World,
    /// The study configuration.
    pub config: &'a SimConfig,
}

/// A streaming analysis: an accumulator over one trace traversal.
///
/// Lifecycle: `begin(ctx)` once, `record(r, e)` per handover record in
/// timestamp order, `end(ctx)` once to produce the output. A parallel
/// sweep runs one instance per study day and folds them with `merge`.
pub trait AnalysisPass {
    /// The finished analysis this pass produces.
    type Output;

    /// Reset and size the accumulator. Called once before any records;
    /// allocate only empty per-record state here — world-derived
    /// contributions belong in [`AnalysisPass::end`] so partition merges
    /// stay purely additive.
    fn begin(&mut self, _ctx: &SweepCtx) {}

    /// Fold one handover record into the accumulator.
    fn record(&mut self, r: &HoRecord, e: &Enriched);

    /// Fold a whole chunk of records. The driver feeds chunks, not
    /// records: overriding this lets a pass (or a composite of many) run
    /// one tight loop per chunk instead of paying a full dispatch fan-out
    /// per record — the difference between the codec-bound and the
    /// dispatch-bound stream-aggregate benchmark. The default simply
    /// loops [`AnalysisPass::record`]; overrides must be
    /// record-for-record equivalent to that loop.
    #[inline]
    fn record_chunk(&mut self, chunk: &[HoRecord], e: &Enriched) {
        for r in chunk {
            self.record(r, e);
        }
    }

    /// Fold another instance of this pass into `self`. `other` saw a
    /// later, disjoint span of the trace (the driver merges in day
    /// order). The fold must be deterministic: the result may depend on
    /// which records each side saw, never on hash-iteration or thread
    /// order.
    fn merge(&mut self, other: Self, ctx: &SweepCtx)
    where
        Self: Sized;

    /// Finish the analysis: ratios, sorts, ECDFs, and world joins.
    fn end(self, ctx: &SweepCtx) -> Self::Output;
}

/// The sweep driver: one shared traversal of a study's trace feeding any
/// pass. Sequential over in-memory or spilled sources; day-parallel over
/// in-memory sources when the config asks for threads.
pub struct Sweep<'a> {
    data: &'a StudyData,
}

impl<'a> Sweep<'a> {
    /// A sweep over the study's trace.
    pub fn new(data: &'a StudyData) -> Self {
        Sweep { data }
    }

    /// Run one pass (or composite) in a single trace traversal. `make`
    /// builds a fresh accumulator; the parallel mode calls it once per
    /// study day plus once for the fold base.
    ///
    /// # Errors
    ///
    /// Fails only when a spilled trace hits an underlying I/O error;
    /// damaged chunks are skipped (skip-and-report, as everywhere else in
    /// the trace layer).
    pub fn run<P, F>(&self, make: F) -> Result<P::Output, ChunkIssue>
    where
        P: AnalysisPass + Send,
        F: Fn() -> P + Sync,
    {
        let ctx = SweepCtx { world: &self.data.world, config: &self.data.config };
        let threads = resolve_threads(&self.data.config);
        if threads > 1 && self.data.config.n_days > 1 {
            // Spilled sources stream sequentially (day_slices is None).
            if let Some(output) = self.run_parallel(&make, &ctx, threads) {
                return Ok(output);
            }
        }
        self.run_sequential(make(), &ctx)
    }

    fn run_sequential<P: AnalysisPass>(
        &self,
        mut pass: P,
        ctx: &SweepCtx,
    ) -> Result<P::Output, ChunkIssue> {
        let enriched = Enriched::new(ctx.world);
        pass.begin(ctx);
        // telco-lint: deny-panic(begin)
        self.data.trace.for_each_chunk(|chunk| pass.record_chunk(chunk, &enriched))?;
        // telco-lint: deny-panic(end)
        Ok(pass.end(ctx))
    }

    /// Day-partitioned parallel sweep. Returns `None` when the source
    /// cannot be partitioned (spilled traces), falling back to the
    /// sequential path without consuming an extra traversal.
    fn run_parallel<P, F>(&self, make: &F, ctx: &SweepCtx, threads: usize) -> Option<P::Output>
    where
        P: AnalysisPass + Send,
        F: Fn() -> P + Sync,
    {
        let slices = self.data.trace.day_slices(self.data.config.n_days)?;
        let enriched = Enriched::new(ctx.world);
        let cursor = StealCursor::new(slices.len());
        let workers = threads.min(slices.len()).max(1);

        let per_worker: Vec<Vec<(usize, P)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (slices, cursor) = (&slices, &cursor);
                    scope.spawn(move || {
                        let mut done: Vec<(usize, P)> = Vec::new();
                        while let Some(day) = cursor.claim() {
                            let mut pass = make();
                            pass.begin(ctx);
                            // telco-lint: deny-panic(begin)
                            pass.record_chunk(slices.get(day).copied().unwrap_or(&[]), &enriched);
                            // telco-lint: deny-panic(end)
                            done.push((day, pass));
                        }
                        done
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
        });

        // telco-lint: deny-nondeterminism(begin)
        // Fold the per-day accumulators in day order — collect_runs sorts
        // by claimed item index, so worker assignment cannot reach the
        // merge sequence and the fold replays the sequential order.
        let mut base = make();
        base.begin(ctx);
        for (_, part) in collect_runs(per_worker) {
            base.merge(part, ctx);
        }
        // telco-lint: deny-nondeterminism(end)
        Some(base.end(ctx))
    }
}

fn resolve_threads(config: &SimConfig) -> usize {
    if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    }
}

/// Whole-trace counters every summary needs: record totals per handover
/// type and the failure count. Replaces the `SignalingDataset` accessors
/// (`len`, `counts_by_type`, `hof_rate`) for studies whose trace may live
/// on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounts {
    /// Total handover records swept.
    pub records: u64,
    /// Records per handover type (`HoType::index()` order).
    pub by_type: [u64; 3],
    /// Failed handovers among them.
    pub failures: u64,
    /// Study-day span (for daily normalization).
    pub days: u32,
}

impl TraceCounts {
    /// Failures per handover.
    pub fn hof_rate(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.failures as f64 / self.records as f64
    }

    /// Average records per study day.
    pub fn daily_mean(&self) -> f64 {
        if self.days == 0 {
            return 0.0;
        }
        self.records as f64 / self.days as f64
    }
}

/// The [`TraceCounts`] accumulator.
#[derive(Debug, Default)]
pub struct TraceCountsPass {
    counts: TraceCounts,
}

impl AnalysisPass for TraceCountsPass {
    type Output = TraceCounts;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.counts = TraceCounts { days: ctx.config.n_days, ..TraceCounts::default() };
    }

    fn record(&mut self, r: &HoRecord, _e: &Enriched) {
        self.counts.records += 1;
        self.counts.by_type[r.ho_type().index()] += 1;
        self.counts.failures += u64::from(r.is_failure());
    }

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        self.counts.records += other.counts.records;
        self.counts.failures += other.counts.failures;
        for (mine, theirs) in self.counts.by_type.iter_mut().zip(other.counts.by_type) {
            *mine += theirs;
        }
    }

    fn end(self, _ctx: &SweepCtx) -> TraceCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, run_study_spilled, SimConfig};

    #[test]
    fn trace_counts_match_dataset() {
        let data = run_study(SimConfig::tiny());
        let counts = Sweep::new(&data).run(TraceCountsPass::default).unwrap();
        let dataset = data.trace.as_dataset().unwrap();
        assert_eq!(counts.records, dataset.len() as u64);
        assert_eq!(counts.by_type, dataset.counts_by_type());
        assert_eq!(counts.hof_rate(), dataset.hof_rate());
        assert_eq!(counts.daily_mean(), dataset.daily_mean());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let mut seq_cfg = SimConfig::tiny();
        seq_cfg.threads = 1;
        let mut par_cfg = seq_cfg.clone();
        par_cfg.threads = 4;
        let seq = run_study(seq_cfg);
        let par = run_study(par_cfg);
        let a = Sweep::new(&seq).run(TraceCountsPass::default).unwrap();
        let b = Sweep::new(&par).run(TraceCountsPass::default).unwrap();
        assert_eq!(a, b);
        // One traversal each, whichever mode ran.
        assert_eq!(seq.trace.sweeps(), 1);
        assert_eq!(par.trace.sweeps(), 1);
    }

    #[test]
    fn spilled_sweep_streams_the_same_counts() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 150;
        let in_mem = run_study(cfg.clone());
        let dir = std::env::temp_dir().join("telco_sweep_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spilled = run_study_spilled(cfg, &dir).unwrap();
        let a = Sweep::new(&in_mem).run(TraceCountsPass::default).unwrap();
        let b = Sweep::new(&spilled).run(TraceCountsPass::default).unwrap();
        assert_eq!(a, b);
        assert_eq!(spilled.trace.sweeps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
