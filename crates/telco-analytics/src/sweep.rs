// telco-lint: deny-nondeterminism
//! The single-sweep streaming analysis engine.
//!
//! Every record-scanning analysis is an [`AnalysisPass`]: an accumulator
//! with `begin → record* → end` lifecycle plus a deterministic `merge`
//! for partitioned parallel sweeps. The [`Sweep`] driver runs any pass
//! (or a composite of many) in **one** shared traversal of the study's
//! [`telco_sim::TraceSource`], feeding it [`ColumnBatch`]es — the native
//! decode target of the v3 columnar trace format — so the hot passes
//! scan struct-of-arrays column slices instead of dispatching per row.
//!
//! # Execution modes
//!
//! - **Sequential** ([`TraceSource::for_each_columns`]): in-memory
//!   records transpose window-by-window through one reused batch;
//!   spilled v3 chunks decode straight into it.
//! - **Day-parallel** (in-memory, `threads > 1`): workers claim whole
//!   study days off a [`telco_sim::StealCursor`] and batch their day
//!   slices through per-worker scratch.
//! - **Chunk-parallel** (spilled, `threads > 1`): one reader thread
//!   streams CRC-verified raw payloads into a bounded
//!   [`FrameQueue`] (double-buffered: two slots per worker), and workers
//!   claim ascending chunk indexes, decode privately, and run a fresh
//!   pass per chunk. Legacy v1 streams have no chunk frames and fall
//!   back to the sequential path.
//!
//! # Determinism of the parallel merge
//!
//! Both parallel modes run a fresh pass per work item (study day or
//! chunk), then fold the per-item accumulators **in item order** (via
//! [`telco_sim::collect_runs`]), so which worker processed which item
//! can never reach the output. Pass authors keep the fold exact by
//! obeying the [`AnalysisPass::merge`] contract: accumulate only
//! order-robust state during `record` (integer counters, integer-valued
//! `f64` sums — exact under regrouping below 2^53 — set unions, and
//! sample vectors concatenated in trace order) and defer every
//! order-sensitive computation (ratios, sorts, ECDFs, world joins) to
//! `end`. Chunk-granular folding asks slightly more than day-granular
//! did — merges now happen at arbitrary record boundaries, not just
//! midnight — and every shipped pass satisfies it: the only
//! boundary-sensitive accumulator (ping-pong chain stitching) keeps
//! explicit first/last edge state precisely so its merge is exact at
//! any split point.

use telco_signaling::messages::HoType;
use telco_sim::{collect_runs, SimConfig, StealCursor, StudyData, World};
use telco_trace::columnar::{ColumnBatch, FLAG_FAILURE};
use telco_trace::io::CodecError;
use telco_trace::prefetch::{Frame, FrameQueue};
use telco_trace::record::HoRecord;
use telco_trace::snap::{decode_frame, encode_frame, SnapError, SnapReader, SnapWriter};
use telco_trace::source::COLUMN_BATCH_RECORDS;
use telco_trace::store::{decode_payload_columns, ChunkIssue, TraceReader};

use crate::frame::Enriched;

/// Shared context handed to every pass hook: the world for joins and the
/// config for scale parameters. Never carries the trace — records only
/// flow through [`AnalysisPass::record`].
pub struct SweepCtx<'a> {
    /// The simulated world (topology, census, device catalog).
    pub world: &'a World,
    /// The study configuration.
    pub config: &'a SimConfig,
}

/// A streaming analysis: an accumulator over one trace traversal.
///
/// Lifecycle: `begin(ctx)` once, `record(r, e)` per handover record in
/// timestamp order, `end(ctx)` once to produce the output. A parallel
/// sweep runs one instance per study day and folds them with `merge`.
pub trait AnalysisPass {
    /// The finished analysis this pass produces.
    type Output;

    /// Reset and size the accumulator. Called once before any records;
    /// allocate only empty per-record state here — world-derived
    /// contributions belong in [`AnalysisPass::end`] so partition merges
    /// stay purely additive.
    fn begin(&mut self, _ctx: &SweepCtx) {}

    /// Fold one handover record into the accumulator.
    fn record(&mut self, r: &HoRecord, e: &Enriched);

    /// Fold a whole chunk of records. The driver feeds chunks, not
    /// records: overriding this lets a pass (or a composite of many) run
    /// one tight loop per chunk instead of paying a full dispatch fan-out
    /// per record — the difference between the codec-bound and the
    /// dispatch-bound stream-aggregate benchmark. The default simply
    /// loops [`AnalysisPass::record`]; overrides must be
    /// record-for-record equivalent to that loop.
    #[inline]
    fn record_chunk(&mut self, chunk: &[HoRecord], e: &Enriched) {
        for r in chunk {
            self.record(r, e);
        }
    }

    /// Fold a decoded column batch. This is what the driver actually
    /// feeds on every execution mode: overriding it with tight scans
    /// over the column slices the pass needs (and nothing else) is the
    /// columnar fast path. The default materializes each row through
    /// [`ColumnBatch::rows`] and loops [`AnalysisPass::record`];
    /// overrides must be record-for-record equivalent to that loop.
    #[inline]
    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for r in batch.rows() {
            self.record(&r, e);
        }
    }
    // telco-lint: deny-alloc(end)

    /// Fold another instance of this pass into `self`. `other` saw a
    /// later, disjoint span of the trace (the driver merges in day
    /// order). The fold must be deterministic: the result may depend on
    /// which records each side saw, never on hash-iteration or thread
    /// order.
    fn merge(&mut self, other: Self, ctx: &SweepCtx)
    where
        Self: Sized;

    /// Finish the analysis: ratios, sorts, ECDFs, and world joins.
    fn end(self, ctx: &SweepCtx) -> Self::Output;

    /// Version tag of this pass's snapshot encoding. Bump it whenever
    /// the byte layout written by [`AnalysisPass::snapshot`] changes so
    /// stale persisted state fails loudly instead of restoring garbage.
    const SNAPSHOT_VERSION: u16;

    /// Serialize the accumulator state into `w`.
    ///
    /// The encoding must be **deterministic** (two accumulators holding
    /// the same logical state produce identical bytes — sort any
    /// hash-ordered collection before encoding) and **self-sufficient**:
    /// it captures sizes and construction parameters, so restoring into
    /// a default-constructed instance rebuilds this one exactly.
    fn snapshot(&self, w: &mut SnapWriter);

    /// Overwrite the accumulator from bytes written by
    /// [`AnalysisPass::snapshot`]. After a successful restore the pass
    /// behaves exactly as the snapshotted one: it can keep recording,
    /// [`AnalysisPass::merge`] deltas, and [`AnalysisPass::end`].
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] when the payload is truncated or malformed.
    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

/// Snapshot a pass into a self-describing frame: magic, the pass's
/// [`AnalysisPass::SNAPSHOT_VERSION`], the payload, and a CRC-32 over
/// both (see [`telco_trace::snap`]).
pub fn snapshot_pass<P: AnalysisPass>(pass: &P) -> Vec<u8> {
    let mut w = SnapWriter::new();
    pass.snapshot(&mut w);
    encode_frame(P::SNAPSHOT_VERSION, &w.into_bytes())
}

/// Restore a pass from a frame written by [`snapshot_pass`], verifying
/// magic, version, CRC, and full payload consumption.
///
/// # Errors
///
/// Any [`SnapError`]: corrupted or truncated frames, a version other
/// than the pass's current one, or undecoded trailing payload bytes.
pub fn restore_pass<P: AnalysisPass>(pass: &mut P, bytes: &[u8]) -> Result<(), SnapError> {
    let payload = decode_frame(P::SNAPSHOT_VERSION, bytes)?;
    let mut r = SnapReader::new(payload);
    pass.restore(&mut r)?;
    r.finish()
}

/// The sweep driver: one shared traversal of a study's trace feeding any
/// pass. Sequential over in-memory or spilled sources; day-parallel over
/// in-memory sources when the config asks for threads.
pub struct Sweep<'a> {
    data: &'a StudyData,
}

impl<'a> Sweep<'a> {
    /// A sweep over the study's trace.
    pub fn new(data: &'a StudyData) -> Self {
        Sweep { data }
    }

    /// Run one pass (or composite) in a single trace traversal. `make`
    /// builds a fresh accumulator; the parallel mode calls it once per
    /// study day plus once for the fold base.
    ///
    /// # Errors
    ///
    /// Fails only when a spilled trace hits an underlying I/O error;
    /// damaged chunks are skipped (skip-and-report, as everywhere else in
    /// the trace layer).
    pub fn run<P, F>(&self, make: F) -> Result<P::Output, ChunkIssue>
    where
        P: AnalysisPass + Send,
        F: Fn() -> P + Sync,
    {
        let ctx = SweepCtx { world: &self.data.world, config: &self.data.config };
        let threads = resolve_threads(&self.data.config);
        if threads > 1 {
            if self.data.config.n_days > 1 {
                // In-memory sources partition by day (day_slices is
                // Some); spilled ones fall through to the chunk mode.
                if let Some(output) = self.run_parallel(&make, &ctx, threads) {
                    return Ok(output);
                }
            }
            // Spilled sources parallelize at chunk granularity (None
            // for in-memory sources and legacy v1 streams).
            if let Some(result) = self.run_parallel_spilled(&make, &ctx, threads) {
                return result;
            }
        }
        self.run_sequential(make(), &ctx)
    }

    fn run_sequential<P: AnalysisPass>(
        &self,
        mut pass: P,
        ctx: &SweepCtx,
    ) -> Result<P::Output, ChunkIssue> {
        let enriched = Enriched::new(ctx.world);
        pass.begin(ctx);
        // telco-lint: deny-panic(begin)
        self.data.trace.for_each_columns(|batch| pass.record_columns(batch, &enriched))?;
        // telco-lint: deny-panic(end)
        Ok(pass.end(ctx))
    }

    /// Day-partitioned parallel sweep over an in-memory source. Returns
    /// `None` when the source cannot be partitioned (spilled traces),
    /// falling through to the chunk-parallel mode without consuming an
    /// extra traversal.
    fn run_parallel<P, F>(&self, make: &F, ctx: &SweepCtx, threads: usize) -> Option<P::Output>
    where
        P: AnalysisPass + Send,
        F: Fn() -> P + Sync,
    {
        let slices = self.data.trace.day_slices(self.data.config.n_days)?;
        let enriched = Enriched::new(ctx.world);
        let cursor = StealCursor::new(slices.len());
        let workers = threads.min(slices.len()).max(1);

        let results: Vec<(Vec<(usize, P)>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (slices, cursor, enriched) = (&slices, &cursor, &enriched);
                    scope.spawn(move || {
                        let mut batch = ColumnBatch::new();
                        let mut done: Vec<(usize, P)> = Vec::new();
                        let mut batches = 0u64;
                        while let Some(day) = cursor.claim() {
                            let mut pass = make();
                            pass.begin(ctx);
                            let slice = slices.get(day).copied().unwrap_or(&[]);
                            // telco-lint: deny-panic(begin)
                            for window in slice.chunks(COLUMN_BATCH_RECORDS) {
                                batch.clear();
                                batch.extend_from_rows(window);
                                batches += 1;
                                pass.record_columns(&batch, enriched);
                            }
                            // telco-lint: deny-panic(end)
                            done.push((day, pass));
                        }
                        (done, batches)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
        });

        let mut per_worker = Vec::with_capacity(results.len());
        let mut total_batches = 0u64;
        for (done, batches) in results {
            per_worker.push(done);
            total_batches += batches;
        }
        self.data.trace.note_column_batches(total_batches);

        // telco-lint: deny-nondeterminism(begin)
        // Fold the per-day accumulators in day order — collect_runs sorts
        // by claimed item index, so worker assignment cannot reach the
        // merge sequence and the fold replays the sequential order.
        let mut base = make();
        base.begin(ctx);
        for (_, part) in collect_runs(per_worker) {
            base.merge(part, ctx);
        }
        // telco-lint: deny-nondeterminism(end)
        Some(base.end(ctx))
    }

    /// Chunk-granular parallel sweep over a spilled trace: one reader
    /// thread streams CRC-verified raw payloads into a bounded
    /// [`FrameQueue`], workers claim ascending chunk indexes off the
    /// steal cursor, decode each payload into private [`ColumnBatch`]
    /// scratch, and run a fresh pass per chunk; the per-chunk
    /// accumulators fold in chunk order, replaying the sequential
    /// stream. Returns `None` for in-memory sources and legacy v1
    /// streams (no chunk frames to parallelize over).
    ///
    /// Error semantics match the sequential spilled traversal: damaged
    /// chunks are skipped by the reader thread (they never receive a
    /// fold index), an I/O failure aborts the whole sweep.
    fn run_parallel_spilled<P, F>(
        &self,
        make: &F,
        ctx: &SweepCtx,
        threads: usize,
    ) -> Option<Result<P::Output, ChunkIssue>>
    where
        P: AnalysisPass + Send,
        F: Fn() -> P + Sync,
    {
        let path = self.data.trace.spill_path()?;
        let mut reader = match TraceReader::open(path) {
            Ok(reader) => reader,
            Err(e) => return Some(Err(ChunkIssue { chunk: 0, offset: 0, error: e })),
        };
        let version = reader.version();
        if version == 1 {
            return None;
        }
        self.data.trace.note_sweep();
        let enriched = Enriched::new(ctx.world);
        // Two slots per worker: the reader stays one full frame ahead of
        // every worker (double buffering), and since at most `threads`
        // claimed frames are undrained at any instant, pushes never
        // deadlock against a slot nobody will take.
        let queue = FrameQueue::new(threads * 2);
        let cursor = StealCursor::new(usize::MAX);

        let results: Vec<(Vec<(usize, P)>, u64)> = std::thread::scope(|scope| {
            let queue_ref = &queue;
            scope.spawn(move || {
                let mut produced = 0u64;
                loop {
                    let mut payload = queue_ref.buffer();
                    match reader.next_chunk_raw(&mut payload) {
                        None => break,
                        Some(Ok(raw)) => {
                            queue_ref.push(Frame { index: produced, count: raw.count, payload });
                            produced += 1;
                        }
                        Some(Err(issue)) if matches!(issue.error, CodecError::Io(_)) => {
                            queue_ref.fail(produced, issue);
                            return;
                        }
                        // Skip-and-report: a damaged chunk never gets a
                        // frame index, exactly like the sequential skip.
                        Some(Err(_)) => queue_ref.recycle(payload),
                    }
                }
                queue_ref.finish(produced);
            });
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (queue, cursor, enriched) = (&queue, &cursor, &enriched);
                    scope.spawn(move || {
                        let mut batch = ColumnBatch::new();
                        let mut done: Vec<(usize, P)> = Vec::new();
                        let mut batches = 0u64;
                        while let Some(index) = cursor.claim() {
                            let Some(frame) = queue.take(index as u64) else { break };
                            // telco-lint: deny-panic(begin)
                            let decoded = decode_payload_columns(
                                version,
                                frame.count,
                                &frame.payload,
                                &mut batch,
                            );
                            if decoded.is_ok() {
                                let mut pass = make();
                                pass.begin(ctx);
                                pass.record_columns(&batch, enriched);
                                done.push((index, pass));
                                batches += 1;
                            }
                            // telco-lint: deny-panic(end)
                            queue.recycle(frame.payload);
                        }
                        (done, batches)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
        });

        if let Some(issue) = queue.take_error() {
            return Some(Err(issue));
        }
        let mut per_worker = Vec::with_capacity(results.len());
        let mut total_batches = 0u64;
        for (done, batches) in results {
            per_worker.push(done);
            total_batches += batches;
        }
        self.data.trace.note_column_batches(total_batches);

        // telco-lint: deny-nondeterminism(begin)
        // Fold the per-chunk accumulators in chunk order — collect_runs
        // sorts by claimed frame index, so neither worker assignment nor
        // completion order can reach the merge sequence; the fold
        // replays the file's healthy-chunk order exactly.
        let mut base = make();
        base.begin(ctx);
        for (_, part) in collect_runs(per_worker) {
            base.merge(part, ctx);
        }
        // telco-lint: deny-nondeterminism(end)
        Some(Ok(base.end(ctx)))
    }
}

fn resolve_threads(config: &SimConfig) -> usize {
    if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    }
}

/// Whole-trace counters every summary needs: record totals per handover
/// type and the failure count. Replaces the `SignalingDataset` accessors
/// (`len`, `counts_by_type`, `hof_rate`) for studies whose trace may live
/// on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct TraceCounts {
    /// Total handover records swept.
    pub records: u64,
    /// Records per handover type (`HoType::index()` order).
    pub by_type: [u64; 3],
    /// Failed handovers among them.
    pub failures: u64,
    /// Study-day span (for daily normalization).
    pub days: u32,
}

impl TraceCounts {
    /// Failures per handover.
    pub fn hof_rate(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.failures as f64 / self.records as f64
    }

    /// Average records per study day.
    pub fn daily_mean(&self) -> f64 {
        if self.days == 0 {
            return 0.0;
        }
        self.records as f64 / self.days as f64
    }
}

/// The [`TraceCounts`] accumulator.
#[derive(Debug, Default)]
pub struct TraceCountsPass {
    counts: TraceCounts,
}

impl AnalysisPass for TraceCountsPass {
    type Output = TraceCounts;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.counts = TraceCounts { days: ctx.config.n_days, ..TraceCounts::default() };
    }

    fn record(&mut self, r: &HoRecord, _e: &Enriched) {
        self.counts.records += 1;
        self.counts.by_type[r.ho_type().index()] += 1;
        self.counts.failures += u64::from(r.is_failure());
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, _e: &Enriched) {
        self.counts.records += batch.len() as u64;
        for &rat in batch.target_rats() {
            self.counts.by_type[HoType::from_target_rat(rat).index()] += 1;
        }
        for &flags in batch.flags() {
            self.counts.failures += u64::from(flags & FLAG_FAILURE != 0);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        self.counts.records += other.counts.records;
        self.counts.failures += other.counts.failures;
        for (mine, theirs) in self.counts.by_type.iter_mut().zip(other.counts.by_type) {
            *mine += theirs;
        }
    }

    fn end(self, _ctx: &SweepCtx) -> TraceCounts {
        self.counts
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.counts.records);
        for &n in &self.counts.by_type {
            w.put_varint(n);
        }
        w.put_varint(self.counts.failures);
        w.put_u32(self.counts.days);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.counts.records = r.get_varint()?;
        for slot in &mut self.counts.by_type {
            *slot = r.get_varint()?;
        }
        self.counts.failures = r.get_varint()?;
        self.counts.days = r.get_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, run_study_spilled, SimConfig};

    #[test]
    fn trace_counts_match_dataset() {
        let data = run_study(SimConfig::tiny());
        let counts = Sweep::new(&data).run(TraceCountsPass::default).unwrap();
        let dataset = data.trace.as_dataset().unwrap();
        assert_eq!(counts.records, dataset.len() as u64);
        assert_eq!(counts.by_type, dataset.counts_by_type());
        assert_eq!(counts.hof_rate(), dataset.hof_rate());
        assert_eq!(counts.daily_mean(), dataset.daily_mean());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let mut seq_cfg = SimConfig::tiny();
        seq_cfg.threads = 1;
        let mut par_cfg = seq_cfg.clone();
        par_cfg.threads = 4;
        let seq = run_study(seq_cfg);
        let par = run_study(par_cfg);
        let a = Sweep::new(&seq).run(TraceCountsPass::default).unwrap();
        let b = Sweep::new(&par).run(TraceCountsPass::default).unwrap();
        assert_eq!(a, b);
        // One traversal each, whichever mode ran.
        assert_eq!(seq.trace.sweeps(), 1);
        assert_eq!(par.trace.sweeps(), 1);
    }

    #[test]
    fn spilled_sweep_streams_the_same_counts() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 150;
        let in_mem = run_study(cfg.clone());
        let dir = std::env::temp_dir().join("telco_sweep_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spilled = run_study_spilled(cfg, &dir).unwrap();
        let a = Sweep::new(&in_mem).run(TraceCountsPass::default).unwrap();
        let b = Sweep::new(&spilled).run(TraceCountsPass::default).unwrap();
        assert_eq!(a, b);
        assert_eq!(spilled.trace.sweeps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
