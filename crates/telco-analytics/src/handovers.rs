//! §5.2 — Horizontal vs vertical handovers: the Table 2 type × device-type
//! breakdown, the Fig. 8 duration ECDFs, and the Fig. 9 per-district
//! distribution of handover types — each as a streaming [`AnalysisPass`].

use serde::{Deserialize, Serialize};

use telco_devices::types::DeviceType;
use telco_geo::district::DistrictId;
use telco_signaling::messages::HoType;
use telco_stats::desc::{mean, std_dev};
use telco_stats::ecdf::Ecdf;
use telco_trace::columnar::{ColumnBatch, FLAG_FAILURE};
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, pct, TextTable};

/// Table 2 — handover shares per type and device type, with daily
/// variability (± std across study days).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoTypeTable {
    /// `share[device][ho_type]`: share of ALL handovers.
    pub share: [[f64; 3]; 3],
    /// Daily standard deviation of each share.
    pub share_std: [[f64; 3]; 3],
    /// Column totals per HO type.
    pub type_totals: [f64; 3],
    /// Row totals per device type.
    pub device_totals: [f64; 3],
}

impl HoTypeTable {
    /// Share of all handovers that are horizontal.
    pub fn intra_share(&self) -> f64 {
        self.type_totals[HoType::Intra4g5g.index()]
    }

    /// Render as the paper's Table 2.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 2: Handover shares per type and device type (% of all HOs)",
            &["Device type", "Intra 4G/5G-NSA", "->3G", "->2G", "All"],
        );
        for dev in DeviceType::ALL {
            let i = dev.index();
            t.row(&[
                dev.to_string(),
                format!("{} ± {}", pct(self.share[i][0], 2), pct(self.share_std[i][0], 2)),
                format!("{} ± {}", pct(self.share[i][1], 2), pct(self.share_std[i][1], 2)),
                pct(self.share[i][2], 4),
                pct(self.device_totals[i], 2),
            ]);
        }
        t.row(&[
            "All devices".to_string(),
            pct(self.type_totals[0], 2),
            pct(self.type_totals[1], 2),
            pct(self.type_totals[2], 4),
            "100%".to_string(),
        ]);
        t
    }
}

/// Streaming accumulator for [`HoTypeTable`]: per-day type × device counts.
#[derive(Debug, Default)]
pub struct HoTypePass {
    /// `counts[day][device][type]`.
    counts: Vec<[[u64; 3]; 3]>,
}

impl AnalysisPass for HoTypePass {
    type Output = HoTypeTable;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.counts = vec![[[0u64; 3]; 3]; ctx.config.n_days.max(1) as usize];
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        let d = (r.day() as usize).min(self.counts.len() - 1);
        self.counts[d][e.device_type(r).index()][r.ho_type().index()] += 1;
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        let last = self.counts.len().saturating_sub(1);
        let rows = batch.timestamps().iter().zip(batch.ues()).zip(batch.target_rats());
        for ((&ts, &ue), &rat) in rows {
            let d = ((ts / 86_400_000) as usize).min(last);
            if let Some(day) = self.counts.get_mut(d) {
                day[e.device_of(ue).index()][HoType::from_target_rat(rat).index()] += 1;
            }
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (day, theirs) in self.counts.iter_mut().zip(other.counts) {
            for (row, t_row) in day.iter_mut().zip(theirs) {
                for (c, t) in row.iter_mut().zip(t_row) {
                    *c += t;
                }
            }
        }
    }

    fn end(self, _ctx: &SweepCtx) -> HoTypeTable {
        // Daily shares, then mean ± std across days.
        let mut daily_shares: Vec<[[f64; 3]; 3]> = Vec::with_capacity(self.counts.len());
        for day in &self.counts {
            let total: u64 = day.iter().flatten().sum();
            if total == 0 {
                continue;
            }
            let mut s = [[0.0; 3]; 3];
            for dev in 0..3 {
                for ty in 0..3 {
                    s[dev][ty] = day[dev][ty] as f64 / total as f64;
                }
            }
            daily_shares.push(s);
        }
        let mut share = [[0.0; 3]; 3];
        let mut share_std = [[0.0; 3]; 3];
        for dev in 0..3 {
            for ty in 0..3 {
                let series: Vec<f64> = daily_shares.iter().map(|s| s[dev][ty]).collect();
                share[dev][ty] = mean(&series).unwrap_or(0.0);
                share_std[dev][ty] = std_dev(&series).unwrap_or(0.0);
            }
        }
        let mut type_totals = [0.0; 3];
        let mut device_totals = [0.0; 3];
        for dev in 0..3 {
            for ty in 0..3 {
                type_totals[ty] += share[dev][ty];
                device_totals[dev] += share[dev][ty];
            }
        }
        HoTypeTable { share, share_std, type_totals, device_totals }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.counts.len() as u64);
        for day in &self.counts {
            for row in day {
                for &c in row {
                    w.put_varint(c);
                }
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let days = r.get_len()?;
        self.counts = vec![[[0u64; 3]; 3]; days];
        for day in &mut self.counts {
            for row in day {
                for c in row {
                    *c = r.get_varint()?;
                }
            }
        }
        Ok(())
    }
}

/// Fig. 8 — signaling-duration ECDFs per handover type (successes only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationAnalysis {
    /// ECDF of intra 4G/5G-NSA durations.
    pub intra: Ecdf,
    /// ECDF of →3G durations.
    pub to3g: Option<Ecdf>,
    /// ECDF of →2G durations.
    pub to2g: Option<Ecdf>,
}

impl DurationAnalysis {
    /// Render median / p95 per type.
    pub fn table(&self) -> TextTable {
        let mut t =
            TextTable::new("Fig 8: HO duration per type (ms)", &["HO type", "median", "p95"]);
        t.row(&[
            HoType::Intra4g5g.to_string(),
            num(self.intra.median(), 0),
            num(self.intra.quantile(0.95), 0),
        ]);
        if let Some(e) = &self.to3g {
            t.row(&[HoType::To3g.to_string(), num(e.median(), 0), num(e.quantile(0.95), 0)]);
        }
        if let Some(e) = &self.to2g {
            t.row(&[HoType::To2g.to_string(), num(e.median(), 0), num(e.quantile(0.95), 0)]);
        }
        t
    }
}

/// Streaming accumulator for [`DurationAnalysis`]: success durations per
/// type, in trace order (the ECDF sorts at [`AnalysisPass::end`]).
#[derive(Debug, Default)]
pub struct DurationPass {
    /// Durations accumulate at trace precision (`f32`): half the push and
    /// merge bandwidth of eager widening, and the `f32 → f64` cast at
    /// `end` is exact, so the resulting ECDFs are bit-identical.
    per_type: [Vec<f32>; 3],
}

impl DurationPass {
    /// Sort the sample and build its ECDF. Durations are non-negative
    /// finite `f32`s, whose IEEE-754 bit patterns order exactly like
    /// their values — so an LSB radix sort over the raw bits replaces
    /// the comparison sort, roughly 4× faster on the ~450k-sample intra
    /// vector of the small preset (and the `f32 → f64` cast is exact,
    /// so the resulting ECDF is bit-identical to the widened sort).
    fn ecdf(sample: &[f32]) -> Ecdf {
        let mut keys: Vec<u32> = sample
            .iter()
            .map(|&v| {
                assert!(v >= 0.0 && v.is_finite(), "negative or non-finite duration sample");
                v.to_bits()
            })
            .collect();
        radix_sort_u32(&mut keys);
        Ecdf::from_sorted(keys.iter().map(|&b| f64::from(f32::from_bits(b))).collect())
    }
}

/// In-place byte-wise LSB radix sort. Each pass is counting-sort stable,
/// so after the fourth pass the keys are fully ascending; passes whose
/// byte is constant across the input (common for the exponent-heavy high
/// bytes of a narrow duration distribution) are skipped outright.
fn radix_sort_u32(keys: &mut Vec<u32>) {
    let mut scratch = vec![0u32; keys.len()];
    for shift in [0u32, 8, 16, 24] {
        let mut counts = [0usize; 256];
        for &k in keys.iter() {
            counts[(k >> shift) as usize & 0xff] += 1;
        }
        if counts.contains(&keys.len()) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for &k in keys.iter() {
            let slot = &mut offsets[(k >> shift) as usize & 0xff];
            scratch[*slot] = k;
            *slot += 1;
        }
        std::mem::swap(keys, &mut scratch);
    }
}

impl AnalysisPass for DurationPass {
    type Output = DurationAnalysis;

    fn record(&mut self, r: &HoRecord, _e: &Enriched) {
        if !r.is_failure() {
            self.per_type[r.ho_type().index()].push(r.duration_ms);
        }
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, _e: &Enriched) {
        let rows = batch.target_rats().iter().zip(batch.flags()).zip(batch.durations());
        for ((&rat, &flags), &duration) in rows {
            if flags & FLAG_FAILURE == 0 {
                // telco-lint: allow(alloc): duration sample reservoir — percentile output needs every success sample, growth is amortized
                self.per_type[HoType::from_target_rat(rat).index()].push(duration);
            }
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.per_type.iter_mut().zip(other.per_type) {
            mine.extend(theirs);
        }
    }

    fn end(self, _ctx: &SweepCtx) -> DurationAnalysis {
        let per_type = self.per_type;
        assert!(!per_type[0].is_empty(), "no successful intra handovers in trace");
        DurationAnalysis {
            intra: Self::ecdf(&per_type[0]),
            to3g: (!per_type[1].is_empty()).then(|| Self::ecdf(&per_type[1])),
            to2g: (!per_type[2].is_empty()).then(|| Self::ecdf(&per_type[2])),
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        for samples in &self.per_type {
            w.put_f32s(samples);
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        for samples in &mut self.per_type {
            *samples = r.get_f32s()?;
        }
        Ok(())
    }
}

/// Fig. 9 — distribution of handover-type shares across districts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistrictDistribution {
    /// Per district: `(district, intra share, →3G share, →2G share)`.
    pub per_district: Vec<(DistrictId, f64, f64, f64)>,
    /// Maximum intra share across districts (paper: 99.92%).
    pub max_intra_share: f64,
    /// Mean →3G share among the 6% least densely populated districts
    /// (paper: 26.5%).
    pub least_dense_to3g_mean: f64,
    /// Maximum →3G share across districts (paper: 58.1%).
    pub max_to3g_share: f64,
}

impl DistrictDistribution {
    /// Render summary.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new("Fig 9: HO types across districts", &["Metric", "Value"]);
        t.row_strs(&["Max district intra share", &pct(self.max_intra_share, 2)]);
        t.row_strs(&[
            "Mean ->3G share, 6% least-dense districts",
            &pct(self.least_dense_to3g_mean, 1),
        ]);
        t.row_strs(&["Max district ->3G share", &pct(self.max_to3g_share, 1)]);
        t
    }
}

/// Streaming accumulator for [`DistrictDistribution`]: per-district
/// type counts keyed by source-sector district.
#[derive(Debug, Default)]
pub struct DistrictPass {
    counts: Vec<[u64; 3]>,
}

impl AnalysisPass for DistrictPass {
    type Output = DistrictDistribution;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.counts = vec![[0u64; 3]; ctx.world.country.districts().len()];
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        let d = e.district(r);
        self.counts[d.0 as usize][r.ho_type().index()] += 1;
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for (&sector, &rat) in batch.source_sectors().iter().zip(batch.target_rats()) {
            let d = e.district_of(sector);
            if let Some(row) = self.counts.get_mut(d.0 as usize) {
                row[HoType::from_target_rat(rat).index()] += 1;
            }
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            for (c, t) in mine.iter_mut().zip(theirs) {
                *c += t;
            }
        }
    }

    fn end(self, ctx: &SweepCtx) -> DistrictDistribution {
        let per_district: Vec<(DistrictId, f64, f64, f64)> = ctx
            .world
            .country
            .districts()
            .iter()
            .map(|d| {
                let c = self.counts[d.id.0 as usize];
                let total = (c[0] + c[1] + c[2]).max(1) as f64;
                (d.id, c[0] as f64 / total, c[1] as f64 / total, c[2] as f64 / total)
            })
            .collect();
        // The 6% least densely populated districts.
        let least = ctx.world.census.least_dense(0.06);
        let least_to3g: Vec<f64> =
            least.iter().map(|row| per_district[row.district.0 as usize].2).collect();
        DistrictDistribution {
            max_intra_share: per_district.iter().map(|x| x.1).fold(0.0, f64::max),
            least_dense_to3g_mean: mean(&least_to3g).unwrap_or(0.0),
            max_to3g_share: per_district.iter().map(|x| x.2).fold(0.0, f64::max),
            per_district,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_varint(self.counts.len() as u64);
        for row in &self.counts {
            for &c in row {
                w.put_varint(c);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let districts = r.get_len()?;
        self.counts = vec![[0u64; 3]; districts];
        for row in &mut self.counts {
            for c in row {
                *c = r.get_varint()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig, StudyData};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 800;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    #[test]
    fn type_table_shares_sum_to_one() {
        let t = Sweep::new(study()).run(HoTypePass::default).unwrap();
        let total: f64 = t.type_totals.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "totals {total}");
        assert!(t.intra_share() > 0.8);
        // Smartphones dominate handovers.
        assert!(t.device_totals[0] > 0.6);
        assert_eq!(t.table().len(), 4);
    }

    #[test]
    fn duration_ordering_matches_paper() {
        let d = Sweep::new(study()).run(DurationPass::default).unwrap();
        let intra_med = d.intra.median();
        assert!((20.0..90.0).contains(&intra_med), "intra median {intra_med}");
        if let Some(e3) = &d.to3g {
            assert!(e3.median() > 4.0 * intra_med, "3G must be ~10× slower");
        }
    }

    #[test]
    fn district_distribution_varies() {
        let d = Sweep::new(study()).run(DistrictPass::default).unwrap();
        assert!(d.max_intra_share > 0.9);
        assert!(
            d.least_dense_to3g_mean
                > d.per_district.iter().map(|x| x.2).sum::<f64>() / d.per_district.len() as f64,
            "least-dense districts must lean more on 3G"
        );
    }

    #[test]
    fn radix_sort_matches_comparison_sort() {
        // A mix that exercises every byte position: duplicates, zero,
        // subnormal-range bits, and values spanning several exponents.
        let samples: Vec<f32> =
            vec![0.0, 17.25, 3.5e4, 1.0e-3, 17.25, 2.0e7, 0.5, 1.0, 8191.99, 1.0e-38, 42.0];
        let mut keys: Vec<u32> = samples.iter().map(|v| v.to_bits()).collect();
        super::radix_sort_u32(&mut keys);
        let radix: Vec<f32> = keys.iter().map(|&b| f32::from_bits(b)).collect();
        let mut expected = samples;
        expected.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(radix, expected);
        let mut empty: Vec<u32> = Vec::new();
        super::radix_sort_u32(&mut empty);
        assert!(empty.is_empty());
    }
}
