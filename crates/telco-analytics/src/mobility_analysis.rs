//! §5.3 / §6.1 — Mobility across device types (Fig. 10) and the
//! HOF-rate-vs-mobility relationship (Fig. 13).

use serde::{Deserialize, Serialize};

use telco_devices::types::DeviceType;
use telco_sim::StudyData;
use telco_stats::boxplot::BoxplotStats;
use telco_stats::ecdf::Ecdf;
use telco_stats::hist::{BinnedSamples, LogBins};

use crate::tables::{num, TextTable};

/// Fig. 10 — ECDFs of the §3.3 mobility metrics per device type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityEcdfs {
    /// Visited-sector ECDF per device type (`DeviceType::index()` order).
    pub sectors: Vec<Option<Ecdf>>,
    /// Radius-of-gyration ECDF per device type.
    pub gyration: Vec<Option<Ecdf>>,
}

impl MobilityEcdfs {
    /// Compute from the study's UE-day mobility ledger.
    pub fn compute(study: &StudyData) -> Self {
        let mut sectors: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut gyration: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for m in &study.output.mobility {
            let ty = study.world.ue(m.ue).device_type.index();
            sectors[ty].push(m.sectors as f64);
            gyration[ty].push(m.gyration_km as f64);
        }
        MobilityEcdfs {
            sectors: sectors.into_iter().map(|v| (!v.is_empty()).then(|| Ecdf::new(&v))).collect(),
            gyration: gyration
                .into_iter()
                .map(|v| (!v.is_empty()).then(|| Ecdf::new(&v)))
                .collect(),
        }
    }

    /// Median visited sectors for a device type.
    pub fn median_sectors(&self, ty: DeviceType) -> Option<f64> {
        self.sectors[ty.index()].as_ref().map(Ecdf::median)
    }

    /// Median gyration (km) for a device type.
    pub fn median_gyration(&self, ty: DeviceType) -> Option<f64> {
        self.gyration[ty.index()].as_ref().map(Ecdf::median)
    }

    /// Render medians and pct-95s.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 10: Mobility metrics per device type",
            &["Device type", "median sectors", "p95 sectors", "median gyr (km)", "p95 gyr (km)"],
        );
        for ty in DeviceType::ALL {
            let s = self.sectors[ty.index()].as_ref();
            let g = self.gyration[ty.index()].as_ref();
            t.row(&[
                ty.to_string(),
                s.map_or("-".into(), |e| num(e.median(), 0)),
                s.map_or("-".into(), |e| num(e.quantile(0.95), 0)),
                g.map_or("-".into(), |e| num(e.median(), 2)),
                g.map_or("-".into(), |e| num(e.quantile(0.95), 1)),
            ]);
        }
        t
    }
}

/// Fig. 13 — HOF rate against binned device-level mobility metrics, plus
/// the ECDF of UEs across bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HofVsMobility {
    /// Labels of the visited-sector bins.
    pub sector_bin_labels: Vec<String>,
    /// HOF-rate boxplot per visited-sector bin (`None` when empty).
    pub by_sectors: Vec<Option<BoxplotStats>>,
    /// UE-day counts per visited-sector bin.
    pub sector_counts: Vec<usize>,
    /// Labels of the gyration bins.
    pub gyration_bin_labels: Vec<String>,
    /// HOF-rate boxplot per gyration bin.
    pub by_gyration: Vec<Option<BoxplotStats>>,
    /// UE-day counts per gyration bin.
    pub gyration_counts: Vec<usize>,
}

impl HofVsMobility {
    /// Compute from the mobility ledger. HOF rates are daily per-UE rates
    /// in percent.
    pub fn compute(study: &StudyData) -> Self {
        let sector_bins = LogBins::new(10.0, 0, 4, true); // 0 | 1..10^4
        let gyration_bins = LogBins::new(10.0, -1, 3, true); // 0 | 0.1..10^3 km
        let mut by_sectors = BinnedSamples::new(sector_bins.clone());
        let mut by_gyration = BinnedSamples::new(gyration_bins.clone());
        for m in &study.output.mobility {
            let rate = 100.0 * m.hof_rate();
            by_sectors.add(m.sectors as f64, rate);
            by_gyration.add(m.gyration_km as f64, rate);
        }
        HofVsMobility {
            sector_bin_labels: (0..sector_bins.n_bins()).map(|b| sector_bins.label(b)).collect(),
            by_sectors: by_sectors.bin_samples().iter().map(|s| BoxplotStats::of(s)).collect(),
            sector_counts: by_sectors.counts(),
            gyration_bin_labels: (0..gyration_bins.n_bins())
                .map(|b| gyration_bins.label(b))
                .collect(),
            by_gyration: by_gyration.bin_samples().iter().map(|s| BoxplotStats::of(s)).collect(),
            gyration_counts: by_gyration.counts(),
        }
    }

    /// Fraction of UE-days in visited-sector bins at or below `edge`.
    pub fn share_below_sectors(&self, edge: f64) -> f64 {
        let total: usize = self.sector_counts.iter().sum();
        let mut acc = 0usize;
        for (i, label) in self.sector_bin_labels.iter().enumerate() {
            // Bin upper bound from the label ordering: bins are ascending.
            let upper = match label.as_str() {
                "0" => 0.0,
                l if l.starts_with(">=") => f64::INFINITY,
                l => l
                    .trim_start_matches('[')
                    .trim_end_matches(')')
                    .split(',')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(f64::INFINITY),
            };
            if upper <= edge {
                acc += self.sector_counts[i];
            }
        }
        acc as f64 / total.max(1) as f64
    }

    /// Render the per-bin medians and pct-75s.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 13: HOF rate vs binned mobility metrics",
            &["Metric", "Bin", "n", "median HOF%", "p75 HOF%"],
        );
        for (i, label) in self.sector_bin_labels.iter().enumerate() {
            if let Some(b) = &self.by_sectors[i] {
                t.row(&[
                    "sectors".to_string(),
                    label.clone(),
                    self.sector_counts[i].to_string(),
                    num(b.median, 3),
                    num(b.q3, 3),
                ]);
            }
        }
        for (i, label) in self.gyration_bin_labels.iter().enumerate() {
            if let Some(b) = &self.by_gyration[i] {
                t.row(&[
                    "gyration (km)".to_string(),
                    label.clone(),
                    self.gyration_counts[i].to_string(),
                    num(b.median, 3),
                    num(b.q3, 3),
                ]);
            }
        }
        t
    }

    /// The paper's headline: pct-75 of the HOF rate in the highest
    /// populated mobility bins (devices visiting >100 sectors).
    pub fn high_mobility_p75(&self) -> Option<f64> {
        // Bins beyond 100 sectors: labels "[100,1000)" and ">=1000".
        let mut samples = Vec::new();
        for (i, label) in self.sector_bin_labels.iter().enumerate() {
            if label == "[100,1000)" || label == "[1000,10000)" || label.starts_with(">=") {
                if let Some(b) = &self.by_sectors[i] {
                    samples.push(b.q3);
                }
            }
        }
        samples.into_iter().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> &'static StudyData {
        static CELL: std::sync::OnceLock<StudyData> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 900;
            cfg.threads = 0;
            run_study(cfg)
        })
    }

    #[test]
    fn smartphone_mobility_dominates() {
        let s = study();
        let m = MobilityEcdfs::compute(s);
        let smart = m.median_sectors(DeviceType::Smartphone).unwrap();
        let m2m = m.median_sectors(DeviceType::M2mIot).unwrap();
        assert!(smart > 2.0 * m2m, "smartphones {smart} vs M2M {m2m}");
        assert!(m.median_gyration(DeviceType::M2mIot).unwrap() < 0.5);
        assert!(m.median_gyration(DeviceType::Smartphone).unwrap() > 0.5);
    }

    #[test]
    fn hof_vs_mobility_rises_with_sectors() {
        let s = study();
        let h = HofVsMobility::compute(s);
        // Low-mobility bins carry almost zero HOF; some high bins exist.
        assert!(h.sector_counts.iter().sum::<usize>() > 0);
        // The bin with 1..10 sectors should have near-zero median HOF rate.
        let low_idx = h.sector_bin_labels.iter().position(|l| l == "[1,10)").unwrap();
        if let Some(b) = &h.by_sectors[low_idx] {
            assert!(b.median < 2.0, "low-mobility median HOF {}", b.median);
        }
    }

    #[test]
    fn share_below_counts_everything() {
        let s = study();
        let h = HofVsMobility::compute(s);
        let below_inf = h.share_below_sectors(f64::INFINITY);
        assert!((below_inf - 1.0).abs() < 1e-9);
        assert!(h.share_below_sectors(10.0) <= 1.0);
    }

    #[test]
    fn tables_render() {
        let s = study();
        assert!(MobilityEcdfs::compute(s).table().to_string().contains("median sectors"));
        assert!(HofVsMobility::compute(s).table().len() > 3);
    }
}
