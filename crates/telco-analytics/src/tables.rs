//! Plain-text table rendering for experiment output.
//!
//! The `repro` harness prints every table/figure of the paper as aligned
//! text; this module is the shared renderer.

use serde::{Deserialize, Serialize};

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with the given decimals.
pub fn pct(x: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, 100.0 * x)
}

/// Format a float compactly.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Format a signed coefficient in scientific notation when tiny.
pub fn coef(x: f64) -> String {
    if x != 0.0 && x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["Name", "Value"]);
        t.row_strs(&["alpha", "1"]);
        t.row_strs(&["b", "10000"]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234, 1), "12.3%");
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(coef(0.000012), "1.200e-5");
        assert_eq!(coef(5.123), "5.123");
        assert_eq!(coef(0.0), "0.000");
    }
}
