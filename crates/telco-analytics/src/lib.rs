//! # telco-analytics
//!
//! The paper's analyses (§§4–6 and Appendix B of *Through the Telco Lens*,
//! IMC '24) implemented over simulated study data: data-heterogeneity
//! profiling (Table 1, Figs. 3–4), geodemographics (Figs. 5–6), the
//! geo-temporal and per-type handover characterization (Table 2,
//! Figs. 7–9), mobility metrics (Figs. 10, 13), manufacturer impact
//! (Fig. 11), HOF patterns and causes (Figs. 12, 14, 15), the statistical
//! models of §6.3 (Tables 3–9, Fig. 16), and the vendor appendix
//! (Figs. 17–18).
//!
//! ## Example
//!
//! ```
//! use telco_analytics::Study;
//! use telco_sim::SimConfig;
//!
//! let mut cfg = SimConfig::tiny();
//! cfg.n_ues = 800;
//! let study = Study::run(cfg);
//! let table2 = study.ho_types();
//! assert!(table2.intra_share() > 0.5); // horizontal HOs dominate
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod bitset;
pub mod frame;
pub mod geodemo;
pub mod handovers;
pub mod heterogeneity;
pub mod hof;
pub mod manufacturer;
pub mod mobility_analysis;
pub mod modeling;
pub mod pingpong;
pub mod study;
pub mod sweep;
pub mod tables;
pub mod timeseries;
pub mod vendor_analysis;

pub use frame::{Enriched, FramePass, FrameWindow, SectorDayFrame, SectorDayObs};
pub use geodemo::{HoDensity, HoDensityPass, PopulationInference, PopulationPass};
pub use handovers::{
    DistrictDistribution, DistrictPass, DurationAnalysis, DurationPass, HoTypePass, HoTypeTable,
};
pub use heterogeneity::{DatasetStats, DeploymentEvolution, DeviceMix, RatUsage};
pub use hof::{CauseAnalysis, CausePass, HofPatterns, HofPatternsPass};
pub use manufacturer::{ManufacturerImpact, ManufacturerPass};
pub use mobility_analysis::{HofVsMobility, MobilityEcdfs};
pub use modeling::{HofModels, ModelingOptions};
pub use pingpong::{PingPongAnalysis, PingPongPass};
pub use study::{Study, StudyPasses, SweepOutputs};
pub use sweep::{
    restore_pass, snapshot_pass, AnalysisPass, Sweep, SweepCtx, TraceCounts, TraceCountsPass,
};
pub use tables::TextTable;
pub use timeseries::TemporalEvolution;
pub use vendor_analysis::{VendorAnalysis, VendorPass};
