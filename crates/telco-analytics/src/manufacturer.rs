//! §5.3 — Manufacturer impact (Fig. 11): normalized district-level
//! handovers and HOF rates per UE manufacturer.
//!
//! For a fair comparison across areas, the paper normalizes within each
//! district: the average HOs per UE of a manufacturer divided by the
//! average HOs per UE of *all* manufacturers in the same district (and the
//! same for the HOF rate). Values above 1 mean the manufacturer's devices
//! hand over (or fail) more than their district peers. District-
//! manufacturer pairs with too few devices are excluded (paper: <1k
//! devices; scaled here).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use telco_devices::types::Manufacturer;
use telco_sim::StudyData;
use telco_stats::boxplot::BoxplotStats;

use crate::tables::{num, TextTable};

/// Fig. 11 — normalized district-level HO and HOF-rate ratios per
/// manufacturer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManufacturerImpact {
    /// Per manufacturer: boxplot of the normalized district-level HOs per
    /// UE across districts.
    pub ho_ratio: Vec<(Manufacturer, BoxplotStats)>,
    /// Per manufacturer: boxplot of the normalized district-level HOF rate.
    pub hof_ratio: Vec<(Manufacturer, BoxplotStats)>,
    /// Minimum devices per (district, manufacturer) pair required.
    pub min_devices: usize,
}

impl ManufacturerImpact {
    /// Compute with a device-count threshold per district-manufacturer
    /// pair (the paper uses 1k at 40M-UE scale; pick proportionally).
    pub fn compute(study: &StudyData, min_devices: usize) -> Self {
        let n_days = study.config.n_days.max(1) as f64;
        // Per (district, manufacturer): UE set, HOs, HOFs.
        #[derive(Default, Clone)]
        struct Cell {
            ues: std::collections::HashSet<u32>,
            hos: u64,
            hofs: u64,
            device_type: usize,
        }
        let mut cells: HashMap<(u16, Manufacturer), Cell> = HashMap::new();
        // Peers are the district's UEs *of the same device type*: comparing
        // an M2M module maker against smartphones would only measure the
        // device-type mix, not the manufacturer's implementation.
        let mut district_totals: HashMap<(u16, usize), Cell> = HashMap::new();

        // UE home district drives membership (devices are compared against
        // the peers of the district they live in).
        for (i, attrs) in study.world.ues.iter().enumerate() {
            let district = study.world.country.postcode(attrs.home_postcode).district;
            let cell = cells.entry((district.0, attrs.manufacturer)).or_default();
            cell.ues.insert(i as u32);
            cell.device_type = attrs.device_type.index();
            district_totals
                .entry((district.0, attrs.device_type.index()))
                .or_default()
                .ues
                .insert(i as u32);
        }
        for r in study.output.dataset.records() {
            let attrs = study.world.ue(r.ue);
            let district = study.world.country.postcode(attrs.home_postcode).district;
            let cell = cells.entry((district.0, attrs.manufacturer)).or_default();
            cell.hos += 1;
            cell.hofs += u64::from(r.is_failure());
            let tot = district_totals.entry((district.0, attrs.device_type.index())).or_default();
            tot.hos += 1;
            tot.hofs += u64::from(r.is_failure());
        }

        let mut ho_ratios: HashMap<Manufacturer, Vec<f64>> = HashMap::new();
        let mut hof_ratios: HashMap<Manufacturer, Vec<f64>> = HashMap::new();
        for ((district, mfr), cell) in &cells {
            if cell.ues.len() < min_devices || cell.hos == 0 {
                continue;
            }
            let Some(tot) = district_totals.get(&(*district, cell.device_type)) else {
                continue;
            };
            if tot.hos == 0 || tot.ues.is_empty() {
                continue;
            }
            let mfr_hos_per_ue = cell.hos as f64 / cell.ues.len() as f64 / n_days;
            let all_hos_per_ue = tot.hos as f64 / tot.ues.len() as f64 / n_days;
            ho_ratios.entry(*mfr).or_default().push(mfr_hos_per_ue / all_hos_per_ue);
            let all_rate = tot.hofs as f64 / tot.hos as f64;
            if all_rate > 0.0 {
                let mfr_rate = cell.hofs as f64 / cell.hos as f64;
                hof_ratios.entry(*mfr).or_default().push(mfr_rate / all_rate);
            }
        }

        let collect = |map: HashMap<Manufacturer, Vec<f64>>| -> Vec<(Manufacturer, BoxplotStats)> {
            let mut v: Vec<(Manufacturer, BoxplotStats)> = map
                .into_iter()
                .filter_map(|(m, xs)| BoxplotStats::of(&xs).map(|b| (m, b)))
                .collect();
            v.sort_by_key(|(m, _)| m.index());
            v
        };
        ManufacturerImpact {
            ho_ratio: collect(ho_ratios),
            hof_ratio: collect(hof_ratios),
            min_devices,
        }
    }

    /// Median normalized HO ratio of a manufacturer, if observed.
    pub fn median_ho_ratio(&self, mfr: Manufacturer) -> Option<f64> {
        self.ho_ratio.iter().find(|(m, _)| *m == mfr).map(|(_, b)| b.median)
    }

    /// Median normalized HOF-rate ratio of a manufacturer, if observed.
    pub fn median_hof_ratio(&self, mfr: Manufacturer) -> Option<f64> {
        self.hof_ratio.iter().find(|(m, _)| *m == mfr).map(|(_, b)| b.median)
    }

    /// Render the top-5 smartphone brands plus the highest-HOF outliers.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 11: Normalized district-level HOs & HOF rate per manufacturer",
            &["Manufacturer", "HO ratio (median)", "HOF ratio (median)", "districts"],
        );
        for (mfr, b) in &self.ho_ratio {
            let hof = self.median_hof_ratio(*mfr);
            t.row(&[
                mfr.to_string(),
                num(b.median, 2),
                hof.map_or("-".into(), |v| num(v, 2)),
                b.n.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn impact() -> &'static ManufacturerImpact {
        static CELL: std::sync::OnceLock<ManufacturerImpact> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 2500;
            cfg.n_days = 3;
            cfg.threads = 0;
            ManufacturerImpact::compute(&run_study(cfg), 3)
        })
    }

    #[test]
    fn top_manufacturers_near_unity() {
        let i = impact();
        for mfr in [Manufacturer::Apple, Manufacturer::Samsung] {
            if let Some(r) = i.median_ho_ratio(mfr) {
                assert!((0.6..1.6).contains(&r), "{mfr}: normalized HO ratio {r} far from 1");
            }
        }
    }

    #[test]
    fn simcom_generates_more_handovers() {
        let i = impact();
        if let (Some(simcom), Some(apple)) =
            (i.median_ho_ratio(Manufacturer::Simcom), i.median_ho_ratio(Manufacturer::Apple))
        {
            assert!(simcom > 1.5 * apple, "Simcom {simcom} should far exceed Apple {apple}");
        }
    }

    #[test]
    fn threshold_excludes_sparse_cells() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 600;
        let s = run_study(cfg);
        let strict = ManufacturerImpact::compute(&s, 50);
        let loose = ManufacturerImpact::compute(&s, 1);
        let strict_n: usize = strict.ho_ratio.iter().map(|(_, b)| b.n).sum();
        let loose_n: usize = loose.ho_ratio.iter().map(|(_, b)| b.n).sum();
        assert!(strict_n <= loose_n);
    }

    #[test]
    fn table_renders() {
        assert!(impact().table().to_string().contains("HOF ratio"));
    }
}
