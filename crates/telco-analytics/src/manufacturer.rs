//! §5.3 — Manufacturer impact (Fig. 11): normalized district-level
//! handovers and HOF rates per UE manufacturer.
//!
//! For a fair comparison across areas, the paper normalizes within each
//! district: the average HOs per UE of a manufacturer divided by the
//! average HOs per UE of *all* manufacturers in the same district (and the
//! same for the HOF rate). Values above 1 mean the manufacturer's devices
//! hand over (or fail) more than their district peers. District-
//! manufacturer pairs with too few devices are excluded (paper: <1k
//! devices; scaled here).

use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer};
use telco_stats::boxplot::BoxplotStats;
use telco_trace::columnar::{ColumnBatch, FLAG_FAILURE};
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, TextTable};

/// Fig. 11 — normalized district-level HO and HOF-rate ratios per
/// manufacturer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManufacturerImpact {
    /// Per manufacturer: boxplot of the normalized district-level HOs per
    /// UE across districts.
    pub ho_ratio: Vec<(Manufacturer, BoxplotStats)>,
    /// Per manufacturer: boxplot of the normalized district-level HOF rate.
    pub hof_ratio: Vec<(Manufacturer, BoxplotStats)>,
    /// Minimum devices per (district, manufacturer) pair required.
    pub min_devices: usize,
}

impl ManufacturerImpact {
    /// Median normalized HO ratio of a manufacturer, if observed.
    pub fn median_ho_ratio(&self, mfr: Manufacturer) -> Option<f64> {
        self.ho_ratio.iter().find(|(m, _)| *m == mfr).map(|(_, b)| b.median)
    }

    /// Median normalized HOF-rate ratio of a manufacturer, if observed.
    pub fn median_hof_ratio(&self, mfr: Manufacturer) -> Option<f64> {
        self.hof_ratio.iter().find(|(m, _)| *m == mfr).map(|(_, b)| b.median)
    }

    /// Render the top-5 smartphone brands plus the highest-HOF outliers.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 11: Normalized district-level HOs & HOF rate per manufacturer",
            &["Manufacturer", "HO ratio (median)", "HOF ratio (median)", "districts"],
        );
        for (mfr, b) in &self.ho_ratio {
            let hof = self.median_hof_ratio(*mfr);
            t.row(&[
                mfr.to_string(),
                num(b.median, 2),
                hof.map_or("-".into(), |v| num(v, 2)),
                b.n.to_string(),
            ]);
        }
        t
    }
}

/// Streaming accumulator for [`ManufacturerImpact`]: handover and failure
/// counts per (home district, manufacturer) cell and per (home district,
/// device type) peer group. UE membership comes from the world, so it is
/// reconstructed in [`AnalysisPass::end`] rather than carried through
/// merges.
///
/// Both grids are small and dense — `districts × 18` manufacturers and
/// `districts × 3` device types — so they live in flat vectors indexed
/// arithmetically; the record loop performs no hashing.
#[derive(Debug)]
pub struct ManufacturerPass {
    min_devices: Option<usize>,
    /// `district * N_MFRS + manufacturer index` → (HOs, HOFs).
    cells: Vec<(u64, u64)>,
    /// `district * N_DEVICES + device-type index` → (HOs, HOFs).
    totals: Vec<(u64, u64)>,
}

const N_MFRS: usize = Manufacturer::ALL.len();
const N_DEVICES: usize = DeviceType::ALL.len();

impl ManufacturerPass {
    /// A pass with an explicit device-count threshold per
    /// district-manufacturer pair (the paper uses 1k at 40M-UE scale).
    pub fn new(min_devices: usize) -> Self {
        ManufacturerPass { min_devices: Some(min_devices), ..ManufacturerPass::default() }
    }

    #[inline]
    fn observe(&mut self, ue: u32, fail: u64, e: &Enriched) {
        // UE home district drives membership (devices are compared against
        // the peers of the district they live in).
        let district = e.home_district_of(ue).0 as usize;
        if let Some(cell) = self.cells.get_mut(district * N_MFRS + e.manufacturer_idx_of(ue)) {
            cell.0 += 1;
            cell.1 += fail;
        }
        // Peers are the district's UEs *of the same device type*: comparing
        // an M2M module maker against smartphones would only measure the
        // device-type mix, not the manufacturer's implementation.
        let device = e.device_of(ue).index();
        if let Some(tot) = self.totals.get_mut(district * N_DEVICES + device) {
            tot.0 += 1;
            tot.1 += fail;
        }
    }
}

impl Default for ManufacturerPass {
    /// Threshold scaled from the study size: `(n_ues / 40_000).max(3)`.
    fn default() -> Self {
        ManufacturerPass { min_devices: None, cells: Vec::new(), totals: Vec::new() }
    }
}

impl AnalysisPass for ManufacturerPass {
    type Output = ManufacturerImpact;

    fn begin(&mut self, ctx: &SweepCtx) {
        let n_districts = ctx.world.country.districts().len();
        self.cells = vec![(0, 0); n_districts * N_MFRS];
        self.totals = vec![(0, 0); n_districts * N_DEVICES];
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.observe(r.ue.0, u64::from(r.is_failure()), e);
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for (&ue, &flags) in batch.ues().iter().zip(batch.flags()) {
            self.observe(ue, u64::from(flags & FLAG_FAILURE != 0), e);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
        for (mine, theirs) in self.totals.iter_mut().zip(other.totals) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
    }

    fn end(self, ctx: &SweepCtx) -> ManufacturerImpact {
        let min_devices = self.min_devices.unwrap_or_else(|| (ctx.config.n_ues / 40_000).max(3));
        let n_days = ctx.config.n_days.max(1) as f64;

        // Device populations per cell and peer group, from the world.
        let mut cell_ues = vec![(0u64, 0usize); self.cells.len()];
        let mut total_ues = vec![0u64; self.totals.len()];
        for attrs in ctx.world.ues.iter() {
            let district = ctx.world.country.postcode(attrs.home_postcode).district.0 as usize;
            let device = attrs.device_type.index();
            if let Some(entry) = cell_ues.get_mut(district * N_MFRS + attrs.manufacturer.index()) {
                entry.0 += 1;
                entry.1 = device;
            }
            if let Some(tot) = total_ues.get_mut(district * N_DEVICES + device) {
                *tot += 1;
            }
        }

        let mut ho_ratios: Vec<Vec<f64>> = vec![Vec::new(); N_MFRS];
        let mut hof_ratios: Vec<Vec<f64>> = vec![Vec::new(); N_MFRS];
        for (idx, (&(hos, hofs), &(n_ues, device_type))) in
            self.cells.iter().zip(&cell_ues).enumerate()
        {
            let (district, mfr) = (idx / N_MFRS, idx % N_MFRS);
            if (n_ues as usize) < min_devices || hos == 0 || n_ues == 0 {
                continue;
            }
            let Some(&(tot_hos, tot_hofs)) = self.totals.get(district * N_DEVICES + device_type)
            else {
                continue;
            };
            let tot_n_ues = total_ues.get(district * N_DEVICES + device_type).copied().unwrap_or(0);
            if tot_hos == 0 || tot_n_ues == 0 {
                continue;
            }
            let mfr_hos_per_ue = hos as f64 / n_ues as f64 / n_days;
            let all_hos_per_ue = tot_hos as f64 / tot_n_ues as f64 / n_days;
            if let Some(rs) = ho_ratios.get_mut(mfr) {
                rs.push(mfr_hos_per_ue / all_hos_per_ue);
            }
            let all_rate = tot_hofs as f64 / tot_hos as f64;
            if all_rate > 0.0 {
                let mfr_rate = hofs as f64 / hos as f64;
                if let Some(rs) = hof_ratios.get_mut(mfr) {
                    rs.push(mfr_rate / all_rate);
                }
            }
        }

        // Catalog order by construction — the district-major scan above
        // visits each manufacturer's ratios in ascending district order.
        let collect = |ratios: Vec<Vec<f64>>| -> Vec<(Manufacturer, BoxplotStats)> {
            ratios
                .into_iter()
                .enumerate()
                .filter_map(|(i, xs)| {
                    let m = Manufacturer::ALL.get(i)?;
                    BoxplotStats::of(&xs).map(|b| (*m, b))
                })
                .collect()
        };
        ManufacturerImpact {
            ho_ratio: collect(ho_ratios),
            hof_ratio: collect(hof_ratios),
            min_devices,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        match self.min_devices {
            None => w.put_bool(false),
            Some(n) => {
                w.put_bool(true);
                w.put_varint(n as u64);
            }
        }
        for grid in [&self.cells, &self.totals] {
            w.put_varint(grid.len() as u64);
            for &(hos, hofs) in grid {
                w.put_varint(hos);
                w.put_varint(hofs);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.min_devices = if r.get_bool()? { Some(r.get_len()?) } else { None };
        for grid in [&mut self.cells, &mut self.totals] {
            let n = r.get_len()?;
            *grid = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                grid.push((r.get_varint()?, r.get_varint()?));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig};

    fn impact() -> &'static ManufacturerImpact {
        static CELL: std::sync::OnceLock<ManufacturerImpact> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let mut cfg = SimConfig::tiny();
            cfg.n_ues = 2500;
            cfg.n_days = 3;
            cfg.threads = 0;
            let data = run_study(cfg);
            Sweep::new(&data).run(|| ManufacturerPass::new(3)).unwrap()
        })
    }

    #[test]
    fn top_manufacturers_near_unity() {
        let i = impact();
        for mfr in [Manufacturer::Apple, Manufacturer::Samsung] {
            if let Some(r) = i.median_ho_ratio(mfr) {
                assert!((0.6..1.6).contains(&r), "{mfr}: normalized HO ratio {r} far from 1");
            }
        }
    }

    #[test]
    fn simcom_generates_more_handovers() {
        let i = impact();
        if let (Some(simcom), Some(apple)) =
            (i.median_ho_ratio(Manufacturer::Simcom), i.median_ho_ratio(Manufacturer::Apple))
        {
            assert!(simcom > 1.5 * apple, "Simcom {simcom} should far exceed Apple {apple}");
        }
    }

    #[test]
    fn threshold_excludes_sparse_cells() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 600;
        let s = run_study(cfg);
        let sweep = Sweep::new(&s);
        let strict = sweep.run(|| ManufacturerPass::new(50)).unwrap();
        let loose = sweep.run(|| ManufacturerPass::new(1)).unwrap();
        let strict_n: usize = strict.ho_ratio.iter().map(|(_, b)| b.n).sum();
        let loose_n: usize = loose.ho_ratio.iter().map(|(_, b)| b.n).sum();
        assert!(strict_n <= loose_n);
    }

    #[test]
    fn table_renders() {
        assert!(impact().table().to_string().contains("HOF ratio"));
    }
}
