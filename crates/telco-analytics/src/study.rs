//! The `Study` orchestrator: run a simulation once, compute any of the
//! paper's analyses on demand (caching the shared sector-day frame).

use telco_sim::{run_study, SimConfig, StudyData};

use crate::frame::SectorDayFrame;
use crate::geodemo::{HoDensity, PopulationInference};
use crate::handovers::{DistrictDistribution, DurationAnalysis, HoTypeTable};
use crate::heterogeneity::{DatasetStats, DeploymentEvolution, DeviceMix, RatUsage};
use crate::hof::{CauseAnalysis, HofPatterns};
use crate::manufacturer::ManufacturerImpact;
use crate::mobility_analysis::{HofVsMobility, MobilityEcdfs};
use crate::modeling::{HofModels, ModelingOptions};
use crate::timeseries::TemporalEvolution;
use crate::vendor_analysis::VendorAnalysis;

/// A completed study plus lazily computed analyses.
pub struct Study {
    data: StudyData,
    frame: std::sync::OnceLock<SectorDayFrame>,
    period_frame: std::sync::OnceLock<SectorDayFrame>,
}

impl Study {
    /// Run a simulation and wrap it.
    pub fn run(config: SimConfig) -> Self {
        Self::from_data(run_study(config))
    }

    /// Wrap an existing study.
    pub fn from_data(data: StudyData) -> Self {
        Study { data, frame: std::sync::OnceLock::new(), period_frame: std::sync::OnceLock::new() }
    }

    /// The underlying simulation output.
    pub fn data(&self) -> &StudyData {
        &self.data
    }

    /// The sector-day frame (computed once).
    pub fn frame(&self) -> &SectorDayFrame {
        self.frame.get_or_init(|| SectorDayFrame::build(&self.data))
    }

    /// The full-period sector frame used by the regression models: one
    /// observation per (sector, study period, HO type) — the
    /// scale-equivalent of the paper's sector-day unit given ~3,000×
    /// fewer UEs (see DESIGN.md).
    pub fn period_frame(&self) -> &SectorDayFrame {
        self.period_frame
            .get_or_init(|| SectorDayFrame::build_windowed(&self.data, self.data.config.n_days))
    }

    /// Table 1 — dataset statistics.
    pub fn dataset_stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.data)
    }

    /// Table 2 — HO type × device type shares.
    pub fn ho_types(&self) -> HoTypeTable {
        HoTypeTable::compute(&self.data)
    }

    /// Fig. 3a — deployment evolution.
    pub fn deployment_evolution(&self) -> DeploymentEvolution {
        DeploymentEvolution::compute(&self.data)
    }

    /// Fig. 3b — RAT usage and traffic shares.
    pub fn rat_usage(&self) -> RatUsage {
        RatUsage::compute(&self.data)
    }

    /// Fig. 4 — device mix.
    pub fn device_mix(&self) -> DeviceMix {
        DeviceMix::compute(&self.data)
    }

    /// Fig. 5 — population inference vs census.
    pub fn population_inference(&self) -> PopulationInference {
        PopulationInference::compute(&self.data, 14)
    }

    /// Fig. 6 — HO density vs population density.
    pub fn ho_density(&self) -> HoDensity {
        HoDensity::compute(&self.data)
    }

    /// Fig. 7 — temporal evolution.
    pub fn temporal_evolution(&self) -> TemporalEvolution {
        TemporalEvolution::compute(&self.data)
    }

    /// Fig. 8 — duration ECDFs.
    pub fn durations(&self) -> DurationAnalysis {
        DurationAnalysis::compute(&self.data)
    }

    /// Fig. 9 — district distribution of HO types.
    pub fn district_distribution(&self) -> DistrictDistribution {
        DistrictDistribution::compute(&self.data)
    }

    /// Fig. 10 — mobility ECDFs.
    pub fn mobility(&self) -> MobilityEcdfs {
        MobilityEcdfs::compute(&self.data)
    }

    /// Fig. 11 — manufacturer impact (device threshold scaled to the run).
    pub fn manufacturer_impact(&self) -> ManufacturerImpact {
        // The paper requires ≥1k devices per district-manufacturer pair at
        // 40M-UE scale; scale proportionally with a floor of 3.
        let min_devices = (self.data.config.n_ues / 40_000).max(3);
        ManufacturerImpact::compute(&self.data, min_devices)
    }

    /// Fig. 12 — hourly HOF patterns.
    pub fn hof_patterns(&self) -> HofPatterns {
        HofPatterns::compute(&self.data)
    }

    /// Fig. 13 — HOF rate vs mobility.
    pub fn hof_vs_mobility(&self) -> HofVsMobility {
        HofVsMobility::compute(&self.data)
    }

    /// Figs. 14–15 — cause analysis.
    pub fn causes(&self) -> CauseAnalysis {
        CauseAnalysis::compute(&self.data)
    }

    /// Tables 4–9 + Fig. 16 — the §6.3 statistical models, computed on the
    /// full-period frame so per-cell HOF rates are well resolved.
    pub fn models(&self) -> HofModels {
        HofModels::compute(self.period_frame(), ModelingOptions::default())
    }

    /// Figs. 17–18 — vendor analysis.
    pub fn vendor_analysis(&self) -> VendorAnalysis {
        VendorAnalysis::compute(&self.data, self.frame())
    }

    /// Ping-pong handover analysis (§7's operator-side PP-HO lens).
    pub fn pingpong(&self) -> crate::pingpong::PingPongAnalysis {
        crate::pingpong::PingPongAnalysis::compute(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_end_to_end_smoke() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 1_200;
        cfg.n_days = 3;
        let study = Study::run(cfg);
        // Exercise the full API surface once.
        assert!(study.dataset_stats().daily_hos > 0.0);
        assert!(study.ho_types().intra_share() > 0.5);
        assert!(study.rat_usage().epc_time_share > 0.5);
        assert!(study.device_mix().type_shares[0] > 0.3);
        assert!(study.ho_density().pearson > 0.0);
        assert!(study.durations().intra.len() > 10);
        assert!(study.causes().principal_share() > 0.5);
        assert!(!study.frame().is_empty());
        let models = study.models();
        assert!(models.anova_ho_type.p_value < 0.05);
    }
}
