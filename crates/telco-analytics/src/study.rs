//! The `Study` orchestrator: run a simulation once, then fill **every**
//! record-derived analysis in a single shared sweep of the trace.
//!
//! The first call to any swept getter triggers one [`Sweep`] that runs
//! the [`StudyPasses`] composite — all ~12 record analyses plus both
//! sector frames as one visitor — so a full study traverses the trace
//! once whether it lives in memory or spilled on disk. Analyses that
//! read only the world or the mobility output (device mix, RAT usage,
//! deployment evolution, mobility ECDFs) never touch the trace at all.

use serde::Serialize;
use telco_sim::{run_study, SimConfig, StudyData};
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::{FramePass, FrameWindow, SectorDayFrame};
use crate::geodemo::{HoDensity, HoDensityPass, PopulationInference, PopulationPass};
use crate::handovers::{
    DistrictDistribution, DistrictPass, DurationAnalysis, DurationPass, HoTypePass, HoTypeTable,
};
use crate::heterogeneity::{DatasetStats, DeploymentEvolution, DeviceMix, RatUsage};
use crate::hof::{CauseAnalysis, CausePass, HofPatterns, HofPatternsPass};
use crate::manufacturer::{ManufacturerImpact, ManufacturerPass};
use crate::mobility_analysis::{HofVsMobility, MobilityEcdfs};
use crate::modeling::{HofModels, ModelingOptions};
use crate::pingpong::{PingPongAnalysis, PingPongPass};
use crate::sweep::{
    restore_pass, snapshot_pass, AnalysisPass, Sweep, SweepCtx, TraceCounts, TraceCountsPass,
};
use crate::timeseries::{TemporalEvolution, TemporalPass};
use crate::vendor_analysis::{VendorAnalysis, VendorPass};

/// Everything one shared sweep produces: the full set of record-derived
/// analyses plus both sector frames. Serializes (for the query front of
/// `telco-serve` and the batch-equivalence goldens) with one stable field
/// name per analysis.
#[derive(Serialize)]
pub struct SweepOutputs {
    /// Whole-trace counters (record totals, failure count).
    pub trace_counts: TraceCounts,
    /// Table 2.
    pub ho_types: HoTypeTable,
    /// Fig. 8.
    pub durations: DurationAnalysis,
    /// Fig. 9.
    pub district_distribution: DistrictDistribution,
    /// Fig. 5.
    pub population_inference: PopulationInference,
    /// Fig. 6.
    pub ho_density: HoDensity,
    /// Fig. 7.
    pub temporal_evolution: TemporalEvolution,
    /// Fig. 11.
    pub manufacturer_impact: ManufacturerImpact,
    /// Fig. 12.
    pub hof_patterns: HofPatterns,
    /// Figs. 14–15.
    pub causes: CauseAnalysis,
    /// The §7 ping-pong lens.
    pub pingpong: PingPongAnalysis,
    /// Figs. 17–18.
    pub vendor_analysis: VendorAnalysis,
    /// The daily sector frame.
    pub frame: SectorDayFrame,
    /// The full-period sector frame used by the §6.3 models.
    pub period_frame: SectorDayFrame,
}

/// The composite pass behind [`Study`]: every registered analysis as one
/// visitor, so the sweep driver feeds each record to all of them during a
/// single traversal.
#[derive(Default)]
pub struct StudyPasses {
    counts: TraceCountsPass,
    ho_types: HoTypePass,
    durations: DurationPass,
    districts: DistrictPass,
    population: PopulationPass,
    density: HoDensityPass,
    temporal: TemporalPass,
    manufacturer: ManufacturerPass,
    hof_patterns: HofPatternsPass,
    causes: CausePass,
    pingpong: PingPongPass,
    vendor: VendorPass,
    frame: Option<FramePass>,
    period_frame: Option<FramePass>,
}

impl AnalysisPass for StudyPasses {
    type Output = SweepOutputs;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.counts.begin(ctx);
        self.ho_types.begin(ctx);
        self.durations.begin(ctx);
        self.districts.begin(ctx);
        self.population.begin(ctx);
        self.density.begin(ctx);
        self.temporal.begin(ctx);
        self.manufacturer.begin(ctx);
        self.hof_patterns.begin(ctx);
        self.causes.begin(ctx);
        self.pingpong.begin(ctx);
        self.vendor.begin(ctx);
        let mut frame = FramePass::new(FrameWindow::Daily);
        frame.begin(ctx);
        self.frame = Some(frame);
        let mut period = FramePass::new(FrameWindow::FullPeriod);
        period.begin(ctx);
        self.period_frame = Some(period);
    }

    fn record(&mut self, r: &telco_trace::record::HoRecord, e: &crate::frame::Enriched) {
        self.counts.record(r, e);
        self.ho_types.record(r, e);
        self.durations.record(r, e);
        self.districts.record(r, e);
        self.population.record(r, e);
        self.density.record(r, e);
        self.temporal.record(r, e);
        self.manufacturer.record(r, e);
        self.hof_patterns.record(r, e);
        self.causes.record(r, e);
        self.pingpong.record(r, e);
        self.vendor.record(r, e);
        if let Some(frame) = &mut self.frame {
            frame.record(r, e);
        }
        if let Some(period) = &mut self.period_frame {
            period.record(r, e);
        }
    }

    fn record_chunk(
        &mut self,
        chunk: &[telco_trace::record::HoRecord],
        e: &crate::frame::Enriched,
    ) {
        // One tight loop per sub-pass per chunk: each accumulator's state
        // stays hot through its own loop instead of the whole composite's
        // working set being dragged through the cache per record.
        self.counts.record_chunk(chunk, e);
        self.ho_types.record_chunk(chunk, e);
        self.durations.record_chunk(chunk, e);
        self.districts.record_chunk(chunk, e);
        self.population.record_chunk(chunk, e);
        self.density.record_chunk(chunk, e);
        self.temporal.record_chunk(chunk, e);
        self.manufacturer.record_chunk(chunk, e);
        self.hof_patterns.record_chunk(chunk, e);
        self.causes.record_chunk(chunk, e);
        self.pingpong.record_chunk(chunk, e);
        self.vendor.record_chunk(chunk, e);
        if let Some(frame) = &mut self.frame {
            frame.record_chunk(chunk, e);
        }
        if let Some(period) = &mut self.period_frame {
            period.record_chunk(chunk, e);
        }
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(
        &mut self,
        batch: &telco_trace::columnar::ColumnBatch,
        e: &crate::frame::Enriched,
    ) {
        // Same rationale as `record_chunk`: one tight column scan per
        // sub-pass keeps each accumulator's working set hot, and lets the
        // sub-passes that read only a couple of columns skip the rest of
        // the batch entirely.
        self.counts.record_columns(batch, e);
        self.ho_types.record_columns(batch, e);
        self.durations.record_columns(batch, e);
        self.districts.record_columns(batch, e);
        self.population.record_columns(batch, e);
        self.density.record_columns(batch, e);
        self.temporal.record_columns(batch, e);
        self.manufacturer.record_columns(batch, e);
        self.hof_patterns.record_columns(batch, e);
        self.causes.record_columns(batch, e);
        self.pingpong.record_columns(batch, e);
        self.vendor.record_columns(batch, e);
        if let Some(frame) = &mut self.frame {
            frame.record_columns(batch, e);
        }
        if let Some(period) = &mut self.period_frame {
            period.record_columns(batch, e);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, ctx: &SweepCtx) {
        self.counts.merge(other.counts, ctx);
        self.ho_types.merge(other.ho_types, ctx);
        self.durations.merge(other.durations, ctx);
        self.districts.merge(other.districts, ctx);
        self.population.merge(other.population, ctx);
        self.density.merge(other.density, ctx);
        self.temporal.merge(other.temporal, ctx);
        self.manufacturer.merge(other.manufacturer, ctx);
        self.hof_patterns.merge(other.hof_patterns, ctx);
        self.causes.merge(other.causes, ctx);
        self.pingpong.merge(other.pingpong, ctx);
        self.vendor.merge(other.vendor, ctx);
        if let (Some(frame), Some(theirs)) = (&mut self.frame, other.frame) {
            frame.merge(theirs, ctx);
        }
        if let (Some(period), Some(theirs)) = (&mut self.period_frame, other.period_frame) {
            period.merge(theirs, ctx);
        }
    }

    fn end(self, ctx: &SweepCtx) -> SweepOutputs {
        let frame = self.frame.expect("begin ran").end(ctx);
        let vendor_counts = self.vendor.end(ctx);
        SweepOutputs {
            trace_counts: self.counts.end(ctx),
            ho_types: self.ho_types.end(ctx),
            durations: self.durations.end(ctx),
            district_distribution: self.districts.end(ctx),
            population_inference: self.population.end(ctx),
            ho_density: self.density.end(ctx),
            temporal_evolution: self.temporal.end(ctx),
            manufacturer_impact: self.manufacturer.end(ctx),
            hof_patterns: self.hof_patterns.end(ctx),
            causes: self.causes.end(ctx),
            pingpong: self.pingpong.end(ctx),
            vendor_analysis: VendorAnalysis::from_parts(ctx.world, vendor_counts, &frame),
            period_frame: self.period_frame.expect("begin ran").end(ctx),
            frame,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    /// The composite embeds one full frame (magic + version + CRC) per
    /// sub-pass, so a version bump in any single analysis invalidates a
    /// stale composite snapshot with a precise per-pass error instead of
    /// silently misparsing the neighbors' bytes.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_bytes(&snapshot_pass(&self.counts));
        w.put_bytes(&snapshot_pass(&self.ho_types));
        w.put_bytes(&snapshot_pass(&self.durations));
        w.put_bytes(&snapshot_pass(&self.districts));
        w.put_bytes(&snapshot_pass(&self.population));
        w.put_bytes(&snapshot_pass(&self.density));
        w.put_bytes(&snapshot_pass(&self.temporal));
        w.put_bytes(&snapshot_pass(&self.manufacturer));
        w.put_bytes(&snapshot_pass(&self.hof_patterns));
        w.put_bytes(&snapshot_pass(&self.causes));
        w.put_bytes(&snapshot_pass(&self.pingpong));
        w.put_bytes(&snapshot_pass(&self.vendor));
        for frame in [&self.frame, &self.period_frame] {
            match frame {
                None => w.put_bool(false),
                Some(pass) => {
                    w.put_bool(true);
                    w.put_bytes(&snapshot_pass(pass));
                }
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        restore_pass(&mut self.counts, r.get_bytes()?)?;
        restore_pass(&mut self.ho_types, r.get_bytes()?)?;
        restore_pass(&mut self.durations, r.get_bytes()?)?;
        restore_pass(&mut self.districts, r.get_bytes()?)?;
        restore_pass(&mut self.population, r.get_bytes()?)?;
        restore_pass(&mut self.density, r.get_bytes()?)?;
        restore_pass(&mut self.temporal, r.get_bytes()?)?;
        restore_pass(&mut self.manufacturer, r.get_bytes()?)?;
        restore_pass(&mut self.hof_patterns, r.get_bytes()?)?;
        restore_pass(&mut self.causes, r.get_bytes()?)?;
        restore_pass(&mut self.pingpong, r.get_bytes()?)?;
        restore_pass(&mut self.vendor, r.get_bytes()?)?;
        for slot in [&mut self.frame, &mut self.period_frame] {
            *slot = if r.get_bool()? {
                // The window mode placeholder is overwritten by the
                // frame's own snapshot bytes.
                let mut pass = FramePass::new(FrameWindow::Daily);
                restore_pass(&mut pass, r.get_bytes()?)?;
                Some(pass)
            } else {
                None
            };
        }
        Ok(())
    }
}

/// A completed study plus its analyses, all filled by one shared sweep on
/// first use.
pub struct Study {
    data: StudyData,
    sweep: std::sync::OnceLock<SweepOutputs>,
}

impl Study {
    /// Run a simulation and wrap it.
    pub fn run(config: SimConfig) -> Self {
        Self::from_data(run_study(config))
    }

    /// Wrap an existing study.
    pub fn from_data(data: StudyData) -> Self {
        Study { data, sweep: std::sync::OnceLock::new() }
    }

    /// The underlying simulation output.
    pub fn data(&self) -> &StudyData {
        &self.data
    }

    /// The shared sweep results (one trace traversal, computed once).
    pub fn sweep(&self) -> &SweepOutputs {
        self.sweep.get_or_init(|| {
            Sweep::new(&self.data)
                .run(StudyPasses::default)
                .unwrap_or_else(|issue| panic!("study sweep failed: {issue:?}"))
        })
    }

    /// Whole-trace counters (record totals per type, failure count).
    pub fn trace_counts(&self) -> &TraceCounts {
        &self.sweep().trace_counts
    }

    /// The sector-day frame (filled by the shared sweep).
    pub fn frame(&self) -> &SectorDayFrame {
        &self.sweep().frame
    }

    /// The full-period sector frame used by the regression models: one
    /// observation per (sector, study period, HO type) — the
    /// scale-equivalent of the paper's sector-day unit given ~3,000×
    /// fewer UEs (see DESIGN.md). Comes from the same sweep as
    /// [`Study::frame`], never a second traversal.
    pub fn period_frame(&self) -> &SectorDayFrame {
        &self.sweep().period_frame
    }

    /// Table 1 — dataset statistics (no trace scan: sealed counts only).
    pub fn dataset_stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.data)
    }

    /// Table 2 — HO type × device type shares.
    pub fn ho_types(&self) -> &HoTypeTable {
        &self.sweep().ho_types
    }

    /// Fig. 3a — deployment evolution.
    pub fn deployment_evolution(&self) -> DeploymentEvolution {
        DeploymentEvolution::compute(&self.data)
    }

    /// Fig. 3b — RAT usage and traffic shares.
    pub fn rat_usage(&self) -> RatUsage {
        RatUsage::compute(&self.data)
    }

    /// Fig. 4 — device mix.
    pub fn device_mix(&self) -> DeviceMix {
        DeviceMix::compute(&self.data)
    }

    /// Fig. 5 — population inference vs census.
    pub fn population_inference(&self) -> &PopulationInference {
        &self.sweep().population_inference
    }

    /// Fig. 6 — HO density vs population density.
    pub fn ho_density(&self) -> &HoDensity {
        &self.sweep().ho_density
    }

    /// Fig. 7 — temporal evolution.
    pub fn temporal_evolution(&self) -> &TemporalEvolution {
        &self.sweep().temporal_evolution
    }

    /// Fig. 8 — duration ECDFs.
    pub fn durations(&self) -> &DurationAnalysis {
        &self.sweep().durations
    }

    /// Fig. 9 — district distribution of HO types.
    pub fn district_distribution(&self) -> &DistrictDistribution {
        &self.sweep().district_distribution
    }

    /// Fig. 10 — mobility ECDFs.
    pub fn mobility(&self) -> MobilityEcdfs {
        MobilityEcdfs::compute(&self.data)
    }

    /// Fig. 11 — manufacturer impact (device threshold scaled to the run).
    pub fn manufacturer_impact(&self) -> &ManufacturerImpact {
        &self.sweep().manufacturer_impact
    }

    /// Fig. 12 — hourly HOF patterns.
    pub fn hof_patterns(&self) -> &HofPatterns {
        &self.sweep().hof_patterns
    }

    /// Fig. 13 — HOF rate vs mobility.
    pub fn hof_vs_mobility(&self) -> HofVsMobility {
        HofVsMobility::compute(&self.data)
    }

    /// Figs. 14–15 — cause analysis.
    pub fn causes(&self) -> &CauseAnalysis {
        &self.sweep().causes
    }

    /// Tables 4–9 + Fig. 16 — the §6.3 statistical models, computed on the
    /// full-period frame so per-cell HOF rates are well resolved.
    pub fn models(&self) -> HofModels {
        HofModels::compute(self.period_frame(), ModelingOptions::default())
    }

    /// Figs. 17–18 — vendor analysis.
    pub fn vendor_analysis(&self) -> &VendorAnalysis {
        &self.sweep().vendor_analysis
    }

    /// Ping-pong handover analysis (§7's operator-side PP-HO lens).
    pub fn pingpong(&self) -> &PingPongAnalysis {
        &self.sweep().pingpong
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_end_to_end_smoke() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 1_200;
        cfg.n_days = 3;
        let study = Study::run(cfg);
        // Exercise the full API surface once.
        assert!(study.dataset_stats().daily_hos > 0.0);
        assert!(study.ho_types().intra_share() > 0.5);
        assert!(study.rat_usage().epc_time_share > 0.5);
        assert!(study.device_mix().type_shares[0] > 0.3);
        assert!(study.ho_density().pearson > 0.0);
        assert!(study.durations().intra.len() > 10);
        assert!(study.causes().principal_share() > 0.5);
        assert!(!study.frame().is_empty());
        let models = study.models();
        assert!(models.anova_ho_type.p_value < 0.05);
    }

    #[test]
    fn full_study_is_one_shared_sweep() {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 800;
        cfg.n_days = 2;
        let study = Study::run(cfg);
        // Touch every analysis the repro pipeline renders, including both
        // frames and the models built on the period frame.
        let _ = study.trace_counts();
        let _ = study.dataset_stats();
        let _ = study.ho_types();
        let _ = study.deployment_evolution();
        let _ = study.rat_usage();
        let _ = study.device_mix();
        let _ = study.population_inference();
        let _ = study.ho_density();
        let _ = study.temporal_evolution();
        let _ = study.durations();
        let _ = study.district_distribution();
        let _ = study.mobility();
        let _ = study.manufacturer_impact();
        let _ = study.hof_patterns();
        let _ = study.hof_vs_mobility();
        let _ = study.causes();
        let _ = study.models();
        let _ = study.vendor_analysis();
        let _ = study.pingpong();
        let _ = study.frame();
        let _ = study.period_frame();
        let sweeps = study.data().trace.sweeps();
        assert!(sweeps <= 2, "full study took {sweeps} trace traversals, expected ≤ 2");
        assert!(sweeps >= 1, "analyses never touched the trace");
    }
}
