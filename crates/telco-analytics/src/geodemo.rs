//! §4.3 — Geodemographic segmentation: population inference from
//! night-time connectivity (Fig. 5) and the HO-density vs
//! population-density relationship (Fig. 6), as streaming passes.

use serde::{Deserialize, Serialize};

use telco_geo::district::DistrictId;
use telco_stats::corr::{pearson, r_squared};
use telco_trace::columnar::ColumnBatch;
use telco_trace::hash::{FxHashMap, FxHashSet};
use telco_trace::record::HoRecord;
use telco_trace::snap::{SnapError, SnapReader, SnapWriter};

use crate::frame::Enriched;
use crate::sweep::{AnalysisPass, SweepCtx};
use crate::tables::{num, TextTable};

/// Fig. 5 — census population vs population inferred from the MNO data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationInference {
    /// Per district: `(census population, inferred UE count)`.
    pub per_district: Vec<(DistrictId, u64, u64)>,
    /// R² of the linear census ~ inferred relationship (paper: 0.92).
    pub r_squared: f64,
    /// UEs whose home could be inferred.
    pub inferred_ues: usize,
}

/// Night window for home inference (§4.3: 00:00–08:00).
const NIGHT_END_HOUR: u32 = 8;

/// Days of distinct presence a UE needs before its home is inferred
/// (paper: 14 of 28; scaled down to half the study for short runs).
pub const DEFAULT_MIN_DAYS: u32 = 14;

impl PopulationInference {
    /// Render summary.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 5: Census vs inferred population (district level)",
            &["Metric", "Value"],
        );
        t.row_strs(&["R² (census ~ inferred)", &num(self.r_squared, 3)]);
        t.row_strs(&["UEs with inferred home", &self.inferred_ues.to_string()]);
        t.row_strs(&["Districts", &self.per_district.len().to_string()]);
        t
    }
}

/// Streaming accumulator for [`PopulationInference`]: infers each UE's home
/// district from its main night-time cell site, requiring presence on
/// `min_days` distinct days (paper: 14 of 28), then compares district
/// aggregates against the census in [`AnalysisPass::end`].
///
/// This is the hash-heaviest pass of a full study (three map operations
/// per record), so all three accumulators are flat [`FxHashMap`]s over
/// packed integer keys — one cheap multiply-xor probe each — instead of
/// nested SipHash maps.
#[derive(Debug)]
pub struct PopulationPass {
    min_days: u32,
    /// `ue << 16 | district` → night dwell count.
    per_ue: FxHashMap<u64, u32>,
    /// `ue << 32 | day` pairs the UE was seen on.
    ue_days: FxHashSet<u64>,
    /// `ue << 32 | day` → district of the first recorded source sector
    /// that day.
    first_of_day: FxHashMap<u64, u16>,
}

impl PopulationPass {
    /// A pass with the given presence threshold (see [`DEFAULT_MIN_DAYS`]).
    pub fn new(min_days: u32) -> Self {
        PopulationPass {
            min_days,
            per_ue: FxHashMap::default(),
            ue_days: FxHashSet::default(),
            first_of_day: FxHashMap::default(),
        }
    }

    #[inline]
    fn observe(&mut self, ue: u32, district: u16, day: u32, hour: u32) {
        let ue_day = (u64::from(ue) << 32) | u64::from(day);
        if hour < NIGHT_END_HOUR {
            let key = (u64::from(ue) << 16) | u64::from(district);
            *self.per_ue.entry(key).or_insert(0) += 1;
            self.ue_days.insert(ue_day);
        }
        // Night handovers are sparse for static UEs; the paper uses *all*
        // night-time connectivity. Our equivalent observable is the UE's
        // home anchor expressed through its mobility rows: UEs with no
        // night records fall back to the most-visited district overall —
        // approximated by their first recorded source sector of each day.
        self.first_of_day.entry(ue_day).or_insert(district);
    }
}

impl Default for PopulationPass {
    fn default() -> Self {
        PopulationPass::new(DEFAULT_MIN_DAYS)
    }
}

impl AnalysisPass for PopulationPass {
    type Output = PopulationInference;

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        self.observe(r.ue.0, e.district(r).0, r.day(), r.hour());
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        let rows = batch.timestamps().iter().zip(batch.ues()).zip(batch.source_sectors());
        for ((&ts, &ue), &sector) in rows {
            let day = (ts / 86_400_000) as u32;
            let hour = ((ts % 86_400_000) / 3_600_000) as u32;
            self.observe(ue, e.district_of(sector).0, day, hour);
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (key, c) in other.per_ue {
            *self.per_ue.entry(key).or_insert(0) += c;
        }
        self.ue_days.extend(other.ue_days);
        // Partitions arrive in trace order, so an existing entry always
        // predates `other`'s and wins the "first of the day" race.
        for (key, district) in other.first_of_day {
            self.first_of_day.entry(key).or_insert(district);
        }
    }

    fn end(self, ctx: &SweepCtx) -> PopulationInference {
        let mut per_ue = self.per_ue;
        let mut ue_days = self.ue_days;
        for (&ue_day, &district) in &self.first_of_day {
            let ue = (ue_day >> 32) as u32;
            *per_ue.entry((u64::from(ue) << 16) | u64::from(district)).or_insert(0) += 1;
            ue_days.insert(ue_day);
        }

        // Distinct active days per UE.
        let mut days_per_ue: FxHashMap<u32, u32> = FxHashMap::default();
        for &ue_day in &ue_days {
            *days_per_ue.entry((ue_day >> 32) as u32).or_insert(0) += 1;
        }

        // Best district per UE; ties break toward the lowest district
        // id, not hash order. Dwell counts are ≥ 1, so (0, MAX) can
        // never be mistaken for a real observation.
        let mut best: FxHashMap<u32, (u32, u16)> = FxHashMap::default();
        for (&key, &count) in &per_ue {
            let (ue, district) = ((key >> 16) as u32, (key & 0xFFFF) as u16);
            let entry = best.entry(ue).or_insert((0, u16::MAX));
            if count > entry.0 || (count == entry.0 && district < entry.1) {
                *entry = (count, district);
            }
        }

        let scaled_min = self.min_days.min(ctx.config.n_days / 2);
        let mut inferred: FxHashMap<u16, u64> = FxHashMap::default();
        let mut inferred_ues = 0usize;
        for (&ue, &(_, district)) in &best {
            if days_per_ue.get(&ue).copied().unwrap_or(0) < scaled_min {
                continue;
            }
            *inferred.entry(district).or_insert(0) += 1;
            inferred_ues += 1;
        }

        let per_district: Vec<(DistrictId, u64, u64)> = ctx
            .world
            .country
            .districts()
            .iter()
            .map(|d| (d.id, d.population, inferred.get(&d.id.0).copied().unwrap_or(0)))
            .collect();
        let census: Vec<f64> = per_district.iter().map(|&(_, c, _)| c as f64).collect();
        let inferred_v: Vec<f64> = per_district.iter().map(|&(_, _, i)| i as f64).collect();
        PopulationInference {
            r_squared: r_squared(&inferred_v, &census).unwrap_or(0.0),
            per_district,
            inferred_ues,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u32(self.min_days);
        // Hash maps encode in sorted-key order so identical logical
        // state always yields identical bytes, whatever the insertion
        // history of either map.
        let mut per_ue: Vec<(u64, u32)> = self.per_ue.iter().map(|(&k, &v)| (k, v)).collect();
        per_ue.sort_unstable_by_key(|&(k, _)| k);
        w.put_varint(per_ue.len() as u64);
        for (key, dwell) in per_ue {
            w.put_varint(key);
            w.put_varint(u64::from(dwell));
        }
        let mut ue_days: Vec<u64> = self.ue_days.iter().copied().collect();
        ue_days.sort_unstable();
        w.put_u64s(&ue_days);
        let mut first: Vec<(u64, u16)> = self.first_of_day.iter().map(|(&k, &v)| (k, v)).collect();
        first.sort_unstable_by_key(|&(k, _)| k);
        w.put_varint(first.len() as u64);
        for (key, district) in first {
            w.put_varint(key);
            w.put_u16(district);
        }
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.min_days = r.get_u32()?;
        let n = r.get_len()?;
        self.per_ue = FxHashMap::default();
        self.per_ue.reserve(n);
        for _ in 0..n {
            let key = r.get_varint()?;
            let dwell = u32::try_from(r.get_varint()?)
                .map_err(|_| SnapError::Malformed("dwell count overflow"))?;
            self.per_ue.insert(key, dwell);
        }
        let days = r.get_u64s()?;
        self.ue_days = FxHashSet::default();
        self.ue_days.reserve(days.len());
        self.ue_days.extend(days);
        let n = r.get_len()?;
        self.first_of_day = FxHashMap::default();
        self.first_of_day.reserve(n);
        for _ in 0..n {
            let key = r.get_varint()?;
            let district = r.get_u16()?;
            self.first_of_day.insert(key, district);
        }
        Ok(())
    }
}

/// Fig. 6 — daily handovers per km² vs population density, per district.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoDensity {
    /// Per district: `(district, daily HOs per km², residents per km²)`.
    pub per_district: Vec<(DistrictId, f64, f64)>,
    /// Pearson correlation between the two densities (paper: 0.97).
    pub pearson: f64,
    /// Maximum district HO density (the capital's urban core in the
    /// paper: 2.1M/km² daily).
    pub max_density: f64,
    /// Minimum district HO density (paper: 60/km²).
    pub min_density: f64,
    /// District-level mean HO density (paper: 13.1k/km²).
    pub mean_density: f64,
}

impl HoDensity {
    /// Ratio between mean and minimum densities (the paper's ">200× lower
    /// than the mean" contrast).
    pub fn mean_to_min_ratio(&self) -> f64 {
        if self.min_density > 0.0 {
            self.mean_density / self.min_density
        } else {
            f64::INFINITY
        }
    }

    /// Render summary.
    pub fn table(&self) -> TextTable {
        let mut t =
            TextTable::new("Fig 6: Daily HOs per km² vs population density", &["Metric", "Value"]);
        t.row_strs(&["Pearson(HO density, pop density)", &num(self.pearson, 3)]);
        t.row_strs(&["Max district HO density (/km²/day)", &num(self.max_density, 1)]);
        t.row_strs(&["Min district HO density (/km²/day)", &num(self.min_density, 3)]);
        t.row_strs(&["Mean district HO density (/km²/day)", &num(self.mean_density, 1)]);
        t
    }
}

/// Streaming accumulator for [`HoDensity`]: handover counts per district.
#[derive(Debug, Default)]
pub struct HoDensityPass {
    per_district_hos: Vec<u64>,
}

impl AnalysisPass for HoDensityPass {
    type Output = HoDensity;

    fn begin(&mut self, ctx: &SweepCtx) {
        self.per_district_hos = vec![0u64; ctx.world.country.districts().len()];
    }

    fn record(&mut self, r: &HoRecord, e: &Enriched) {
        let d = e.district(r);
        self.per_district_hos[d.0 as usize] += 1;
    }

    // telco-lint: deny-alloc(begin)
    fn record_columns(&mut self, batch: &ColumnBatch, e: &Enriched) {
        for &sector in batch.source_sectors() {
            let d = e.district_of(sector);
            if let Some(count) = self.per_district_hos.get_mut(d.0 as usize) {
                *count += 1;
            }
        }
    }
    // telco-lint: deny-alloc(end)

    fn merge(&mut self, other: Self, _ctx: &SweepCtx) {
        for (mine, theirs) in self.per_district_hos.iter_mut().zip(other.per_district_hos) {
            *mine += theirs;
        }
    }

    fn end(self, ctx: &SweepCtx) -> HoDensity {
        let days = ctx.config.n_days.max(1) as f64;
        let per_district: Vec<(DistrictId, f64, f64)> = ctx
            .world
            .country
            .districts()
            .iter()
            .map(|d| {
                let hos_per_km2 = self.per_district_hos[d.id.0 as usize] as f64 / days / d.area_km2;
                (d.id, hos_per_km2, d.population_density())
            })
            .collect();
        let ho: Vec<f64> = per_district.iter().map(|&(_, h, _)| h).collect();
        let pop: Vec<f64> = per_district.iter().map(|&(_, _, p)| p).collect();
        let mean = ho.iter().sum::<f64>() / ho.len().max(1) as f64;
        HoDensity {
            pearson: pearson(&ho, &pop).unwrap_or(0.0),
            max_density: ho.iter().copied().fold(0.0, f64::max),
            min_density: ho.iter().copied().fold(f64::INFINITY, f64::min),
            mean_density: mean,
            per_district,
        }
    }

    const SNAPSHOT_VERSION: u16 = 1;

    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64s(&self.per_district_hos);
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.per_district_hos = r.get_u64s()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;
    use telco_sim::{run_study, SimConfig, StudyData};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn population_inference_correlates_with_census() {
        let s = study();
        let inf = Sweep::new(&s).run(PopulationPass::default).unwrap();
        assert!(inf.inferred_ues > 0, "no homes inferred");
        assert!(inf.r_squared > 0.5, "census correlation too weak: R² = {}", inf.r_squared);
    }

    #[test]
    fn ho_density_positively_correlates() {
        let s = study();
        let d = Sweep::new(&s).run(HoDensityPass::default).unwrap();
        assert!(d.pearson > 0.5, "Pearson {}", d.pearson);
        assert!(d.max_density > d.mean_density);
        assert!(d.mean_density >= d.min_density);
        assert_eq!(d.per_district.len(), s.world.country.districts().len());
    }

    #[test]
    fn tables_render() {
        let s = study();
        let sweep = Sweep::new(&s);
        assert!(sweep.run(PopulationPass::default).unwrap().table().to_string().contains("R²"));
        assert!(sweep.run(HoDensityPass::default).unwrap().table().to_string().contains("Pearson"));
    }
}
