//! §4.3 — Geodemographic segmentation: population inference from
//! night-time connectivity (Fig. 5) and the HO-density vs
//! population-density relationship (Fig. 6).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use telco_geo::district::DistrictId;
use telco_sim::StudyData;
use telco_stats::corr::{pearson, r_squared};

use crate::tables::{num, TextTable};

/// Fig. 5 — census population vs population inferred from the MNO data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationInference {
    /// Per district: `(census population, inferred UE count)`.
    pub per_district: Vec<(DistrictId, u64, u64)>,
    /// R² of the linear census ~ inferred relationship (paper: 0.92).
    pub r_squared: f64,
    /// UEs whose home could be inferred.
    pub inferred_ues: usize,
}

/// Night window for home inference (§4.3: 00:00–08:00).
const NIGHT_END_HOUR: u32 = 8;

impl PopulationInference {
    /// Infer each UE's home district from its main night-time cell site,
    /// requiring presence on `min_days` distinct days (paper: 14 of 28),
    /// then compare district aggregates against the census.
    pub fn compute(study: &StudyData, min_days: u32) -> Self {
        // (ue → district → night dwell count), plus distinct days seen.
        let mut per_ue: HashMap<u32, HashMap<u16, u32>> = HashMap::new();
        let mut ue_days: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for r in study.output.dataset.records() {
            if r.hour() < NIGHT_END_HOUR {
                let district = study.world.topology.sector_district(r.source_sector);
                *per_ue.entry(r.ue.0).or_default().entry(district.0).or_insert(0) += 1;
                ue_days.entry(r.ue.0).or_default().insert(r.day());
            }
        }
        // Night handovers are sparse for static UEs; the paper uses *all*
        // night-time connectivity. Our equivalent observable is the UE's
        // home anchor expressed through its mobility rows: UEs with no
        // night records fall back to the most-visited district overall —
        // approximated by their first recorded source sector of each day.
        let mut first_of_day: HashMap<(u32, u32), u16> = HashMap::new();
        for r in study.output.dataset.records() {
            first_of_day
                .entry((r.ue.0, r.day()))
                .or_insert_with(|| study.world.topology.sector_district(r.source_sector).0);
        }
        for ((ue, day), district) in &first_of_day {
            *per_ue.entry(*ue).or_default().entry(*district).or_insert(0) += 1;
            ue_days.entry(*ue).or_default().insert(*day);
        }

        let scaled_min = min_days.min(study.config.n_days / 2);
        let mut inferred: HashMap<u16, u64> = HashMap::new();
        let mut inferred_ues = 0usize;
        for (ue, districts) in &per_ue {
            if ue_days.get(ue).map_or(0, |d| d.len() as u32) < scaled_min {
                continue;
            }
            if let Some((&district, _)) = districts.iter().max_by_key(|(_, &c)| c) {
                *inferred.entry(district).or_insert(0) += 1;
                inferred_ues += 1;
            }
        }

        let per_district: Vec<(DistrictId, u64, u64)> = study
            .world
            .country
            .districts()
            .iter()
            .map(|d| (d.id, d.population, inferred.get(&d.id.0).copied().unwrap_or(0)))
            .collect();
        let census: Vec<f64> = per_district.iter().map(|&(_, c, _)| c as f64).collect();
        let inferred_v: Vec<f64> = per_district.iter().map(|&(_, _, i)| i as f64).collect();
        PopulationInference {
            r_squared: r_squared(&inferred_v, &census).unwrap_or(0.0),
            per_district,
            inferred_ues,
        }
    }

    /// Render summary.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Fig 5: Census vs inferred population (district level)",
            &["Metric", "Value"],
        );
        t.row_strs(&["R² (census ~ inferred)", &num(self.r_squared, 3)]);
        t.row_strs(&["UEs with inferred home", &self.inferred_ues.to_string()]);
        t.row_strs(&["Districts", &self.per_district.len().to_string()]);
        t
    }
}

/// Fig. 6 — daily handovers per km² vs population density, per district.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoDensity {
    /// Per district: `(district, daily HOs per km², residents per km²)`.
    pub per_district: Vec<(DistrictId, f64, f64)>,
    /// Pearson correlation between the two densities (paper: 0.97).
    pub pearson: f64,
    /// Maximum district HO density (the capital's urban core in the
    /// paper: 2.1M/km² daily).
    pub max_density: f64,
    /// Minimum district HO density (paper: 60/km²).
    pub min_density: f64,
    /// District-level mean HO density (paper: 13.1k/km²).
    pub mean_density: f64,
}

impl HoDensity {
    /// Compute from a study.
    pub fn compute(study: &StudyData) -> Self {
        let mut per_district_hos = vec![0u64; study.world.country.districts().len()];
        for r in study.output.dataset.records() {
            let d = study.world.topology.sector_district(r.source_sector);
            per_district_hos[d.0 as usize] += 1;
        }
        let days = study.config.n_days.max(1) as f64;
        let per_district: Vec<(DistrictId, f64, f64)> = study
            .world
            .country
            .districts()
            .iter()
            .map(|d| {
                let hos_per_km2 = per_district_hos[d.id.0 as usize] as f64 / days / d.area_km2;
                (d.id, hos_per_km2, d.population_density())
            })
            .collect();
        let ho: Vec<f64> = per_district.iter().map(|&(_, h, _)| h).collect();
        let pop: Vec<f64> = per_district.iter().map(|&(_, _, p)| p).collect();
        let mean = ho.iter().sum::<f64>() / ho.len().max(1) as f64;
        HoDensity {
            pearson: pearson(&ho, &pop).unwrap_or(0.0),
            max_density: ho.iter().copied().fold(0.0, f64::max),
            min_density: ho.iter().copied().fold(f64::INFINITY, f64::min),
            mean_density: mean,
            per_district,
        }
    }

    /// Ratio between mean and minimum densities (the paper's ">200× lower
    /// than the mean" contrast).
    pub fn mean_to_min_ratio(&self) -> f64 {
        if self.min_density > 0.0 {
            self.mean_density / self.min_density
        } else {
            f64::INFINITY
        }
    }

    /// Render summary.
    pub fn table(&self) -> TextTable {
        let mut t =
            TextTable::new("Fig 6: Daily HOs per km² vs population density", &["Metric", "Value"]);
        t.row_strs(&["Pearson(HO density, pop density)", &num(self.pearson, 3)]);
        t.row_strs(&["Max district HO density (/km²/day)", &num(self.max_density, 1)]);
        t.row_strs(&["Min district HO density (/km²/day)", &num(self.min_density, 3)]);
        t.row_strs(&["Mean district HO density (/km²/day)", &num(self.mean_density, 1)]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telco_sim::{run_study, SimConfig};

    fn study() -> StudyData {
        run_study(SimConfig::tiny())
    }

    #[test]
    fn population_inference_correlates_with_census() {
        let s = study();
        let inf = PopulationInference::compute(&s, 14);
        assert!(inf.inferred_ues > 0, "no homes inferred");
        assert!(inf.r_squared > 0.5, "census correlation too weak: R² = {}", inf.r_squared);
    }

    #[test]
    fn ho_density_positively_correlates() {
        let s = study();
        let d = HoDensity::compute(&s);
        assert!(d.pearson > 0.5, "Pearson {}", d.pearson);
        assert!(d.max_density > d.mean_density);
        assert!(d.mean_density >= d.min_density);
        assert_eq!(d.per_district.len(), s.world.country.districts().len());
    }

    #[test]
    fn tables_render() {
        let s = study();
        assert!(PopulationInference::compute(&s, 14).table().to_string().contains("R²"));
        assert!(HoDensity::compute(&s).table().to_string().contains("Pearson"));
    }
}
