//! Per-pass cost attribution for the columnar sweep: runs each analysis
//! pass alone over the small preset and prints its share of the composite
//! sweep's wall time. A profiling aid, not a benchmark artifact.

use std::time::Instant;

use telco_analytics::frame::{FramePass, FrameWindow};
use telco_analytics::geodemo::{HoDensityPass, PopulationPass};
use telco_analytics::handovers::{DistrictPass, DurationPass, HoTypePass};
use telco_analytics::hof::{CausePass, HofPatternsPass};
use telco_analytics::manufacturer::ManufacturerPass;
use telco_analytics::pingpong::PingPongPass;
use telco_analytics::sweep::{AnalysisPass, Sweep, TraceCountsPass};
use telco_analytics::timeseries::TemporalPass;
use telco_analytics::vendor_analysis::VendorPass;
use telco_analytics::StudyPasses;
use telco_sim::{run_study, SimConfig};

fn time_pass<P: AnalysisPass + Send>(
    name: &str,
    data: &telco_sim::StudyData,
    make: impl Fn() -> P + Sync,
) {
    let sweep = Sweep::new(data);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let _ = sweep.run(&make).expect("sweep");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let rps = data.trace.len() as f64 / best;
    println!("{name:<16} {best:>8.4}s  {:>6.2}M records/s", rps / 1e6);
}

fn main() {
    let mut cfg = SimConfig::small();
    cfg.threads = 1;
    let data = run_study(cfg);
    println!("{} records", data.trace.len());
    time_pass("composite", &data, StudyPasses::default);
    time_pass("counts", &data, TraceCountsPass::default);
    time_pass("ho_types", &data, HoTypePass::default);
    time_pass("durations", &data, DurationPass::default);
    time_pass("districts", &data, DistrictPass::default);
    time_pass("population", &data, PopulationPass::default);
    time_pass("density", &data, HoDensityPass::default);
    time_pass("temporal", &data, TemporalPass::default);
    time_pass("manufacturer", &data, || ManufacturerPass::new(3));
    time_pass("hof_patterns", &data, HofPatternsPass::default);
    time_pass("causes", &data, CausePass::default);
    time_pass("pingpong", &data, PingPongPass::default);
    time_pass("vendor", &data, VendorPass::default);
    time_pass("frame_daily", &data, || FramePass::new(FrameWindow::Daily));
    time_pass("frame_period", &data, || FramePass::new(FrameWindow::FullPeriod));
}
