//! Property-based coverage of the snapshot codec every pass now carries:
//!
//! 1. **Round-trip identity** — `restore(snapshot(s))` reproduces `s`
//!    exactly: both its output (serialized JSON oracle) and its snapshot
//!    bytes (`snapshot(restore(snapshot(s))) == snapshot(s)`), so the
//!    encoding is a fixed point and deterministic across instances.
//! 2. **Merge-after-restore** — splitting an arbitrary trace at an
//!    arbitrary day boundary, snapshotting the prefix accumulator,
//!    restoring it into a fresh instance, and merging the suffix delta
//!    must match merging without any snapshot in between. This is the
//!    exact sequence the ingest service replays on crash recovery; a
//!    codec that dropped or reordered state would diverge here long
//!    before a golden noticed.
//!
//! Mirrors `columnar_props.rs`: one tiny shared world, arbitrary records
//! clamped onto its entity ranges, 24 cases per pass.

use std::sync::OnceLock;

use proptest::prelude::*;
use serde::Serialize;

use telco_analytics::frame::{Enriched, FramePass, FrameWindow};
use telco_analytics::geodemo::{HoDensityPass, PopulationPass};
use telco_analytics::handovers::{DistrictPass, DurationPass, HoTypePass};
use telco_analytics::hof::{CausePass, HofPatternsPass};
use telco_analytics::manufacturer::ManufacturerPass;
use telco_analytics::pingpong::PingPongPass;
use telco_analytics::study::StudyPasses;
use telco_analytics::sweep::{
    restore_pass, snapshot_pass, AnalysisPass, SweepCtx, TraceCountsPass,
};
use telco_analytics::timeseries::TemporalPass;
use telco_analytics::vendor_analysis::VendorPass;
use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_sim::{SimConfig, World};
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;
use telco_trace::record::{HoOutcome, HoRecord};

/// One tiny world shared by every case: passes join records against the
/// topology and UE catalog, so record ids must name real entities.
fn world() -> &'static (World, SimConfig) {
    static CELL: OnceLock<(World, SimConfig)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 400;
        cfg.n_days = 3;
        (World::build(&cfg), cfg)
    })
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    prop_oneof![Just(Rat::G2), Just(Rat::G3), Just(Rat::G4), Just(Rat::G5Nr)]
}

/// An arbitrary record whose ids are reduced onto the shared world's
/// entity ranges inside the test body (strategies are built before the
/// world exists).
fn arb_record() -> impl Strategy<Value = HoRecord> {
    (
        0u64..(3 * 86_400_000),
        0u32..u32::MAX,
        0u32..u32::MAX,
        0u32..u32::MAX,
        arb_rat(),
        arb_rat(),
        proptest::bool::ANY,
        1u16..1050,
        0.0f32..20_000.0,
        proptest::bool::ANY,
        0u16..40,
    )
        .prop_map(
            |(ts, ue, src, tgt, source_rat, target_rat, failed, cause, dur, srvcc, msgs)| {
                HoRecord {
                    timestamp_ms: ts,
                    ue: UeId(ue),
                    source_sector: SectorId(src),
                    target_sector: SectorId(tgt),
                    source_rat,
                    target_rat,
                    outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                    cause: failed.then_some(CauseCode(cause)),
                    duration_ms: dur,
                    srvcc,
                    messages: msgs,
                }
            },
        )
}

/// Clamp ids onto the world's dense entity ranges and sort by timestamp
/// (traces are timestamp-ordered by construction; the ping-pong pass
/// depends on it).
fn materialize(mut records: Vec<HoRecord>, world: &World) -> Vec<HoRecord> {
    let n_ues = world.ues.len() as u32;
    let n_sectors = world.topology.sectors().len() as u32;
    for r in &mut records {
        r.ue = UeId(r.ue.0 % n_ues);
        r.source_sector = SectorId(r.source_sector.0 % n_sectors);
        r.target_sector = SectorId(r.target_sector.0 % n_sectors);
    }
    records.sort_by_key(|r| r.timestamp_ms);
    records
}

/// Feed `records` into a fresh pass (begin + record).
fn fill<P, F>(make: &F, ctx: &SweepCtx, enriched: &Enriched, records: &[HoRecord]) -> P
where
    P: AnalysisPass,
    F: Fn() -> P,
{
    let mut pass = make();
    pass.begin(ctx);
    for r in records {
        pass.record(r, enriched);
    }
    pass
}

fn output_json<P: AnalysisPass>(pass: P, ctx: &SweepCtx) -> String
where
    P::Output: Serialize,
{
    serde_json::to_string(&pass.end(ctx)).expect("serializable output")
}

/// Property 1: snapshot → restore reproduces the pass exactly — same
/// output bytes AND same re-snapshot bytes (the codec is a fixed point).
fn check_round_trip<P, F>(make: F, records: &[HoRecord])
where
    P: AnalysisPass,
    P::Output: Serialize,
    F: Fn() -> P,
{
    let (world, config) = world();
    let ctx = SweepCtx { world, config };
    let enriched = Enriched::new(world);

    let original = fill(&make, &ctx, &enriched, records);
    let bytes = snapshot_pass(&original);

    let mut restored = make();
    restore_pass(&mut restored, &bytes).expect("snapshot restores into a default instance");
    assert_eq!(
        snapshot_pass(&restored),
        bytes,
        "re-snapshotting a restored pass must reproduce the original bytes"
    );
    assert_eq!(
        output_json(restored, &ctx),
        output_json(original, &ctx),
        "restored pass must produce the original output"
    );
}

/// Property 2: merging a delta into a restored baseline equals merging
/// it into the live baseline — the crash-recovery path of the ingest
/// service changes nothing.
fn check_merge_after_restore<P, F>(make: F, records: &[HoRecord], split: usize)
where
    P: AnalysisPass,
    P::Output: Serialize,
    F: Fn() -> P,
{
    let (world, config) = world();
    let ctx = SweepCtx { world, config };
    let enriched = Enriched::new(world);
    let split = split.min(records.len());

    let baseline = fill(&make, &ctx, &enriched, &records[..split]);
    let bytes = snapshot_pass(&baseline);

    // Control: merge without any snapshot in between.
    let mut direct = baseline;
    direct.merge(fill(&make, &ctx, &enriched, &records[split..]), &ctx);

    // Recovery path: restore the baseline from bytes, then merge the
    // same delta (rebuilt independently — deltas are deterministic).
    let mut recovered = make();
    restore_pass(&mut recovered, &bytes).expect("baseline restores");
    recovered.merge(fill(&make, &ctx, &enriched, &records[split..]), &ctx);

    assert_eq!(
        output_json(recovered, &ctx),
        output_json(direct, &ctx),
        "merge after snapshot/restore must equal merge without it"
    );
}

macro_rules! snapshot_case {
    ($round_trip:ident, $merge:ident, $make:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn $round_trip(records in proptest::collection::vec(arb_record(), 0..300)) {
                let records = materialize(records, &world().0);
                check_round_trip($make, &records);
            }

            #[test]
            fn $merge(
                records in proptest::collection::vec(arb_record(), 0..300),
                split in 0usize..300,
            ) {
                let records = materialize(records, &world().0);
                check_merge_after_restore($make, &records, split);
            }
        }
    };
}

snapshot_case!(
    trace_counts_snapshot_round_trips,
    trace_counts_merge_after_restore,
    TraceCountsPass::default
);
snapshot_case!(ho_types_snapshot_round_trips, ho_types_merge_after_restore, HoTypePass::default);
snapshot_case!(
    durations_snapshot_round_trips,
    durations_merge_after_restore,
    DurationPass::default
);
snapshot_case!(
    districts_snapshot_round_trips,
    districts_merge_after_restore,
    DistrictPass::default
);
snapshot_case!(
    population_snapshot_round_trips,
    population_merge_after_restore,
    PopulationPass::default
);
snapshot_case!(density_snapshot_round_trips, density_merge_after_restore, HoDensityPass::default);
snapshot_case!(temporal_snapshot_round_trips, temporal_merge_after_restore, TemporalPass::default);
snapshot_case!(manufacturer_snapshot_round_trips, manufacturer_merge_after_restore, || {
    ManufacturerPass::new(2)
});
snapshot_case!(
    hof_patterns_snapshot_round_trips,
    hof_patterns_merge_after_restore,
    HofPatternsPass::default
);
snapshot_case!(causes_snapshot_round_trips, causes_merge_after_restore, CausePass::default);
snapshot_case!(pingpong_snapshot_round_trips, pingpong_merge_after_restore, PingPongPass::default);
snapshot_case!(vendor_snapshot_round_trips, vendor_merge_after_restore, VendorPass::default);
snapshot_case!(frame_daily_snapshot_round_trips, frame_daily_merge_after_restore, || {
    FramePass::new(FrameWindow::Daily)
});
snapshot_case!(frame_period_snapshot_round_trips, frame_period_merge_after_restore, || {
    FramePass::new(FrameWindow::FullPeriod)
});
snapshot_case!(
    study_composite_snapshot_round_trips,
    study_composite_merge_after_restore,
    StudyPasses::default
);
