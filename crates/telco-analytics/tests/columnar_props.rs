//! Property-based equivalence of the two `AnalysisPass` record paths:
//! feeding a pass arbitrary records one row at a time (`record`) must
//! produce output byte-identical (as serialized JSON) to feeding the same
//! records through column batches split at arbitrary boundaries
//! (`record_columns`). Every pass that overrides the columnar hook is
//! covered — a drift between the two paths would silently corrupt the
//! columnar sweep while all goldens (which exercise only one path per
//! run) kept passing.

use std::sync::OnceLock;

use proptest::prelude::*;
use serde::Serialize;

use telco_analytics::frame::{Enriched, FramePass, FrameWindow};
use telco_analytics::geodemo::{HoDensityPass, PopulationPass};
use telco_analytics::handovers::{DistrictPass, DurationPass, HoTypePass};
use telco_analytics::hof::{CausePass, HofPatternsPass};
use telco_analytics::manufacturer::ManufacturerPass;
use telco_analytics::pingpong::PingPongPass;
use telco_analytics::sweep::{AnalysisPass, SweepCtx, TraceCountsPass};
use telco_analytics::timeseries::TemporalPass;
use telco_analytics::vendor_analysis::VendorPass;
use telco_devices::population::UeId;
use telco_signaling::causes::CauseCode;
use telco_sim::{SimConfig, World};
use telco_topology::elements::SectorId;
use telco_topology::rat::Rat;
use telco_trace::columnar::ColumnBatch;
use telco_trace::record::{HoOutcome, HoRecord};

/// One tiny world shared by every case: passes join records against the
/// topology and UE catalog, so record ids must name real entities.
fn world() -> &'static (World, SimConfig) {
    static CELL: OnceLock<(World, SimConfig)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cfg = SimConfig::tiny();
        cfg.n_ues = 400;
        cfg.n_days = 3;
        (World::build(&cfg), cfg)
    })
}

fn arb_rat() -> impl Strategy<Value = Rat> {
    prop_oneof![Just(Rat::G2), Just(Rat::G3), Just(Rat::G4), Just(Rat::G5Nr)]
}

/// An arbitrary record whose ids are reduced onto the shared world's
/// entity ranges inside the test body (strategies are built before the
/// world exists).
fn arb_record() -> impl Strategy<Value = HoRecord> {
    (
        0u64..(3 * 86_400_000),
        0u32..u32::MAX,
        0u32..u32::MAX,
        0u32..u32::MAX,
        arb_rat(),
        arb_rat(),
        proptest::bool::ANY,
        1u16..1050,
        0.0f32..20_000.0,
        proptest::bool::ANY,
        0u16..40,
    )
        .prop_map(
            |(ts, ue, src, tgt, source_rat, target_rat, failed, cause, dur, srvcc, msgs)| {
                HoRecord {
                    timestamp_ms: ts,
                    ue: UeId(ue),
                    source_sector: SectorId(src),
                    target_sector: SectorId(tgt),
                    source_rat,
                    target_rat,
                    outcome: if failed { HoOutcome::Failure } else { HoOutcome::Success },
                    cause: failed.then_some(CauseCode(cause)),
                    duration_ms: dur,
                    srvcc,
                    messages: msgs,
                }
            },
        )
}

/// Clamp ids onto the world's dense entity ranges and sort by timestamp
/// (traces are timestamp-ordered by construction; the ping-pong pass
/// depends on it).
fn materialize(mut records: Vec<HoRecord>, world: &World) -> Vec<HoRecord> {
    let n_ues = world.ues.len() as u32;
    let n_sectors = world.topology.sectors().len() as u32;
    for r in &mut records {
        r.ue = UeId(r.ue.0 % n_ues);
        r.source_sector = SectorId(r.source_sector.0 % n_sectors);
        r.target_sector = SectorId(r.target_sector.0 % n_sectors);
    }
    records.sort_by_key(|r| r.timestamp_ms);
    records
}

/// Run one pass both ways over the same records and return the two
/// serialized outputs. The columnar side sees the records split into
/// batches of `chunk_len` so window boundaries land in arbitrary places,
/// mirroring how both the sequential driver and the chunk-parallel
/// spilled sweep slice a trace.
fn both_paths<P, F>(make: F, records: &[HoRecord], chunk_len: usize) -> (String, String)
where
    P: AnalysisPass,
    P::Output: Serialize,
    F: Fn() -> P,
{
    let (world, config) = world();
    let ctx = SweepCtx { world, config };
    let enriched = Enriched::new(world);

    let mut rows = make();
    rows.begin(&ctx);
    for r in records {
        rows.record(r, &enriched);
    }
    let row_out = serde_json::to_string(&rows.end(&ctx)).expect("serializable output");

    let mut cols = make();
    cols.begin(&ctx);
    let mut batch = ColumnBatch::new();
    for window in records.chunks(chunk_len.max(1)) {
        batch.clear();
        batch.extend_from_rows(window);
        cols.record_columns(&batch, &enriched);
    }
    let col_out = serde_json::to_string(&cols.end(&ctx)).expect("serializable output");

    (row_out, col_out)
}

macro_rules! equivalence_case {
    ($name:ident, $make:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn $name(
                records in proptest::collection::vec(arb_record(), 0..300),
                chunk_len in 1usize..80,
            ) {
                let records = materialize(records, &world().0);
                let (rows, cols) = both_paths($make, &records, chunk_len);
                prop_assert_eq!(rows, cols);
            }
        }
    };
}

equivalence_case!(trace_counts_columns_match_rows, TraceCountsPass::default);
equivalence_case!(ho_types_columns_match_rows, HoTypePass::default);
equivalence_case!(durations_columns_match_rows, DurationPass::default);
equivalence_case!(districts_columns_match_rows, DistrictPass::default);
equivalence_case!(population_columns_match_rows, PopulationPass::default);
equivalence_case!(density_columns_match_rows, HoDensityPass::default);
equivalence_case!(temporal_columns_match_rows, TemporalPass::default);
equivalence_case!(manufacturer_columns_match_rows, || ManufacturerPass::new(2));
equivalence_case!(hof_patterns_columns_match_rows, HofPatternsPass::default);
equivalence_case!(causes_columns_match_rows, CausePass::default);
equivalence_case!(pingpong_columns_match_rows, PingPongPass::default);
equivalence_case!(vendor_columns_match_rows, VendorPass::default);
equivalence_case!(frame_daily_columns_match_rows, || FramePass::new(FrameWindow::Daily));
equivalence_case!(frame_period_columns_match_rows, || FramePass::new(FrameWindow::FullPeriod));
