//! Golden-output regression suite: pins the paper-table outputs of a
//! fixed-seed study against checked-in JSON snapshots, so any refactor
//! that drifts a tracked metric — record counts, type mix, HOF rate,
//! cause ranking — fails loudly instead of silently rewriting the
//! reproduction's numbers.
//!
//! To refresh after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p telco-analytics --test golden_outputs
//! ```
//!
//! then review the diff of `tests/goldens/` like any other code change.

use telco_analytics::Study;
use telco_signaling::causes::PrincipalCause;
use telco_sim::SimConfig;

/// Serialize the tracked metrics of a study, deterministically. The
/// vendored serde_json is a stand-in, so the JSON is formatted by hand;
/// floats use `{:?}` (shortest round-trip form), which is stable for a
/// bit-identical simulation.
fn golden_json(preset: &str, study: &Study) -> String {
    let cfg = &study.data().config;
    let stats = study.dataset_stats();
    let trace_counts = *study.trace_counts();
    let counts = trace_counts.by_type;
    let ho_types = study.ho_types();
    let causes = study.causes();

    // Top-5 principal causes by mean daily share (slot 8 is the long
    // tail), ranked descending with the slot index breaking ties.
    let mut ranked: Vec<usize> = (0..causes.shares.len()).collect();
    ranked
        .sort_by(|&a, &b| causes.shares[b].partial_cmp(&causes.shares[a]).unwrap().then(a.cmp(&b)));
    let cause_label = |slot: usize| -> String {
        if slot < 8 {
            PrincipalCause::ALL[slot].to_string()
        } else {
            "long tail".to_string()
        }
    };
    let top5: Vec<String> = ranked
        .iter()
        .take(5)
        .map(|&slot| {
            format!(
                "    {{\"cause\": \"{}\", \"share\": {:?}}}",
                cause_label(slot),
                causes.shares[slot]
            )
        })
        .collect();

    let fmt_f64_row =
        |row: &[f64]| row.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ");
    let share_rows: Vec<String> =
        ho_types.share.iter().map(|row| format!("      [{}]", fmt_f64_row(row))).collect();

    format!(
        "{{\n  \"config\": {{\"preset\": \"{preset}\", \"seed\": {}, \"ues\": {}, \
         \"days\": {}}},\n  \
         \"dataset_stats\": {{\n    \"districts\": {},\n    \"sites\": {},\n    \
         \"sectors\": {},\n    \"ues\": {},\n    \"daily_hos\": {:?},\n    \
         \"days\": {},\n    \"daily_trace_bytes\": {}\n  }},\n  \
         \"records\": {},\n  \"counts_by_type\": [{}, {}, {}],\n  \
         \"hof_rate\": {:?},\n  \
         \"ho_types\": {{\n    \"type_totals\": [{}],\n    \"device_totals\": [{}],\n    \
         \"share\": [\n{}\n    ]\n  }},\n  \
         \"cause_top5\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.n_ues,
        cfg.n_days,
        stats.districts,
        stats.sites,
        stats.sectors,
        stats.ues,
        stats.daily_hos,
        stats.days,
        stats.daily_trace_bytes,
        trace_counts.records,
        counts[0],
        counts[1],
        counts[2],
        trace_counts.hof_rate(),
        fmt_f64_row(&ho_types.type_totals),
        fmt_f64_row(&ho_types.device_totals),
        share_rows.join(",\n"),
        top5.join(",\n")
    )
}

fn check_golden(preset: &str, config: SimConfig) {
    let study = Study::run(config);
    let actual = golden_json(preset, &study);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("study_{preset}.json"));

    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden updated: {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `UPDATE_GOLDENS=1 cargo test -p \
             telco-analytics --test golden_outputs` to create it",
            path.display()
        )
    });
    if actual != expected {
        // Point at the first drifting line, then fail with both payloads.
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                eprintln!("golden drift at {}:{}", path.display(), i + 1);
                eprintln!("  expected: {e}");
                eprintln!("  actual:   {a}");
                break;
            }
        }
        panic!(
            "study `{preset}` drifted from its golden ({}).\n\
             If the change is intentional, refresh with UPDATE_GOLDENS=1 and \
             review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}",
            path.display()
        );
    }
}

#[test]
fn golden_study_tiny() {
    check_golden("tiny", SimConfig::tiny());
}

/// The tiny golden, reproduced from a spilled trace: the same study run
/// out-of-core and swept chunk-by-chunk from disk must print the exact
/// same bytes as the in-memory sweep.
#[test]
fn golden_study_tiny_spilled_streaming() {
    let expected = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json"),
    )
    .expect("tiny golden must exist (UPDATE_GOLDENS=1 on golden_study_tiny)");

    let dir = std::env::temp_dir().join("telco_golden_spill");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = telco_sim::run_study_spilled(SimConfig::tiny(), &dir).expect("spilled study");
    assert!(data.trace.is_spilled(), "study must stream from disk");
    let study = Study::from_data(data);
    assert_eq!(golden_json("tiny", &study), expected, "spilled sweep drifted from the golden");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Three-way byte-identity matrix: the same fixed-seed study run fully
/// in memory, spilled through v2 chunk files, and spilled through v3
/// columnar files must print the exact same golden bytes at every thread
/// count. The on-disk codec and the sweep partitioning are transport
/// details — neither may leak into a tracked metric.
#[test]
fn golden_study_tiny_three_way_codec_matrix() {
    use telco_trace::store::{VERSION2, VERSION3};

    let expected = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json"),
    )
    .expect("tiny golden must exist (UPDATE_GOLDENS=1 on golden_study_tiny)");

    let dir = std::env::temp_dir().join("telco_golden_three_way");
    let _ = std::fs::remove_dir_all(&dir);

    for threads in [1usize, 2, 8] {
        let mut cfg = SimConfig::tiny();
        cfg.threads = threads;

        let in_memory = Study::run(cfg.clone());
        assert_eq!(
            golden_json("tiny", &in_memory),
            expected,
            "in-memory study with {threads} threads drifted from the golden"
        );

        for (version, name) in [(VERSION2, "v2"), (VERSION3, "v3")] {
            let sub = dir.join(format!("t{threads}-{name}"));
            std::fs::create_dir_all(&sub).unwrap();
            let data = telco_sim::run_study_spilled_with_version(cfg.clone(), &sub, version)
                .expect("spilled study");
            assert!(data.trace.is_spilled(), "{name} study must stream from disk");
            let study = Study::from_data(data);
            assert_eq!(
                golden_json("tiny", &study),
                expected,
                "spilled-{name} study with {threads} threads drifted from the golden"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tiny golden, reproduced by day-partitioned parallel sweeps: merged
/// accumulators must be byte-identical to the sequential result at every
/// thread count.
#[test]
fn golden_study_tiny_parallel_sweep() {
    let expected = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json"),
    )
    .expect("tiny golden must exist (UPDATE_GOLDENS=1 on golden_study_tiny)");

    for threads in [2, 8] {
        let mut cfg = SimConfig::tiny();
        cfg.threads = threads;
        let study = Study::run(cfg);
        assert_eq!(
            golden_json("tiny", &study),
            expected,
            "parallel sweep with {threads} threads drifted from the golden"
        );
    }
}

/// The tiny golden, reproduced by the incremental ingest service: the
/// same fixed-seed study fed day-by-day through the snapshot commit
/// protocol ([`telco_serve::IngestEngine`]) must serve a full view
/// byte-identical to the one-shot batch sweep, and its tracked metrics
/// must print the exact same golden bytes. This gates the serve path on
/// the same pinned numbers as every other execution strategy.
#[test]
fn golden_study_tiny_incremental_ingest() {
    let expected = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json"),
    )
    .expect("tiny golden must exist (UPDATE_GOLDENS=1 on golden_study_tiny)");

    let dir = std::env::temp_dir().join("telco_golden_ingest");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Box::new(telco_store::DirStore::create(&dir).unwrap());
    let mut engine =
        telco_serve::IngestEngine::open(SimConfig::tiny(), store, telco_serve::DEFAULT_WINDOW)
            .expect("open ingest engine");
    while engine.ingest_next_day().expect("ingest day").is_some() {}

    // The served full view must match the batch sweep byte-for-byte...
    let batch = Study::run(SimConfig::tiny());
    let batch_json = serde_json::to_string(batch.sweep()).expect("batch sweep outputs serialize");
    let view = engine.build_view().expect("served view");
    assert_eq!(
        view.full.as_deref(),
        Some(batch_json.as_str()),
        "served study drifted from the one-shot batch study"
    );

    // ...and the batch study those bytes mirror must still be golden.
    assert_eq!(
        golden_json("tiny", &batch),
        expected,
        "batch study behind the ingest comparison drifted from the golden"
    );
}

#[test]
fn golden_tracks_real_drift() {
    // The suite must fail when a tracked metric moves: a different seed
    // must not reproduce the tiny golden.
    let mut cfg = SimConfig::tiny();
    cfg.seed ^= 1;
    let study = Study::run(cfg);
    let drifted = golden_json("tiny", &study);
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json");
    if let Ok(expected) = std::fs::read_to_string(&path) {
        assert_ne!(drifted, expected, "golden failed to discriminate a perturbed study");
    }
}

/// The tiny golden, reproduced by the sharded orchestrator: the study
/// split into 4 UE shards, run by an in-process worker fleet, merged
/// out-of-core from the shard store, and swept from the sealed study
/// trace must print the exact same golden bytes. This is the
/// merged-study entry point ([`telco_orchestrator::open_study`])
/// feeding the full analytics pipeline.
#[test]
fn golden_study_tiny_orchestrated() {
    use telco_orchestrator::{
        orchestrate, store_manifest, DirStore, Launcher, Manifest, OrchestrateOptions, PlanOptions,
    };

    let expected = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/study_tiny.json"),
    )
    .expect("tiny golden must exist (UPDATE_GOLDENS=1 on golden_study_tiny)");

    let dir = std::env::temp_dir().join("telco_golden_orchestrated");
    let _ = std::fs::remove_dir_all(&dir);
    let store = std::sync::Arc::new(DirStore::create(&dir).unwrap());
    let manifest = Manifest::plan(
        SimConfig::tiny(),
        &PlanOptions { shards: 4, scenario: "tiny".into(), ..PlanOptions::default() },
    )
    .unwrap();
    store_manifest(store.as_ref(), &manifest).unwrap();
    orchestrate(store.clone(), &OrchestrateOptions::new(Launcher::InProcess))
        .expect("orchestrated study");

    // Analyze the sealed store sequentially and through the chunk-parallel
    // spilled sweep: both must reproduce the sequential in-memory golden
    // byte-for-byte.
    for threads in [1usize, 2, 8] {
        let mut data = telco_orchestrator::open_study(store.as_ref()).expect("open sealed study");
        assert!(data.trace.is_spilled(), "orchestrated studies stream from the store");
        data.config.threads = threads;
        let study = Study::from_data(data);
        assert_eq!(
            golden_json("tiny", &study),
            expected,
            "orchestrated study @ {threads} thread(s) drifted from the golden"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
