//! Handover signaling-duration models.
//!
//! Calibrated to the paper's measurements:
//! * successful intra 4G/5G-NSA HOs: median 43 ms, 95% within ≈90 ms
//!   (Fig. 8);
//! * successful HOs to 3G: median 412 ms, pct-95 beyond 1 s;
//! * successful HOs to 2G: median ≈1 s, pct-95 ≈3.8 s;
//! * failed HOs, per cause (Fig. 14b): Causes #3/#6 abort before any
//!   signaling (0 ms); Cause #4 median 81 ms / pct-95 97 ms; Causes #1/#2
//!   medians 1–2 s with pct-95 5–6 s; Cause #8 median just above the 10 s
//!   relocation timer with pct-95 below 10.2 s.

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

use crate::causes::PrincipalCause;
use crate::messages::HoType;

/// A two-parameter lognormal expressed through its median and the ratio of
/// the 95th percentile to the median (the paper reports both quantiles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileSpec {
    /// Median duration, ms.
    pub median_ms: f64,
    /// 95th-percentile duration, ms.
    pub p95_ms: f64,
}

impl QuantileSpec {
    /// Lognormal σ implied by the two quantiles (`z₀.₉₅ = 1.6449`).
    pub fn sigma(&self) -> f64 {
        (self.p95_ms / self.median_ms).ln() / 1.644_853_626_951_472_8
    }

    /// Sample a duration in ms.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist = LogNormal::new(self.median_ms.ln(), self.sigma()).expect("valid lognormal");
        dist.sample(rng)
    }
}

/// Duration model covering successful HOs per type and failed HOs per
/// principal cause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationModel {
    /// Successful intra 4G/5G-NSA handovers.
    pub intra: QuantileSpec,
    /// Successful handovers to 3G.
    pub to3g: QuantileSpec,
    /// Successful handovers to 2G.
    pub to2g: QuantileSpec,
    /// Relocation-completion timer (Cause #8 fires just past it), ms.
    pub relocation_timer_ms: f64,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel {
            intra: QuantileSpec { median_ms: 43.0, p95_ms: 90.0 },
            to3g: QuantileSpec { median_ms: 412.0, p95_ms: 1_100.0 },
            to2g: QuantileSpec { median_ms: 1_000.0, p95_ms: 3_800.0 },
            relocation_timer_ms: 10_000.0,
        }
    }
}

impl DurationModel {
    /// The quantile spec for a successful handover of a type.
    pub fn success_spec(&self, ho_type: HoType) -> QuantileSpec {
        match ho_type {
            HoType::Intra4g5g => self.intra,
            HoType::To3g => self.to3g,
            HoType::To2g => self.to2g,
        }
    }

    /// Sample the duration of a successful handover, ms.
    pub fn sample_success<R: Rng + ?Sized>(&self, ho_type: HoType, rng: &mut R) -> f64 {
        self.success_spec(ho_type).sample(rng)
    }

    /// Sample the signaling time of a failed handover given its principal
    /// cause (or the long-tail bucket when `cause` is `None`), ms.
    pub fn sample_failure<R: Rng + ?Sized>(
        &self,
        cause: Option<PrincipalCause>,
        rng: &mut R,
    ) -> f64 {
        match cause {
            // #3 and #6 reject before any signaling elapses (Fig. 14b).
            Some(PrincipalCause::InvalidTargetSector)
            | Some(PrincipalCause::SrvccNotSubscribed) => 0.0,
            Some(PrincipalCause::TargetLoadTooHigh) => {
                // Median 81 ms, pct-95 97 ms: tight, near-normal.
                let d: f64 = Normal::new(81.0, 9.7).expect("valid normal").sample(rng);
                d.max(20.0)
            }
            Some(PrincipalCause::SourceCanceled) => {
                QuantileSpec { median_ms: 1_600.0, p95_ms: 5_600.0 }.sample(rng)
            }
            Some(PrincipalCause::InterferingInitialUeMessage) => {
                QuantileSpec { median_ms: 1_900.0, p95_ms: 6_000.0 }.sample(rng)
            }
            Some(PrincipalCause::InfrastructureFailure) => {
                QuantileSpec { median_ms: 420.0, p95_ms: 2_200.0 }.sample(rng)
            }
            Some(PrincipalCause::SrvccPsToCsFailure) => {
                QuantileSpec { median_ms: 380.0, p95_ms: 1_500.0 }.sample(rng)
            }
            Some(PrincipalCause::RelocationTimeout) => {
                // The timer pops, plus a small detection overhead: the
                // median sits just above 10 s and 95% complete below 10.2 s.
                let overhead: f64 = Normal::new(90.0, 55.0).expect("valid normal").sample(rng);
                self.relocation_timer_ms + overhead.clamp(0.0, 250.0)
            }
            None => QuantileSpec { median_ms: 500.0, p95_ms: 3_000.0 }.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quantiles(samples: &mut [f64]) -> (f64, f64) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[samples.len() / 2];
        let p95 = samples[(samples.len() as f64 * 0.95) as usize];
        (med, p95)
    }

    #[test]
    fn success_durations_match_paper_quantiles() {
        let model = DurationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for (ho_type, med_target, p95_target) in [
            (HoType::Intra4g5g, 43.0, 90.0),
            (HoType::To3g, 412.0, 1100.0),
            (HoType::To2g, 1000.0, 3800.0),
        ] {
            let mut s: Vec<f64> =
                (0..20_000).map(|_| model.sample_success(ho_type, &mut rng)).collect();
            let (med, p95) = quantiles(&mut s);
            assert!(
                (med - med_target).abs() / med_target < 0.05,
                "{ho_type}: median {med} vs {med_target}"
            );
            assert!(
                (p95 - p95_target).abs() / p95_target < 0.08,
                "{ho_type}: p95 {p95} vs {p95_target}"
            );
        }
    }

    #[test]
    fn cause_3_and_6_have_zero_duration() {
        let model = DurationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for cause in [PrincipalCause::InvalidTargetSector, PrincipalCause::SrvccNotSubscribed] {
            for _ in 0..10 {
                assert_eq!(model.sample_failure(Some(cause), &mut rng), 0.0);
            }
        }
    }

    #[test]
    fn cause_4_is_tight_around_81ms() {
        let model = DurationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut s: Vec<f64> = (0..20_000)
            .map(|_| model.sample_failure(Some(PrincipalCause::TargetLoadTooHigh), &mut rng))
            .collect();
        let (med, p95) = quantiles(&mut s);
        assert!((med - 81.0).abs() < 3.0, "median {med}");
        assert!((p95 - 97.0).abs() < 4.0, "p95 {p95}");
    }

    #[test]
    fn cause_8_sits_on_the_relocation_timer() {
        let model = DurationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut s: Vec<f64> = (0..20_000)
            .map(|_| model.sample_failure(Some(PrincipalCause::RelocationTimeout), &mut rng))
            .collect();
        let (med, p95) = quantiles(&mut s);
        assert!(med > 10_000.0, "median {med} must exceed the 10 s timer");
        assert!(p95 < 10_250.0, "p95 {p95} must stay below ~10.2 s");
    }

    #[test]
    fn cancellation_causes_exceed_two_seconds_on_average() {
        let model = DurationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for cause in [PrincipalCause::SourceCanceled, PrincipalCause::InterferingInitialUeMessage] {
            let mean: f64 =
                (0..20_000).map(|_| model.sample_failure(Some(cause), &mut rng)).sum::<f64>()
                    / 20_000.0;
            assert!(mean > 2_000.0, "{cause}: mean {mean} ms");
        }
    }

    #[test]
    fn sigma_formula_is_consistent() {
        let spec = QuantileSpec { median_ms: 100.0, p95_ms: 200.0 };
        // p95 = median * exp(sigma * z95).
        let back = spec.median_ms * (spec.sigma() * 1.6448536269514728).exp();
        assert!((back - spec.p95_ms).abs() < 1e-9);
    }
}
