//! Failure injection: whether a handover fails, and with which cause.
//!
//! Calibrated to §6 of the paper:
//! * failure shares by HO type: ~75% of all HOFs occur on →3G handovers,
//!   ~25% intra 4G/5G-NSA, ~0.03% →2G — given the 94.14 / 5.86 / 0.001 HO
//!   mix, this pins the per-type base failure probabilities;
//! * sector-day median HOF rates: 0.04% intra, 5.85% →3G, 21.42% →2G
//!   (§6.3), reproduced by the same bases;
//! * modulators: rural areas fail more (Fig. 12: +32.4% at the morning
//!   peak), vendors differ (Tables 5/7), manufacturers differ (Fig. 11:
//!   Google −27%, KVD/HMD up to +600%), and target-sector load drives
//!   Cause #4 during peak hours in dense urban areas.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use telco_devices::types::{DeviceType, Manufacturer};
use telco_geo::postcode::AreaType;
use telco_topology::vendor::Vendor;

use crate::causes::{base_cause_mixture, CauseCode, PrincipalCause, VENDOR_SUBCAUSES_PER_VENDOR};
use crate::messages::HoType;

/// Everything the failure model conditions on for one handover attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoContext {
    /// Handover type (the dominant factor, §6.3).
    pub ho_type: HoType,
    /// Urban/rural classification of the source sector's postcode.
    pub area: AreaType,
    /// Antenna vendor of the source sector.
    pub vendor: Vendor,
    /// Device type of the UE.
    pub device_type: DeviceType,
    /// Manufacturer of the UE.
    pub manufacturer: Manufacturer,
    /// Target-sector load ratio (demand / capacity), ≥ 0.
    pub load_ratio: f64,
    /// Whether this is an SRVCC (voice-continuity) handover.
    pub srvcc: bool,
    /// Whether the UE's subscription includes SRVCC.
    pub srvcc_subscribed: bool,
}

/// Failure-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Base failure probability of intra 4G/5G-NSA handovers.
    pub base_intra: f64,
    /// Base failure probability of handovers to 3G.
    pub base_to3g: f64,
    /// Base failure probability of handovers to 2G.
    pub base_to2g: f64,
    /// Multiplier applied in rural areas.
    pub rural_factor: f64,
    /// Load ratio above which Cause #4 pressure kicks in.
    pub load_knee: f64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            base_intra: 0.0008,
            base_to3g: 0.040,
            base_to2g: 0.20,
            rural_factor: 1.18,
            load_knee: 0.85,
        }
    }
}

/// The failure model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FailureModel {
    /// Parameters.
    pub config: FailureConfig,
}

impl FailureModel {
    /// Model with explicit parameters.
    pub fn new(config: FailureConfig) -> Self {
        FailureModel { config }
    }

    /// Probability that a handover attempt in `ctx` fails.
    pub fn failure_probability(&self, ctx: &HoContext) -> f64 {
        let cfg = &self.config;
        let base = match ctx.ho_type {
            HoType::Intra4g5g => cfg.base_intra,
            HoType::To3g => cfg.base_to3g,
            HoType::To2g => cfg.base_to2g,
        };
        let area = if ctx.area == AreaType::Rural { cfg.rural_factor } else { 1.0 };
        let load = 1.0 + 2.0 * (ctx.load_ratio - cfg.load_knee).max(0.0);
        // An SRVCC attempt without the subscription always fails (Cause #6);
        // modelled as a strong multiplier rather than certainty because the
        // network may still complete a PS-only fallback.
        let srvcc = if ctx.srvcc && !ctx.srvcc_subscribed { 25.0 } else { 1.0 };
        (base
            * area
            * ctx.vendor.hof_rate_factor()
            * ctx.manufacturer.hof_rate_factor()
            * load
            * srvcc)
            .clamp(0.0, 0.95)
    }

    /// Decide whether the attempt fails.
    pub fn roll_failure<R: Rng + ?Sized>(&self, ctx: &HoContext, rng: &mut R) -> bool {
        rng.random::<f64>() < self.failure_probability(ctx)
    }

    /// Context-adjusted cause mixture: the base per-HO-type mixture of
    /// §6.2 reweighted by the Fig. 15 conditionals (device type, area,
    /// load), then renormalized. Returns weights for Cause #1..#8 plus the
    /// long-tail bucket.
    pub fn cause_weights(&self, ctx: &HoContext) -> [f64; 9] {
        let mut w = base_cause_mixture(ctx.ho_type);
        let idx = |c: PrincipalCause| c.index();

        // Area conditioning (Fig. 15a/b): Cause #1 is 50% more prevalent in
        // rural areas; #6/#7 concentrate in rural (voice over 3G); #4 is
        // the signature urban-peak-load cause.
        match ctx.area {
            AreaType::Rural => {
                w[idx(PrincipalCause::SourceCanceled)] *= 1.5;
                w[idx(PrincipalCause::SrvccNotSubscribed)] *= 1.6;
                w[idx(PrincipalCause::SrvccPsToCsFailure)] *= 2.0;
                w[idx(PrincipalCause::TargetLoadTooHigh)] *= 0.5;
            }
            AreaType::Urban => {
                w[idx(PrincipalCause::TargetLoadTooHigh)] *= 1.3;
            }
        }

        // Device-type conditioning (Fig. 15c..): 59% of M2M/IoT failures
        // are Cause #3; Cause #8 is ×3 in M2M; #7 barely affects M2M;
        // feature phones concentrate on the SRVCC Cause #6.
        match ctx.device_type {
            DeviceType::M2mIot => {
                w[idx(PrincipalCause::InvalidTargetSector)] *= 1.6;
                w[idx(PrincipalCause::RelocationTimeout)] *= 3.0;
                w[idx(PrincipalCause::SrvccPsToCsFailure)] *= 0.05;
                w[idx(PrincipalCause::SrvccNotSubscribed)] *= 0.2;
            }
            DeviceType::FeaturePhone => {
                w[idx(PrincipalCause::SrvccNotSubscribed)] *= 2.5;
            }
            DeviceType::Smartphone => {}
        }

        // Load conditioning: a congested target pushes Cause #4.
        if ctx.load_ratio > self.config.load_knee {
            let over = (ctx.load_ratio - self.config.load_knee) / 0.15;
            w[idx(PrincipalCause::TargetLoadTooHigh)] *= 1.0 + 2.0 * over.min(3.0);
        }

        // A failed SRVCC attempt without the subscription is Cause #6.
        if ctx.srvcc && !ctx.srvcc_subscribed && ctx.ho_type != HoType::Intra4g5g {
            w[idx(PrincipalCause::SrvccNotSubscribed)] += 5.0;
        }

        let sum: f64 = w.iter().sum();
        for v in &mut w {
            *v /= sum;
        }
        w
    }

    /// Sample the failure cause for a failed attempt. Long-tail draws pick
    /// a vendor sub-cause belonging to the source sector's vendor.
    pub fn sample_cause<R: Rng + ?Sized>(&self, ctx: &HoContext, rng: &mut R) -> CauseCode {
        let w = self.cause_weights(ctx);
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, &p) in w.iter().enumerate().take(8) {
            acc += p;
            if u < acc {
                return CauseCode::principal(PrincipalCause::ALL[i]);
            }
        }
        // Long tail: one of this vendor's sub-causes, skewed towards the
        // first few (real cause histograms are heavy-headed).
        let r: f64 = rng.random::<f64>();
        let k = ((r * r) * VENDOR_SUBCAUSES_PER_VENDOR as f64) as usize;
        let base = 9 + ctx.vendor.index() * VENDOR_SUBCAUSES_PER_VENDOR;
        CauseCode((base + k.min(VENDOR_SUBCAUSES_PER_VENDOR - 1)) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx(ho_type: HoType) -> HoContext {
        HoContext {
            ho_type,
            area: AreaType::Urban,
            vendor: Vendor::V1,
            device_type: DeviceType::Smartphone,
            manufacturer: Manufacturer::Samsung,
            load_ratio: 0.4,
            srvcc: false,
            srvcc_subscribed: true,
        }
    }

    #[test]
    fn vertical_handovers_fail_far_more_often() {
        let m = FailureModel::default();
        let p_intra = m.failure_probability(&ctx(HoType::Intra4g5g));
        let p_3g = m.failure_probability(&ctx(HoType::To3g));
        let p_2g = m.failure_probability(&ctx(HoType::To2g));
        assert!(p_3g / p_intra > 20.0, "3G/intra ratio {}", p_3g / p_intra);
        assert!(p_2g > p_3g);
    }

    #[test]
    fn failure_shares_match_paper() {
        // HO mix (94.14 / 5.86 / 0.001) × base rates → failure shares
        // should land near 25 / 75 / 0.03 (§6.2).
        let m = FailureModel::default();
        let f_intra = 0.9414 * m.failure_probability(&ctx(HoType::Intra4g5g));
        let f_3g = 0.0586 * m.failure_probability(&ctx(HoType::To3g));
        let f_2g = 0.00001 * m.failure_probability(&ctx(HoType::To2g));
        let total = f_intra + f_3g + f_2g;
        assert!((f_3g / total - 0.75).abs() < 0.05, "3G share {}", f_3g / total);
        assert!((f_intra / total - 0.25).abs() < 0.05, "intra share {}", f_intra / total);
        assert!(f_2g / total < 0.002, "2G share {}", f_2g / total);
    }

    #[test]
    fn rural_and_vendor_raise_failures() {
        let m = FailureModel::default();
        let urban = m.failure_probability(&ctx(HoType::To3g));
        let mut c = ctx(HoType::To3g);
        c.area = AreaType::Rural;
        assert!(m.failure_probability(&c) > urban);
        let mut c = ctx(HoType::To3g);
        c.vendor = Vendor::V3;
        assert!(m.failure_probability(&c) > 2.0 * urban);
    }

    #[test]
    fn manufacturer_outliers_visible() {
        let m = FailureModel::default();
        let mut kvd = ctx(HoType::Intra4g5g);
        kvd.manufacturer = Manufacturer::Kvd;
        let mut google = ctx(HoType::Intra4g5g);
        google.manufacturer = Manufacturer::Google;
        let base = m.failure_probability(&ctx(HoType::Intra4g5g));
        assert!(m.failure_probability(&kvd) > 5.0 * base);
        assert!(m.failure_probability(&google) < base);
    }

    #[test]
    fn load_pushes_cause4() {
        let m = FailureModel::default();
        let mut hot = ctx(HoType::To3g);
        hot.load_ratio = 1.1;
        let w_hot = m.cause_weights(&hot);
        let w_cool = m.cause_weights(&ctx(HoType::To3g));
        let i4 = PrincipalCause::TargetLoadTooHigh.index();
        assert!(w_hot[i4] > w_cool[i4]);
        // Probabilities themselves also rise with load.
        assert!(m.failure_probability(&hot) > m.failure_probability(&ctx(HoType::To3g)));
    }

    #[test]
    fn srvcc_without_subscription_mostly_cause6() {
        let m = FailureModel::default();
        let mut c = ctx(HoType::To3g);
        c.srvcc = true;
        c.srvcc_subscribed = false;
        let w = m.cause_weights(&c);
        assert!(w[PrincipalCause::SrvccNotSubscribed.index()] > 0.5);
        assert!(m.failure_probability(&c) > 10.0 * m.failure_probability(&ctx(HoType::To3g)));
    }

    #[test]
    fn sampled_causes_track_weights() {
        let m = FailureModel::default();
        let c = ctx(HoType::To3g);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let n = 50_000;
        let mut principal = [0usize; 8];
        let mut tail = 0usize;
        for _ in 0..n {
            match m.sample_cause(&c, &mut rng).as_principal() {
                Some(p) => principal[p.index()] += 1,
                None => tail += 1,
            }
        }
        let w = m.cause_weights(&c);
        for i in 0..8 {
            let realized = principal[i] as f64 / n as f64;
            assert!(
                (realized - w[i]).abs() < 0.01,
                "cause {} realized {realized} vs {}",
                i + 1,
                w[i]
            );
        }
        assert!((tail as f64 / n as f64 - w[8]).abs() < 0.01);
    }

    #[test]
    fn tail_causes_belong_to_the_vendor() {
        let m = FailureModel::default();
        let mut c = ctx(HoType::To2g); // tail-heavy mixture
        c.vendor = Vendor::V2;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let code = m.sample_cause(&c, &mut rng);
            if code.is_vendor_specific() {
                let band = 9 + Vendor::V2.index() * VENDOR_SUBCAUSES_PER_VENDOR;
                assert!(
                    (band..band + VENDOR_SUBCAUSES_PER_VENDOR).contains(&(code.0 as usize)),
                    "code {code} outside V2's band"
                );
            }
        }
    }

    #[test]
    fn probability_is_clamped() {
        let m = FailureModel::default();
        let mut c = ctx(HoType::To2g);
        c.manufacturer = Manufacturer::Kvd;
        c.vendor = Vendor::V3;
        c.srvcc = true;
        c.srvcc_subscribed = false;
        let p = m.failure_probability(&c);
        assert!(p <= 0.95);
    }
}
