//! Measurement events and the radio signal model.
//!
//! UEs measure the serving and neighboring sectors and report A2 ("serving
//! became worse than threshold") and A3 ("neighbour became offset better
//! than serving") events per their mobility-management configuration
//! (hysteresis, offsets, time-to-trigger) — §2 of the paper, TS 36.331 /
//! TS 38.331. A log-distance path-loss model supplies the RSRP values.

use serde::{Deserialize, Serialize};

use telco_topology::rat::Rat;

/// Mobility-management configuration pushed to a UE on attach (§2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// A2 threshold: serving RSRP below this (dBm) flags coverage loss.
    pub a2_threshold_dbm: f64,
    /// A3 offset: neighbour must beat serving by this many dB.
    pub a3_offset_db: f64,
    /// Hysteresis added on top of the offset, dB.
    pub hysteresis_db: f64,
    /// Time-to-trigger: the condition must hold this long, ms.
    pub time_to_trigger_ms: u32,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            a2_threshold_dbm: -110.0,
            a3_offset_db: 3.0,
            hysteresis_db: 1.0,
            time_to_trigger_ms: 160,
        }
    }
}

impl MobilityConfig {
    /// Whether serving conditions trigger an A2 event.
    pub fn a2_triggered(&self, serving_dbm: f64) -> bool {
        serving_dbm < self.a2_threshold_dbm
    }

    /// Whether a neighbour triggers an A3 event against the serving sector.
    pub fn a3_triggered(&self, serving_dbm: f64, neighbor_dbm: f64) -> bool {
        neighbor_dbm > serving_dbm + self.a3_offset_db + self.hysteresis_db
    }
}

/// A measurement event carried in an RRC Measurement Report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeasurementEvent {
    /// Serving-cell RSRP fell below the A2 threshold (coverage loss —
    /// typically precedes a vertical fallback to a legacy RAT).
    A2 {
        /// Serving RSRP, dBm.
        serving_dbm: f64,
    },
    /// A neighbour became offset-better than the serving sector (the
    /// standard horizontal handover trigger).
    A3 {
        /// Serving RSRP, dBm.
        serving_dbm: f64,
        /// Neighbour RSRP, dBm.
        neighbor_dbm: f64,
    },
}

/// Received signal power (RSRP-like, dBm) at `distance_km` from a sector
/// of the given RAT, using a log-distance path-loss model with
/// environment-dependent exponent.
///
/// Calibrated so the nominal cell edge (`Rat::nominal_range_km`) sits near
/// the A2 threshold of the default [`MobilityConfig`].
pub fn rsrp_dbm(distance_km: f64, rat: Rat, urban: bool) -> f64 {
    let d = distance_km.max(0.01);
    // Transmit EIRP net of first-meter loss, per RAT (higher frequencies
    // radiate denser but attenuate faster).
    let tx = match rat {
        Rat::G2 => -35.0,
        Rat::G3 => -38.0,
        Rat::G4 => -40.0,
        Rat::G5Nr => -44.0,
    };
    let exponent = if urban { 3.5 } else { 3.0 };
    // Normalize so RSRP ≈ A2 threshold at the nominal range.
    let range = rat.nominal_range_km(urban);
    tx - 10.0 * exponent * (d / range).log10() - 70.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_threshold_behaviour() {
        let cfg = MobilityConfig::default();
        assert!(cfg.a2_triggered(-115.0));
        assert!(!cfg.a2_triggered(-100.0));
    }

    #[test]
    fn a3_requires_offset_plus_hysteresis() {
        let cfg = MobilityConfig::default();
        assert!(!cfg.a3_triggered(-90.0, -88.0)); // 2 dB better: not enough
        assert!(!cfg.a3_triggered(-90.0, -86.5)); // 3.5 dB: still below 4
        assert!(cfg.a3_triggered(-90.0, -85.0)); // 5 dB: triggers
    }

    #[test]
    fn rsrp_decreases_with_distance() {
        for rat in Rat::ALL {
            let near = rsrp_dbm(0.1, rat, true);
            let far = rsrp_dbm(2.0, rat, true);
            assert!(near > far, "{rat}: {near} vs {far}");
        }
    }

    #[test]
    fn cell_edge_sits_near_a2_threshold() {
        let cfg = MobilityConfig::default();
        for rat in Rat::ALL {
            for urban in [true, false] {
                let edge = rsrp_dbm(rat.nominal_range_km(urban), rat, urban);
                assert!(
                    (edge - cfg.a2_threshold_dbm).abs() < 8.0,
                    "{rat} urban={urban}: edge RSRP {edge}"
                );
            }
        }
    }

    #[test]
    fn closer_neighbor_wins_a3() {
        let cfg = MobilityConfig::default();
        let serving = rsrp_dbm(1.1, Rat::G4, true);
        let neighbor = rsrp_dbm(0.3, Rat::G4, true);
        assert!(cfg.a3_triggered(serving, neighbor));
    }
}
