//! Handover-failure cause codes.
//!
//! The study collects 1k+ distinct failure causes — 3GPP cause codes
//! enriched with vendor-specific sub-cause descriptions — and finds that 8
//! of them explain 92% of all failures countrywide (§6.2). This module
//! reproduces that catalog: the eight principal causes with their full
//! descriptions and semantics (which procedure step they abort, whether any
//! signaling time elapses), plus a generated long tail of vendor
//! sub-causes.

use serde::{Deserialize, Serialize};

use crate::messages::HoType;
use telco_topology::vendor::Vendor;

/// The eight principal failure causes of §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrincipalCause {
    /// #1 — "The source sector canceled the HO" (HO Cancellation, TS
    /// 36.413; timeouts on MSC/cell site or oversized Forward Relocation
    /// Request).
    SourceCanceled,
    /// #2 — "Signaling procedure aborted due to interfering S1AP Initial
    /// UE Message".
    InterferingInitialUeMessage,
    /// #3 — "Signaling procedure rejected due to invalid target sector ID"
    /// (unknown target or MME pool misconfiguration).
    InvalidTargetSector,
    /// #4 — "Load on target sector is too high" (admission rejection).
    TargetLoadTooHigh,
    /// #5 — "MME detects a HO-related failure in the target MME, SGW, PGW,
    /// cell, or system".
    InfrastructureFailure,
    /// #6 — "The SRVCC service is not subscribed by the UE".
    SrvccNotSubscribed,
    /// #7 — "MSC responds with PS to CS Response with cause indicating
    /// failure" (SRVCC preparation failure).
    SrvccPsToCsFailure,
    /// #8 — "No Forward Relocation Complete or Notification received
    /// before the relocation-completion timer expired".
    RelocationTimeout,
}

impl PrincipalCause {
    /// All principal causes, #1 first.
    pub const ALL: [PrincipalCause; 8] = [
        PrincipalCause::SourceCanceled,
        PrincipalCause::InterferingInitialUeMessage,
        PrincipalCause::InvalidTargetSector,
        PrincipalCause::TargetLoadTooHigh,
        PrincipalCause::InfrastructureFailure,
        PrincipalCause::SrvccNotSubscribed,
        PrincipalCause::SrvccPsToCsFailure,
        PrincipalCause::RelocationTimeout,
    ];

    /// Paper numbering (1..=8).
    pub fn number(&self) -> u8 {
        match self {
            PrincipalCause::SourceCanceled => 1,
            PrincipalCause::InterferingInitialUeMessage => 2,
            PrincipalCause::InvalidTargetSector => 3,
            PrincipalCause::TargetLoadTooHigh => 4,
            PrincipalCause::InfrastructureFailure => 5,
            PrincipalCause::SrvccNotSubscribed => 6,
            PrincipalCause::SrvccPsToCsFailure => 7,
            PrincipalCause::RelocationTimeout => 8,
        }
    }

    /// Full 3GPP-style description.
    pub fn description(&self) -> &'static str {
        match self {
            PrincipalCause::SourceCanceled => "The source sector canceled the HO",
            PrincipalCause::InterferingInitialUeMessage => {
                "The signaling procedure was aborted due to interfering S1AP Initial UE Message"
            }
            PrincipalCause::InvalidTargetSector => {
                "Signaling procedure was rejected due to invalid target sector ID"
            }
            PrincipalCause::TargetLoadTooHigh => "Load on target sector is too high",
            PrincipalCause::InfrastructureFailure => {
                "MME detects a HO-related failure in the target MME, SGW, PGW, cell, or system"
            }
            PrincipalCause::SrvccNotSubscribed => "The SRVCC service is not subscribed by the UE",
            PrincipalCause::SrvccPsToCsFailure => {
                "The MSC responds with PS to CS Response with cause indicating failure"
            }
            PrincipalCause::RelocationTimeout => {
                "No Forward Relocation Complete or Notification was received before the max \
                 time for waiting for the relocation completion expires"
            }
        }
    }

    /// Whether the failure aborts the procedure before any handover
    /// signaling elapses — Fig. 14b shows Causes #3 and #6 with 0 ms
    /// signaling time.
    pub fn fails_before_signaling(&self) -> bool {
        matches!(self, PrincipalCause::InvalidTargetSector | PrincipalCause::SrvccNotSubscribed)
    }

    /// Whether the cause is specific to SRVCC (voice continuity) handovers
    /// towards CS RATs — Causes #6 and #7 (§6.2).
    pub fn is_srvcc(&self) -> bool {
        matches!(self, PrincipalCause::SrvccNotSubscribed | PrincipalCause::SrvccPsToCsFailure)
    }

    /// Index in [`PrincipalCause::ALL`].
    pub fn index(&self) -> usize {
        (self.number() - 1) as usize
    }
}

impl std::fmt::Display for PrincipalCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cause #{}", self.number())
    }
}

/// A failure cause code as recorded in the trace: either one of the eight
/// principal causes or a vendor sub-cause from the long tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CauseCode(pub u16);

impl CauseCode {
    /// The code of a principal cause (1..=8).
    pub fn principal(cause: PrincipalCause) -> CauseCode {
        CauseCode(cause.number() as u16)
    }

    /// The principal cause, if this code is one of the eight.
    pub fn as_principal(&self) -> Option<PrincipalCause> {
        PrincipalCause::ALL.get(self.0.wrapping_sub(1) as usize).copied()
    }

    /// Whether this is a long-tail vendor sub-cause.
    pub fn is_vendor_specific(&self) -> bool {
        self.0 > 8
    }
}

impl std::fmt::Display for CauseCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{:04}", self.0)
    }
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseInfo {
    /// The code.
    pub code: CauseCode,
    /// Human-readable description (3GPP text or vendor sub-cause).
    pub description: String,
    /// Originating vendor for sub-causes; `None` for 3GPP causes.
    pub vendor: Option<Vendor>,
}

/// The full cause catalog: 8 principal 3GPP causes + a generated long tail
/// of vendor-specific sub-causes (the paper collects 1k+ distinct causes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseCatalog {
    entries: Vec<CauseInfo>,
}

/// Number of vendor sub-causes generated per vendor.
pub const VENDOR_SUBCAUSES_PER_VENDOR: usize = 260;

impl CauseCatalog {
    /// Build the catalog (deterministic; no RNG needed).
    pub fn build() -> Self {
        let mut entries: Vec<CauseInfo> = PrincipalCause::ALL
            .iter()
            .map(|&c| CauseInfo {
                code: CauseCode::principal(c),
                description: c.description().to_string(),
                vendor: None,
            })
            .collect();
        // Long tail: vendor-specific sub-cause descriptions.
        let families = [
            "RRC re-establishment rejected",
            "X2 transport bearer setup failed",
            "Target RNC internal error",
            "Admission control veto",
            "GTP tunnel teardown race",
            "Ciphering algorithm mismatch",
            "PCI confusion detected",
            "S1 SCTP association reset",
            "Baseband card overload",
            "License capacity exceeded",
            "Neighbor relation stale",
            "RACH contention exhaustion",
            "Timing advance out of range",
        ];
        let mut code = 9u16;
        for vendor in Vendor::ALL {
            for k in 0..VENDOR_SUBCAUSES_PER_VENDOR {
                let family = families[k % families.len()];
                entries.push(CauseInfo {
                    code: CauseCode(code),
                    description: format!("{vendor}: {family} (sub-cause 0x{k:03X})"),
                    vendor: Some(vendor),
                });
                code += 1;
            }
        }
        CauseCatalog { entries }
    }

    /// All entries, principal causes first.
    pub fn entries(&self) -> &[CauseInfo] {
        &self.entries
    }

    /// Total number of distinct causes (paper: 1k+).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a cause.
    pub fn info(&self, code: CauseCode) -> Option<&CauseInfo> {
        // Codes are dense starting at 1.
        self.entries.get(code.0 as usize - 1)
    }

    /// The vendor sub-causes attributable to a vendor.
    pub fn vendor_causes(&self, vendor: Vendor) -> Vec<&CauseInfo> {
        self.entries.iter().filter(|e| e.vendor == Some(vendor)).collect()
    }
}

impl Default for CauseCatalog {
    fn default() -> Self {
        Self::build()
    }
}

/// The conditional cause mixture given that a handover of a given type
/// failed — calibrated to Fig. 14a (75% of HOFs on →3G, ~25% intra, 0.03%
/// →2G; 92% of failures concentrated in the 8 principal causes; Cause #4
/// is 25% of all failures; Cause #3 dominates intra failures).
///
/// Returns `(principal-or-None weight)` pairs: the nine weights for
/// Cause #1..#8 plus the long-tail bucket, summing to 1.
pub fn base_cause_mixture(ho_type: HoType) -> [f64; 9] {
    match ho_type {
        // #1    #2     #3     #4    #5     #6    #7     #8     tail
        HoType::Intra4g5g => [0.020, 0.036, 0.660, 0.080, 0.048, 0.0, 0.0, 0.0, 0.156],
        HoType::To3g => [0.113, 0.028, 0.009, 0.307, 0.171, 0.152, 0.043, 0.095, 0.082],
        HoType::To2g => [0.330, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.670],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_over_a_thousand_causes() {
        let c = CauseCatalog::build();
        assert!(c.len() > 1000, "catalog size {}", c.len());
        assert_eq!(c.len(), 8 + 4 * VENDOR_SUBCAUSES_PER_VENDOR);
    }

    #[test]
    fn principal_codes_roundtrip() {
        for cause in PrincipalCause::ALL {
            let code = CauseCode::principal(cause);
            assert_eq!(code.as_principal(), Some(cause));
            assert!(!code.is_vendor_specific());
        }
        assert_eq!(CauseCode(9).as_principal(), None);
        assert!(CauseCode(9).is_vendor_specific());
    }

    #[test]
    fn lookup_is_dense() {
        let c = CauseCatalog::build();
        for e in c.entries() {
            assert_eq!(c.info(e.code).unwrap().code, e.code);
        }
        assert!(c.info(CauseCode(60_000)).is_none());
    }

    #[test]
    fn zero_signaling_causes() {
        assert!(PrincipalCause::InvalidTargetSector.fails_before_signaling());
        assert!(PrincipalCause::SrvccNotSubscribed.fails_before_signaling());
        assert!(!PrincipalCause::RelocationTimeout.fails_before_signaling());
    }

    #[test]
    fn srvcc_causes_only_apply_to_vertical() {
        for ho_type in [HoType::Intra4g5g, HoType::To2g] {
            let mix = base_cause_mixture(ho_type);
            assert_eq!(mix[PrincipalCause::SrvccNotSubscribed.index()], 0.0, "{ho_type}");
            assert_eq!(mix[PrincipalCause::SrvccPsToCsFailure.index()], 0.0, "{ho_type}");
        }
        let mix3g = base_cause_mixture(HoType::To3g);
        assert!(mix3g[PrincipalCause::SrvccNotSubscribed.index()] > 0.1);
    }

    #[test]
    fn mixtures_normalize() {
        for t in HoType::ALL {
            let sum: f64 = base_cause_mixture(t).iter().sum();
            assert!((sum - 1.0).abs() < 0.01, "{t}: {sum}");
        }
    }

    #[test]
    fn cause3_dominates_intra_failures() {
        let mix = base_cause_mixture(HoType::Intra4g5g);
        let c3 = mix[PrincipalCause::InvalidTargetSector.index()];
        assert!(c3 > 0.5, "Cause #3 share of intra failures: {c3}");
    }

    #[test]
    fn cause4_is_top_3g_cause() {
        let mix = base_cause_mixture(HoType::To3g);
        let c4 = mix[PrincipalCause::TargetLoadTooHigh.index()];
        assert!(mix.iter().all(|&w| w <= c4), "Cause #4 must lead →3G failures");
    }

    #[test]
    fn vendor_causes_partition() {
        let c = CauseCatalog::build();
        let total: usize = Vendor::ALL.iter().map(|&v| c.vendor_causes(v).len()).sum();
        assert_eq!(total, c.len() - 8);
    }

    #[test]
    fn descriptions_are_verbatim() {
        assert_eq!(
            PrincipalCause::TargetLoadTooHigh.description(),
            "Load on target sector is too high"
        );
        assert!(PrincipalCause::RelocationTimeout.description().contains("Forward Relocation"));
    }
}
