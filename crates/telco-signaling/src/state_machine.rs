//! The handover procedure as an explicit state machine (the paper's
//! Fig. 1).
//!
//! A handover advances through measurement → preparation → command →
//! execution → completion, exchanging the messages of
//! [`crate::messages`]. Failure injection names the step at which the
//! procedure breaks; the emitted message log is truncated there and the
//! appropriate abort messages appended — which is what gives each failure
//! cause its characteristic signaling time (Fig. 14b).

// telco-lint: deny-panic

use serde::{Deserialize, Serialize};

use crate::causes::{CauseCode, PrincipalCause};
use crate::messages::{Element, Envelope, HoType, Message};

/// Procedure phases, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Waiting for a triggering Measurement Report.
    AwaitingMeasurement,
    /// Source/MME preparing the target (admission, relocation, SRVCC).
    Preparing,
    /// Target prepared; command pending.
    Prepared,
    /// HO command delivered to the UE.
    Commanded,
    /// UE executing access at the target (RACH).
    Executing,
    /// Target confirmed; relocation completing, source release pending.
    Completing,
    /// Terminal: success or failure.
    Done,
}

/// Result of one handover procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoRun {
    /// Whether the handover completed successfully.
    pub success: bool,
    /// Failure cause (`None` on success).
    pub cause: Option<CauseCode>,
    /// Total signaling time, ms.
    pub duration_ms: f64,
    /// The captured message exchange.
    pub log: Vec<Envelope>,
}

impl HoRun {
    /// Number of signaling messages exchanged.
    pub fn message_count(&self) -> usize {
        self.log.len()
    }
}

/// One scripted step of the procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Step {
    from: Element,
    to: Element,
    message: Message,
    phase_after: Phase,
    /// Relative share of the procedure duration consumed by this step.
    weight: f64,
}

/// The longest procedure (vertical SRVCC) is 15 steps, so scripts fit in
/// a fixed stack buffer and executing a handover never touches the heap.
const MAX_SCRIPT_STEPS: usize = 16;

const PLACEHOLDER_STEP: Step = Step {
    from: Element::Ue,
    to: Element::Ue,
    message: Message::MeasurementReport,
    phase_after: Phase::Done,
    weight: 0.0,
};

/// A fixed-capacity, stack-allocated step script.
struct Script {
    steps: [Step; MAX_SCRIPT_STEPS],
    len: usize,
}

impl Script {
    /// Append a step. The longest script (vertical SRVCC) has 15 steps,
    /// so capacity can only be exceeded by a bug in `script()`; the
    /// debug assertion catches that in development while the release
    /// build stays total (an overflowing push is dropped).
    fn push(&mut self, step: Step) {
        debug_assert!(self.len < MAX_SCRIPT_STEPS, "script overflow");
        if let Some(slot) = self.steps.get_mut(self.len) {
            *slot = step;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[Step] {
        // `len <= MAX_SCRIPT_STEPS` is maintained by `push`.
        self.steps.get(..self.len).unwrap_or(&self.steps)
    }
}

/// Build the full (success-path) step script for a handover.
fn script(ho_type: HoType, srvcc: bool) -> Script {
    use Element::*;
    use Message::*;
    let mut s = Script { steps: [PLACEHOLDER_STEP; MAX_SCRIPT_STEPS], len: 0 };
    s.push(Step {
        from: Ue,
        to: SourceSector,
        message: MeasurementReport,
        phase_after: Phase::Preparing,
        weight: 0.02,
    });
    s.push(Step {
        from: SourceSector,
        to: Mme,
        message: HandoverRequired,
        phase_after: Phase::Preparing,
        weight: 0.05,
    });
    match ho_type {
        HoType::Intra4g5g => {
            s.push(Step {
                from: Mme,
                to: TargetSector,
                message: HandoverRequest,
                phase_after: Phase::Preparing,
                weight: 0.10,
            });
            s.push(Step {
                from: TargetSector,
                to: Mme,
                message: HandoverRequestAck,
                phase_after: Phase::Prepared,
                weight: 0.10,
            });
        }
        HoType::To3g | HoType::To2g => {
            if srvcc {
                s.push(Step {
                    from: Mme,
                    to: Msc,
                    message: PsToCsRequest,
                    phase_after: Phase::Preparing,
                    weight: 0.10,
                });
                s.push(Step {
                    from: Msc,
                    to: Mme,
                    message: PsToCsResponse,
                    phase_after: Phase::Preparing,
                    weight: 0.10,
                });
            }
            s.push(Step {
                from: Mme,
                to: Sgsn,
                message: ForwardRelocationRequest,
                phase_after: Phase::Preparing,
                weight: 0.15,
            });
            s.push(Step {
                from: Sgsn,
                to: Mme,
                message: ForwardRelocationResponse,
                phase_after: Phase::Prepared,
                weight: 0.15,
            });
        }
    }
    s.push(Step {
        from: Mme,
        to: SourceSector,
        message: HandoverCommand,
        phase_after: Phase::Commanded,
        weight: 0.05,
    });
    s.push(Step {
        from: SourceSector,
        to: Ue,
        message: RrcConnectionReconfiguration,
        phase_after: Phase::Commanded,
        weight: 0.05,
    });
    s.push(Step {
        from: Ue,
        to: TargetSector,
        message: RachPreamble,
        phase_after: Phase::Executing,
        weight: 0.12,
    });
    s.push(Step {
        from: TargetSector,
        to: Ue,
        message: RachResponse,
        phase_after: Phase::Executing,
        weight: 0.08,
    });
    s.push(Step {
        from: Ue,
        to: TargetSector,
        message: HandoverConfirm,
        phase_after: Phase::Executing,
        weight: 0.08,
    });
    s.push(Step {
        from: TargetSector,
        to: Mme,
        message: HandoverNotify,
        phase_after: Phase::Completing,
        weight: 0.05,
    });
    if ho_type.is_vertical() {
        s.push(Step {
            from: Sgsn,
            to: Mme,
            message: ForwardRelocationComplete,
            phase_after: Phase::Completing,
            weight: 0.05,
        });
    }
    s.push(Step {
        from: Mme,
        to: Sgw,
        message: ModifyBearerRequest,
        phase_after: Phase::Completing,
        weight: 0.05,
    });
    s.push(Step {
        from: Mme,
        to: SourceSector,
        message: UeContextRelease,
        phase_after: Phase::Done,
        weight: 0.05,
    });
    s
}

/// The abort tails appended after a failure cut (static: appending them
/// costs no allocation).
const ABORT_RELEASE: &[(Element, Element, Message)] =
    &[(Element::Mme, Element::SourceSector, Message::UeContextRelease)];
const ABORT_CANCEL: &[(Element, Element, Message)] = &[
    (Element::SourceSector, Element::Mme, Message::HandoverCancel),
    (Element::Mme, Element::SourceSector, Message::UeContextRelease),
];
const ABORT_INITIAL_UE: &[(Element, Element, Message)] = &[
    (Element::SourceSector, Element::Mme, Message::InitialUeMessage),
    (Element::Mme, Element::SourceSector, Message::UeContextRelease),
];

/// Index (into the script) at which a failure cause interrupts the
/// procedure, plus the abort messages it appends.
fn failure_cut(
    cause: Option<PrincipalCause>,
    script_len: usize,
    ho_type: HoType,
    srvcc: bool,
) -> (usize, &'static [(Element, Element, Message)]) {
    let prep_end = match ho_type {
        HoType::Intra4g5g => 4,
        _ => {
            if srvcc {
                6
            } else {
                4
            }
        }
    };
    match cause {
        // Rejected when the MME validates the HandoverRequired: the two
        // trigger messages happen, but no handover signaling elapses.
        Some(PrincipalCause::InvalidTargetSector) | Some(PrincipalCause::SrvccNotSubscribed) => {
            (2, ABORT_RELEASE)
        }
        // Target admission rejects during preparation.
        Some(PrincipalCause::TargetLoadTooHigh) => (prep_end - 1, ABORT_RELEASE),
        // Core detects a failure while preparing.
        Some(PrincipalCause::InfrastructureFailure) => (prep_end - 1, ABORT_RELEASE),
        // MSC answers PS→CS with a failure cause.
        Some(PrincipalCause::SrvccPsToCsFailure) => {
            (if srvcc { 4 } else { prep_end - 1 }, ABORT_RELEASE)
        }
        // Source cancels a prepared/commanded handover.
        Some(PrincipalCause::SourceCanceled) => (prep_end + 1, ABORT_CANCEL),
        // An Initial UE Message interrupts the ongoing procedure.
        Some(PrincipalCause::InterferingInitialUeMessage) => (prep_end, ABORT_INITIAL_UE),
        // Everything executed, but Forward Relocation Complete never came.
        Some(PrincipalCause::RelocationTimeout) => {
            // Cut right before ForwardRelocationComplete (vertical scripts).
            (script_len.saturating_sub(3), ABORT_RELEASE)
        }
        // Long-tail vendor causes: break mid-preparation.
        None => (prep_end - 1, ABORT_RELEASE),
    }
}

/// Execute one handover procedure.
///
/// `duration_ms` is the externally sampled total signaling time (from
/// [`crate::duration::DurationModel`]); the step log spreads it across the
/// exchanged messages proportionally to per-step weights. `failure`, when
/// set, names the cause the procedure fails with.
pub fn execute(
    ho_type: HoType,
    srvcc: bool,
    failure: Option<CauseCode>,
    duration_ms: f64,
) -> HoRun {
    let mut log = Vec::new();
    let success = execute_into(ho_type, srvcc, failure, duration_ms, &mut log);
    HoRun { success, cause: failure, duration_ms, log }
}

/// [`execute`] into a reused message-log buffer (cleared first). Returns
/// whether the procedure succeeded. The script lives on the stack and the
/// abort tails are static, so once `log`'s capacity has grown past the
/// longest procedure, executing a handover performs no heap allocation.
pub fn execute_into(
    ho_type: HoType,
    srvcc: bool,
    failure: Option<CauseCode>,
    duration_ms: f64,
    log: &mut Vec<Envelope>,
) -> bool {
    debug_assert!(duration_ms >= 0.0, "duration must be nonnegative");
    debug_assert!(
        !(srvcc && ho_type == HoType::Intra4g5g),
        "SRVCC only applies to vertical handovers"
    );
    log.clear();
    let steps = script(ho_type, srvcc);
    match failure {
        None => {
            lay_out(steps.as_slice(), duration_ms, log);
            true
        }
        Some(code) => {
            let principal = code.as_principal();
            let (cut, aborts) = failure_cut(principal, steps.len, ho_type, srvcc);
            let cut = cut.min(steps.len);
            let slice = steps.as_slice();
            // `cut <= len` by the `min` above, so `get` always hits.
            lay_out(slice.get(..cut).unwrap_or(slice), duration_ms, log);
            // Accumulated floating-point error can push the last laid-out
            // step an ulp past the total; aborts must never precede it.
            let abort_at = log.last().map_or(duration_ms, |e| e.at_ms.max(duration_ms));
            for &(from, to, message) in aborts {
                log.push(Envelope { at_ms: abort_at, from, to, message });
            }
            false
        }
    }
}

/// Spread `duration_ms` across steps proportionally to their weights,
/// appending the envelopes to `log`.
fn lay_out(steps: &[Step], duration_ms: f64, log: &mut Vec<Envelope>) {
    let total_weight: f64 = steps.iter().map(|s| s.weight).sum();
    let mut at = 0.0;
    log.reserve(steps.len() + 2);
    for step in steps {
        let dt = if total_weight > 0.0 { duration_ms * step.weight / total_weight } else { 0.0 };
        at += dt;
        log.push(Envelope { at_ms: at, from: step.from, to: step.to, message: step.message });
    }
}

/// A typed phase tracker enforcing legal transitions; used by tests and by
/// consumers that want to replay a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTracker {
    phase: Phase,
}

impl PhaseTracker {
    /// Start a procedure.
    pub fn new() -> Self {
        PhaseTracker { phase: Phase::AwaitingMeasurement }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Advance to `next`.
    ///
    /// # Panics
    ///
    /// Panics on a backwards transition (other than staying put), which
    /// would indicate a corrupted log.
    pub fn advance(&mut self, next: Phase) {
        // telco-lint: allow(panic): documented panic contract of a validation API — not on the trace hot path
        assert!(next >= self.phase, "illegal transition {:?} -> {next:?}", self.phase);
        self.phase = next;
    }
}

impl Default for PhaseTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causes::CauseCode;

    #[test]
    fn successful_intra_ho_exchanges_expected_messages() {
        let run = execute(HoType::Intra4g5g, false, None, 43.0);
        assert!(run.success);
        assert_eq!(run.cause, None);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert_eq!(msgs.first(), Some(&Message::MeasurementReport));
        assert!(msgs.contains(&Message::HandoverRequest));
        assert!(msgs.contains(&Message::RachPreamble));
        assert_eq!(msgs.last(), Some(&Message::UeContextRelease));
        assert!(!msgs.contains(&Message::ForwardRelocationRequest));
    }

    #[test]
    fn vertical_ho_uses_forward_relocation() {
        let run = execute(HoType::To3g, false, None, 412.0);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::ForwardRelocationRequest));
        assert!(msgs.contains(&Message::ForwardRelocationComplete));
        assert!(!msgs.contains(&Message::PsToCsRequest));
    }

    #[test]
    fn srvcc_adds_ps_to_cs_exchange() {
        let run = execute(HoType::To3g, true, None, 500.0);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::PsToCsRequest));
        assert!(msgs.contains(&Message::PsToCsResponse));
        // SRVCC adds signaling: more messages than the data-only script.
        let plain = execute(HoType::To3g, false, None, 500.0);
        assert!(run.message_count() > plain.message_count());
    }

    #[test]
    fn log_timestamps_are_nondecreasing_and_bounded() {
        for (ho_type, srvcc) in
            [(HoType::Intra4g5g, false), (HoType::To3g, true), (HoType::To2g, false)]
        {
            let run = execute(ho_type, srvcc, None, 100.0);
            assert!(run.log.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
            let last = run.log.last().unwrap().at_ms;
            assert!((last - 100.0).abs() < 1e-9, "total time {last}");
        }
    }

    #[test]
    fn cause3_truncates_before_target_contact() {
        let code = CauseCode::principal(PrincipalCause::InvalidTargetSector);
        let run = execute(HoType::Intra4g5g, false, Some(code), 0.0);
        assert!(!run.success);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::HandoverRequired));
        assert!(!msgs.contains(&Message::HandoverRequest), "target must never be contacted");
        assert_eq!(msgs.last(), Some(&Message::UeContextRelease));
    }

    #[test]
    fn cause1_emits_handover_cancel() {
        let code = CauseCode::principal(PrincipalCause::SourceCanceled);
        let run = execute(HoType::To3g, false, Some(code), 1400.0);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::HandoverCancel));
        assert!(!run.success);
    }

    #[test]
    fn cause8_executes_but_never_completes() {
        let code = CauseCode::principal(PrincipalCause::RelocationTimeout);
        let run = execute(HoType::To3g, false, Some(code), 10_050.0);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::HandoverConfirm), "execution must happen");
        assert!(!msgs.contains(&Message::ForwardRelocationComplete), "completion must be missing");
    }

    #[test]
    fn cause2_logs_interfering_initial_ue_message() {
        let code = CauseCode::principal(PrincipalCause::InterferingInitialUeMessage);
        let run = execute(HoType::Intra4g5g, false, Some(code), 1900.0);
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(msgs.contains(&Message::InitialUeMessage));
    }

    #[test]
    fn vendor_tail_cause_breaks_mid_preparation() {
        let run = execute(HoType::To3g, false, Some(CauseCode(500)), 600.0);
        assert!(!run.success);
        assert_eq!(run.cause, Some(CauseCode(500)));
        let msgs: Vec<Message> = run.log.iter().map(|e| e.message).collect();
        assert!(!msgs.contains(&Message::HandoverConfirm));
    }

    #[test]
    fn phase_tracker_enforces_order() {
        let mut t = PhaseTracker::new();
        t.advance(Phase::Preparing);
        t.advance(Phase::Prepared);
        t.advance(Phase::Done);
        assert_eq!(t.phase(), Phase::Done);
    }

    #[test]
    #[should_panic]
    fn phase_tracker_rejects_backwards() {
        let mut t = PhaseTracker::new();
        t.advance(Phase::Commanded);
        t.advance(Phase::Preparing);
    }

    #[test]
    #[should_panic]
    fn srvcc_on_intra_rejected() {
        execute(HoType::Intra4g5g, true, None, 50.0);
    }
}
