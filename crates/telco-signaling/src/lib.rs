//! # telco-signaling
//!
//! Core-network signaling substrate for the handover study: the S1AP /
//! GTPv2-C / RRC message vocabulary, the 3GPP handover procedure as an
//! explicit state machine (the paper's Fig. 1), A2/A3 measurement events
//! with a path-loss signal model, the cause-code catalog (8 principal
//! causes + 1k+ vendor sub-causes, §6.2), calibrated failure-injection and
//! duration models, and the MME/MSC/SGSN/SGW entities with the passive
//! probe view the paper's measurement infrastructure exposes (§3.1).
//!
//! ## Example
//!
//! ```
//! use telco_signaling::messages::HoType;
//! use telco_signaling::state_machine::execute;
//!
//! // A successful horizontal handover: the full Fig. 1 exchange.
//! let run = execute(HoType::Intra4g5g, false, None, 43.0);
//! assert!(run.success);
//! assert!(run.message_count() >= 10);
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causes;
pub mod duration;
pub mod entities;
pub mod events;
pub mod failure;
pub mod messages;
pub mod state_machine;

pub use causes::{CauseCatalog, CauseCode, CauseInfo, PrincipalCause};
pub use duration::{DurationModel, QuantileSpec};
pub use entities::{CoreNetwork, ElementStats};
pub use events::{rsrp_dbm, MeasurementEvent, MobilityConfig};
pub use failure::{FailureConfig, FailureModel, HoContext};
pub use messages::{Element, Envelope, HoType, Message};
pub use state_machine::{execute, HoRun, Phase, PhaseTracker};
