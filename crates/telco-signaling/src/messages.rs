//! Control-plane signaling messages and network elements.
//!
//! Models the message exchanges of the 3GPP handover procedure (the
//! paper's Fig. 1 and §2): measurement reporting, S1AP handover
//! preparation, RRC reconfiguration and RACH execution, relocation
//! completion and context release — plus the GTPv2-C forward-relocation and
//! SRVCC PS→CS messages involved in vertical handovers to 3G/2G.

use serde::{Deserialize, Serialize};

use telco_topology::rat::Rat;

/// The handover types the study observes: the source is always the 4G EPC
/// (4G or 5G-NSA anchor), the target is 4G/5G-NSA (horizontal) or a legacy
/// RAT (vertical downgrade) — §5.2, §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HoType {
    /// Horizontal handover between 4G/5G-NSA sectors.
    Intra4g5g,
    /// Vertical handover from 4G/5G-NSA to a 3G sector.
    To3g,
    /// Vertical handover from 4G/5G-NSA to a 2G sector.
    To2g,
}

impl HoType {
    /// All handover types.
    pub const ALL: [HoType; 3] = [HoType::Intra4g5g, HoType::To3g, HoType::To2g];

    /// Label as printed in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            HoType::Intra4g5g => "Intra 4G/5G-NSA",
            HoType::To3g => "4G/5G-NSA->3G",
            HoType::To2g => "4G/5G-NSA->2G",
        }
    }

    /// Whether the handover crosses RATs.
    pub fn is_vertical(&self) -> bool {
        !matches!(self, HoType::Intra4g5g)
    }

    /// The handover type implied by a target RAT (sources are always EPC).
    pub fn from_target_rat(target: Rat) -> HoType {
        match target {
            Rat::G2 => HoType::To2g,
            Rat::G3 => HoType::To3g,
            Rat::G4 | Rat::G5Nr => HoType::Intra4g5g,
        }
    }

    /// Stable index for categorical encodings (intra = 0 = baseline).
    pub fn index(&self) -> usize {
        match self {
            HoType::Intra4g5g => 0,
            HoType::To3g => 1,
            HoType::To2g => 2,
        }
    }
}

impl std::fmt::Display for HoType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A node participating in the signaling exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Element {
    /// The user equipment.
    Ue,
    /// The source radio sector (and its eNodeB).
    SourceSector,
    /// The target radio sector (eNodeB / RNC / BSC).
    TargetSector,
    /// Mobility Management Entity (4G/5G-NSA mobility anchor).
    Mme,
    /// Mobile Switching Center (CS voice; SRVCC peer).
    Msc,
    /// Serving GPRS Support Node (2G/3G packet mobility).
    Sgsn,
    /// Serving Gateway (user-plane anchor).
    Sgw,
}

impl Element {
    /// Number of distinct elements.
    pub const COUNT: usize = 7;

    /// Dense index in `0..Element::COUNT` (declaration order).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Element::Ue => "UE",
            Element::SourceSector => "Source",
            Element::TargetSector => "Target",
            Element::Mme => "MME",
            Element::Msc => "MSC",
            Element::Sgsn => "SGSN",
            Element::Sgw => "SGW",
        }
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The signaling message vocabulary of the handover procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Message {
    /// RRC Measurement Report carrying an A2/A3 event (UE → source).
    MeasurementReport,
    /// S1AP Handover Required (source → MME).
    HandoverRequired,
    /// S1AP Handover Request (MME → target).
    HandoverRequest,
    /// S1AP Handover Request Acknowledge (target → MME).
    HandoverRequestAck,
    /// S1AP Handover Command (MME → source).
    HandoverCommand,
    /// RRC Connection Reconfiguration — the "HO command" to the UE.
    RrcConnectionReconfiguration,
    /// RACH preamble at the target (UE → target).
    RachPreamble,
    /// RACH response / UL grant (target → UE).
    RachResponse,
    /// RRC Reconfiguration Complete / Handover Confirm (UE → target).
    HandoverConfirm,
    /// S1AP Handover Notify (target → MME).
    HandoverNotify,
    /// GTPv2-C Forward Relocation Request (MME → SGSN; vertical HOs).
    ForwardRelocationRequest,
    /// GTPv2-C Forward Relocation Response (SGSN → MME).
    ForwardRelocationResponse,
    /// GTPv2-C Forward Relocation Complete Notification (SGSN → MME).
    ForwardRelocationComplete,
    /// SRVCC PS to CS Request (MME → MSC; voice continuity).
    PsToCsRequest,
    /// SRVCC PS to CS Response (MSC → MME).
    PsToCsResponse,
    /// Modify Bearer Request re-anchoring the user plane (MME → SGW).
    ModifyBearerRequest,
    /// S1AP UE Context Release (MME → source) — source resources freed.
    UeContextRelease,
    /// S1AP Handover Cancel (source → MME).
    HandoverCancel,
    /// S1AP Initial UE Message — can interrupt an ongoing preparation
    /// (failure Cause #2).
    InitialUeMessage,
}

impl Message {
    /// Number of distinct messages.
    pub const COUNT: usize = 19;

    /// Dense index in `0..Message::COUNT` (declaration order).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Short wire name.
    pub fn label(&self) -> &'static str {
        match self {
            Message::MeasurementReport => "MeasurementReport",
            Message::HandoverRequired => "HandoverRequired",
            Message::HandoverRequest => "HandoverRequest",
            Message::HandoverRequestAck => "HandoverRequestAck",
            Message::HandoverCommand => "HandoverCommand",
            Message::RrcConnectionReconfiguration => "RRCConnectionReconfiguration",
            Message::RachPreamble => "RACHPreamble",
            Message::RachResponse => "RACHResponse",
            Message::HandoverConfirm => "HandoverConfirm",
            Message::HandoverNotify => "HandoverNotify",
            Message::ForwardRelocationRequest => "ForwardRelocationRequest",
            Message::ForwardRelocationResponse => "ForwardRelocationResponse",
            Message::ForwardRelocationComplete => "ForwardRelocationComplete",
            Message::PsToCsRequest => "PStoCSRequest",
            Message::PsToCsResponse => "PStoCSResponse",
            Message::ModifyBearerRequest => "ModifyBearerRequest",
            Message::UeContextRelease => "UEContextRelease",
            Message::HandoverCancel => "HandoverCancel",
            Message::InitialUeMessage => "InitialUEMessage",
        }
    }
}

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One captured signaling exchange: who sent what to whom, at a relative
/// offset (ms) from the start of the handover procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Offset from procedure start, ms.
    pub at_ms: f64,
    /// Sender.
    pub from: Element,
    /// Receiver.
    pub to: Element,
    /// The message.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ho_type_from_target_rat() {
        assert_eq!(HoType::from_target_rat(Rat::G4), HoType::Intra4g5g);
        assert_eq!(HoType::from_target_rat(Rat::G5Nr), HoType::Intra4g5g);
        assert_eq!(HoType::from_target_rat(Rat::G3), HoType::To3g);
        assert_eq!(HoType::from_target_rat(Rat::G2), HoType::To2g);
    }

    #[test]
    fn vertical_classification() {
        assert!(!HoType::Intra4g5g.is_vertical());
        assert!(HoType::To3g.is_vertical());
        assert!(HoType::To2g.is_vertical());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(HoType::Intra4g5g.label(), "Intra 4G/5G-NSA");
        assert_eq!(HoType::To3g.to_string(), "4G/5G-NSA->3G");
    }

    #[test]
    fn indices_are_baseline_first() {
        assert_eq!(HoType::Intra4g5g.index(), 0);
        assert_eq!(HoType::To3g.index(), 1);
        assert_eq!(HoType::To2g.index(), 2);
    }

    #[test]
    fn element_and_message_display() {
        assert_eq!(Element::Mme.to_string(), "MME");
        assert_eq!(
            Message::RrcConnectionReconfiguration.to_string(),
            "RRCConnectionReconfiguration"
        );
    }
}
