//! Core-network entities and the passive measurement probe.
//!
//! The paper collects its trace with commercial probes attached to the
//! MME, MSC, SGSN and SGW (§3.1, Fig. 2). [`CoreNetwork`] plays both
//! roles: it routes every signaling envelope through the addressed
//! element — keeping per-element context and message accounting the way a
//! real core would — and exposes the counters a probe would export.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::messages::{Element, Envelope, Message};

/// Per-element message counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ElementStats {
    /// Messages received, by message kind.
    pub received: HashMap<Message, u64>,
    /// Messages sent, by message kind.
    pub sent: HashMap<Message, u64>,
}

impl ElementStats {
    /// Total messages received.
    pub fn total_received(&self) -> u64 {
        self.received.values().sum()
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }
}

/// The core network as seen by the measurement infrastructure: MME, MSC,
/// SGSN and SGW (plus the RAN-side elements), with message accounting and
/// the MME's active-procedure bookkeeping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreNetwork {
    stats: HashMap<Element, ElementStats>,
    /// Handover procedures currently tracked by the MME.
    mme_open_procedures: u64,
    /// Total procedures the MME has tracked.
    mme_total_procedures: u64,
}

impl CoreNetwork {
    /// A fresh core with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one envelope (probe view + routing bookkeeping).
    pub fn observe(&mut self, envelope: &Envelope) {
        *self
            .stats
            .entry(envelope.from)
            .or_default()
            .sent
            .entry(envelope.message)
            .or_insert(0) += 1;
        *self
            .stats
            .entry(envelope.to)
            .or_default()
            .received
            .entry(envelope.message)
            .or_insert(0) += 1;
        // MME procedure bookkeeping: HandoverRequired opens a procedure,
        // UEContextRelease closes it.
        match envelope.message {
            Message::HandoverRequired if envelope.to == Element::Mme => {
                self.mme_open_procedures += 1;
                self.mme_total_procedures += 1;
            }
            Message::UeContextRelease if envelope.from == Element::Mme => {
                self.mme_open_procedures = self.mme_open_procedures.saturating_sub(1);
            }
            _ => {}
        }
    }

    /// Observe a whole procedure log.
    pub fn observe_run(&mut self, log: &[Envelope]) {
        for e in log {
            self.observe(e);
        }
    }

    /// Stats of one element.
    pub fn element(&self, element: Element) -> Option<&ElementStats> {
        self.stats.get(&element)
    }

    /// Total messages observed network-wide (each envelope counted once).
    pub fn total_messages(&self) -> u64 {
        self.stats.values().map(|s| s.total_sent()).sum()
    }

    /// Handover procedures currently open at the MME.
    pub fn mme_open_procedures(&self) -> u64 {
        self.mme_open_procedures
    }

    /// Handover procedures the MME has seen in total.
    pub fn mme_total_procedures(&self) -> u64 {
        self.mme_total_procedures
    }

    /// Merge another core's counters into this one (used when simulation
    /// shards run in parallel).
    pub fn merge(&mut self, other: &CoreNetwork) {
        for (elem, stats) in &other.stats {
            let mine = self.stats.entry(*elem).or_default();
            for (m, c) in &stats.received {
                *mine.received.entry(*m).or_insert(0) += c;
            }
            for (m, c) in &stats.sent {
                *mine.sent.entry(*m).or_insert(0) += c;
            }
        }
        self.mme_open_procedures += other.mme_open_procedures;
        self.mme_total_procedures += other.mme_total_procedures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::HoType;
    use crate::state_machine::execute;

    #[test]
    fn observes_a_successful_run() {
        let run = execute(HoType::Intra4g5g, false, None, 43.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        assert_eq!(core.total_messages(), run.log.len() as u64);
        assert_eq!(core.mme_total_procedures(), 1);
        assert_eq!(core.mme_open_procedures(), 0, "procedure must be closed");
        let mme = core.element(Element::Mme).unwrap();
        assert_eq!(mme.received.get(&Message::HandoverRequired), Some(&1));
        assert_eq!(mme.sent.get(&Message::UeContextRelease), Some(&1));
    }

    #[test]
    fn vertical_run_touches_sgsn() {
        let run = execute(HoType::To3g, false, None, 400.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        let sgsn = core.element(Element::Sgsn).unwrap();
        assert!(sgsn.total_received() >= 1);
        assert!(sgsn.total_sent() >= 1);
    }

    #[test]
    fn srvcc_run_touches_msc() {
        let run = execute(HoType::To3g, true, None, 500.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        assert!(core.element(Element::Msc).unwrap().total_received() >= 1);
    }

    #[test]
    fn merge_adds_counters() {
        let run = execute(HoType::Intra4g5g, false, None, 43.0);
        let mut a = CoreNetwork::new();
        a.observe_run(&run.log);
        let mut b = CoreNetwork::new();
        b.observe_run(&run.log);
        b.merge(&a);
        assert_eq!(b.total_messages(), 2 * run.log.len() as u64);
        assert_eq!(b.mme_total_procedures(), 2);
    }

    #[test]
    fn empty_core_has_no_stats() {
        let core = CoreNetwork::new();
        assert_eq!(core.total_messages(), 0);
        assert!(core.element(Element::Mme).is_none());
    }
}
