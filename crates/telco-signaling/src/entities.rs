//! Core-network entities and the passive measurement probe.
//!
//! The paper collects its trace with commercial probes attached to the
//! MME, MSC, SGSN and SGW (§3.1, Fig. 2). [`CoreNetwork`] plays both
//! roles: it routes every signaling envelope through the addressed
//! element — keeping per-element context and message accounting the way a
//! real core would — and exposes the counters a probe would export.
//!
//! Counters are flat arrays indexed by the (small, closed) element and
//! message vocabularies rather than hash maps: [`CoreNetwork::observe`]
//! sits on the simulation hot path, called once per envelope of every
//! handover, and the array form makes it a pair of increments with no
//! hashing and no heap.

use serde::{Deserialize, Serialize};

use crate::messages::{Element, Envelope, Message};

/// Per-element message counters, indexed by [`Message::index`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementStats {
    received: [u64; Message::COUNT],
    sent: [u64; Message::COUNT],
}

impl Default for ElementStats {
    fn default() -> Self {
        ElementStats { received: [0; Message::COUNT], sent: [0; Message::COUNT] }
    }
}

impl ElementStats {
    /// Times `message` was received.
    pub fn received(&self, message: Message) -> u64 {
        self.received[message.index()]
    }

    /// Times `message` was sent.
    pub fn sent(&self, message: Message) -> u64 {
        self.sent[message.index()]
    }

    /// Total messages received.
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

/// The core network as seen by the measurement infrastructure: MME, MSC,
/// SGSN and SGW (plus the RAN-side elements), with message accounting and
/// the MME's active-procedure bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreNetwork {
    stats: [ElementStats; Element::COUNT],
    /// Handover procedures currently tracked by the MME.
    mme_open_procedures: u64,
    /// Total procedures the MME has tracked.
    mme_total_procedures: u64,
}

impl CoreNetwork {
    /// A fresh core with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one envelope (probe view + routing bookkeeping).
    pub fn observe(&mut self, envelope: &Envelope) {
        let m = envelope.message.index();
        self.stats[envelope.from.index()].sent[m] += 1;
        self.stats[envelope.to.index()].received[m] += 1;
        // MME procedure bookkeeping: HandoverRequired opens a procedure,
        // UEContextRelease closes it.
        match envelope.message {
            Message::HandoverRequired if envelope.to == Element::Mme => {
                self.mme_open_procedures += 1;
                self.mme_total_procedures += 1;
            }
            Message::UeContextRelease if envelope.from == Element::Mme => {
                self.mme_open_procedures = self.mme_open_procedures.saturating_sub(1);
            }
            _ => {}
        }
    }

    /// Observe a whole procedure log.
    pub fn observe_run(&mut self, log: &[Envelope]) {
        for e in log {
            self.observe(e);
        }
    }

    /// Stats of one element (`None` if it never touched a message).
    pub fn element(&self, element: Element) -> Option<&ElementStats> {
        let stats = &self.stats[element.index()];
        (stats.total_sent() + stats.total_received() > 0).then_some(stats)
    }

    /// Total messages observed network-wide (each envelope counted once).
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.total_sent()).sum()
    }

    /// Handover procedures currently open at the MME.
    pub fn mme_open_procedures(&self) -> u64 {
        self.mme_open_procedures
    }

    /// Handover procedures the MME has seen in total.
    pub fn mme_total_procedures(&self) -> u64 {
        self.mme_total_procedures
    }

    /// Merge another core's counters into this one (used when simulation
    /// shards run in parallel).
    pub fn merge(&mut self, other: &CoreNetwork) {
        for (mine, theirs) in self.stats.iter_mut().zip(&other.stats) {
            for m in 0..Message::COUNT {
                mine.received[m] += theirs.received[m];
                mine.sent[m] += theirs.sent[m];
            }
        }
        self.mme_open_procedures += other.mme_open_procedures;
        self.mme_total_procedures += other.mme_total_procedures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::HoType;
    use crate::state_machine::execute;

    #[test]
    fn observes_a_successful_run() {
        let run = execute(HoType::Intra4g5g, false, None, 43.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        assert_eq!(core.total_messages(), run.log.len() as u64);
        assert_eq!(core.mme_total_procedures(), 1);
        assert_eq!(core.mme_open_procedures(), 0, "procedure must be closed");
        let mme = core.element(Element::Mme).unwrap();
        assert_eq!(mme.received(Message::HandoverRequired), 1);
        assert_eq!(mme.sent(Message::UeContextRelease), 1);
    }

    #[test]
    fn vertical_run_touches_sgsn() {
        let run = execute(HoType::To3g, false, None, 400.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        let sgsn = core.element(Element::Sgsn).unwrap();
        assert!(sgsn.total_received() >= 1);
        assert!(sgsn.total_sent() >= 1);
    }

    #[test]
    fn srvcc_run_touches_msc() {
        let run = execute(HoType::To3g, true, None, 500.0);
        let mut core = CoreNetwork::new();
        core.observe_run(&run.log);
        assert!(core.element(Element::Msc).unwrap().total_received() >= 1);
    }

    #[test]
    fn merge_adds_counters() {
        let run = execute(HoType::Intra4g5g, false, None, 43.0);
        let mut a = CoreNetwork::new();
        a.observe_run(&run.log);
        let mut b = CoreNetwork::new();
        b.observe_run(&run.log);
        b.merge(&a);
        assert_eq!(b.total_messages(), 2 * run.log.len() as u64);
        assert_eq!(b.mme_total_procedures(), 2);
    }

    #[test]
    fn empty_core_has_no_stats() {
        let core = CoreNetwork::new();
        assert_eq!(core.total_messages(), 0);
        assert!(core.element(Element::Mme).is_none());
    }
}
