//! # telco-store
//!
//! Object storage behind a small trait, shared by every subsystem that
//! persists artifacts: the shard orchestrator (traces, sidecars,
//! completion markers) and the snapshot-native ingest service (pass
//! baselines, per-day partials, commit state).
//!
//! The only backend today is [`DirStore`] (a flat directory), but the
//! trait is deliberately shaped like an object store: flat string
//! names, whole-object reads, staged writes published by an atomic
//! [`ObjectStore::commit`] (a directory rename here, a multipart-upload
//! completion there). Writers *stage* an object while producing it and
//! commit only once it is complete, so a crashed writer never leaves a
//! half-written object under a committed name — on a backend without
//! atomic publish, callers' validity protocols (trace trailers,
//! completion markers, snapshot CRC frames) still catch it, which is
//! why no caller assumes the store is atomic.

// telco-lint: deny-swallowed-errors

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Abstract storage for persisted artifacts (traces, sidecars, markers,
/// snapshots, logs). Names are flat, non-empty, and must not contain
/// path separators or `..` — they are object keys, not paths.
pub trait ObjectStore: Send + Sync {
    /// Open a staged writer for `name`. Nothing is visible under `name`
    /// until [`ObjectStore::commit`]; a dropped writer leaves at most
    /// invisible staging garbage, which a later `put` overwrites.
    fn put(&self, name: &str) -> std::io::Result<Box<dyn Write + Send>>;

    /// Atomically publish the staged bytes of `name`.
    fn commit(&self, name: &str) -> std::io::Result<()>;

    /// Open a committed object for reading.
    fn get(&self, name: &str) -> std::io::Result<Box<dyn Read + Send>>;

    /// Whether a committed object exists under `name`.
    fn exists(&self, name: &str) -> std::io::Result<bool>;

    /// Remove a committed object (`Ok` even if absent — deletes are
    /// idempotent, as every retry path wants).
    fn delete(&self, name: &str) -> std::io::Result<()>;

    /// All committed object names, sorted (staging artifacts excluded).
    fn list(&self) -> std::io::Result<Vec<String>>;

    /// Append `bytes` to a committed log object, creating it if absent.
    /// Appends are immediate (not staged): logs are diagnostics and
    /// dispatch accounting, not completion state.
    fn append(&self, name: &str, bytes: &[u8]) -> std::io::Result<()>;

    /// The local filesystem path of a committed object, if this backend
    /// has one. Lets same-machine readers stream a large trace straight
    /// from the file (and the fault harness reach in and damage one);
    /// remote backends return `None` and callers fall back to
    /// [`ObjectStore::get`].
    fn local_path(&self, _name: &str) -> Option<PathBuf> {
        None
    }

    /// The local root directory, if any — what a subprocess launcher
    /// passes to workers so they open the same store.
    fn local_root(&self) -> Option<&Path> {
        None
    }
}

/// Suffix of staged (not yet committed) objects in a [`DirStore`].
const STAGING_SUFFIX: &str = ".staged";

fn validate_name(name: &str) -> std::io::Result<()> {
    let bad = name.is_empty()
        || name.contains(['/', '\\'])
        || name == "."
        || name.contains("..")
        || name.ends_with(STAGING_SUFFIX);
    if bad {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("invalid store name {name:?}"),
        ));
    }
    Ok(())
}

/// [`ObjectStore`] over one flat directory. Staged writes go to
/// `<name>.staged` and commit via `rename` — atomic on every POSIX
/// filesystem, so a committed object is always complete *as written*
/// (completeness of the writer is still the caller's validity check).
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Open `root` as a store, creating the directory if needed.
    pub fn create(root: impl Into<PathBuf>) -> std::io::Result<DirStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    /// Open an existing directory as a store.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<DirStore> {
        let root = root.into();
        if !root.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("store directory {} does not exist", root.display()),
            ));
        }
        Ok(DirStore { root })
    }

    fn path_of(&self, name: &str) -> std::io::Result<PathBuf> {
        validate_name(name)?;
        Ok(self.root.join(name))
    }

    fn staged_path_of(&self, name: &str) -> std::io::Result<PathBuf> {
        validate_name(name)?;
        Ok(self.root.join(format!("{name}{STAGING_SUFFIX}")))
    }
}

impl ObjectStore for DirStore {
    fn put(&self, name: &str) -> std::io::Result<Box<dyn Write + Send>> {
        let file = std::fs::File::create(self.staged_path_of(name)?)?;
        Ok(Box::new(std::io::BufWriter::new(file)))
    }

    fn commit(&self, name: &str) -> std::io::Result<()> {
        std::fs::rename(self.staged_path_of(name)?, self.path_of(name)?)
    }

    fn get(&self, name: &str) -> std::io::Result<Box<dyn Read + Send>> {
        let file = std::fs::File::open(self.path_of(name)?)?;
        Ok(Box::new(std::io::BufReader::new(file)))
    }

    fn exists(&self, name: &str) -> std::io::Result<bool> {
        Ok(self.path_of(name)?.is_file())
    }

    fn delete(&self, name: &str) -> std::io::Result<()> {
        match std::fs::remove_file(self.path_of(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for dirent in std::fs::read_dir(&self.root)? {
            let dirent = dirent?;
            if !dirent.file_type()?.is_file() {
                continue;
            }
            let name = dirent.file_name().to_string_lossy().into_owned();
            if !name.ends_with(STAGING_SUFFIX) {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(self.path_of(name)?)?;
        file.write_all(bytes)
    }

    fn local_path(&self, name: &str) -> Option<PathBuf> {
        let path = self.path_of(name).ok()?;
        path.is_file().then_some(path)
    }

    fn local_root(&self) -> Option<&Path> {
        Some(&self.root)
    }
}

/// Stage + write + commit one small object in a single call.
pub fn put_bytes(store: &dyn ObjectStore, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let mut w = store.put(name)?;
    w.write_all(bytes)?;
    w.flush()?;
    drop(w);
    store.commit(name)
}

/// Read a whole committed object into a byte vector.
pub fn get_bytes(store: &dyn ObjectStore, name: &str) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::new();
    store.get(name)?.read_to_end(&mut out)?;
    Ok(out)
}

/// Read a whole committed object as a UTF-8 string.
pub fn get_string(store: &dyn ObjectStore, name: &str) -> std::io::Result<String> {
    let mut out = String::new();
    store.get(name)?.read_to_string(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DirStore {
        let dir = std::env::temp_dir().join(format!("telco_store_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        DirStore::create(dir).unwrap()
    }

    #[test]
    fn staged_objects_are_invisible_until_commit() {
        let store = temp_store("stage");
        let mut w = store.put("a.bin").unwrap();
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        drop(w);
        assert!(!store.exists("a.bin").unwrap());
        assert!(store.list().unwrap().is_empty());
        store.commit("a.bin").unwrap();
        assert!(store.exists("a.bin").unwrap());
        assert_eq!(get_string(&store, "a.bin").unwrap(), "hello");
        assert_eq!(store.list().unwrap(), vec!["a.bin".to_string()]);
    }

    #[test]
    fn dropped_writer_never_publishes() {
        let store = temp_store("drop");
        let mut w = store.put("crash.bin").unwrap();
        w.write_all(b"partial").unwrap();
        drop(w); // worker died before commit
        assert!(!store.exists("crash.bin").unwrap());
        // A retry overwrites the staging leftovers cleanly.
        put_bytes(&store, "crash.bin", b"complete").unwrap();
        assert_eq!(get_string(&store, "crash.bin").unwrap(), "complete");
    }

    #[test]
    fn names_are_object_keys_not_paths() {
        let store = temp_store("names");
        for bad in ["", "a/b", "..", "x..y", "a\\b", "evil.staged"] {
            assert!(store.put(bad).is_err(), "accepted {bad:?}");
            assert!(store.get(bad).is_err());
        }
    }

    #[test]
    fn append_accumulates_lines() {
        let store = temp_store("append");
        store.append("log.jsonl", b"one\n").unwrap();
        store.append("log.jsonl", b"two\n").unwrap();
        assert_eq!(get_string(&store, "log.jsonl").unwrap(), "one\ntwo\n");
    }

    #[test]
    fn delete_is_idempotent_and_local_path_only_for_committed() {
        let store = temp_store("del");
        assert!(store.local_path("a.bin").is_none());
        put_bytes(&store, "a.bin", b"x").unwrap();
        assert!(store.local_path("a.bin").is_some());
        store.delete("a.bin").unwrap();
        store.delete("a.bin").unwrap();
        assert!(!store.exists("a.bin").unwrap());
        assert!(store.local_root().is_some());
    }

    #[test]
    fn get_bytes_round_trips_binary() {
        let store = temp_store("bytes");
        let payload: Vec<u8> = (0..=255).collect();
        put_bytes(&store, "blob.bin", &payload).unwrap();
        assert_eq!(get_bytes(&store, "blob.bin").unwrap(), payload);
    }
}
