//! Device taxonomy: device types, manufacturers, and RAT-capability sets.
//!
//! The paper classifies the ~40M UEs into smartphones (59.1%), M2M/IoT
//! devices (39.8%) and low-tier feature phones (1.1%) (§4.2, Fig. 4a), and
//! derives each model's supported RATs from the GSMA catalog (Fig. 4b).

use serde::{Deserialize, Serialize};

/// The three device classes of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    /// Smartphones.
    Smartphone,
    /// Machine-to-machine / IoT devices (modems, meters, trackers, …).
    M2mIot,
    /// Low-tier feature phones.
    FeaturePhone,
}

impl DeviceType {
    /// All device types in declaration order.
    pub const ALL: [DeviceType; 3] =
        [DeviceType::Smartphone, DeviceType::M2mIot, DeviceType::FeaturePhone];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceType::Smartphone => "Smartphones",
            DeviceType::M2mIot => "M2M/IoT",
            DeviceType::FeaturePhone => "Feature phones",
        }
    }

    /// Stable index for categorical encodings.
    pub fn index(&self) -> usize {
        match self {
            DeviceType::Smartphone => 0,
            DeviceType::M2mIot => 1,
            DeviceType::FeaturePhone => 2,
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of radio access technologies a device model supports, as a
/// compact generation ceiling plus the implied lower generations (devices
/// supporting 5G also support 4G/3G/2G, matching GSMA catalog semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RatSupport {
    /// 2G only (GSM/GPRS class modules).
    UpTo2g,
    /// Up to 3G (UMTS).
    UpTo3g,
    /// Up to 4G (LTE) — no 5G NR.
    UpTo4g,
    /// 5G-capable (NR, including NSA operation).
    UpTo5g,
}

impl RatSupport {
    /// All capability ceilings, oldest first.
    pub const ALL: [RatSupport; 4] =
        [RatSupport::UpTo2g, RatSupport::UpTo3g, RatSupport::UpTo4g, RatSupport::UpTo5g];

    /// Whether the device can attach to a generation (1-indexed: 2..=5).
    pub fn supports_generation(&self, generation: u8) -> bool {
        generation >= 2 && generation <= self.max_generation()
    }

    /// The highest supported generation number (2..=5).
    pub fn max_generation(&self) -> u8 {
        match self {
            RatSupport::UpTo2g => 2,
            RatSupport::UpTo3g => 3,
            RatSupport::UpTo4g => 4,
            RatSupport::UpTo5g => 5,
        }
    }

    /// Whether the device can use the 4G EPC (i.e. appears in the paper's
    /// mobility-management dataset as a 4G/5G-NSA device).
    pub fn is_4g_capable(&self) -> bool {
        self.max_generation() >= 4
    }

    /// Label matching Fig. 4b ("2G", "3G", "4G", "5G").
    pub fn label(&self) -> &'static str {
        match self {
            RatSupport::UpTo2g => "2G",
            RatSupport::UpTo3g => "3G",
            RatSupport::UpTo4g => "4G",
            RatSupport::UpTo5g => "5G",
        }
    }
}

impl std::fmt::Display for RatSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Device manufacturers observed in the study.
///
/// The named variants cover the paper's top-5 smartphone vendors, the
/// diversified M2M/IoT module makers, the feature-phone brands, and the
/// outlier manufacturers called out in §5.3 (KVD, HMD, Simcom). `OtherX`
/// variants absorb the long tail per device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Manufacturer {
    // Smartphone top-5 (Fig. 4a).
    Apple,
    Samsung,
    Motorola,
    Google,
    Huawei,
    // Outlier smartphone brand with elevated HOF rates (§5.3).
    Kvd,
    // M2M/IoT module makers.
    Simcom,
    Quectel,
    Telit,
    SierraWireless,
    Fibocom,
    // Feature-phone brands.
    Hmd,
    Nokia,
    Alcatel,
    Doro,
    // Long tail, bucketed per device class.
    OtherSmartphone,
    OtherM2m,
    OtherFeature,
}

impl Manufacturer {
    /// All manufacturers in declaration order.
    pub const ALL: [Manufacturer; 18] = [
        Manufacturer::Apple,
        Manufacturer::Samsung,
        Manufacturer::Motorola,
        Manufacturer::Google,
        Manufacturer::Huawei,
        Manufacturer::Kvd,
        Manufacturer::Simcom,
        Manufacturer::Quectel,
        Manufacturer::Telit,
        Manufacturer::SierraWireless,
        Manufacturer::Fibocom,
        Manufacturer::Hmd,
        Manufacturer::Nokia,
        Manufacturer::Alcatel,
        Manufacturer::Doro,
        Manufacturer::OtherSmartphone,
        Manufacturer::OtherM2m,
        Manufacturer::OtherFeature,
    ];

    /// The paper's top-5 smartphone manufacturers (§5.2, Fig. 11).
    pub const TOP5_SMARTPHONE: [Manufacturer; 5] = [
        Manufacturer::Apple,
        Manufacturer::Samsung,
        Manufacturer::Motorola,
        Manufacturer::Google,
        Manufacturer::Huawei,
    ];

    /// Brand name.
    pub fn name(&self) -> &'static str {
        match self {
            Manufacturer::Apple => "Apple",
            Manufacturer::Samsung => "Samsung",
            Manufacturer::Motorola => "Motorola",
            Manufacturer::Google => "Google",
            Manufacturer::Huawei => "Huawei",
            Manufacturer::Kvd => "KVD",
            Manufacturer::Simcom => "Simcom",
            Manufacturer::Quectel => "Quectel",
            Manufacturer::Telit => "Telit",
            Manufacturer::SierraWireless => "Sierra Wireless",
            Manufacturer::Fibocom => "Fibocom",
            Manufacturer::Hmd => "HMD",
            Manufacturer::Nokia => "Nokia",
            Manufacturer::Alcatel => "Alcatel",
            Manufacturer::Doro => "Doro",
            Manufacturer::OtherSmartphone => "Other (smartphone)",
            Manufacturer::OtherM2m => "Other (M2M/IoT)",
            Manufacturer::OtherFeature => "Other (feature)",
        }
    }

    /// Stable index for categorical encodings.
    pub fn index(&self) -> usize {
        Manufacturer::ALL.iter().position(|m| m == self).expect("all variants listed")
    }

    /// Relative handover-volume multiplier of this manufacturer's mobility
    /// management implementation w.r.t. its peers in the same district
    /// (§5.3, Fig. 11 left): 1.0 = identical to the district average.
    ///
    /// Calibration: Apple +4%, top-5 within ±10%, Simcom +293%.
    pub fn ho_volume_factor(&self) -> f64 {
        match self {
            Manufacturer::Apple => 1.04,
            Manufacturer::Samsung => 0.99,
            Manufacturer::Motorola => 0.96,
            Manufacturer::Google => 1.02,
            Manufacturer::Huawei => 0.93,
            Manufacturer::Kvd => 1.35,
            Manufacturer::Simcom => 3.93,
            Manufacturer::Quectel => 1.10,
            Manufacturer::Hmd => 1.12,
            _ => 1.0,
        }
    }

    /// Relative handover-failure-rate multiplier w.r.t. district peers
    /// (§5.3, Fig. 11 right): Google −27%, Apple +8%, KVD/HMD up to +600%.
    pub fn hof_rate_factor(&self) -> f64 {
        match self {
            Manufacturer::Apple => 1.08,
            Manufacturer::Samsung => 1.00,
            Manufacturer::Motorola => 1.03,
            Manufacturer::Google => 0.73,
            Manufacturer::Huawei => 1.05,
            Manufacturer::Kvd => 7.0,
            Manufacturer::Hmd => 7.0,
            Manufacturer::Simcom => 1.6,
            _ => 1.0,
        }
    }
}

impl std::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rat_support_ordering_and_generations() {
        assert!(RatSupport::UpTo2g < RatSupport::UpTo5g);
        assert!(RatSupport::UpTo5g.supports_generation(2));
        assert!(RatSupport::UpTo5g.supports_generation(5));
        assert!(!RatSupport::UpTo3g.supports_generation(4));
        assert!(!RatSupport::UpTo3g.supports_generation(1));
        assert!(RatSupport::UpTo4g.is_4g_capable());
        assert!(!RatSupport::UpTo3g.is_4g_capable());
    }

    #[test]
    fn manufacturer_indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in Manufacturer::ALL {
            assert!(seen.insert(m.index()), "duplicate index for {m}");
        }
    }

    #[test]
    fn top5_are_smartphone_brands() {
        for m in Manufacturer::TOP5_SMARTPHONE {
            assert!((m.ho_volume_factor() - 1.0).abs() <= 0.10, "{m} outside ±10%");
        }
    }

    #[test]
    fn outliers_have_elevated_factors() {
        assert!(Manufacturer::Kvd.hof_rate_factor() >= 6.0);
        assert!(Manufacturer::Hmd.hof_rate_factor() >= 6.0);
        assert!(Manufacturer::Simcom.ho_volume_factor() > 3.5);
        assert!(Manufacturer::Google.hof_rate_factor() < 0.8);
    }

    #[test]
    fn names_render() {
        assert_eq!(DeviceType::M2mIot.to_string(), "M2M/IoT");
        assert_eq!(RatSupport::UpTo5g.to_string(), "5G");
        assert_eq!(Manufacturer::SierraWireless.to_string(), "Sierra Wireless");
    }
}
