//! Sampling a UE population from the device catalog.
//!
//! Every UE in the simulation owns an IMSI, an IMEI (whose TAC points back
//! into the catalog) and a catalog model index. Sampling is
//! weight-proportional over catalog models, so the realized population
//! reproduces the catalog's calibrated marginals.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::catalog::GsmaCatalog;
use crate::ids::{Imei, Imsi, Tac};
use crate::types::{DeviceType, Manufacturer, RatSupport};

/// Dense identifier of a UE in the simulated population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UeId(pub u32);

impl std::fmt::Display for UeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UE{:07}", self.0)
    }
}

/// One subscriber device: identities plus the catalog model it instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeDevice {
    /// Population identifier.
    pub ue: UeId,
    /// Subscriber identity.
    pub imsi: Imsi,
    /// Equipment identity.
    pub imei: Imei,
    /// Index into the catalog's model table.
    pub model: u32,
}

/// Weighted alias-free sampler over catalog models (cumulative weights +
/// binary search — O(log m) per draw, deterministic given the RNG stream).
#[derive(Debug, Clone)]
struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            assert!(w >= 0.0, "negative weight");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        CumulativeSampler { cumulative }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let u: f64 = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

/// The full UE roster of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DevicePopulation {
    devices: Vec<UeDevice>,
}

/// The MCC used for the fictional country.
pub const HOME_MCC: u16 = 299;
/// The studied MNO's network code.
pub const HOME_MNC: u8 = 42;

impl DevicePopulation {
    /// Sample `n` UEs from the catalog, deterministically from `seed`.
    pub fn sample(catalog: &GsmaCatalog, n: usize, seed: u64) -> Self {
        assert!(!catalog.is_empty(), "catalog must not be empty");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sampler = CumulativeSampler::new(catalog.models().iter().map(|m| m.population_weight));
        let devices = (0..n)
            .map(|i| {
                let model_idx = sampler.sample(&mut rng);
                let model = catalog.model(model_idx);
                UeDevice {
                    ue: UeId(i as u32),
                    imsi: Imsi::new(HOME_MCC, HOME_MNC, i as u64),
                    imei: Imei::new(model.tac, (i % 1_000_000) as u32),
                    model: model_idx as u32,
                }
            })
            .collect();
        DevicePopulation { devices }
    }

    /// All devices, indexed by `UeId.0`.
    pub fn devices(&self) -> &[UeDevice] {
        &self.devices
    }

    /// Number of UEs.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device record for a UE.
    pub fn device(&self, ue: UeId) -> &UeDevice {
        &self.devices[ue.0 as usize]
    }

    /// Catalog TAC of a UE.
    pub fn tac(&self, ue: UeId) -> Tac {
        self.device(ue).imei.tac
    }

    /// Device type of a UE (requires the catalog the roster was built from).
    pub fn device_type(&self, catalog: &GsmaCatalog, ue: UeId) -> DeviceType {
        catalog.model(self.device(ue).model as usize).device_type
    }

    /// Manufacturer of a UE.
    pub fn manufacturer(&self, catalog: &GsmaCatalog, ue: UeId) -> Manufacturer {
        catalog.model(self.device(ue).model as usize).manufacturer
    }

    /// RAT support of a UE.
    pub fn rat_support(&self, catalog: &GsmaCatalog, ue: UeId) -> RatSupport {
        catalog.model(self.device(ue).model as usize).rat_support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{shares, CatalogConfig};

    fn population(n: usize) -> (GsmaCatalog, DevicePopulation) {
        let catalog = GsmaCatalog::generate(CatalogConfig::default());
        let pop = DevicePopulation::sample(&catalog, n, 7);
        (catalog, pop)
    }

    #[test]
    fn sampling_is_deterministic() {
        let catalog = GsmaCatalog::generate(CatalogConfig::default());
        let a = DevicePopulation::sample(&catalog, 500, 7);
        let b = DevicePopulation::sample(&catalog, 500, 7);
        assert_eq!(a.devices(), b.devices());
        let c = DevicePopulation::sample(&catalog, 500, 8);
        assert_ne!(a.devices(), c.devices());
    }

    #[test]
    fn realized_type_shares_track_catalog() {
        let (catalog, pop) = population(20_000);
        for &(ty, share) in &shares::DEVICE_TYPE {
            let got = pop
                .devices()
                .iter()
                .filter(|d| catalog.model(d.model as usize).device_type == ty)
                .count() as f64
                / pop.len() as f64;
            assert!((got - share).abs() < 0.02, "{ty}: realized {got} vs target {share}");
        }
    }

    #[test]
    fn imeis_have_valid_tacs() {
        let (catalog, pop) = population(200);
        for d in pop.devices() {
            let m = catalog.by_tac(d.imei.tac).expect("every UE has a cataloged TAC");
            assert_eq!(m.tac, d.imei.tac);
        }
    }

    #[test]
    fn imsis_are_unique() {
        let (_, pop) = population(1000);
        let mut seen = std::collections::HashSet::new();
        for d in pop.devices() {
            assert!(seen.insert(d.imsi), "duplicate IMSI {}", d.imsi);
        }
    }

    #[test]
    fn accessors_agree_with_catalog() {
        let (catalog, pop) = population(50);
        for d in pop.devices() {
            let m = catalog.model(d.model as usize);
            assert_eq!(pop.device_type(&catalog, d.ue), m.device_type);
            assert_eq!(pop.manufacturer(&catalog, d.ue), m.manufacturer);
            assert_eq!(pop.rat_support(&catalog, d.ue), m.rat_support);
            assert_eq!(pop.tac(d.ue), m.tac);
        }
    }

    #[test]
    fn ue_display() {
        assert_eq!(UeId(5).to_string(), "UE0000005");
    }
}
