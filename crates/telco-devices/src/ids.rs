//! Device and subscriber identities: TAC, IMEI and IMSI.
//!
//! The paper's trace carries anonymized user IDs derived from IMSI and IMEI
//! (§3.1); the first 8 IMEI digits are the Type Allocation Code (TAC) used
//! to join against the GSMA device catalog.

use serde::{Deserialize, Serialize};

/// Type Allocation Code: the first 8 digits of an IMEI, identifying the
/// device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tac(pub u32);

impl Tac {
    /// Largest valid TAC (8 decimal digits).
    pub const MAX: u32 = 99_999_999;

    /// Construct, validating the 8-digit range.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds 8 decimal digits.
    pub fn new(value: u32) -> Self {
        assert!(value <= Self::MAX, "TAC must be 8 decimal digits, got {value}");
        Tac(value)
    }
}

impl std::fmt::Display for Tac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:08}", self.0)
    }
}

/// International Mobile Equipment Identity: TAC (8 digits) + serial number
/// (6 digits) + Luhn check digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imei {
    /// Device-model code.
    pub tac: Tac,
    /// Per-unit serial number (6 digits).
    pub serial: u32,
}

impl Imei {
    /// Construct from TAC and serial.
    ///
    /// # Panics
    ///
    /// Panics if the serial exceeds 6 decimal digits.
    pub fn new(tac: Tac, serial: u32) -> Self {
        assert!(serial <= 999_999, "IMEI serial must be 6 decimal digits, got {serial}");
        Imei { tac, serial }
    }

    /// The 14 identity digits, most significant first.
    fn digits14(&self) -> [u8; 14] {
        let mut d = [0u8; 14];
        let mut t = self.tac.0;
        for i in (0..8).rev() {
            d[i] = (t % 10) as u8;
            t /= 10;
        }
        let mut s = self.serial;
        for i in (8..14).rev() {
            d[i] = (s % 10) as u8;
            s /= 10;
        }
        d
    }

    /// Luhn check digit over the 14 identity digits.
    pub fn check_digit(&self) -> u8 {
        luhn_check_digit(&self.digits14())
    }

    /// The full 15-digit IMEI as a number.
    pub fn as_u64(&self) -> u64 {
        (self.tac.0 as u64) * 10_000_000 + (self.serial as u64) * 10 + self.check_digit() as u64
    }
}

impl std::fmt::Display for Imei {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:08}{:06}{}", self.tac.0, self.serial, self.check_digit())
    }
}

/// International Mobile Subscriber Identity: MCC + MNC + MSIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Imsi {
    /// Mobile country code (3 digits).
    pub mcc: u16,
    /// Mobile network code (2 digits in the studied country).
    pub mnc: u8,
    /// Subscriber identification number (up to 10 digits).
    pub msin: u64,
}

impl Imsi {
    /// Construct, validating digit budgets.
    ///
    /// # Panics
    ///
    /// Panics when any component exceeds its digit budget.
    pub fn new(mcc: u16, mnc: u8, msin: u64) -> Self {
        assert!(mcc <= 999, "MCC must be 3 digits");
        assert!(mnc <= 99, "MNC must be 2 digits");
        assert!(msin <= 9_999_999_999, "MSIN must be at most 10 digits");
        Imsi { mcc, mnc, msin }
    }
}

impl std::fmt::Display for Imsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:03}{:02}{:010}", self.mcc, self.mnc, self.msin)
    }
}

/// Luhn check digit for a most-significant-first digit string.
pub fn luhn_check_digit(digits: &[u8]) -> u8 {
    let mut sum: u32 = 0;
    // Walking from the rightmost identity digit, every first digit (which
    // would sit in an odd position of the full number) is doubled.
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut v = d as u32;
        if i % 2 == 0 {
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        sum += v;
    }
    ((10 - (sum % 10)) % 10) as u8
}

/// Validate a full digit string (identity digits + trailing check digit).
pub fn luhn_is_valid(digits_with_check: &[u8]) -> bool {
    if digits_with_check.is_empty() {
        return false;
    }
    let (identity, check) = digits_with_check.split_at(digits_with_check.len() - 1);
    luhn_check_digit(identity) == check[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luhn_known_example() {
        // Classic test number 7992739871 has check digit 3.
        let digits = [7, 9, 9, 2, 7, 3, 9, 8, 7, 1];
        assert_eq!(luhn_check_digit(&digits), 3);
        let full = [7, 9, 9, 2, 7, 3, 9, 8, 7, 1, 3];
        assert!(luhn_is_valid(&full));
        let bad = [7, 9, 9, 2, 7, 3, 9, 8, 7, 1, 4];
        assert!(!luhn_is_valid(&bad));
    }

    #[test]
    fn imei_roundtrip_and_validity() {
        let imei = Imei::new(Tac::new(35_294_906), 123_456);
        let s = imei.to_string();
        assert_eq!(s.len(), 15);
        let digits: Vec<u8> = s.bytes().map(|b| b - b'0').collect();
        assert!(luhn_is_valid(&digits));
        assert_eq!(imei.as_u64().to_string().len(), 15);
    }

    #[test]
    fn imei_known_check_digit() {
        // IMEI 49015420323751 has Luhn check digit 8 (reference example).
        let imei = Imei::new(Tac::new(49_015_420), 323_751);
        assert_eq!(imei.check_digit(), 8);
    }

    #[test]
    fn tac_display_pads() {
        assert_eq!(Tac::new(1234).to_string(), "00001234");
    }

    #[test]
    fn imsi_display_pads() {
        let imsi = Imsi::new(214, 7, 42);
        assert_eq!(imsi.to_string(), "214070000000042");
        assert_eq!(imsi.to_string().len(), 15);
    }

    #[test]
    #[should_panic]
    fn tac_rejects_nine_digits() {
        Tac::new(100_000_000);
    }

    #[test]
    #[should_panic]
    fn imei_rejects_long_serial() {
        Imei::new(Tac::new(1), 1_000_000);
    }
}
