//! The GSMA-style device catalog and its synthetic generator.
//!
//! The paper joins the trace's TACs against a commercial GSMA database to
//! obtain manufacturer, device type and supported RATs (§3.1). That catalog
//! is proprietary, so we generate one whose *marginals* match everything
//! Fig. 4 publishes:
//!
//! * device types: smartphones 59.1%, M2M/IoT 39.8%, feature phones 1.1%;
//! * smartphone manufacturers: Apple 54.8%, Samsung 30.2%, then Motorola,
//!   Google, Huawei, a KVD-like outlier brand and a long tail;
//! * M2M/IoT manufacturers diversified (top-5 < 73% — Fig. 4a);
//! * RAT support: 12.6% of all UEs 2G-only, 20.1% up to 3G, 67.2% 4G/5G;
//!   >80% of M2M and >50% of feature phones at most 3G; smartphones split
//!   > 51.4% up-to-4G / 48.5% 5G-capable.

use std::collections::HashMap;

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::apn::{Apn, CONSUMER_APNS, IOT_APNS};
use crate::ids::Tac;
use crate::types::{DeviceType, Manufacturer, RatSupport};

/// One catalog entry: a device model identified by its TAC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Type allocation code.
    pub tac: Tac,
    /// Marketing name, e.g. `"Apple model 12"`.
    pub marketing_name: String,
    /// Manufacturer.
    pub manufacturer: Manufacturer,
    /// Ground-truth device class.
    pub device_type: DeviceType,
    /// Supported radio generations.
    pub rat_support: RatSupport,
    /// Typical APN provisioned for units of this model.
    pub apn: Apn,
    /// Whether the model runs a smartphone-class OS.
    pub smart_os: bool,
    /// Whether the model is an embedded module (modem/meter form factor).
    pub is_module: bool,
    /// Relative share of the UE population using this model.
    pub population_weight: f64,
}

/// Share tables the generator is calibrated to; exposed so tests and
/// experiments can assert against the same constants.
pub mod shares {
    use crate::types::{DeviceType, Manufacturer, RatSupport};

    /// Device-type shares of the UE population (§4.2).
    pub const DEVICE_TYPE: [(DeviceType, f64); 3] = [
        (DeviceType::Smartphone, 0.591),
        (DeviceType::M2mIot, 0.398),
        (DeviceType::FeaturePhone, 0.011),
    ];

    /// Manufacturer shares within each device type (Fig. 4a).
    pub fn manufacturers(ty: DeviceType) -> &'static [(Manufacturer, f64)] {
        match ty {
            DeviceType::Smartphone => &[
                (Manufacturer::Apple, 0.548),
                (Manufacturer::Samsung, 0.302),
                (Manufacturer::Motorola, 0.045),
                (Manufacturer::Google, 0.032),
                (Manufacturer::Huawei, 0.028),
                (Manufacturer::Kvd, 0.010),
                (Manufacturer::OtherSmartphone, 0.035),
            ],
            DeviceType::M2mIot => &[
                (Manufacturer::Simcom, 0.18),
                (Manufacturer::Quectel, 0.16),
                (Manufacturer::Telit, 0.14),
                (Manufacturer::SierraWireless, 0.13),
                (Manufacturer::Fibocom, 0.12),
                (Manufacturer::OtherM2m, 0.27),
            ],
            DeviceType::FeaturePhone => &[
                (Manufacturer::Hmd, 0.35),
                (Manufacturer::Nokia, 0.25),
                (Manufacturer::Alcatel, 0.18),
                (Manufacturer::Doro, 0.12),
                (Manufacturer::OtherFeature, 0.10),
            ],
        }
    }

    /// RAT-support distribution within each device type (Fig. 4b): the
    /// probabilities of UpTo2g / UpTo3g / UpTo4g / UpTo5g respectively.
    pub fn rat_support(ty: DeviceType) -> [(RatSupport, f64); 4] {
        let p = match ty {
            DeviceType::Smartphone => [0.0, 0.001, 0.514, 0.485],
            DeviceType::M2mIot => [0.30, 0.52, 0.13, 0.05],
            DeviceType::FeaturePhone => [0.25, 0.30, 0.44, 0.01],
        };
        [
            (RatSupport::UpTo2g, p[0]),
            (RatSupport::UpTo3g, p[1]),
            (RatSupport::UpTo4g, p[2]),
            (RatSupport::UpTo5g, p[3]),
        ]
    }
}

/// Configuration of the synthetic catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct models generated per (type, manufacturer, RAT)
    /// cell with nonzero share.
    pub models_per_cell: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig { seed: 0x6e7a, models_per_cell: 3 }
    }
}

/// The device catalog: models indexed by TAC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GsmaCatalog {
    models: Vec<DeviceModel>,
    #[serde(skip)]
    by_tac: HashMap<Tac, usize>,
}

impl GsmaCatalog {
    /// Generate the synthetic catalog.
    pub fn generate(config: CatalogConfig) -> Self {
        assert!(config.models_per_cell >= 1, "need at least one model per cell");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut models = Vec::new();
        let mut next_tac: u32 = 35_000_000;
        for &(ty, ty_share) in &shares::DEVICE_TYPE {
            for &(mfr, mfr_share) in shares::manufacturers(ty) {
                for (rat, rat_share) in shares::rat_support(ty) {
                    if rat_share <= 0.0 {
                        continue;
                    }
                    let cell_weight = ty_share * mfr_share * rat_share;
                    // Split the cell across a few models with jittered
                    // weights (a realistic catalog has many near-duplicate
                    // TACs per commercial model family).
                    let mut jitters: Vec<f64> = (0..config.models_per_cell)
                        .map(|_| rng.random_range(0.3..1.0f64))
                        .collect();
                    let jsum: f64 = jitters.iter().sum();
                    for j in &mut jitters {
                        *j /= jsum;
                    }
                    for (k, &j) in jitters.iter().enumerate() {
                        let apn = if ty == DeviceType::M2mIot {
                            // Most M2M models ship IoT-vertical APNs; some use
                            // consumer plans, exercising the combined
                            // APN + catalog heuristic.
                            if rng.random::<f64>() < 0.85 {
                                Apn::new(IOT_APNS[models.len() % IOT_APNS.len()])
                            } else {
                                Apn::new(CONSUMER_APNS[models.len() % CONSUMER_APNS.len()])
                            }
                        } else {
                            Apn::new(CONSUMER_APNS[models.len() % CONSUMER_APNS.len()])
                        };
                        models.push(DeviceModel {
                            tac: Tac::new(next_tac),
                            marketing_name: format!(
                                "{} {} {}{}",
                                mfr.name(),
                                rat.label(),
                                match ty {
                                    DeviceType::Smartphone => "Phone",
                                    DeviceType::M2mIot => "Module",
                                    DeviceType::FeaturePhone => "Classic",
                                },
                                k + 1
                            ),
                            manufacturer: mfr,
                            device_type: ty,
                            rat_support: rat,
                            apn,
                            smart_os: ty == DeviceType::Smartphone,
                            is_module: ty == DeviceType::M2mIot && rng.random::<f64>() < 0.9,
                            population_weight: cell_weight * j,
                        });
                        next_tac += 17; // arbitrary stride, keeps TACs sparse
                    }
                }
            }
        }
        let by_tac = models.iter().enumerate().map(|(i, m)| (m.tac, i)).collect();
        GsmaCatalog { models, by_tac }
    }

    /// All models.
    pub fn models(&self) -> &[DeviceModel] {
        &self.models
    }

    /// Look up a model by TAC.
    pub fn by_tac(&self, tac: Tac) -> Option<&DeviceModel> {
        self.by_tac.get(&tac).map(|&i| &self.models[i])
    }

    /// Model at a dense index (as stored in UE rosters).
    pub fn model(&self, idx: usize) -> &DeviceModel {
        &self.models[idx]
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Rebuild the TAC index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_tac = self.models.iter().enumerate().map(|(i, m)| (m.tac, i)).collect();
    }
}

/// The study's device-classification heuristic (§3.1): combine the APN with
/// catalog attributes. IoT-vertical APNs or module form factors flag
/// M2M/IoT; a smartphone OS flags a smartphone; everything else is a
/// feature phone.
pub fn classify_device(apn: &Apn, smart_os: bool, is_module: bool) -> DeviceType {
    if apn.is_iot_vertical() || is_module {
        DeviceType::M2mIot
    } else if smart_os {
        DeviceType::Smartphone
    } else {
        DeviceType::FeaturePhone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> GsmaCatalog {
        GsmaCatalog::generate(CatalogConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.models(), b.models());
    }

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = catalog().models().iter().map(|m| m.population_weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "total weight {total}");
    }

    #[test]
    fn type_shares_match_paper() {
        let c = catalog();
        for &(ty, share) in &shares::DEVICE_TYPE {
            let got: f64 = c
                .models()
                .iter()
                .filter(|m| m.device_type == ty)
                .map(|m| m.population_weight)
                .sum();
            assert!((got - share).abs() < 1e-9, "{ty}: {got} vs {share}");
        }
    }

    #[test]
    fn rat_marginals_match_paper() {
        let c = catalog();
        let share_of = |rat: RatSupport| -> f64 {
            c.models().iter().filter(|m| m.rat_support == rat).map(|m| m.population_weight).sum()
        };
        // 12.6% 2G-only, ~20.1% up to 3G, 67.2% 4G-or-better (§4.2).
        assert!((share_of(RatSupport::UpTo2g) - 0.126).abs() < 0.005);
        assert!((share_of(RatSupport::UpTo3g) - 0.201).abs() < 0.01);
        let modern = share_of(RatSupport::UpTo4g) + share_of(RatSupport::UpTo5g);
        assert!((modern - 0.672).abs() < 0.01, "modern share {modern}");
    }

    #[test]
    fn tac_lookup_works() {
        let c = catalog();
        let m = &c.models()[7];
        assert_eq!(c.by_tac(m.tac).unwrap().marketing_name, m.marketing_name);
        assert!(c.by_tac(Tac::new(1)).is_none());
    }

    #[test]
    fn heuristic_recovers_ground_truth_for_most_weight() {
        let c = catalog();
        let correct: f64 = c
            .models()
            .iter()
            .filter(|m| classify_device(&m.apn, m.smart_os, m.is_module) == m.device_type)
            .map(|m| m.population_weight)
            .sum();
        assert!(correct > 0.95, "heuristic accuracy by weight: {correct}");
    }

    #[test]
    fn apple_share_of_all_ues_around_32_percent() {
        let c = catalog();
        let apple: f64 = c
            .models()
            .iter()
            .filter(|m| m.manufacturer == Manufacturer::Apple)
            .map(|m| m.population_weight)
            .sum();
        // 54.8% of the 59.1% smartphone share ≈ 32.4% of all UEs (§5.3).
        assert!((apple - 0.324).abs() < 0.01, "Apple share {apple}");
    }

    #[test]
    fn rebuild_index_after_clear() {
        let mut c = catalog();
        let tac = c.models()[0].tac;
        c.by_tac.clear();
        assert!(c.by_tac(tac).is_none());
        c.rebuild_index();
        assert!(c.by_tac(tac).is_some());
    }
}
