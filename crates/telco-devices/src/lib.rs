//! # telco-devices
//!
//! Device substrate for the handover study: TAC/IMEI/IMSI identities with
//! Luhn check digits, a GSMA-style device catalog generated to the paper's
//! published marginals (Fig. 4), the APN-based M2M classification heuristic
//! (§3.1), and weighted UE population sampling.
//!
//! ## Example
//!
//! ```
//! use telco_devices::catalog::{CatalogConfig, GsmaCatalog};
//! use telco_devices::population::DevicePopulation;
//! use telco_devices::types::DeviceType;
//!
//! let catalog = GsmaCatalog::generate(CatalogConfig::default());
//! let pop = DevicePopulation::sample(&catalog, 1000, 42);
//! let smartphones = pop
//!     .devices()
//!     .iter()
//!     .filter(|d| catalog.model(d.model as usize).device_type == DeviceType::Smartphone)
//!     .count();
//! // Roughly 59.1% of UEs are smartphones (§4.2).
//! assert!((450..=730).contains(&smartphones));
//! ```

// telco-lint: deny-nondeterminism
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apn;
pub mod catalog;
pub mod ids;
pub mod population;
pub mod types;

pub use apn::{classify_apn, Apn, ApnClass};
pub use catalog::{classify_device, CatalogConfig, DeviceModel, GsmaCatalog};
pub use ids::{Imei, Imsi, Tac};
pub use population::{DevicePopulation, UeDevice, UeId};
pub use types::{DeviceType, Manufacturer, RatSupport};
