//! Access Point Names and the M2M/IoT classification heuristic.
//!
//! The paper classifies devices by combining GSMA catalog attributes with
//! the APN configured for the UE: APNs containing keywords associated with
//! IoT verticals ("m2m", "smart-meter", …) flag M2M/IoT devices (§3.1,
//! citing the methodology of Lutu et al., IMC '20).

use serde::{Deserialize, Serialize};

/// An Access Point Name string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Apn(pub String);

impl Apn {
    /// Construct from any string-like value, lowercasing for matching.
    pub fn new(s: impl Into<String>) -> Self {
        Apn(s.into().to_ascii_lowercase())
    }

    /// Whether the APN matches an IoT-vertical keyword.
    pub fn is_iot_vertical(&self) -> bool {
        IOT_KEYWORDS.iter().any(|k| self.0.contains(k))
    }
}

impl std::fmt::Display for Apn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Keywords associated with IoT verticals in operator APN plans.
pub const IOT_KEYWORDS: [&str; 10] = [
    "m2m",
    "smart-meter",
    "smartmeter",
    "iot",
    "telemetry",
    "telematics",
    "fleet",
    "tracker",
    "scada",
    "vending",
];

/// Consumer-plan APNs used for non-IoT devices in the synthetic catalog.
pub const CONSUMER_APNS: [&str; 4] = ["internet", "mobile.data", "broadband", "wap"];

/// IoT-vertical APNs used for M2M models in the synthetic catalog.
pub const IOT_APNS: [&str; 6] = [
    "m2m.corp",
    "smart-meter.energy",
    "iot.secure",
    "telemetry.grid",
    "fleet.trackers",
    "vending.pay",
];

/// Classification outcome of the combined APN + catalog heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApnClass {
    /// APN indicates an IoT vertical.
    IotVertical,
    /// APN is a consumer data plan.
    Consumer,
}

/// Classify an APN.
pub fn classify_apn(apn: &Apn) -> ApnClass {
    if apn.is_iot_vertical() {
        ApnClass::IotVertical
    } else {
        ApnClass::Consumer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iot_keywords_match() {
        assert!(Apn::new("m2m.corp").is_iot_vertical());
        assert!(Apn::new("SMART-METER.energy").is_iot_vertical());
        assert!(Apn::new("eu.telemetry.grid").is_iot_vertical());
    }

    #[test]
    fn consumer_apns_do_not_match() {
        for apn in CONSUMER_APNS {
            assert!(!Apn::new(apn).is_iot_vertical(), "{apn} wrongly IoT");
        }
    }

    #[test]
    fn all_iot_apns_classify_as_iot() {
        for apn in IOT_APNS {
            assert_eq!(classify_apn(&Apn::new(apn)), ApnClass::IotVertical);
        }
    }

    #[test]
    fn case_insensitive() {
        assert!(Apn::new("M2M.CORP").is_iot_vertical());
    }
}
